//! An oblivious map in the style of the HIRB tree + vORAM of Roche et al.
//! (S&P'16), the point-query comparison system of Figure 9.
//!
//! The real HIRB is a history-independent B-skip-tree stored in a
//! variable-block ORAM ("vORAM") with large buckets (the paper evaluates
//! bucket size 4096). We reproduce the *cost structure* that Figure 9
//! measures: a fixed-height, hash-addressed tree whose node positions are
//! a deterministic function of the key's hash (history independence), with
//! every node access going through an ORAM with 4096-byte payloads, and
//! every operation padded to the same number of ORAM accesses. Per-op cost
//! is therefore `height × path × 4 KB` of crypto against ObliDB's much
//! smaller B+-tree blocks — the gap the figure shows.

use oblidb_crypto::aead::AeadKey;
use oblidb_crypto::SipHash24;
use oblidb_enclave::{EnclaveMemory, EnclaveRng, OmBudget};
use oblidb_oram::{OramError, PathOram, PosMapKind};

/// vORAM bucket (block payload) size, as evaluated in the paper (§7.1:
/// "allocated the underlying vORAM with bucket size 4096").
pub const VORAM_BUCKET: usize = 4096;

/// Errors from the HIRB map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HirbError {
    /// Underlying ORAM failure.
    Oram(OramError),
    /// A trie node overflowed its 4 KB block (statistically negligible at
    /// the advertised capacity).
    NodeOverflow,
}

impl From<OramError> for HirbError {
    fn from(e: OramError) -> Self {
        HirbError::Oram(e)
    }
}

impl std::fmt::Display for HirbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HirbError::Oram(e) => write!(f, "oram: {e}"),
            HirbError::NodeOverflow => write!(f, "hirb node overflow"),
        }
    }
}

impl std::error::Error for HirbError {}

/// An oblivious key-value map over a vORAM-style Path ORAM.
pub struct HirbMap {
    oram: PathOram,
    value_len: usize,
    height: u32,
    fanout: u64,
    hasher: SipHash24,
    len: u64,
}

/// Entries per 4 KB node for a given value size (key 8 B + value).
fn node_capacity_entries(value_len: usize) -> usize {
    (VORAM_BUCKET - 2) / (8 + value_len)
}

impl HirbMap {
    /// Creates a map for up to `capacity` entries of `value_len`-byte
    /// values.
    pub fn new<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        capacity: u64,
        value_len: usize,
        om: &OmBudget,
        mut rng: EnclaveRng,
    ) -> Result<Self, HirbError> {
        let per_node = node_capacity_entries(value_len) as u64;
        // Fixed height: levels of a `fanout`-ary hash trie so that leaf
        // nodes hold ~half their capacity in expectation.
        let fanout = 16u64;
        let mut leaves_needed = capacity.div_ceil(per_node / 2).max(1);
        let mut height = 1u32;
        let mut level_nodes = 1u64;
        while level_nodes < leaves_needed {
            level_nodes *= fanout;
            height += 1;
        }
        leaves_needed = level_nodes;
        // Total trie nodes across levels (geometric sum).
        let mut total_nodes = 0u64;
        let mut n = 1u64;
        for _ in 0..height {
            total_nodes += n;
            n *= fanout;
        }
        let _ = leaves_needed;

        let seed = rng.next_u64();
        let oram =
            PathOram::new(host, key, total_nodes, VORAM_BUCKET, PosMapKind::Direct, om, rng)?;
        Ok(HirbMap {
            oram,
            value_len,
            height,
            fanout,
            hasher: SipHash24::new(seed, seed ^ 0x9e37_79b9_7f4a_7c15),
            len: 0,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Trie height (public).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The ORAM addresses on a key's root-to-leaf path. Deterministic in
    /// the key's hash — history independent by construction.
    fn path_addrs(&self, key: u64) -> Vec<u64> {
        let h = self.hasher.hash_u64(key);
        let mut addrs = Vec::with_capacity(self.height as usize);
        let mut level_base = 0u64;
        let mut level_size = 1u64;
        let mut index = 0u64;
        for level in 0..self.height {
            if level > 0 {
                index = index * self.fanout + (h >> (4 * (level - 1))) % self.fanout;
            }
            addrs.push(level_base + index);
            level_base += level_size;
            level_size *= self.fanout;
        }
        addrs
    }

    /// Serialized node: `count u16 ‖ count × (key u64, value)`.
    fn parse(node: &[u8], value_len: usize) -> Vec<(u64, Vec<u8>)> {
        let count = u16::from_le_bytes(node[..2].try_into().unwrap()) as usize;
        let mut out = Vec::with_capacity(count);
        let mut off = 2;
        for _ in 0..count {
            let k = u64::from_le_bytes(node[off..off + 8].try_into().unwrap());
            off += 8;
            out.push((k, node[off..off + value_len].to_vec()));
            off += value_len;
        }
        out
    }

    fn serialize(entries: &[(u64, Vec<u8>)], value_len: usize) -> Result<Vec<u8>, HirbError> {
        if 2 + entries.len() * (8 + value_len) > VORAM_BUCKET {
            return Err(HirbError::NodeOverflow);
        }
        let mut out = vec![0u8; VORAM_BUCKET];
        out[..2].copy_from_slice(&(entries.len() as u16).to_le_bytes());
        let mut off = 2;
        for (k, v) in entries {
            out[off..off + 8].copy_from_slice(&k.to_le_bytes());
            off += 8;
            out[off..off + value_len].copy_from_slice(v);
            off += value_len;
        }
        Ok(out)
    }

    /// The entry's home node: deepest level with room; entries hash to the
    /// leaf level and overflow upward is not needed because leaves are
    /// sized for the capacity. All ops touch the full path anyway (padding).
    ///
    /// Each of the `height` node touches is one full (padded) ORAM access —
    /// that per-op count is HIRB's cost model and must not shrink. Since
    /// the underlying Path ORAM fetches and evicts a whole bucket path per
    /// boundary crossing, every 4 KB node access costs two crossings
    /// instead of `2 × path_len`, which is where Figure 9's crypto volume
    /// (not its access count) gets cheaper.
    fn access<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        key: u64,
        op: impl FnOnce(&mut Vec<(u64, Vec<u8>)>) -> bool,
    ) -> Result<bool, HirbError> {
        let addrs = self.path_addrs(key);
        let leaf_addr = *addrs.last().expect("height >= 1");
        // Read the whole path (every op pays the full height, as HIRB's
        // padded operations do).
        let mut leaf_entries = Vec::new();
        for &a in &addrs {
            let node = self.oram.read(host, a)?;
            if a == leaf_addr {
                leaf_entries = Self::parse(&node, self.value_len);
            }
        }
        let changed = op(&mut leaf_entries);
        // Write the whole path back (dummy re-writes for internal levels).
        for &a in &addrs {
            if a == leaf_addr {
                let bytes = Self::serialize(&leaf_entries, self.value_len)?;
                self.oram.write(host, a, &bytes)?;
            } else {
                self.oram.dummy_access(host)?;
            }
        }
        Ok(changed)
    }

    /// Point lookup.
    pub fn get<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        key: u64,
    ) -> Result<Option<Vec<u8>>, HirbError> {
        let mut found = None;
        self.access(host, key, |entries| {
            found = entries.iter().find(|(k, _)| *k == key).map(|(_, v)| v.clone());
            false
        })?;
        Ok(found)
    }

    /// Insert or overwrite.
    pub fn insert<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        key: u64,
        value: &[u8],
    ) -> Result<(), HirbError> {
        assert_eq!(value.len(), self.value_len);
        let value = value.to_vec();
        let mut created = false;
        self.access(host, key, |entries| {
            match entries.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v = value,
                None => {
                    entries.push((key, value));
                    created = true;
                }
            }
            true
        })?;
        if created {
            self.len += 1;
        }
        Ok(())
    }

    /// Delete; returns whether the key existed.
    pub fn delete<M: EnclaveMemory>(&mut self, host: &mut M, key: u64) -> Result<bool, HirbError> {
        let mut removed = false;
        self.access(host, key, |entries| {
            let before = entries.len();
            entries.retain(|(k, _)| *k != key);
            removed = entries.len() != before;
            true
        })?;
        if removed {
            self.len -= 1;
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_enclave::{Host, DEFAULT_OM_BYTES};

    fn setup(capacity: u64) -> (Host, HirbMap) {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let map = HirbMap::new(
            &mut host,
            AeadKey([5u8; 32]),
            capacity,
            64,
            &om,
            EnclaveRng::seed_from_u64(21),
        )
        .unwrap();
        (host, map)
    }

    #[test]
    fn insert_get_delete() {
        let (mut host, mut map) = setup(500);
        for i in 0..100u64 {
            map.insert(&mut host, i, &[i as u8; 64]).unwrap();
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&mut host, 42).unwrap(), Some(vec![42u8; 64]));
        assert_eq!(map.get(&mut host, 1000).unwrap(), None);
        assert!(map.delete(&mut host, 42).unwrap());
        assert!(!map.delete(&mut host, 42).unwrap());
        assert_eq!(map.get(&mut host, 42).unwrap(), None);
        assert_eq!(map.len(), 99);
    }

    #[test]
    fn overwrite_keeps_len() {
        let (mut host, mut map) = setup(100);
        map.insert(&mut host, 7, &[1u8; 64]).unwrap();
        map.insert(&mut host, 7, &[2u8; 64]).unwrap();
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(&mut host, 7).unwrap(), Some(vec![2u8; 64]));
    }

    #[test]
    fn op_costs_are_key_independent() {
        let (mut host, mut map) = setup(200);
        for i in 0..50u64 {
            map.insert(&mut host, i, &[0u8; 64]).unwrap();
        }
        let mut counts = std::collections::HashSet::new();
        for probe in [0u64, 49, 555, u64::MAX] {
            host.reset_stats();
            map.get(&mut host, probe).unwrap();
            counts.insert(host.stats().total_accesses());
        }
        assert_eq!(counts.len(), 1, "get cost must not depend on the key");
        // Insert and delete also pad to fixed cost.
        host.reset_stats();
        map.insert(&mut host, 999, &[0u8; 64]).unwrap();
        let ins = host.stats().total_accesses();
        host.reset_stats();
        map.delete(&mut host, 12345).unwrap(); // miss
        let del_miss = host.stats().total_accesses();
        assert_eq!(ins, del_miss);
    }

    #[test]
    fn each_padded_node_access_is_two_crossings() {
        // HIRB's cost model: a get touches the full path twice (reads,
        // then padded write-backs) — 2·height ORAM accesses, each of
        // which batches its bucket path into one crossing per direction.
        let (mut host, mut map) = setup(200);
        map.insert(&mut host, 1, &[0u8; 64]).unwrap();
        host.reset_stats();
        map.get(&mut host, 1).unwrap();
        let s = host.stats();
        let oram_accesses = 2 * map.height() as u64;
        assert_eq!(s.crossings, 2 * oram_accesses);
        assert!(s.total_accesses() > s.crossings, "paths span multiple buckets");
    }

    #[test]
    fn buckets_are_4k() {
        let (_host, map) = setup(100);
        assert_eq!(map.oram.payload_len(), VORAM_BUCKET);
    }
}
