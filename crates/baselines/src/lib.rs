//! Comparison systems for the ObliDB evaluation, re-implemented on the same
//! enclave substrate (see DESIGN.md §2 for the substitution rationale).
//!
//! * [`opaque`] — Opaque's oblivious mode: full-table scans and oblivious
//!   sorts for every operator (Zheng et al., NSDI'17).
//! * [`plain`] — a conventional, no-security in-memory engine standing in
//!   for Spark SQL.
//! * [`hirb`] — an oblivious map in the style of the HIRB tree + vORAM of
//!   Roche et al. (S&P'16).
//! * [`mysql_like`] — a conventional non-oblivious B-tree index standing in
//!   for MySQL in the point-query comparison (Figure 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hirb;
pub mod mysql_like;
pub mod opaque;
pub mod plain;
