//! A conventional, non-oblivious, unencrypted in-memory index — the MySQL
//! stand-in for the point-query comparison of Figure 9.

use std::collections::BTreeMap;

/// A plain ordered index.
#[derive(Default)]
pub struct ConventionalIndex {
    map: BTreeMap<u64, Vec<u8>>,
}

impl ConventionalIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<&Vec<u8>> {
        self.map.get(&key)
    }

    /// Insert.
    pub fn insert(&mut self, key: u64, value: Vec<u8>) {
        self.map.insert(key, value);
    }

    /// Delete.
    pub fn delete(&mut self, key: u64) -> bool {
        self.map.remove(&key).is_some()
    }

    /// Range scan.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, &Vec<u8>)> {
        self.map.range(lo..=hi).map(|(k, v)| (*k, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut idx = ConventionalIndex::new();
        idx.insert(5, vec![1]);
        idx.insert(9, vec![2]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(5), Some(&vec![1]));
        assert_eq!(idx.range(0, 100).len(), 2);
        assert!(idx.delete(5));
        assert!(!idx.delete(5));
    }
}
