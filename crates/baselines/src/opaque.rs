//! Opaque's *oblivious mode*, re-implemented on the ObliDB substrate
//! (Zheng et al., NSDI'17; compared against in paper Figures 7 and 8).
//!
//! Opaque supports only scan-based analytics: every operator reads whole
//! tables and establishes obliviousness through **oblivious sorts** —
//! quicksort over chunks that fit in oblivious memory, merged with a
//! bitonic network. There are no indexes and no planner; that is exactly
//! the architectural difference Figure 7 measures. Running both designs on
//! one substrate isolates it.

use oblidb_core::exec::{self, AggFunc, SortMergeVariant};
use oblidb_core::predicate::Predicate;
use oblidb_core::table::FlatTable;
use oblidb_core::types::{Schema, Value};
use oblidb_core::DbError;
use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveMemory, EnclaveRng, Host, OmBudget};

/// The Opaque-style engine: a memory substrate, an oblivious-memory
/// budget (72 MB in the paper's evaluation), and a key source.
pub struct OpaqueEngine<M: EnclaveMemory = Host> {
    /// Untrusted memory.
    pub host: M,
    om: OmBudget,
    master: [u8; 32],
    counter: u64,
}

impl OpaqueEngine<Host> {
    /// Creates an engine with the given oblivious-memory budget over a
    /// fresh in-memory [`Host`].
    pub fn new(om_bytes: usize, seed: u64) -> Self {
        Self::with_memory(Host::new(), om_bytes, seed)
    }
}

impl<M: EnclaveMemory> OpaqueEngine<M> {
    /// Creates an engine over a caller-provided memory substrate.
    ///
    /// On a payload-free substrate (e.g. `CountingMemory`) the traces and
    /// access counters of every operator are exact — output shapes here
    /// are functions of public capacities only — but decoded results and
    /// `num_rows` metadata are meaningless (group keys and match flags
    /// read as zeros). Use such substrates for cost modeling only.
    pub fn with_memory(host: M, om_bytes: usize, seed: u64) -> Self {
        let mut rng = EnclaveRng::seed_from_u64(seed);
        let mut master = [0u8; 32];
        rng.fill(&mut master);
        OpaqueEngine { host, om: OmBudget::new(om_bytes), master, counter: 0 }
    }

    fn next_key(&mut self) -> AeadKey {
        self.counter += 1;
        AeadKey(oblidb_crypto::derive_key(
            &self.master,
            format!("opaque:{}", self.counter).as_bytes(),
        ))
    }

    /// The oblivious-memory budget handle.
    pub fn om(&self) -> &OmBudget {
        &self.om
    }

    /// Loads a table from rows.
    pub fn load_table(
        &mut self,
        schema: Schema,
        rows: &[Vec<Value>],
    ) -> Result<FlatTable, DbError> {
        let encoded: Vec<Vec<u8>> =
            rows.iter().map(|r| schema.encode_row(r)).collect::<Result<_, _>>()?;
        let key = self.next_key();
        FlatTable::from_encoded_rows(&mut self.host, key, schema, &encoded, encoded.len() as u64)
    }

    fn sort_chunk_rows(&self, row_len: usize) -> usize {
        (self.om.available() / row_len.max(1)).max(1)
    }

    /// Oblivious SELECT, Opaque style: mark matching rows in a copy, then
    /// obliviously sort matches to the front. Always two full passes plus a
    /// sort — there is no small-result fast path (that gap is what ObliDB's
    /// planner exploits in Figure 7 Q1).
    pub fn select(
        &mut self,
        input: &mut FlatTable,
        pred: &Predicate,
    ) -> Result<FlatTable, DbError> {
        let schema = input.schema().clone();
        let n = input.capacity().max(2).next_power_of_two();
        let key = self.next_key();
        let mut out = FlatTable::create(&mut self.host, key, schema.clone(), n)?;

        // Pass 1: copy with non-matching rows cleared, in batched runs.
        let matches =
            copy_filtered(&mut self.host, input, &mut out, &schema, |b| pred.eval(&schema, b))?;

        // Pass 2: oblivious sort to compact matches to the front (dummies
        // carry the maximal key).
        let chunk = self.sort_chunk_rows(schema.row_len());
        let alloc = self.om.alloc_up_to(chunk * schema.row_len());
        exec::bitonic_sort(
            &mut self.host,
            &mut out,
            n,
            |bytes| if Schema::row_used(bytes) { 0 } else { u128::MAX },
            chunk,
        )?;
        drop(alloc);

        out.set_num_rows(matches);
        out.set_insert_cursor(out.capacity());
        Ok(out)
    }

    /// Plain aggregation: one scan, same as ObliDB (both are optimal here).
    pub fn aggregate(
        &mut self,
        input: &mut FlatTable,
        func: AggFunc,
        col: Option<usize>,
        pred: &Predicate,
    ) -> Result<Value, DbError> {
        exec::aggregate(&mut self.host, input, func, col, pred)
    }

    /// Grouped aggregation, Opaque style (paper §4.2 calls it
    /// "sort-and-filter"): obliviously sort a copy by group key, then one
    /// scan emitting one output block per input row — a real row on group
    /// boundaries, a dummy otherwise. O(N log² N) against ObliDB's O(N).
    pub fn group_aggregate(
        &mut self,
        input: &mut FlatTable,
        group_col: usize,
        func: AggFunc,
        agg_col: Option<usize>,
        pred: &Predicate,
    ) -> Result<FlatTable, DbError> {
        let schema = input.schema().clone();
        let n = input.capacity().max(2).next_power_of_two();
        let group_off = schema.col_offset(group_col);
        let group_w = schema.columns[group_col].dtype.width();

        // Copy with non-matching rows cleared (batched), then sort by
        // group key.
        let copy_key = self.next_key();
        let mut sorted = FlatTable::create(&mut self.host, copy_key, schema.clone(), n)?;
        copy_filtered(&mut self.host, input, &mut sorted, &schema, |b| pred.eval(&schema, b))?;
        let chunk = self.sort_chunk_rows(schema.row_len());
        let alloc = self.om.alloc_up_to(chunk * schema.row_len());
        exec::bitonic_sort(
            &mut self.host,
            &mut sorted,
            n,
            move |bytes| {
                if !Schema::row_used(bytes) {
                    return u128::MAX;
                }
                let mut key = [0u8; 16];
                let take = group_w.min(16);
                key[16 - take..].copy_from_slice(&bytes[group_off..group_off + take]);
                u128::from_be_bytes(key)
            },
            chunk,
        )?;
        drop(alloc);

        // Scan: emit the running group's aggregate when the key changes.
        // One output block per input row, plus one flush block for the
        // final group (a boundary emit can land in block n-1, so the flush
        // needs its own slot), keeps the pattern fixed. Reads and writes
        // stream in batched runs.
        let out_schema = group_output_schema(&schema, group_col, func, agg_col);
        let out_key = self.next_key();
        let mut out = FlatTable::create(&mut self.host, out_key, out_schema.clone(), n + 1)?;
        let out_dummy = out_schema.dummy_row();
        let mut current: Option<(Vec<u8>, Value, oblidb_core::exec::AggState)> = None;
        let mut groups = 0u64;
        let row_len = schema.row_len();
        let chunk = sorted.io_chunk_rows();
        let mut out_buf: Vec<u8> = Vec::with_capacity(chunk * out_schema.row_len());
        let mut start = 0u64;
        while start < n {
            let count = chunk.min((n - start) as usize);
            let in_rows = sorted.read_rows(&mut self.host, start, count)?;
            out_buf.clear();
            for bytes in in_rows.chunks_exact(row_len) {
                let mut emit: Option<Vec<u8>> = None;
                if Schema::row_used(bytes) {
                    let gkey = bytes[group_off..group_off + group_w].to_vec();
                    let gval = schema.decode_col(bytes, group_col);
                    let boundary = current.as_ref().is_none_or(|(k, _, _)| *k != gkey);
                    if boundary {
                        if let Some((_, v, state)) = current.take() {
                            emit = Some(out_schema.encode_row(&[v, state.finish(func)])?);
                            groups += 1;
                        }
                        current = Some((gkey, gval, oblidb_core::exec::AggState::new()));
                    }
                    let state = &mut current.as_mut().expect("set above").2;
                    match agg_col {
                        Some(c) => state.add(&schema.decode_col(bytes, c)),
                        None => state.add(&Value::Int(1)),
                    }
                }
                match emit {
                    Some(row) => out_buf.extend_from_slice(&row),
                    None => out_buf.extend_from_slice(&out_dummy),
                }
            }
            out.write_rows(&mut self.host, start, &out_buf)?;
            start += count as u64;
        }
        // Flush the last group into the extra block. Written
        // unconditionally (dummy when no group is open) so the transcript
        // is always exactly n + 1 output writes.
        let flush = match current.take() {
            Some((_, v, state)) => {
                groups += 1;
                out_schema.encode_row(&[v, state.finish(func)])?
            }
            None => out_dummy.clone(),
        };
        out.write_row(&mut self.host, n, &flush)?;
        sorted.free(&mut self.host)?;
        out.set_num_rows(groups);
        out.set_insert_cursor(out.capacity());
        Ok(out)
    }

    /// Opaque's join: the sort-merge join of paper §4.3 (ObliDB re-uses
    /// this algorithm as its "Opaque join").
    pub fn join(
        &mut self,
        t1: &mut FlatTable,
        c1: usize,
        t2: &mut FlatTable,
        c2: usize,
    ) -> Result<FlatTable, DbError> {
        let key = self.next_key();
        exec::sort_merge_join(
            &mut self.host,
            &self.om,
            t1,
            c1,
            t2,
            c2,
            key,
            SortMergeVariant::Opaque,
        )
    }
}

/// Batched filtered copy: every block of `input` is read and every block
/// of `out` written (matching rows verbatim, others as dummies), in
/// chunked runs of one crossing per direction. Returns the match count.
fn copy_filtered<M: EnclaveMemory>(
    host: &mut M,
    input: &mut FlatTable,
    out: &mut FlatTable,
    schema: &Schema,
    mut matches: impl FnMut(&[u8]) -> bool,
) -> Result<u64, DbError> {
    let dummy = schema.dummy_row();
    let row_len = schema.row_len();
    let chunk = input.io_chunk_rows();
    let cap = input.capacity();
    let mut buf: Vec<u8> = Vec::with_capacity(chunk * row_len);
    let mut kept = 0u64;
    let mut start = 0u64;
    while start < cap {
        let n = chunk.min((cap - start) as usize);
        buf.clear();
        buf.extend_from_slice(input.read_rows(host, start, n)?);
        for bytes in buf.chunks_exact_mut(row_len) {
            if Schema::row_used(bytes) && matches(bytes) {
                kept += 1;
            } else {
                bytes.copy_from_slice(&dummy);
            }
        }
        out.write_rows(host, start, &buf)?;
        start += n as u64;
    }
    Ok(kept)
}

fn group_output_schema(
    schema: &Schema,
    group_col: usize,
    func: AggFunc,
    agg_col: Option<usize>,
) -> Schema {
    use oblidb_core::exec::AggState;
    use oblidb_core::types::{Column, DataType};
    let agg_input = agg_col.map_or(DataType::Int, |c| schema.columns[c].dtype);
    Schema::new(vec![
        Column::new(schema.columns[group_col].name.clone(), schema.columns[group_col].dtype),
        Column::new("agg", AggState::output_type(func, agg_input)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_core::predicate::CmpOp;
    use oblidb_core::types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("g", DataType::Int)])
    }

    fn rows(n: i64) -> Vec<Vec<Value>> {
        (0..n).map(|i| vec![Value::Int(i), Value::Int(i % 4)]).collect()
    }

    #[test]
    fn select_compacts_matches() {
        let mut eng = OpaqueEngine::new(1 << 20, 7);
        let mut t = eng.load_table(schema(), &rows(20)).unwrap();
        let pred = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(5)).unwrap();
        let mut out = eng.select(&mut t, &pred).unwrap();
        assert_eq!(out.num_rows(), 5);
        let got = out.collect_rows(&mut eng.host).unwrap();
        let mut ids: Vec<i64> = got.iter().map(|r| r[0].as_int().unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        // Matches are compacted to the front of the output structure.
        for i in 0..5 {
            let b = out.read_row(&mut eng.host, i).unwrap();
            assert!(Schema::row_used(&b));
        }
    }

    #[test]
    fn select_trace_is_size_determined() {
        let mut traces = Vec::new();
        for cutoff in [2i64, 12] {
            let mut eng = OpaqueEngine::new(1 << 16, 7);
            let mut t = eng.load_table(schema(), &rows(16)).unwrap();
            let pred = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(cutoff)).unwrap();
            eng.host.start_trace();
            eng.select(&mut t, &pred).unwrap();
            traces.push(eng.host.take_trace());
        }
        assert_eq!(traces[0], traces[1]);
    }

    #[test]
    fn group_aggregate_matches_plain() {
        let mut eng = OpaqueEngine::new(1 << 20, 7);
        let mut t = eng.load_table(schema(), &rows(20)).unwrap();
        let mut out =
            eng.group_aggregate(&mut t, 1, AggFunc::Sum, Some(0), &Predicate::True).unwrap();
        let mut got = out.collect_rows(&mut eng.host).unwrap();
        got.sort_by_key(|r| r[0].as_int().unwrap());
        // Groups 0..4 of ids 0..20 step 4: sums 40,45,50,55.
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], vec![Value::Int(0), Value::Int(40)]);
        assert_eq!(got[1], vec![Value::Int(1), Value::Int(45)]);
        assert_eq!(got[3], vec![Value::Int(3), Value::Int(55)]);
    }

    #[test]
    fn group_aggregate_keeps_group_emitted_in_final_block() {
        // Regression: with the table full to its power-of-two capacity and
        // the last sorted row opening a new group, the final-group flush
        // must not overwrite the group emitted at the last loop block.
        let mut eng = OpaqueEngine::new(1 << 20, 7);
        let rows: Vec<Vec<Value>> =
            (0..16).map(|i| vec![Value::Int(i), Value::Int(i64::from(i >= 15))]).collect();
        let mut t = eng.load_table(schema(), &rows).unwrap();
        let mut out =
            eng.group_aggregate(&mut t, 1, AggFunc::Count, None, &Predicate::True).unwrap();
        let mut got = out.collect_rows(&mut eng.host).unwrap();
        got.sort_by_key(|r| r[0].as_int().unwrap());
        assert_eq!(
            got,
            vec![vec![Value::Int(0), Value::Int(15)], vec![Value::Int(1), Value::Int(1)]]
        );
    }

    #[test]
    fn join_works() {
        let mut eng = OpaqueEngine::new(1 << 20, 7);
        let s1 =
            Schema::new(vec![Column::new("k", DataType::Int), Column::new("a", DataType::Int)]);
        let s2 =
            Schema::new(vec![Column::new("k", DataType::Int), Column::new("b", DataType::Int)]);
        let r1: Vec<Vec<Value>> = (0..6).map(|i| vec![Value::Int(i), Value::Int(i)]).collect();
        let r2: Vec<Vec<Value>> = (0..12).map(|i| vec![Value::Int(i % 6), Value::Int(i)]).collect();
        let mut t1 = eng.load_table(s1, &r1).unwrap();
        let mut t2 = eng.load_table(s2, &r2).unwrap();
        let out = eng.join(&mut t1, 0, &mut t2, 0).unwrap();
        assert_eq!(out.num_rows(), 12);
    }

    #[test]
    fn smaller_om_means_more_accesses() {
        let mut counts = Vec::new();
        for om in [1usize << 10, 1 << 20] {
            let mut eng = OpaqueEngine::new(om, 7);
            let mut t = eng.load_table(schema(), &rows(64)).unwrap();
            let pred = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(5)).unwrap();
            eng.host.reset_stats();
            eng.select(&mut t, &pred).unwrap();
            counts.push(eng.host.stats().total_accesses());
        }
        assert!(counts[0] > counts[1], "{counts:?}");
    }
}
