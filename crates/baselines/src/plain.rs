//! A conventional in-memory engine with **no security guarantees** — the
//! stand-in for Spark SQL in Figure 7 (see DESIGN.md §2).
//!
//! Data lives in plain `Vec`s, predicates short-circuit, joins use an
//! ordinary hash map: every data-dependent branch the oblivious engine
//! must avoid, this one takes.

use oblidb_core::exec::AggFunc;
use oblidb_core::predicate::Predicate;
use oblidb_core::types::{Row, Schema, Value};
use std::collections::HashMap;

/// A plaintext table.
pub struct PlainTable {
    /// Schema (shared with the oblivious engines for fair comparisons).
    pub schema: Schema,
    /// Decoded rows.
    pub rows: Vec<Row>,
}

impl PlainTable {
    /// Builds a table from rows.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        PlainTable { schema, rows }
    }

    fn encode(&self, row: &Row) -> Vec<u8> {
        self.schema.encode_row(row).expect("row matches schema")
    }

    /// Filter.
    pub fn select(&self, pred: &Predicate) -> Vec<Row> {
        self.rows.iter().filter(|r| pred.eval(&self.schema, &self.encode(r))).cloned().collect()
    }

    /// Aggregate with optional predicate.
    pub fn aggregate(&self, func: AggFunc, col: Option<usize>, pred: &Predicate) -> Value {
        let mut state = oblidb_core::exec::AggState::new();
        for r in &self.rows {
            if pred.eval(&self.schema, &self.encode(r)) {
                match col {
                    Some(c) => state.add(&r[c]),
                    None => state.add(&Value::Int(1)),
                }
            }
        }
        state.finish(func)
    }

    /// Grouped aggregation; output sorted by group for determinism.
    pub fn group_aggregate(
        &self,
        group_col: usize,
        func: AggFunc,
        agg_col: Option<usize>,
        pred: &Predicate,
    ) -> Vec<(Value, Value)> {
        let mut groups: HashMap<Vec<u8>, oblidb_core::exec::AggState> = HashMap::new();
        let mut reps: HashMap<Vec<u8>, Value> = HashMap::new();
        for r in &self.rows {
            let bytes = self.encode(r);
            if pred.eval(&self.schema, &bytes) {
                let off = self.schema.col_offset(group_col);
                let w = self.schema.columns[group_col].dtype.width();
                let key = bytes[off..off + w].to_vec();
                reps.entry(key.clone()).or_insert_with(|| r[group_col].clone());
                let state = groups.entry(key).or_default();
                match agg_col {
                    Some(c) => state.add(&r[c]),
                    None => state.add(&Value::Int(1)),
                }
            }
        }
        let mut out: Vec<(Vec<u8>, (Value, Value))> = groups
            .into_iter()
            .map(|(k, s)| {
                let rep = reps[&k].clone();
                (k, (rep, s.finish(func)))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out.into_iter().map(|(_, v)| v).collect()
    }

    /// Hash join (equi-join on `c1 = c2`).
    pub fn join(&self, c1: usize, other: &PlainTable, c2: usize) -> Vec<Row> {
        let mut build: HashMap<Vec<u8>, Vec<&Row>> = HashMap::new();
        for r in &self.rows {
            let bytes = self.encode(r);
            let off = self.schema.col_offset(c1);
            let w = self.schema.columns[c1].dtype.width();
            build.entry(bytes[off..off + w].to_vec()).or_default().push(r);
        }
        let mut out = Vec::new();
        for r2 in &other.rows {
            let bytes = other.encode(r2);
            let off = other.schema.col_offset(c2);
            let w = other.schema.columns[c2].dtype.width();
            if let Some(matches) = build.get(&bytes[off..off + w]) {
                for r1 in matches {
                    let mut joined: Row = (*r1).clone();
                    joined.extend(r2.iter().cloned());
                    out.push(joined);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_core::predicate::CmpOp;
    use oblidb_core::types::{Column, DataType};

    fn table() -> PlainTable {
        let schema =
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)]);
        let rows = (0..10i64).map(|i| vec![Value::Int(i), Value::Int(i % 3)]).collect();
        PlainTable::new(schema, rows)
    }

    #[test]
    fn select_filters() {
        let t = table();
        let p = Predicate::cmp(&t.schema, "id", CmpOp::Lt, Value::Int(4)).unwrap();
        assert_eq!(t.select(&p).len(), 4);
    }

    #[test]
    fn aggregate_and_group() {
        let t = table();
        assert_eq!(t.aggregate(AggFunc::Sum, Some(0), &Predicate::True), Value::Int(45));
        let groups = t.group_aggregate(1, AggFunc::Count, None, &Predicate::True);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (Value::Int(0), Value::Int(4)));
    }

    #[test]
    fn join_matches_nested_loop() {
        let t1 = table();
        let t2 = table();
        // join on v: v-groups have sizes 4, 3, 3.
        let out = t1.join(1, &t2, 1);
        assert_eq!(out.len(), 4 * 4 + 3 * 3 + 3 * 3);
    }
}
