//! Micro-benchmarks (criterion-style, self-hosted harness) for the oblivious B+ tree: padded point-op
//! costs vs table size.

use oblidb_bench::harness::{BenchmarkId, Criterion};
use oblidb_bench::{criterion_group, criterion_main};
use oblidb_btree::ObTree;
use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveRng, Host, OmBudget};
use oblidb_oram::PosMapKind;

fn build(n: u64) -> (Host, ObTree) {
    let mut host = Host::new();
    let om = OmBudget::new(64 * 1024 * 1024);
    let items: Vec<(u128, Vec<u8>)> = (0..n).map(|i| (i as u128, vec![0u8; 64])).collect();
    let tree = ObTree::bulk_load(
        &mut host,
        AeadKey([1u8; 32]),
        &items,
        n + 1024,
        64,
        8,
        PosMapKind::Direct,
        &om,
        EnclaveRng::seed_from_u64(1),
    )
    .unwrap();
    (host, tree)
}

fn bench_point_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    for n in [1_000u64, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::new("get", n), &n, |b, &n| {
            let (mut host, mut tree) = build(n);
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 101) % n;
                std::hint::black_box(tree.get(&mut host, i as u128).unwrap());
            });
        });
    }
    group.bench_function("insert_delete_10k", |b| {
        let (mut host, mut tree) = build(10_000);
        let mut k = 1_000_000u128;
        b.iter(|| {
            k += 1;
            tree.insert(&mut host, k, &[1u8; 64]).unwrap();
            tree.delete(&mut host, k).unwrap();
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_point_ops
}
criterion_main!(benches);
