//! Micro-benchmarks (criterion-style, self-hosted harness) for the crypto substrate: the per-block
//! sealing costs that dominate every oblivious operator.

use oblidb_bench::harness::{BenchmarkId, Criterion, Throughput};
use oblidb_bench::{criterion_group, criterion_main};
use oblidb_crypto::aead::{open, seal, AeadKey, Nonce};
use oblidb_crypto::{sha256, SipHash24};

fn bench_aead(c: &mut Criterion) {
    let mut group = c.benchmark_group("aead");
    let key = AeadKey([7u8; 32]);
    for size in [64usize, 256, 1024, 4096] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &size, |b, &size| {
            let mut buf = vec![0xABu8; size];
            let mut ctr = 0u64;
            b.iter(|| {
                ctr += 1;
                let nonce = Nonce::from_parts(0, ctr);
                std::hint::black_box(seal(&key, &nonce, b"aad", &mut buf));
            });
        });
        group.bench_with_input(BenchmarkId::new("seal+open", size), &size, |b, &size| {
            let mut ctr = 0u64;
            b.iter(|| {
                ctr += 1;
                let mut buf = vec![0xABu8; size];
                let nonce = Nonce::from_parts(0, ctr);
                let tag = seal(&key, &nonce, b"aad", &mut buf);
                open(&key, &nonce, b"aad", &mut buf, &tag).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashing");
    let data = vec![0x42u8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha256_1k", |b| b.iter(|| std::hint::black_box(sha256(&data))));
    let sip = SipHash24::new(1, 2);
    group.bench_function("siphash_u64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(sip.hash_u64(i))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_aead, bench_hashing
}
criterion_main!(benches);
