//! Micro-benchmarks (criterion-style, self-hosted harness) for the crypto substrate: the per-block
//! sealing costs that dominate every oblivious operator.

use oblidb_bench::harness::{BenchmarkId, Criterion, Throughput};
use oblidb_bench::{criterion_group, criterion_main};
use oblidb_crypto::aead::{open, seal, AeadKey, Nonce};
use oblidb_crypto::{sha256, SipHash24};
use oblidb_enclave::Host;
use oblidb_storage::SealedRegion;

fn bench_aead(c: &mut Criterion) {
    let mut group = c.benchmark_group("aead");
    let key = AeadKey([7u8; 32]);
    for size in [64usize, 256, 1024, 4096] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &size, |b, &size| {
            let mut buf = vec![0xABu8; size];
            let mut ctr = 0u64;
            b.iter(|| {
                ctr += 1;
                let nonce = Nonce::from_parts(0, ctr);
                std::hint::black_box(seal(&key, &nonce, b"aad", &mut buf));
            });
        });
        group.bench_with_input(BenchmarkId::new("seal+open", size), &size, |b, &size| {
            let mut ctr = 0u64;
            b.iter(|| {
                ctr += 1;
                let mut buf = vec![0xABu8; size];
                let nonce = Nonce::from_parts(0, ctr);
                let tag = seal(&key, &nonce, b"aad", &mut buf);
                open(&key, &nonce, b"aad", &mut buf, &tag).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashing");
    let data = vec![0x42u8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha256_1k", |b| b.iter(|| std::hint::black_box(sha256(&data))));
    let sip = SipHash24::new(1, 2);
    group.bench_function("siphash_u64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(sip.hash_u64(i))
        })
    });
    group.finish();
}

/// Per-block vs. batched sealed I/O through the whole enclave boundary
/// (SealedRegion over Host): the amortization every operator now rides on.
/// The host prices each transition at ~an SGX OCALL (see
/// `bin/batch_io.rs` for the calibration, and for the free-crossing
/// baseline where the two paths tie at pure AEAD cost).
fn bench_sealed_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("sealed_io (sgx-priced crossings)");
    const BLOCKS: usize = 128;
    const SGX_CROSSING_SPINS: u32 = 250;
    for size in [64usize, 1024] {
        group.throughput(Throughput::Bytes((BLOCKS * size) as u64));
        let mut host = Host::new();
        host.set_crossing_cost(SGX_CROSSING_SPINS);
        let mut region = SealedRegion::create(&mut host, AeadKey([7u8; 32]), BLOCKS, size).unwrap();
        let payloads = vec![0xCDu8; BLOCKS * size];
        group.bench_with_input(BenchmarkId::new("write_per_block", size), &size, |b, &size| {
            b.iter(|| {
                for i in 0..BLOCKS {
                    region.write(&mut host, i as u64, &payloads[i * size..(i + 1) * size]).unwrap();
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("write_batched", size), &size, |b, _| {
            b.iter(|| region.write_batch(&mut host, 0, &payloads).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("read_per_block", size), &size, |b, _| {
            b.iter(|| {
                for i in 0..BLOCKS {
                    std::hint::black_box(region.read(&mut host, i as u64).unwrap());
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("read_batched", size), &size, |b, _| {
            b.iter(|| {
                let payloads = region.read_batch(&mut host, 0, BLOCKS).unwrap();
                std::hint::black_box(payloads.len());
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_aead, bench_hashing, bench_sealed_io
}
criterion_main!(benches);
