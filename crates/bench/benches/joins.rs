//! Micro-benchmarks (criterion-style, self-hosted harness) for the three oblivious join algorithms.

use oblidb_bench::harness::{BenchmarkId, Criterion};
use oblidb_bench::{criterion_group, criterion_main};
use oblidb_core::exec::{hash_join, sort_merge_join, SortMergeVariant};
use oblidb_core::table::FlatTable;
use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{Host, OmBudget};
use oblidb_workloads::synthetic;

fn load(host: &mut Host, rows: &[Vec<oblidb_core::Value>], seed: u8) -> FlatTable {
    let schema = synthetic::schema(8);
    let encoded: Vec<Vec<u8>> = rows.iter().map(|r| schema.encode_row(r).unwrap()).collect();
    FlatTable::from_encoded_rows(host, AeadKey([seed; 32]), schema, &encoded, rows.len() as u64)
        .unwrap()
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("fk_join_1k_x_2k");
    let (p, f) = synthetic::fk_join_tables(1_000, 2_000, 3);
    for (name, om_rows) in [("om500", 500usize), ("om50", 50)] {
        group.bench_with_input(BenchmarkId::new("hash", name), &om_rows, |b, &om_rows| {
            let mut host = Host::new();
            let mut t1 = load(&mut host, &p, 1);
            let mut t2 = load(&mut host, &f, 2);
            let om = OmBudget::new(om_rows * t1.row_len());
            b.iter(|| {
                let out =
                    hash_join(&mut host, &om, &mut t1, 0, &mut t2, 0, AeadKey([9u8; 32])).unwrap();
                out.free(&mut host).unwrap();
            });
        });
        group.bench_with_input(BenchmarkId::new("opaque", name), &om_rows, |b, &om_rows| {
            let mut host = Host::new();
            let mut t1 = load(&mut host, &p, 1);
            let mut t2 = load(&mut host, &f, 2);
            let om = OmBudget::new(om_rows * t1.row_len());
            b.iter(|| {
                let out = sort_merge_join(
                    &mut host,
                    &om,
                    &mut t1,
                    0,
                    &mut t2,
                    0,
                    AeadKey([9u8; 32]),
                    SortMergeVariant::Opaque,
                )
                .unwrap();
                out.free(&mut host).unwrap();
            });
        });
    }
    group.bench_function("zero_om", |b| {
        let mut host = Host::new();
        let mut t1 = load(&mut host, &p, 1);
        let mut t2 = load(&mut host, &f, 2);
        let om = OmBudget::new(0);
        b.iter(|| {
            let out = sort_merge_join(
                &mut host,
                &om,
                &mut t1,
                0,
                &mut t2,
                0,
                AeadKey([9u8; 32]),
                SortMergeVariant::ZeroOm { scratch_rows: 64 },
            )
            .unwrap();
            out.free(&mut host).unwrap();
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_joins
}
criterion_main!(benches);
