//! Micro-benchmarks (criterion-style, self-hosted harness) for the oblivious SELECT algorithms and
//! aggregation, at fixed size and selectivity.

use oblidb_bench::harness::{BenchmarkId, Criterion};
use oblidb_bench::{criterion_group, criterion_main};
use oblidb_core::planner::SelectAlgo;
use oblidb_core::{Database, DbConfig, StorageMethod};
use oblidb_workloads::synthetic;

const N: usize = 4_096;

fn db() -> Database {
    let mut db = Database::new(DbConfig::default());
    let rows = synthetic::table(N, 8, 5);
    db.create_table_with_rows(
        "t",
        synthetic::schema(8),
        StorageMethod::Flat,
        None,
        &rows,
        N as u64,
    )
    .unwrap();
    db
}

fn bench_selects(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_5pct");
    let sql = format!("SELECT * FROM t WHERE id < {}", N / 20);
    for algo in [
        SelectAlgo::Small,
        SelectAlgo::Large,
        SelectAlgo::Continuous,
        SelectAlgo::Hash,
        SelectAlgo::Naive,
    ] {
        group.bench_with_input(BenchmarkId::new("algo", format!("{algo:?}")), &algo, |b, &algo| {
            let mut db = db();
            db.config_mut().planner.force_select = Some(algo);
            b.iter(|| std::hint::black_box(db.execute(&sql).unwrap()));
        });
    }
    group.finish();
}

fn bench_aggregates(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    group.bench_function("fused_sum", |b| {
        let mut db = db();
        b.iter(|| db.execute("SELECT SUM(val) FROM t WHERE id < 2000").unwrap());
    });
    group.bench_function("group_by", |b| {
        let mut db = db();
        b.iter(|| db.execute("SELECT val, COUNT(*) FROM t GROUP BY val").unwrap());
    });
    group.finish();
}

/// The capacity-loop scan every operator is built from: per-block row
/// reads vs the batched streaming path, over an SGX-priced boundary.
fn bench_scan_batching(c: &mut Criterion) {
    use oblidb_core::table::FlatTable;
    use oblidb_core::types::Schema;
    use oblidb_crypto::aead::AeadKey;
    use oblidb_enclave::Host;

    let mut group = c.benchmark_group("scan_io (sgx-priced crossings)");
    let schema = synthetic::schema(8);
    let rows = synthetic::table(N, 8, 5);
    let encoded: Vec<Vec<u8>> = rows.iter().map(|r| schema.encode_row(r).unwrap()).collect();
    let mut host = Host::new();
    host.set_crossing_cost(250);
    let mut table =
        FlatTable::from_encoded_rows(&mut host, AeadKey([1u8; 32]), schema, &encoded, N as u64)
            .unwrap();
    group.bench_function("per_block", |b| {
        b.iter(|| {
            let mut used = 0u64;
            for i in 0..table.capacity() {
                let bytes = table.read_row(&mut host, i).unwrap();
                used += u64::from(Schema::row_used(&bytes));
            }
            std::hint::black_box(used);
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut used = 0u64;
            table
                .for_each_row(&mut host, |_, bytes| used += u64::from(Schema::row_used(bytes)))
                .unwrap();
            std::hint::black_box(used);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_selects, bench_aggregates, bench_scan_batching
}
criterion_main!(benches);
