//! Micro-benchmarks (criterion-style, self-hosted harness) for the oblivious SELECT algorithms and
//! aggregation, at fixed size and selectivity.

use oblidb_bench::harness::{BenchmarkId, Criterion};
use oblidb_bench::{criterion_group, criterion_main};
use oblidb_core::planner::SelectAlgo;
use oblidb_core::{Database, DbConfig, StorageMethod};
use oblidb_workloads::synthetic;

const N: usize = 4_096;

fn db() -> Database {
    let mut db = Database::new(DbConfig::default());
    let rows = synthetic::table(N, 8, 5);
    db.create_table_with_rows(
        "t",
        synthetic::schema(8),
        StorageMethod::Flat,
        None,
        &rows,
        N as u64,
    )
    .unwrap();
    db
}

fn bench_selects(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_5pct");
    let sql = format!("SELECT * FROM t WHERE id < {}", N / 20);
    for algo in [
        SelectAlgo::Small,
        SelectAlgo::Large,
        SelectAlgo::Continuous,
        SelectAlgo::Hash,
        SelectAlgo::Naive,
    ] {
        group.bench_with_input(BenchmarkId::new("algo", format!("{algo:?}")), &algo, |b, &algo| {
            let mut db = db();
            db.config_mut().planner.force_select = Some(algo);
            b.iter(|| std::hint::black_box(db.execute(&sql).unwrap()));
        });
    }
    group.finish();
}

fn bench_aggregates(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    group.bench_function("fused_sum", |b| {
        let mut db = db();
        b.iter(|| db.execute("SELECT SUM(val) FROM t WHERE id < 2000").unwrap());
    });
    group.bench_function("group_by", |b| {
        let mut db = db();
        b.iter(|| db.execute("SELECT val, COUNT(*) FROM t GROUP BY val").unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_selects, bench_aggregates
}
criterion_main!(benches);
