//! Micro-benchmarks (criterion-style, self-hosted harness) for Path ORAM: per-access cost vs capacity,
//! direct vs recursive position maps.

use oblidb_bench::harness::{BenchmarkId, Criterion};
use oblidb_bench::{criterion_group, criterion_main};
use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveRng, Host, OmBudget};
use oblidb_oram::{PathOram, PosMapKind};

fn bench_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("oram_access");
    for capacity in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("direct_read", capacity),
            &capacity,
            |b, &capacity| {
                let mut host = Host::new();
                let om = OmBudget::new(64 * 1024 * 1024);
                let mut oram = PathOram::new(
                    &mut host,
                    AeadKey([1u8; 32]),
                    capacity,
                    64,
                    PosMapKind::Direct,
                    &om,
                    EnclaveRng::seed_from_u64(1),
                )
                .unwrap();
                let mut i = 0u64;
                b.iter(|| {
                    i = (i + 7919) % capacity;
                    std::hint::black_box(oram.read(&mut host, i).unwrap());
                });
            },
        );
    }
    group.bench_function("recursive_read_10k", |b| {
        let mut host = Host::new();
        let om = OmBudget::new(64 * 1024 * 1024);
        let mut oram = PathOram::new(
            &mut host,
            AeadKey([1u8; 32]),
            10_000,
            64,
            PosMapKind::Recursive { entries_per_block: 256 },
            &om,
            EnclaveRng::seed_from_u64(1),
        )
        .unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            std::hint::black_box(oram.read(&mut host, i).unwrap());
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_access
}
criterion_main!(benches);
