//! Batched vs. per-block sealed I/O, recorded for the perf trajectory.
//!
//! Measures the full enclave-boundary cost (AEAD + crossing) of moving a
//! run of sealed blocks one block at a time versus in batched calls, at
//! the block geometries the engine actually uses (row blocks, ORAM
//! buckets, 4 KB vORAM nodes), plus an end-to-end operator scan. Emits
//! `BENCH_batch_io.json` next to the working directory so successive PRs
//! can diff the speedup.

use oblidb_bench::report::{write_batch_json, BatchComparison, Report};
use oblidb_bench::timing::{fmt_duration, time_mean};
use oblidb_core::predicate::Predicate;
use oblidb_core::table::FlatTable;
use oblidb_core::types::{Column, DataType, Schema, Value};
use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::Host;
use oblidb_storage::SealedRegion;
use std::time::Duration;

fn iters() -> usize {
    if oblidb_bench::harness::smoke_mode() {
        1
    } else {
        30
    }
}

/// Spin count modeling one SGX enclave transition: ~8k cycles / ~2.7 µs
/// (Intel's published OCALL cost), at the ~11 ns-per-`spin_loop` rate
/// measured on the reference container. `0` prices the boundary at zero,
/// isolating pure AEAD/copy costs.
const SGX_CROSSING_SPINS: u32 = 250;

/// Per-block vs. batched read+write of `blocks` sealed blocks over a host
/// whose boundary transitions cost `spins` spin iterations each.
fn storage_case(name: &str, blocks: usize, payload: usize, spins: u32) -> BatchComparison {
    let mut host = Host::new();
    host.set_crossing_cost(spins);
    let mut region = SealedRegion::create(&mut host, AeadKey([7u8; 32]), blocks, payload).unwrap();
    let payloads = vec![0xA5u8; blocks * payload];

    let per_block = time_mean(iters(), || {
        for i in 0..blocks {
            region.write(&mut host, i as u64, &payloads[i * payload..(i + 1) * payload]).unwrap();
        }
        for i in 0..blocks {
            std::hint::black_box(region.read(&mut host, i as u64).unwrap());
        }
    });
    let batched = time_mean(iters(), || {
        region.write_batch(&mut host, 0, &payloads).unwrap();
        std::hint::black_box(region.read_batch(&mut host, 0, blocks).unwrap());
    });
    BatchComparison {
        name: name.to_string(),
        blocks,
        per_block_s: per_block.as_secs_f64(),
        batched_s: batched.as_secs_f64(),
    }
}

/// End-to-end operator check: a full oblivious table scan (aggregate)
/// before/after is not separable here, so compare the raw row loop the
/// pre-batching operators used against the batched streaming the current
/// ones use.
fn scan_case(rows: usize, spins: u32) -> BatchComparison {
    let schema =
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)]);
    let mut host = Host::new();
    host.set_crossing_cost(spins);
    let encoded: Vec<Vec<u8>> = (0..rows as i64)
        .map(|i| schema.encode_row(&[Value::Int(i), Value::Int(i * 3)]).unwrap())
        .collect();
    let mut table =
        FlatTable::from_encoded_rows(&mut host, AeadKey([1u8; 32]), schema, &encoded, rows as u64)
            .unwrap();
    let pred = Predicate::True;

    let per_block = time_mean(iters(), || {
        let mut n = 0u64;
        for i in 0..table.capacity() {
            let bytes = table.read_row(&mut host, i).unwrap();
            if oblidb_core::types::Schema::row_used(&bytes) && pred.eval(table.schema(), &bytes) {
                n += 1;
            }
        }
        std::hint::black_box(n);
    });
    let batched = time_mean(iters(), || {
        let mut n = 0u64;
        let schema = table.schema().clone();
        table
            .for_each_row(&mut host, |_, bytes| {
                if oblidb_core::types::Schema::row_used(bytes) && pred.eval(&schema, bytes) {
                    n += 1;
                }
            })
            .unwrap();
        std::hint::black_box(n);
    });
    BatchComparison {
        name: format!(
            "table_scan/{rows}rows/{}",
            if spins == 0 { "free-crossing" } else { "sgx-crossing" }
        ),
        blocks: rows,
        per_block_s: per_block.as_secs_f64(),
        batched_s: batched.as_secs_f64(),
    }
}

fn main() {
    let results = vec![
        storage_case("rw/64B/free-crossing", 1024, 64, 0),
        storage_case("rw/256B/free-crossing", 1024, 256, 0),
        storage_case("rw/64B/sgx-crossing", 1024, 64, SGX_CROSSING_SPINS),
        storage_case("rw/256B/sgx-crossing", 1024, 256, SGX_CROSSING_SPINS),
        storage_case("rw/4096B/sgx-crossing", 256, 4096, SGX_CROSSING_SPINS),
        scan_case(4096, 0),
        scan_case(4096, SGX_CROSSING_SPINS),
    ];

    let mut report = Report::new(
        "Batched sealed-block I/O (per-block loop vs batched crossings)",
        &["case", "blocks", "per-block", "batched", "speedup"],
    );
    for r in &results {
        report.row(&[
            r.name.clone(),
            r.blocks.to_string(),
            fmt_duration(Duration::from_secs_f64(r.per_block_s)),
            fmt_duration(Duration::from_secs_f64(r.batched_s)),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    report.print();

    match write_batch_json(std::path::Path::new("."), "batch_io", &results) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_batch_io.json: {e}"),
    }
}
