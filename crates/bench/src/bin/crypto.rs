//! Crypto hot-path throughput: scalar vs. SIMD batch AEAD, recorded for
//! the perf trajectory.
//!
//! Measures `seal_batch`/`open_batch` MiB/s over 1 KiB blocks at batch
//! sizes 1/16/256 under each forced [`oblidb_crypto::simd::Backend`]
//! (scalar always, plus the detected best when it differs), and an
//! end-to-end sealed-region scan (`read_batch` through the storage
//! stack). Emits `BENCH_crypto.json` in the working directory so
//! successive PRs can diff the speedup; the scalar rows double as the
//! recorded fallback numbers for non-x86_64 targets.
//!
//! The ISSUE target is ≥ 2× seal+open over scalar at 256-block batches;
//! a miss prints a warning rather than failing, so the bench stays
//! usable on hardware without wide vectors.

use oblidb_bench::report::{write_crypto_json, CryptoThroughput, Report};
use oblidb_bench::timing::time_mean;
use oblidb_crypto::simd::{self, Backend};
use oblidb_crypto::{open_batch, seal_batch, AeadKey, Nonce, TAG_LEN};
use oblidb_enclave::Host;
use oblidb_storage::SealedRegion;

/// Payload bytes per sealed block — the 1 KiB geometry the issue names.
const BLOCK_BYTES: usize = 1024;

/// Batch sizes: a lone block (no batching benefit possible), a cache-warm
/// run, and a full region sweep.
const BATCHES: [usize; 3] = [1, 16, 256];

/// Iterations sized so each case moves ~8 MiB (one call in smoke mode).
fn iters(total_bytes: usize) -> usize {
    if oblidb_bench::harness::smoke_mode() {
        1
    } else {
        (8 * 1024 * 1024 / total_bytes).max(8)
    }
}

fn mib_s(total_bytes: usize, mean_s: f64) -> f64 {
    total_bytes as f64 / mean_s.max(f64::MIN_POSITIVE) / (1024.0 * 1024.0)
}

/// Raw batch-AEAD seal and open throughput at one batch size under the
/// currently forced backend. Returns (seal MiB/s, open MiB/s).
fn aead_case(batch: usize) -> (f64, f64) {
    let key = AeadKey([0x42u8; 32]);
    let nonces: Vec<Nonce> = (0..batch).map(|i| Nonce::from_parts(7, i as u64)).collect();
    let aads: Vec<[u8; 16]> = (0..batch).map(|i| [(i & 0xFF) as u8; 16]).collect();
    let aad_refs: Vec<&[u8]> = aads.iter().map(|a| a.as_slice()).collect();
    let mut data = vec![0xA5u8; batch * BLOCK_BYTES];
    let mut tags = vec![[0u8; TAG_LEN]; batch];
    let total = batch * BLOCK_BYTES;

    let seal_mean = time_mean(iters(total), || {
        let mut blocks: Vec<&mut [u8]> = data.chunks_exact_mut(BLOCK_BYTES).collect();
        seal_batch(&key, &nonces, &aad_refs, &mut blocks, &mut tags);
        std::hint::black_box(&tags);
    });

    // Open needs valid ciphertext every iteration, so each pass restores
    // the sealed bytes first; the memcpy is noise next to the AEAD work.
    let sealed = data.clone();
    let open_mean = time_mean(iters(total), || {
        data.copy_from_slice(&sealed);
        let mut blocks: Vec<&mut [u8]> = data.chunks_exact_mut(BLOCK_BYTES).collect();
        open_batch(&key, &nonces, &aad_refs, &mut blocks, &tags).expect("tags were just sealed");
        std::hint::black_box(&data);
    });
    (mib_s(total, seal_mean.as_secs_f64()), mib_s(total, open_mean.as_secs_f64()))
}

/// End-to-end scan: `read_batch` of a whole sealed region through the
/// storage stack (nonce parse + batch open + plaintext copy-out).
fn scan_case(blocks: usize) -> f64 {
    let mut host = Host::new();
    let mut region =
        SealedRegion::create(&mut host, AeadKey([9u8; 32]), blocks, BLOCK_BYTES).unwrap();
    let payloads = vec![0x3Cu8; blocks * BLOCK_BYTES];
    region.write_batch(&mut host, 0, &payloads).unwrap();
    let total = blocks * BLOCK_BYTES;
    let mean = time_mean(iters(total), || {
        std::hint::black_box(region.read_batch(&mut host, 0, blocks).unwrap());
    });
    mib_s(total, mean.as_secs_f64())
}

fn main() {
    let detected = simd::detected();
    let mut backends = vec![Backend::Scalar];
    if detected != Backend::Scalar {
        backends.push(detected);
    }

    let mut results: Vec<CryptoThroughput> = Vec::new();
    for &backend in &backends {
        simd::force(Some(backend));
        for batch in BATCHES {
            let (seal, open) = aead_case(batch);
            for (op, mib) in [("seal", seal), ("open", open)] {
                results.push(CryptoThroughput {
                    op: op.into(),
                    backend: backend.label().into(),
                    batch_blocks: batch,
                    block_bytes: BLOCK_BYTES,
                    mib_s: mib,
                    speedup_vs_scalar: 1.0, // filled below
                });
            }
        }
        results.push(CryptoThroughput {
            op: "region_scan".into(),
            backend: backend.label().into(),
            batch_blocks: 256,
            block_bytes: BLOCK_BYTES,
            mib_s: scan_case(256),
            speedup_vs_scalar: 1.0,
        });
    }
    simd::force(None);

    // Fill speedups relative to the scalar row at the same (op, batch).
    let scalar: Vec<CryptoThroughput> =
        results.iter().filter(|r| r.backend == "scalar").cloned().collect();
    for r in &mut results {
        if let Some(base) = scalar.iter().find(|s| s.op == r.op && s.batch_blocks == r.batch_blocks)
        {
            r.speedup_vs_scalar = r.mib_s / base.mib_s.max(f64::MIN_POSITIVE);
        }
    }

    let mut report = Report::new(
        format!("Crypto hot path (detected backend: {})", detected.label()),
        &["op", "backend", "batch", "MiB/s", "vs scalar"],
    );
    for r in &results {
        report.row(&[
            r.op.clone(),
            r.backend.clone(),
            r.batch_blocks.to_string(),
            format!("{:.1}", r.mib_s),
            format!("{:.2}x", r.speedup_vs_scalar),
        ]);
    }
    report.print();

    if detected != Backend::Scalar && !oblidb_bench::harness::smoke_mode() {
        for op in ["seal", "open"] {
            let simd_row = results
                .iter()
                .find(|r| r.op == op && r.batch_blocks == 256 && r.backend != "scalar");
            if let Some(r) = simd_row {
                if r.speedup_vs_scalar < 2.0 {
                    println!(
                        "WARNING: {op}@256 is {:.2}x scalar — below the 2x target",
                        r.speedup_vs_scalar
                    );
                }
            }
        }
    }

    match write_crypto_json(std::path::Path::new("."), "crypto", detected.label(), &results) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_crypto.json: {e}"),
    }
}
