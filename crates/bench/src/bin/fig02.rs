//! Figure 2: asymptotic performance of the storage methods.
//!
//! The paper's table claims: flat point reads / updates / deletes are
//! O(N) while indexed ones are O(log² N); flat (fast) inserts are O(1);
//! large reads are O(N) either way. We validate the *growth rates*
//! empirically by counting untrusted block accesses while doubling N.

use oblidb_bench::report::Report;
use oblidb_bench::setup::{ratio, synthetic_db};
use oblidb_core::StorageMethod;

fn accesses(db: &mut oblidb_core::Database, sql: &str) -> f64 {
    db.host_mut().reset_stats();
    db.execute(sql).unwrap();
    db.host_mut().stats().total_accesses() as f64
}

fn insert_accesses(db: &mut oblidb_core::Database, key: i64) -> f64 {
    db.host_mut().reset_stats();
    db.insert(
        "t",
        &[
            oblidb_core::Value::Int(key),
            oblidb_core::Value::Int(0),
            oblidb_core::Value::Text("x".into()),
        ],
    )
    .unwrap();
    db.host_mut().stats().total_accesses() as f64
}

fn main() {
    let sizes = [1024usize, 2048, 4096, 8192];
    let mut report = Report::new(
        "Figure 2 — storage-method asymptotics (untrusted accesses; growth per 2x N)",
        &["op", "method", "N=1k", "N=2k", "N=4k", "N=8k", "growth", "paper"],
    );

    type OpFn = fn(&mut oblidb_core::Database, usize) -> f64;
    let point_read: OpFn = |db, n| accesses(db, &format!("SELECT * FROM t WHERE id = {}", n / 2));
    let large_read: OpFn = |db, _| accesses(db, "SELECT * FROM t WHERE val >= 0");
    let insert: OpFn = |db, n| insert_accesses(db, (n as i64) * 10);
    let update: OpFn = |db, n| accesses(db, &format!("UPDATE t SET val = 1 WHERE id = {}", n / 2));
    let delete: OpFn = |db, n| accesses(db, &format!("DELETE FROM t WHERE id = {}", n / 2));

    let ops: [(&str, OpFn, &str, &str); 5] = [
        ("point read", point_read, "O(N)", "O(log2 N)"),
        ("large read", large_read, "O(N)", "O(N)"),
        ("insert", insert, "O(1)", "O(log2 N)"),
        ("update", update, "O(N)", "O(log2 N)"),
        ("delete", delete, "O(N)", "O(log2 N)"),
    ];

    for (name, op, paper_flat, paper_idx) in ops {
        for method in [StorageMethod::Flat, StorageMethod::Indexed] {
            let mut cells: Vec<String> = vec![name.to_string(), format!("{method:?}")];
            let mut counts = Vec::new();
            for &n in &sizes {
                let mut db = synthetic_db(n, method, 42);
                let c = op(&mut db, n);
                counts.push(c);
                cells.push(format!("{c:.0}"));
            }
            let growth = ratio(counts[3], counts[0]);
            cells.push(format!("{growth} per 8x N"));
            cells.push(
                match method {
                    StorageMethod::Flat => paper_flat,
                    _ => paper_idx,
                }
                .to_string(),
            );
            report.row(&cells);
        }
    }
    report.print();
    println!(
        "\nExpected: flat O(N) rows grow ~8x over an 8x N sweep; indexed rows grow\n\
         polylogarithmically (well under 8x); flat fast-insert stays flat (O(1))."
    );
}
