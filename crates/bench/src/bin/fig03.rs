//! Figure 3: time complexity and oblivious-memory usage of every physical
//! operator. Validated empirically: untrusted accesses are counted at N
//! and 2N and compared with the claimed growth; OM usage is measured
//! against the claimed budget class.

use oblidb_bench::report::Report;
use oblidb_bench::setup::synthetic_db;
use oblidb_core::planner::SelectAlgo;
use oblidb_core::StorageMethod;

/// Runs a 10%-selective select under a forced algorithm, returning
/// (untrusted accesses, peak OM bytes used during the query).
fn run_select(n: usize, algo: SelectAlgo, om_bytes: usize) -> (u64, usize) {
    let mut db = oblidb_core::Database::new(oblidb_core::DbConfig {
        om_bytes,
        ..oblidb_core::DbConfig::default()
    });
    let rows = oblidb_workloads::synthetic::table(n, 8, 5);
    db.create_table_with_rows(
        "t",
        oblidb_workloads::synthetic::schema(8),
        StorageMethod::Flat,
        None,
        &rows,
        n as u64,
    )
    .unwrap();
    db.config_mut().planner.force_select = Some(algo);
    db.host_mut().reset_stats();
    let k = n / 10;
    let out = db.execute(&format!("SELECT * FROM t WHERE id < {k}")).unwrap();
    assert_eq!(out.len(), k);
    (db.host_mut().stats().total_accesses(), db.om().used())
}

fn run_join(n: usize, algo: oblidb_core::planner::JoinAlgo) -> u64 {
    use oblidb_core::planner::JoinAlgo;
    let mut db = oblidb_core::Database::new(oblidb_core::DbConfig::default());
    let (p, f) = oblidb_workloads::synthetic::fk_join_tables(n, n, 5);
    let schema = oblidb_workloads::synthetic::schema(8);
    db.create_table_with_rows("p", schema.clone(), StorageMethod::Flat, None, &p, n as u64)
        .unwrap();
    db.create_table_with_rows("f", schema, StorageMethod::Flat, None, &f, n as u64).unwrap();
    db.config_mut().planner.force_join = Some(algo);
    if algo == JoinAlgo::ZeroOm {
        db.config_mut().zero_om_scratch_rows = 64;
    }
    db.host_mut().reset_stats();
    db.execute("SELECT * FROM p JOIN f ON p.id = f.id").unwrap();
    db.host_mut().stats().total_accesses()
}

fn main() {
    let n = 2048usize;
    let om = 64 * 1024; // deliberately small so multi-pass behavior shows

    let mut report = Report::new(
        "Figure 3 — operator complexities (empirical growth, N→2N, 10% selectivity)",
        &["operator", "N acc", "2N acc", "growth", "paper claim", "om used"],
    );

    for (name, algo, claim) in [
        ("Small select", SelectAlgo::Small, "O(N^2/S)"),
        ("Large select", SelectAlgo::Large, "O(N), 0 OM"),
        ("Continuous select", SelectAlgo::Continuous, "O(N), 0 OM"),
        ("Hash select", SelectAlgo::Hash, "O(N*C), 0 OM"),
        ("Naive select", SelectAlgo::Naive, "O(N log N), O(R) OM"),
    ] {
        let (a1, om1) = run_select(n, algo, om);
        let (a2, _) = run_select(2 * n, algo, om);
        report.row(&[
            name.to_string(),
            a1.to_string(),
            a2.to_string(),
            format!("{:.2}x", a2 as f64 / a1 as f64),
            claim.to_string(),
            format!("{om1}B"),
        ]);
    }

    // Aggregation (always one scan) and grouped aggregation.
    for (name, sql, claim) in [
        ("Aggregate", "SELECT SUM(val) FROM t", "O(N), 0 OM"),
        ("Gp. aggregate", "SELECT val, COUNT(*) FROM t GROUP BY val", "O(N), O(R) OM"),
    ] {
        let mut counts = Vec::new();
        for size in [n, 2 * n] {
            let mut db = synthetic_db(size, StorageMethod::Flat, 5);
            db.host_mut().reset_stats();
            db.execute(sql).unwrap();
            counts.push(db.host_mut().stats().total_accesses());
        }
        report.row(&[
            name.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            format!("{:.2}x", counts[1] as f64 / counts[0] as f64),
            claim.to_string(),
            "-".to_string(),
        ]);
    }

    for (name, algo, claim) in [
        ("Hash join", oblidb_core::planner::JoinAlgo::Hash, "O(N/S * M)"),
        ("Opaque join", oblidb_core::planner::JoinAlgo::Opaque, "O((N+M) log^2((N+M)/S))"),
        ("0-OM join", oblidb_core::planner::JoinAlgo::ZeroOm, "O((N+M) log^2(N+M)), 0 OM"),
    ] {
        let a1 = run_join(n / 4, algo);
        let a2 = run_join(n / 2, algo);
        report.row(&[
            name.to_string(),
            a1.to_string(),
            a2.to_string(),
            format!("{:.2}x", a2 as f64 / a1 as f64),
            claim.to_string(),
            "-".to_string(),
        ]);
    }

    report.print();
    println!(
        "\nLinear operators should grow ~2x; the naive/sort-based ones super-linearly;\n\
         Small select grows with N^2/S once R exceeds the enclave buffer."
    );
}
