//! Figure 7: ObliDB vs Opaque (oblivious mode) vs Spark SQL on Big Data
//! Benchmark queries Q1–Q3, without and with indexes.
//!
//! Paper result shape: ObliDB/flat ≈ Opaque on all three queries (same
//! scan-based costs); ObliDB with an index beats Opaque by ~19× on Q1
//! (tiny selectivity); nothing oblivious comes near the no-security
//! engine, but ObliDB stays within a small factor (2.6× in the paper).
//!
//! `OBLIDB_SCALE=paper` runs the full 360 k/350 k-row tables.

use oblidb_baselines::opaque::OpaqueEngine;
use oblidb_baselines::plain::PlainTable;
use oblidb_bench::report::Report;
use oblidb_bench::timing::fmt_duration;
use oblidb_core::exec::AggFunc;
use oblidb_core::predicate::{CmpOp, Predicate};
use oblidb_core::{Database, DbConfig, StorageMethod, Value};
use oblidb_workloads::bdb;
use std::time::{Duration, Instant};

struct Timings {
    q1: Duration,
    q2: Duration,
    q3: Duration,
}

fn run_oblidb(rankings: &[Vec<Value>], visits: &[Vec<Value>], indexed: bool) -> Timings {
    let mut db = Database::new(DbConfig::default());
    // The paper disables the Continuous algorithm when comparing with
    // Opaque, to equalize leakage.
    db.config_mut().planner.enable_continuous = false;
    let (method, index_col) =
        if indexed { (StorageMethod::Both, Some("pageRank")) } else { (StorageMethod::Flat, None) };
    db.create_table_with_rows(
        "rankings",
        bdb::rankings_schema(),
        method,
        index_col,
        rankings,
        rankings.len() as u64,
    )
    .unwrap();
    db.create_table_with_rows(
        "uservisits",
        bdb::uservisits_schema(),
        StorageMethod::Flat,
        None,
        visits,
        visits.len() as u64,
    )
    .unwrap();

    let t = |db: &mut Database, sql: &str| {
        let start = Instant::now();
        db.execute(sql).unwrap();
        start.elapsed()
    };
    Timings {
        q1: t(&mut db, &bdb::q1_sql()),
        q2: t(&mut db, &bdb::q2_sql()),
        q3: t(&mut db, &bdb::q3_sql()),
    }
}

fn run_opaque(rankings: &[Vec<Value>], visits: &[Vec<Value>]) -> Timings {
    // Opaque's original evaluation grants it 72 MB of oblivious memory.
    let mut eng = OpaqueEngine::new(72 * 1024 * 1024, 9);
    let mut tr = eng.load_table(bdb::rankings_schema(), rankings).unwrap();
    let mut tv = eng.load_table(bdb::uservisits_schema(), visits).unwrap();

    let q1_pred = Predicate::cmp(
        &bdb::rankings_schema(),
        "pageRank",
        CmpOp::Gt,
        Value::Int(bdb::Q1_PAGERANK_CUTOFF),
    )
    .unwrap();
    let start = Instant::now();
    let out = eng.select(&mut tr, &q1_pred).unwrap();
    let q1 = start.elapsed();
    out.free(&mut eng.host).unwrap();

    let start = Instant::now();
    let out = eng.group_aggregate(&mut tv, 1, AggFunc::Sum, Some(4), &Predicate::True).unwrap();
    let q2 = start.elapsed();
    out.free(&mut eng.host).unwrap();

    // Q3: filter visits by date (select), join, aggregate.
    let date_pred = Predicate::cmp(
        &bdb::uservisits_schema(),
        "visitDate",
        CmpOp::Lt,
        Value::Int(bdb::Q3_DATE_CUTOFF),
    )
    .unwrap();
    let start = Instant::now();
    let mut filtered = eng.select(&mut tv, &date_pred).unwrap();
    let mut joined = eng.join(&mut tr, 0, &mut filtered, 2).unwrap();
    let _avg = eng.aggregate(&mut joined, AggFunc::Avg, Some(1), &Predicate::True).unwrap();
    let _sum = eng.aggregate(&mut joined, AggFunc::Sum, Some(7), &Predicate::True).unwrap();
    let q3 = start.elapsed();
    filtered.free(&mut eng.host).unwrap();
    joined.free(&mut eng.host).unwrap();

    Timings { q1, q2, q3 }
}

fn run_plain(rankings: &[Vec<Value>], visits: &[Vec<Value>]) -> Timings {
    let pr = PlainTable::new(bdb::rankings_schema(), rankings.to_vec());
    let pv = PlainTable::new(bdb::uservisits_schema(), visits.to_vec());

    let q1_pred =
        Predicate::cmp(&pr.schema, "pageRank", CmpOp::Gt, Value::Int(bdb::Q1_PAGERANK_CUTOFF))
            .unwrap();
    let start = Instant::now();
    let _ = pr.select(&q1_pred);
    let q1 = start.elapsed();

    let start = Instant::now();
    let _ = pv.group_aggregate(1, AggFunc::Sum, Some(4), &Predicate::True);
    let q2 = start.elapsed();

    let date_pred =
        Predicate::cmp(&pv.schema, "visitDate", CmpOp::Lt, Value::Int(bdb::Q3_DATE_CUTOFF))
            .unwrap();
    let start = Instant::now();
    let filtered = PlainTable::new(pv.schema.clone(), pv.select(&date_pred));
    let joined = pr.join(0, &filtered, 2);
    let n = joined.len().max(1) as f64;
    let _avg: f64 = joined.iter().map(|r| r[1].as_int().unwrap() as f64).sum::<f64>() / n;
    let q3 = start.elapsed();

    Timings { q1, q2, q3 }
}

fn main() {
    let scale = oblidb_bench::setup::scale();
    let n_r = scale.pick(30_000, bdb::RANKINGS_ROWS);
    let n_v = scale.pick(30_000, bdb::USERVISITS_ROWS);
    println!("generating BDB tables: rankings={n_r}, uservisits={n_v} ...");
    let rankings = bdb::rankings(n_r, 42);
    let visits = bdb::uservisits(n_v, n_r, 42);

    println!("running Opaque (oblivious mode, 72MB OM)...");
    let opaque = run_opaque(&rankings, &visits);
    println!("running ObliDB (flat only, 20MB OM)...");
    let flat = run_oblidb(&rankings, &visits, false);
    println!("running ObliDB (index allowed)...");
    let indexed = run_oblidb(&rankings, &visits, true);
    println!("running plain engine (no security)...");
    let plain = run_plain(&rankings, &visits);

    let mut report = Report::new(
        format!("Figure 7 — Big Data Benchmark ({n_r}/{n_v} rows)"),
        &[
            "query",
            "Opaque",
            "ObliDB flat",
            "ObliDB index",
            "plain (no sec)",
            "ObliDB-idx vs Opaque",
        ],
    );
    for (q, o, f, i, p) in [
        ("Q1 (select)", opaque.q1, flat.q1, indexed.q1, plain.q1),
        ("Q2 (group-by)", opaque.q2, flat.q2, indexed.q2, plain.q2),
        ("Q3 (join)", opaque.q3, flat.q3, indexed.q3, plain.q3),
    ] {
        report.row(&[
            q.to_string(),
            fmt_duration(o),
            fmt_duration(f),
            fmt_duration(i),
            fmt_duration(p),
            format!("{:.1}x", o.as_secs_f64() / i.as_secs_f64().max(1e-9)),
        ]);
    }
    report.print();
    println!(
        "\nPaper shape: Q1 with index beats Opaque by ~19x; Q2/Q3 are comparable\n\
         (indexes do not help full-scan queries); ObliDB flat ~= Opaque throughout."
    );
}
