//! Figure 8: Big Data Benchmark Q3 runtime as the oblivious-memory budget
//! varies (paper: 4–20 MB; ObliDB improves in *steps* as the hash join's
//! chunk count drops, Opaque improves gradually).

use oblidb_baselines::opaque::OpaqueEngine;
use oblidb_bench::report::Report;
use oblidb_bench::timing::fmt_duration;
use oblidb_core::exec::AggFunc;
use oblidb_core::predicate::{CmpOp, Predicate};
use oblidb_core::{Database, DbConfig, StorageMethod, Value};
use oblidb_workloads::bdb;
use std::time::Instant;

fn main() {
    let scale = oblidb_bench::setup::scale();
    let n_r = scale.pick(20_000, bdb::RANKINGS_ROWS);
    let n_v = scale.pick(20_000, bdb::USERVISITS_ROWS);
    // Sweep smaller budgets at the reduced scale so the chunking steps
    // land inside the sweep (same mechanism as the paper's 4-20MB).
    let budgets_mb: Vec<f64> = match scale {
        oblidb_bench::setup::Scale::Small => vec![0.25, 0.5, 1.0, 2.0, 4.0],
        oblidb_bench::setup::Scale::Paper => vec![4.0, 6.0, 8.0, 12.0, 16.0, 20.0],
    };

    println!("generating BDB tables ({n_r}/{n_v}) ...");
    let rankings = bdb::rankings(n_r, 42);
    let visits = bdb::uservisits(n_v, n_r, 42);

    let mut report = Report::new(
        format!("Figure 8 — Q3 vs oblivious-memory budget ({n_r}/{n_v} rows)"),
        &["OM budget", "ObliDB Q3", "join algo", "Opaque Q3"],
    );

    for &mb in &budgets_mb {
        let om_bytes = (mb * 1024.0 * 1024.0) as usize;

        let mut db = Database::new(DbConfig { om_bytes, ..DbConfig::default() });
        db.config_mut().planner.enable_continuous = false;
        db.create_table_with_rows(
            "rankings",
            bdb::rankings_schema(),
            StorageMethod::Flat,
            None,
            &rankings,
            n_r as u64,
        )
        .unwrap();
        db.create_table_with_rows(
            "uservisits",
            bdb::uservisits_schema(),
            StorageMethod::Flat,
            None,
            &visits,
            n_v as u64,
        )
        .unwrap();
        let start = Instant::now();
        let out = db.execute(&bdb::q3_sql()).unwrap();
        let oblidb_t = start.elapsed();
        let algo = out.plan.join_algo;

        let mut eng = OpaqueEngine::new(om_bytes, 9);
        let mut tr = eng.load_table(bdb::rankings_schema(), &rankings).unwrap();
        let mut tv = eng.load_table(bdb::uservisits_schema(), &visits).unwrap();
        let date_pred = Predicate::cmp(
            &bdb::uservisits_schema(),
            "visitDate",
            CmpOp::Lt,
            Value::Int(bdb::Q3_DATE_CUTOFF),
        )
        .unwrap();
        let start = Instant::now();
        let mut filtered = eng.select(&mut tv, &date_pred).unwrap();
        let mut joined = eng.join(&mut tr, 0, &mut filtered, 2).unwrap();
        let _ = eng.aggregate(&mut joined, AggFunc::Avg, Some(1), &Predicate::True).unwrap();
        let opaque_t = start.elapsed();

        report.row(&[
            format!("{mb}MB"),
            fmt_duration(oblidb_t),
            format!("{algo:?}"),
            fmt_duration(opaque_t),
        ]);
    }
    report.print();
    println!(
        "\nPaper shape: both improve with more OM; ObliDB improves in steps (each\n\
         step = one fewer scan of the probe table as the hash-join chunk grows)."
    );
}
