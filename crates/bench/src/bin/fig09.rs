//! Figure 9: point-operation latency vs table size — ObliDB's oblivious
//! index against the HIRB + vORAM oblivious map and a conventional
//! (MySQL-like) index. 64-byte entries, vORAM bucket 4096, as in §7.1.
//!
//! Paper shape: ObliDB beats HIRB ~7× at 10⁶ rows (its blocks are small
//! B+-tree nodes, HIRB moves 4 KB vORAM buckets per access); both are
//! orders of magnitude above the plaintext index; all curves grow
//! polylogarithmically.

use oblidb_baselines::hirb::HirbMap;
use oblidb_baselines::mysql_like::ConventionalIndex;
use oblidb_bench::report::Report;
use oblidb_bench::timing::fmt_duration;
use oblidb_btree::ObTree;
use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveRng, Host, OmBudget};
use oblidb_oram::PosMapKind;
use std::time::{Duration, Instant};

const VALUE_LEN: usize = 64;
const PROBES: u64 = 25;

struct Latencies {
    get: Duration,
    insert: Duration,
    delete: Duration,
}

fn bench_oblidb(n: u64) -> Latencies {
    let mut host = Host::new();
    let om = OmBudget::new(256 * 1024 * 1024); // position map for 10^6 nodes
    let items: Vec<(u128, Vec<u8>)> =
        (0..n).map(|i| ((i * 2) as u128, vec![i as u8; VALUE_LEN])).collect();
    let mut tree = ObTree::bulk_load(
        &mut host,
        AeadKey([1u8; 32]),
        &items,
        n + PROBES + 8,
        VALUE_LEN,
        8,
        PosMapKind::Direct,
        &om,
        EnclaveRng::seed_from_u64(3),
    )
    .unwrap();

    let start = Instant::now();
    for i in 0..PROBES {
        tree.get(&mut host, ((i * 97) % n * 2) as u128).unwrap();
    }
    let get = start.elapsed() / PROBES as u32;

    let start = Instant::now();
    for i in 0..PROBES {
        tree.insert(&mut host, (2 * n + i) as u128, &[9u8; VALUE_LEN]).unwrap();
    }
    let insert = start.elapsed() / PROBES as u32;

    let start = Instant::now();
    for i in 0..PROBES {
        tree.delete(&mut host, (2 * n + i) as u128).unwrap();
    }
    let delete = start.elapsed() / PROBES as u32;

    Latencies { get, insert, delete }
}

fn bench_hirb(n: u64) -> Latencies {
    let mut host = Host::new();
    let om = OmBudget::new(256 * 1024 * 1024);
    let mut map = HirbMap::new(
        &mut host,
        AeadKey([2u8; 32]),
        n + PROBES + 8,
        VALUE_LEN,
        &om,
        EnclaveRng::seed_from_u64(4),
    )
    .unwrap();
    // HIRB has no bulk path in Roche et al. either; populate with a
    // sparse sample at large n to keep setup feasible, then measure —
    // per-op cost depends only on the (capacity-determined) height.
    let populate = n.min(2_000);
    for i in 0..populate {
        map.insert(&mut host, i * 2, &[i as u8; VALUE_LEN]).unwrap();
    }

    let start = Instant::now();
    for i in 0..PROBES {
        map.get(&mut host, (i * 97) % populate * 2).unwrap();
    }
    let get = start.elapsed() / PROBES as u32;

    let start = Instant::now();
    for i in 0..PROBES {
        map.insert(&mut host, 2 * n + i, &[9u8; VALUE_LEN]).unwrap();
    }
    let insert = start.elapsed() / PROBES as u32;

    let start = Instant::now();
    for i in 0..PROBES {
        map.delete(&mut host, 2 * n + i).unwrap();
    }
    let delete = start.elapsed() / PROBES as u32;

    Latencies { get, insert, delete }
}

fn bench_mysql(n: u64) -> Latencies {
    let mut idx = ConventionalIndex::new();
    for i in 0..n {
        idx.insert(i * 2, vec![i as u8; VALUE_LEN]);
    }
    let start = Instant::now();
    for i in 0..PROBES {
        std::hint::black_box(idx.get((i * 97) % n * 2));
    }
    let get = start.elapsed() / PROBES as u32;
    let start = Instant::now();
    for i in 0..PROBES {
        idx.insert(2 * n + i, vec![9u8; VALUE_LEN]);
    }
    let insert = start.elapsed() / PROBES as u32;
    let start = Instant::now();
    for i in 0..PROBES {
        idx.delete(2 * n + i);
    }
    let delete = start.elapsed() / PROBES as u32;
    Latencies { get, insert, delete }
}

fn main() {
    let scale = oblidb_bench::setup::scale();
    let sizes: Vec<u64> = match scale {
        oblidb_bench::setup::Scale::Small => vec![100, 1_000, 10_000, 100_000],
        oblidb_bench::setup::Scale::Paper => vec![100, 1_000, 10_000, 100_000, 1_000_000],
    };

    let mut report = Report::new(
        "Figure 9 — point ops vs table size (64B entries; avg per op)",
        &["N", "op", "ObliDB", "HIRB+vORAM", "MySQL-like", "HIRB/ObliDB"],
    );
    for &n in &sizes {
        println!("building structures at N = {n} ...");
        let o = bench_oblidb(n);
        let h = bench_hirb(n);
        let m = bench_mysql(n);
        for (op, od, hd, md) in [
            ("get", o.get, h.get, m.get),
            ("insert", o.insert, h.insert, m.insert),
            ("delete", o.delete, h.delete, m.delete),
        ] {
            report.row(&[
                n.to_string(),
                op.to_string(),
                fmt_duration(od),
                fmt_duration(hd),
                fmt_duration(md),
                format!("{:.1}x", hd.as_secs_f64() / od.as_secs_f64().max(1e-12)),
            ]);
        }
    }
    report.print();
    println!(
        "\nPaper shape: ObliDB ~7.6x faster than HIRB for retrieval and ~3x for\n\
         insert/delete at 10^6 rows; MySQL stays orders of magnitude below both;\n\
         all oblivious curves grow polylogarithmically."
    );
}
