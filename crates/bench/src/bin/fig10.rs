//! Figure 10: flat vs indexed operators on one table — SELECT and
//! GROUP BY sweeping the fraction retrieved (0.5–2.5 %), plus point
//! INSERT / DELETE / UPDATE.
//!
//! Paper shape: the indexed method wins for small retrievals and loses to
//! the flat scan as the fraction grows (crossover ≈ 1.5–2 %); indexed
//! DELETE/UPDATE beat flat ones; flat fast-INSERT beats indexed insert.

use oblidb_bench::report::Report;
use oblidb_bench::setup::{scale, synthetic_db, Scale};
use oblidb_bench::timing::fmt_duration;
use oblidb_core::{StorageMethod, Value};
use std::time::Instant;

fn main() {
    let n = match scale() {
        Scale::Small => 20_000usize,
        Scale::Paper => 100_000,
    };

    // SELECT sweep. The planner is allowed to choose; we *force* the
    // access path by storage method (flat-only vs indexed-only), as the
    // figure compares methods, not the planner.
    let mut select_report = Report::new(
        format!("Figure 10a — flat vs indexed SELECT ({n} rows)"),
        &["% retrieved", "flat", "indexed", "winner"],
    );
    for pct in [5u64, 10, 15, 20, 25] {
        // pct is in permille*5 => 0.5%..2.5%
        let k = (n as u64 * pct) / 1000;
        let sql = format!("SELECT * FROM t WHERE id < {k}");

        let mut flat_db = synthetic_db(n, StorageMethod::Flat, 7);
        flat_db.config_mut().planner.enable_continuous = false;
        let start = Instant::now();
        let out = flat_db.execute(&sql).unwrap();
        assert_eq!(out.len() as u64, k);
        let flat_t = start.elapsed();

        let mut idx_db = synthetic_db(n, StorageMethod::Indexed, 7);
        let start = Instant::now();
        let out = idx_db.execute(&sql).unwrap();
        assert_eq!(out.len() as u64, k);
        let idx_t = start.elapsed();

        select_report.row(&[
            format!("{:.1}%", pct as f64 / 10.0),
            fmt_duration(flat_t),
            fmt_duration(idx_t),
            if flat_t < idx_t { "flat" } else { "indexed" }.to_string(),
        ]);
    }
    select_report.print();

    // GROUP BY over a restricted range (the indexed method materializes
    // the range through the index first).
    let mut group_report = Report::new(
        format!("Figure 10b — flat vs indexed GROUP BY over range ({n} rows)"),
        &["% grouped", "flat", "indexed"],
    );
    for pct in [5u64, 15, 25] {
        let k = (n as u64 * pct) / 1000;
        let sql = format!("SELECT val, COUNT(*) FROM t WHERE id < {k} GROUP BY val");

        let mut flat_db = synthetic_db(n, StorageMethod::Flat, 7);
        let start = Instant::now();
        flat_db.execute(&sql).unwrap();
        let flat_t = start.elapsed();

        let mut idx_db = synthetic_db(n, StorageMethod::Indexed, 7);
        let start = Instant::now();
        idx_db.execute(&sql).unwrap();
        let idx_t = start.elapsed();

        group_report.row(&[
            format!("{:.1}%", pct as f64 / 10.0),
            fmt_duration(flat_t),
            fmt_duration(idx_t),
        ]);
    }
    group_report.print();

    // Point operations.
    let mut ops_report = Report::new(
        format!("Figure 10c — flat vs indexed point ops ({n} rows; avg per op)"),
        &["op", "flat", "indexed"],
    );
    let reps = 10i64;

    let mut flat_db = synthetic_db(n, StorageMethod::Flat, 7);
    let mut idx_db = synthetic_db(n, StorageMethod::Indexed, 7);

    // INSERT: flat uses the constant-time fast insert (paper §3.1).
    let mut times = Vec::new();
    for db in [&mut flat_db, &mut idx_db] {
        let start = Instant::now();
        for i in 0..reps {
            db.insert("t", &[Value::Int(n as i64 * 2 + i), Value::Int(0), Value::Text("x".into())])
                .unwrap();
        }
        times.push(start.elapsed() / reps as u32);
    }
    ops_report.row(&["insert".into(), fmt_duration(times[0]), fmt_duration(times[1])]);

    // DELETE: flat pays a full rewrite pass; indexed pays O(log^2 N).
    let mut times = Vec::new();
    for db in [&mut flat_db, &mut idx_db] {
        let start = Instant::now();
        for i in 0..reps {
            db.execute(&format!("DELETE FROM t WHERE id = {}", n as i64 * 2 + i)).unwrap();
        }
        times.push(start.elapsed() / reps as u32);
    }
    ops_report.row(&["delete".into(), fmt_duration(times[0]), fmt_duration(times[1])]);

    // UPDATE by key.
    let mut times = Vec::new();
    for db in [&mut flat_db, &mut idx_db] {
        let start = Instant::now();
        for i in 0..reps {
            db.execute(&format!("UPDATE t SET val = 1 WHERE id = {}", i * 7)).unwrap();
        }
        times.push(start.elapsed() / reps as u32);
    }
    ops_report.row(&["update".into(), fmt_duration(times[0]), fmt_duration(times[1])]);
    ops_report.print();

    println!(
        "\nPaper shape: flat wins as the retrieved fraction grows; indexed wins\n\
         small reads, deletes and updates; flat fast-insert wins inserts."
    );
}
