//! Figure 11: point-query latency on indexes vs table size — SELECT,
//! INSERT, DELETE. Paper shape: polylogarithmic growth, single-digit
//! milliseconds up to 10⁶ rows.

use oblidb_bench::report::Report;
use oblidb_bench::timing::fmt_duration;
use oblidb_core::{Database, DbConfig, StorageMethod, Value};
use oblidb_workloads::synthetic;
use std::time::Instant;

fn main() {
    let scale = oblidb_bench::setup::scale();
    let sizes: Vec<usize> = match scale {
        oblidb_bench::setup::Scale::Small => vec![100, 1_000, 10_000, 100_000],
        oblidb_bench::setup::Scale::Paper => vec![100, 1_000, 10_000, 100_000, 1_000_000],
    };
    let reps = 20i64;

    let mut report = Report::new(
        "Figure 11 — point queries on indexes vs table size (avg per op)",
        &["N", "SELECT", "INSERT", "DELETE", "index height"],
    );
    for &n in &sizes {
        println!("bulk-loading indexed table of {n} rows ...");
        let rows = synthetic::table(n, 8, 3);
        let mut db = Database::new(DbConfig { om_bytes: 256 * 1024 * 1024, ..DbConfig::default() });
        db.create_table_with_rows(
            "t",
            synthetic::schema(8),
            StorageMethod::Indexed,
            Some("id"),
            &rows,
            (n + reps as usize + 8) as u64,
        )
        .unwrap();

        let start = Instant::now();
        for i in 0..reps {
            let out = db
                .execute(&format!("SELECT * FROM t WHERE id = {}", (i * 131) % n as i64))
                .unwrap();
            assert_eq!(out.len(), 1);
        }
        let select_t = start.elapsed() / reps as u32;

        let start = Instant::now();
        for i in 0..reps {
            db.insert("t", &[Value::Int(2 * n as i64 + i), Value::Int(0), Value::Text("x".into())])
                .unwrap();
        }
        let insert_t = start.elapsed() / reps as u32;

        let start = Instant::now();
        for i in 0..reps {
            db.execute(&format!("DELETE FROM t WHERE id = {}", 2 * n as i64 + i)).unwrap();
        }
        let delete_t = start.elapsed() / reps as u32;

        report.row(&[
            n.to_string(),
            fmt_duration(select_t),
            fmt_duration(insert_t),
            fmt_duration(delete_t),
            "-".to_string(),
        ]);
    }
    report.print();
    println!(
        "\nPaper shape: latency grows polylogarithmically (3.6-9.4ms at 10^6 rows\n\
         on the paper's SGX testbed)."
    );
}
