//! Figure 12: throughput of the L1–L5 mixed workloads on flat, indexed,
//! and combined ("both") table representations.
//!
//! Paper shape: insert-heavy L1 favors flat (constant-time inserts);
//! small-read-heavy L2 favors the index; mixed L3/L4 favor "both"
//! (point reads through the index, large reads through the flat copy);
//! large-read-heavy L5 favors flat, with "both" close behind.

use oblidb_bench::report::Report;
use oblidb_bench::setup::{scale, synthetic_db, Scale};
use oblidb_core::{StorageMethod, Value};
use oblidb_workloads::mixes::{self, MixOp};
use std::time::Instant;

fn run_mix(mix: &str, n: usize, ops: usize, method: StorageMethod) -> f64 {
    let mut db = synthetic_db(n, method, 13);
    let workload = mixes::generate(mix, n as i64, ops, 99);
    let small = mixes::SMALL_READ_ROWS;
    let large = mixes::large_read_rows(n as i64);
    let start = Instant::now();
    for op in &workload {
        match op {
            MixOp::PointRead { key } => {
                db.execute(&format!("SELECT * FROM t WHERE id = {key}")).unwrap();
            }
            MixOp::SmallRead { lo } => {
                db.execute(&format!("SELECT * FROM t WHERE id >= {lo} AND id < {}", lo + small))
                    .unwrap();
            }
            MixOp::LargeRead { lo } => {
                db.execute(&format!("SELECT * FROM t WHERE id >= {lo} AND id < {}", lo + large))
                    .unwrap();
            }
            MixOp::Insert { key } => {
                db.insert("t", &[Value::Int(*key), Value::Int(0), Value::Text("x".into())])
                    .unwrap();
            }
            MixOp::Delete { key } => {
                db.execute(&format!("DELETE FROM t WHERE id = {key}")).unwrap();
            }
        }
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let (n, ops) = match scale() {
        Scale::Small => (20_000usize, 60usize),
        Scale::Paper => (100_000, 500),
    };

    let mut report = Report::new(
        format!("Figure 12 — ops/second for workloads L1-L5 ({n}-row table, {ops} ops)"),
        &["workload", "flat", "indexed", "both", "best"],
    );
    for (mix, _) in mixes::MIXES {
        println!("running {mix} ...");
        let flat = run_mix(mix, n, ops, StorageMethod::Flat);
        let indexed = run_mix(mix, n, ops, StorageMethod::Indexed);
        let both = run_mix(mix, n, ops, StorageMethod::Both);
        let best = [("flat", flat), ("indexed", indexed), ("both", both)]
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        report.row(&[
            mix.to_string(),
            format!("{flat:.2}"),
            format!("{indexed:.2}"),
            format!("{both:.2}"),
            best.to_string(),
        ]);
    }
    report.print();
    println!(
        "\nPaper shape: one method sometimes wins alone, but the combined\n\
         representation is best (or near-best) on the mixed workloads L3/L4."
    );
}
