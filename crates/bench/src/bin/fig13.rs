//! Figure 13: the query planner picks the best SELECT algorithm.
//!
//! Four scenarios — {5 %, 95 %} of the table retrieved × {contiguous,
//! scattered} — timed under every applicable forced algorithm, plus the
//! planner's own (starred) choice. Paper result: the planner's pick beats
//! the asymptotically-optimal Hash algorithm by 4.6–11×.

use oblidb_bench::report::Report;
use oblidb_bench::setup::{scale, synthetic_db, Scale};
use oblidb_bench::timing::fmt_duration;
use oblidb_core::planner::SelectAlgo;
use oblidb_core::StorageMethod;
use oblidb_workloads::synthetic;
use std::time::{Duration, Instant};

fn timed_select(n: usize, sql: &str, force: Option<SelectAlgo>) -> (Duration, SelectAlgo) {
    let mut db = synthetic_db(n, StorageMethod::Flat, 21);
    db.config_mut().planner.force_select = force;
    let start = Instant::now();
    let out = db.execute(sql).unwrap();
    (start.elapsed(), out.plan.select_algo.expect("selection ran"))
}

fn main() {
    let n = match scale() {
        Scale::Small => 20_000usize,
        Scale::Paper => 100_000,
    };

    let scenarios = [
        ("5% contiguous", synthetic::range_select_sql(n, 0.05, true), true),
        ("5% scattered", synthetic::scattered_select_sql(n, 0.05), false),
        ("95% contiguous", synthetic::range_select_sql(n, 0.95, true), true),
        ("95% scattered", synthetic::scattered_select_sql(n, 0.95), false),
    ];

    let mut report = Report::new(
        format!("Figure 13 — planner effectiveness ({n}-row table)"),
        &[
            "scenario",
            "Hash",
            "Small",
            "Large",
            "Continuous",
            "planner pick",
            "pick time",
            "pick vs Hash",
        ],
    );

    for (name, sql, contiguous) in scenarios {
        let (hash_t, _) = timed_select(n, &sql, Some(SelectAlgo::Hash));
        let (small_t, _) = timed_select(n, &sql, Some(SelectAlgo::Small));
        let (large_t, _) = timed_select(n, &sql, Some(SelectAlgo::Large));
        let cont = if contiguous {
            Some(timed_select(n, &sql, Some(SelectAlgo::Continuous)).0)
        } else {
            None
        };
        let (planner_t, choice) = timed_select(n, &sql, None);
        report.row(&[
            name.to_string(),
            fmt_duration(hash_t),
            fmt_duration(small_t),
            fmt_duration(large_t),
            cont.map(fmt_duration).unwrap_or_else(|| "n/a".into()),
            format!("{choice:?}"),
            fmt_duration(planner_t),
            format!("{:.1}x faster", hash_t.as_secs_f64() / planner_t.as_secs_f64().max(1e-9)),
        ]);
    }
    report.print();
    println!(
        "\nPaper shape: Hash is never the fastest in practice; the planner's pick\n\
         beats it by 4.6-11x (5% -> Small, 95% -> Large, contiguous -> Continuous)."
    );
}
