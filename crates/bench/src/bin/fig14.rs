//! Figure 14: join-algorithm grid — foreign-key joins across table sizes
//! and oblivious-memory budgets, for the Hash, Opaque, and 0-OM joins.
//!
//! Paper shape: hash wins when T2 is small or OM is plentiful; the
//! sort-merge (Opaque) join takes over as T2 grows with OM scarce; the
//! 0-OM join always trails the Opaque join (same algorithm, no
//! oblivious-memory quicksort) but speeds up with plain enclave scratch.
//! The planner must pick the measured-fastest of {Hash, Opaque} per cell.
//!
//! Note (EXPERIMENTS.md): on this substrate random and sequential block
//! accesses cost the same, so the hash→sort crossover needs a smaller OM
//! than on the paper's SGX testbed; the orderings within each column hold.

use oblidb_bench::report::Report;
use oblidb_bench::setup::{scale, Scale};
use oblidb_bench::timing::fmt_duration;
use oblidb_core::exec::{hash_join, sort_merge_join, SortMergeVariant};
use oblidb_core::planner::{choose_join, JoinAlgo, PlannerConfig};
use oblidb_core::table::FlatTable;
use oblidb_core::{DbConfig, Value};
use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{Host, OmBudget};
use oblidb_workloads::synthetic;
use std::time::{Duration, Instant};

fn load(host: &mut Host, rows: &[Vec<Value>], seed: u8) -> FlatTable {
    let schema = synthetic::schema(8);
    let encoded: Vec<Vec<u8>> = rows.iter().map(|r| schema.encode_row(r).unwrap()).collect();
    FlatTable::from_encoded_rows(host, AeadKey([seed; 32]), schema, &encoded, rows.len() as u64)
        .unwrap()
}

fn run_cell(n1: usize, n2: usize, om_rows: usize, algo: JoinAlgo) -> Duration {
    let mut host = Host::new();
    let (p, f) = synthetic::fk_join_tables(n1, n2, 3);
    let mut t1 = load(&mut host, &p, 1);
    let mut t2 = load(&mut host, &f, 2);
    let row_len = t1.row_len();
    let om = OmBudget::new(om_rows * row_len);
    let key = AeadKey([9u8; 32]);
    let start = Instant::now();
    let out = match algo {
        JoinAlgo::Hash => hash_join(&mut host, &om, &mut t1, 0, &mut t2, 0, key).unwrap(),
        JoinAlgo::Opaque => {
            sort_merge_join(&mut host, &om, &mut t1, 0, &mut t2, 0, key, SortMergeVariant::Opaque)
                .unwrap()
        }
        JoinAlgo::ZeroOm => {
            // Same *bytes* of plain enclave scratch as the OM column, in
            // union-row units (paper: the 0-OM join speeds up with enclave
            // memory "regardless of whether the memory is oblivious").
            let scratch_rows = (om_rows * row_len / (18 + row_len)).max(1);
            sort_merge_join(
                &mut host,
                &om,
                &mut t1,
                0,
                &mut t2,
                0,
                key,
                SortMergeVariant::ZeroOm { scratch_rows },
            )
            .unwrap()
        }
    };
    let elapsed = start.elapsed();
    assert_eq!(out.num_rows(), n2 as u64, "FK join must match every foreign row");
    elapsed
}

fn main() {
    let (t1_sizes, t2_sizes, om_rows): (Vec<usize>, Vec<usize>, Vec<usize>) = match scale() {
        Scale::Small => (vec![2_000, 5_000], vec![100, 1_000, 5_000, 10_000], vec![50, 500, 7_500]),
        Scale::Paper => {
            (vec![5_000, 10_000], vec![100, 1_000, 5_000, 10_000, 25_000], vec![500, 7_500])
        }
    };
    let _ = DbConfig::default();

    for &om in &om_rows {
        let mut report = Report::new(
            format!("Figure 14 — FK joins, {om} rows of oblivious memory"),
            &["T1", "T2", "Hash", "Opaque", "0-OM", "fastest", "planner pick"],
        );
        for &n1 in &t1_sizes {
            for &n2 in &t2_sizes {
                let hash_t = run_cell(n1, n2, om, JoinAlgo::Hash);
                let opaque_t = run_cell(n1, n2, om, JoinAlgo::Opaque);
                let zero_t = run_cell(n1, n2, om, JoinAlgo::ZeroOm);
                let fastest = [("Hash", hash_t), ("Opaque", opaque_t), ("0-OM", zero_t)]
                    .into_iter()
                    .min_by_key(|(_, t)| *t)
                    .unwrap()
                    .0;
                // What the planner would pick given this budget.
                let row_len = synthetic::schema(8).row_len();
                let budget = OmBudget::new(om * row_len);
                let pick = choose_join(
                    n1 as u64,
                    n2 as u64,
                    row_len,
                    18 + row_len,
                    &budget,
                    &PlannerConfig::default(),
                );
                report.row(&[
                    n1.to_string(),
                    n2.to_string(),
                    fmt_duration(hash_t),
                    fmt_duration(opaque_t),
                    fmt_duration(zero_t),
                    fastest.to_string(),
                    format!("{pick:?}"),
                ]);
            }
        }
        report.print();
    }
    println!(
        "\nPaper shape: more OM speeds every algorithm; Opaque ≥ 0-OM always;\n\
         hash is fastest for small T2 and loses ground as T2/OM grows. The\n\
         planner's pick should match the fastest of Hash/Opaque per row."
    );
}
