//! §7.2 "Impact of padding mode": the CFPB complaints table (107 k rows,
//! padded to 200 k) — aggregate and select slowdowns under padding.
//!
//! Paper numbers: grouped aggregation 4.4× slower (it pads to the maximum
//! supported group count), selection 2.4× slower, for ≈2× table padding.

use oblidb_bench::report::Report;
use oblidb_bench::setup::{scale, Scale};
use oblidb_bench::timing::fmt_duration;
use oblidb_core::padding::PaddingConfig;
use oblidb_core::{Database, DbConfig, StorageMethod};
use oblidb_workloads::cfpb;
use std::time::{Duration, Instant};

fn run(n: usize, padding: Option<PaddingConfig>, sql: &str) -> Duration {
    let mut db = Database::new(DbConfig { padding, ..DbConfig::default() });
    let rows = cfpb::complaints(n, 5);
    db.create_table_with_rows(
        "complaints",
        cfpb::schema(),
        StorageMethod::Flat,
        None,
        &rows,
        n as u64,
    )
    .unwrap();
    let start = Instant::now();
    db.execute(sql).unwrap();
    start.elapsed()
}

fn main() {
    let (n, pad) = match scale() {
        Scale::Small => (20_000usize, 40_000u64),
        Scale::Paper => (cfpb::CFPB_ROWS, cfpb::CFPB_PAD),
    };

    let mut report = Report::new(
        format!("§7.2 padding mode — CFPB table ({n} rows padded to {pad})"),
        &["query", "no padding", "padded", "slowdown", "paper"],
    );
    // Selection under padding pads the output structure to `pad` rows.
    let select_plain = run(n, None, cfpb::select_sql());
    let select_padded = run(n, Some(PaddingConfig::uniform(pad)), cfpb::select_sql());
    report.row(&[
        "select".into(),
        fmt_duration(select_plain),
        fmt_duration(select_padded),
        format!("{:.1}x", select_padded.as_secs_f64() / select_plain.as_secs_f64()),
        "2.4x".into(),
    ]);

    // Aggregation: the padded run pads the group table to the bound.
    let agg_plain = run(n, None, cfpb::aggregate_sql());
    let agg_padded = run(n, Some(PaddingConfig::uniform(pad)), cfpb::aggregate_sql());
    report.row(&[
        "aggregate".into(),
        fmt_duration(agg_plain),
        fmt_duration(agg_padded),
        format!("{:.1}x", agg_padded.as_secs_f64() / agg_plain.as_secs_f64()),
        "4.4x".into(),
    ]);
    report.print();
    println!("\nPaper shape: modest constant-factor slowdowns for ~2x padding.");
}
