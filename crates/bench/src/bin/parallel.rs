//! Worker-per-shard parallel scan scaling: the same sharded table scan
//! at 1/2/4/8 workers under SGX-priced crossings, recorded as
//! `BENCH_parallel.json`.
//!
//! Each of the 8 shards holds one partition of the table as its own
//! [`FlatTable`]; a scan hands every worker exclusive access to whole
//! shards via [`ShardedMemory::for_each_shard`], so each shard sees
//! exactly the serial access sequence whatever the worker count — the
//! conformance suite asserts that trace equality; this binary measures
//! what the concurrency buys.
//!
//! Crossing pricing: real SGX enclave exits are *stalls* — the enclave
//! thread does nothing while the untrusted host services the OCALL — so
//! each crossing sleeps [`STALL_NANOS`] rather than spinning. Stalls
//! overlap across workers even on a single hardware thread (the artifact
//! records `available_parallelism` so single-core runs read honestly);
//! the AEAD CPU under the stalls is what does not parallelize on one
//! core, which is exactly the Amdahl split the planner's
//! `CostProfile::with_threads` models.

use oblidb_bench::report::{write_parallel_json, ParallelMeta, ParallelScaling, Report};
use oblidb_bench::timing::{fmt_duration, time_mean};
use oblidb_core::table::FlatTable;
use oblidb_core::{Column, DataType, Schema, Value};
use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{Host, ThreadPool};
use oblidb_substrates::ShardedMemory;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// OCALL round-trip stall per crossing. ~1 ms is the paper-era cost of
/// an enclave exit that performs real untrusted work (positioned I/O,
/// syscall, return); large enough to dominate the per-batch AEAD CPU.
const STALL_NANOS: u64 = 1_000_000;

/// Shards = the maximum worker count measured.
const SHARDS: usize = 8;

fn smoke() -> bool {
    oblidb_bench::harness::smoke_mode()
}

fn rows_per_shard() -> u64 {
    if smoke() {
        256
    } else {
        1024
    }
}

fn iters() -> usize {
    if smoke() {
        2
    } else {
        5
    }
}

/// Bulk-loads one table partition per shard (serially, unpriced) and
/// then prices every shard's crossings as stalls.
fn setup(mem: &mut ShardedMemory<Host>) -> Vec<Mutex<FlatTable>> {
    let rows = rows_per_shard();
    let serial = ThreadPool::serial();
    let tables = mem.for_each_shard(&serial, |i, shard| {
        let schema =
            Schema::new(vec![Column::new("k", DataType::Int), Column::new("v", DataType::Int)]);
        let encoded: Vec<Vec<u8>> = (0..rows as i64)
            .map(|r| {
                let k = i as i64 * rows as i64 + r;
                schema.encode_row(&[Value::Int(k), Value::Int((k * 7) % 1000)]).unwrap()
            })
            .collect();
        let mut key = [0u8; 32];
        key[0] = i as u8 + 1;
        Mutex::new(
            FlatTable::from_encoded_rows(shard, AeadKey(key), schema, &encoded, rows).unwrap(),
        )
    });
    for s in 0..SHARDS {
        mem.shard_mut(s).set_crossing_stall(STALL_NANOS);
        mem.shard_mut(s).reset_stats();
    }
    tables
}

/// One full scan of every shard: each worker drains whole shards,
/// reading in the table's batched chunks and folding a checksum so the
/// reads cannot be optimized away. The per-shard access sequence is
/// independent of `pool`.
fn scan(mem: &mut ShardedMemory<Host>, tables: &[Mutex<FlatTable>], pool: &ThreadPool) -> u64 {
    let sums = mem.for_each_shard(pool, |i, shard| {
        let mut table = tables[i].lock().expect("one worker per shard");
        let row_len = table.schema().row_len();
        let cap = table.capacity();
        let chunk = table.io_chunk_rows();
        let mut acc = 0u64;
        let mut start = 0u64;
        while start < cap {
            let n = chunk.min((cap - start) as usize);
            let data = table.read_rows(shard, start, n).unwrap();
            for row in data.chunks_exact(row_len) {
                acc = acc.wrapping_add(u64::from(row[1])).wrapping_add(u64::from(row[9]));
            }
            start += n as u64;
        }
        acc
    });
    sums.into_iter().fold(0u64, u64::wrapping_add)
}

/// Measures the sleep a nominal stall actually costs on this machine
/// (timer granularity inflates short sleeps).
fn measured_stall() -> u64 {
    const PROBES: u32 = 16;
    let start = Instant::now();
    for _ in 0..PROBES {
        std::thread::sleep(Duration::from_nanos(STALL_NANOS));
    }
    (start.elapsed() / PROBES).as_nanos() as u64
}

fn main() {
    let mut mem = ShardedMemory::from_fn(SHARDS, |_| Host::new());
    let tables = setup(&mut mem);

    let reference = scan(&mut mem, &tables, &ThreadPool::serial());
    let crossings_per_scan: u64 = (0..SHARDS).map(|s| mem.shard_stats(s).crossings).sum();

    let mut results: Vec<ParallelScaling> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(workers);
        // Warm outside the timing; every run must agree with the serial
        // checksum — a wrong parallel result would make speedup moot.
        assert_eq!(scan(&mut mem, &tables, &pool), reference, "{workers} workers");
        let mean = time_mean(iters(), || {
            std::hint::black_box(scan(&mut mem, &tables, &pool));
        });
        let seconds = mean.as_secs_f64();
        let speedup = results.first().map_or(1.0, |base| base.seconds / seconds);
        results.push(ParallelScaling { workers, seconds, speedup, crossings: crossings_per_scan });
    }

    let meta = ParallelMeta {
        shards: SHARDS,
        rows_per_shard: rows_per_shard(),
        stall_nanos_nominal: STALL_NANOS,
        stall_nanos_measured: measured_stall(),
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
    };

    let mut report = Report::new(
        format!(
            "Worker-per-shard scan scaling ({SHARDS} shards x {} rows, {} stall per crossing)",
            meta.rows_per_shard,
            fmt_duration(Duration::from_nanos(STALL_NANOS)),
        ),
        &["workers", "mean", "speedup", "crossings"],
    );
    for r in &results {
        report.row(&[
            r.workers.to_string(),
            fmt_duration(Duration::from_secs_f64(r.seconds)),
            format!("{:.2}x", r.speedup),
            r.crossings.to_string(),
        ]);
    }
    report.print();
    println!(
        "measured stall {} (nominal {}), available_parallelism {}",
        fmt_duration(Duration::from_nanos(meta.stall_nanos_measured)),
        fmt_duration(Duration::from_nanos(meta.stall_nanos_nominal)),
        meta.available_parallelism,
    );
    if let Some(four) = results.iter().find(|r| r.workers == 4) {
        if four.speedup < 3.0 {
            eprintln!("warning: {:.2}x at 4 workers (target >= 3x)", four.speedup);
        }
    }

    match write_parallel_json(std::path::Path::new("."), "parallel", &meta, &results) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_parallel.json: {e}"),
    }
}
