//! Planner calibration: closed-form vs cost-calibrated operator choices
//! across substrate profiles, recorded for the perf trajectory.
//!
//! For a sweep of query shapes (selectivity × oblivious-memory budget)
//! the same SELECT is planned twice — once with the closed-form formulas
//! (paper §5 as originally reproduced) and once with the measured,
//! `CountingMemory`-driven model — under the host, disk, and cached-disk
//! [`CostProfile`]s. Emits `BENCH_planner.json`: one row per profile ×
//! shape with both choices and their counted, profile-weighted costs
//! (crossings priced per substrate; the host profile's crossing weight is
//! the SGX OCALL model). The interesting rows are the ones where the
//! columns disagree — the flips the closed-form formulas cannot see.

use std::fmt::Write as _;

use oblidb_core::plan::SelectChoice;
use oblidb_core::planner::CostModel;
use oblidb_core::{CostProfile, Database, DbConfig, SelectAlgo, StorageMethod, Value};

fn smoke() -> bool {
    oblidb_bench::harness::smoke_mode()
}

struct Shape {
    name: &'static str,
    rows: i64,
    om_bytes: usize,
    /// WHERE v = 1 with v = i % modulus: selectivity 1/modulus.
    modulus: i64,
}

fn shapes() -> Vec<Shape> {
    let mut all = vec![
        Shape { name: "half-tiny-om", rows: 512, om_bytes: 128, modulus: 2 },
        Shape { name: "half-big-om", rows: 512, om_bytes: 1 << 20, modulus: 2 },
        Shape { name: "sparse-tiny-om", rows: 512, om_bytes: 128, modulus: 32 },
    ];
    if !smoke() {
        all.push(Shape { name: "half-mid-om", rows: 1024, om_bytes: 512, modulus: 2 });
        all.push(Shape { name: "dense-tiny-om", rows: 1024, om_bytes: 256, modulus: 8 });
    }
    all
}

fn profiles() -> Vec<CostProfile> {
    vec![CostProfile::host(), CostProfile::disk(), CostProfile::cached_disk()]
}

fn build(shape: &Shape, model: CostModel) -> Database {
    let mut config = DbConfig { om_bytes: shape.om_bytes, ..DbConfig::default() };
    config.planner.cost_model = model;
    let mut db = Database::new(config);
    let schema = oblidb_core::Schema::new(vec![
        oblidb_core::Column::new("id", oblidb_core::DataType::Int),
        oblidb_core::Column::new("v", oblidb_core::DataType::Int),
    ]);
    let data: Vec<Vec<Value>> =
        (0..shape.rows).map(|i| vec![Value::Int(i), Value::Int(i % shape.modulus)]).collect();
    db.create_table_with_rows("t", schema, StorageMethod::Flat, None, &data, shape.rows as u64)
        .unwrap();
    db
}

/// Plans (without running) and reports the filter's chosen operator plus
/// its estimated weighted cost.
fn plan_choice(shape: &Shape, model: CostModel) -> (SelectAlgo, f64, Vec<(SelectAlgo, f64)>) {
    let mut db = build(shape, model);
    let stmt = db.prepare("SELECT * FROM t WHERE v = 1").unwrap();
    let filter = stmt.plan().select_root().unwrap().find_filter().unwrap();
    let algo = filter.choice.algo().expect("flat base filter is decided at prepare");
    let weighted = filter.est.map(|c| c.weighted).unwrap_or(f64::NAN);
    let candidates = match &filter.choice {
        SelectChoice::Chosen { candidates, .. } => {
            candidates.iter().map(|c| (c.algo, c.cost.weighted)).collect()
        }
        _ => Vec::new(),
    };
    (algo, weighted, candidates)
}

fn main() {
    let mut rows_json = Vec::new();
    let mut table = oblidb_bench::report::Report::new(
        "planner: closed-form vs cost-calibrated",
        &["profile", "shape", "closed-form", "costed", "closed w-cost", "costed w-cost", "flip"],
    );

    for profile in profiles() {
        for shape in shapes() {
            let (closed_algo, _, _) = plan_choice(&shape, CostModel::ClosedForm);
            let (costed_algo, costed_cost, candidates) =
                plan_choice(&shape, CostModel::Measured(profile.clone()));
            // Price the closed-form choice under the same profile so the
            // columns are comparable; the candidate table has it unless
            // the closed-form pick was inadmissible (then re-simulate).
            let closed_cost = candidates
                .iter()
                .find(|(a, _)| *a == closed_algo)
                .map(|(_, c)| *c)
                .unwrap_or(f64::NAN);
            let flip = closed_algo != costed_algo;
            table.row(&[
                profile.name.clone(),
                shape.name.to_string(),
                format!("{closed_algo:?}"),
                format!("{costed_algo:?}"),
                format!("{closed_cost:.0}"),
                format!("{costed_cost:.0}"),
                if flip { "FLIP".into() } else { String::new() },
            ]);
            let mut line = String::new();
            write!(
                line,
                "{{\"profile\": \"{}\", \"shape\": \"{}\", \"rows\": {}, \"om_bytes\": {}, \
                 \"selectivity\": {:.4}, \"closed_form\": \"{:?}\", \"costed\": \"{:?}\", \
                 \"closed_weighted\": {:.1}, \"costed_weighted\": {:.1}, \"flip\": {}}}",
                profile.name,
                shape.name,
                shape.rows,
                shape.om_bytes,
                1.0 / shape.modulus as f64,
                closed_algo,
                costed_algo,
                closed_cost,
                costed_cost,
                flip,
            )
            .unwrap();
            rows_json.push(line);
        }
    }
    table.print();

    let json = format!(
        "{{\n  \"bench\": \"planner\",\n  \"results\": [\n    {}\n  ]\n}}\n",
        rows_json.join(",\n    ")
    );
    std::fs::write("BENCH_planner.json", &json).expect("write BENCH_planner.json");
    println!("\nwrote BENCH_planner.json ({} rows)", rows_json.len());

    // The artifact must contain at least one flip, or the calibration adds
    // nothing — fail the bench run loudly rather than rot silently.
    assert!(json.contains("\"flip\": true"), "expected at least one profile-driven plan flip");
}
