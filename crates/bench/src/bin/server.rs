//! Serving-throughput scaling: N concurrent TCP connections (one
//! engine session each) driving a read-heavy statement mix against one
//! `oblidb-server` under SGX-priced crossings, recorded as
//! `BENCH_server.json`.
//!
//! The mechanism under test is the shared-database concurrency split:
//! snapshot selects fork off the shared store and pay their crossing
//! stalls *outside* the store lock, so N sessions' stalls overlap —
//! while the occasional insert serializes on the master under the
//! write latch, exactly like a single-owner engine. With stalls
//! dominating statement latency (1 ms per crossing, the paper-era
//! OCALL round-trip), read-heavy throughput should scale near-linearly
//! until the machine runs out of cores.
//!
//! Each sweep point gets a fresh engine and server so table growth from
//! earlier points cannot tilt the comparison; every client runs the
//! same per-session statement budget and the row reports aggregate
//! statements per wall second.

use std::time::Instant;

use oblidb_bench::report::{write_server_json, Report, ServerMeta, ServerScaling};
use oblidb_core::{DbConfig, SharedDatabase};
use oblidb_enclave::Host;
use oblidb_server::client::{Connection, StatementResult};
use oblidb_server::server::{serve, ServerConfig};

/// OCALL round-trip stall per crossing (see `parallel.rs`).
const STALL_NANOS: u64 = 1_000_000;

/// Selects per insert in each client's mix.
const READS_PER_WRITE: u64 = 15;

fn smoke() -> bool {
    oblidb_bench::harness::smoke_mode()
}

fn table_rows() -> u64 {
    if smoke() {
        48
    } else {
        256
    }
}

fn statements_per_session() -> u64 {
    if smoke() {
        32
    } else {
        128
    }
}

fn session_counts() -> Vec<usize> {
    if smoke() {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    }
}

/// Builds a fresh served engine: flat table, unpriced bulk load, then
/// SGX-priced crossings at the shared layer.
fn start_point(sessions: usize) -> (oblidb_server::server::ServerHandle, String) {
    let config = DbConfig { seed: 7, ..DbConfig::default() };
    let db = SharedDatabase::new(Host::new(), config).expect("engine");
    let mut setup = db.session();
    setup.execute("CREATE TABLE t (k INT, v INT) STORAGE = FLAT CAPACITY 8192").expect("create");
    for k in 0..table_rows() as i64 {
        setup.execute(&format!("INSERT INTO t VALUES ({k}, {})", (k * 7) % 1000)).expect("load");
    }
    db.store().set_crossing_stall(STALL_NANOS);
    let handle =
        serve(db, ServerConfig { addr: "127.0.0.1:0".to_string(), workers: sessions, epoch: None })
            .expect("serve");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// One client's budget: cycling cache-friendly selects with one insert
/// per [`READS_PER_WRITE`] reads, at client-unique keys.
fn drive_client(addr: &str, client: usize, statements: u64) {
    let mut conn = Connection::connect(addr).expect("connect");
    let selects = [
        "SELECT v FROM t WHERE k = 11",
        "SELECT v FROM t WHERE k < 8",
        "SELECT COUNT(*) FROM t",
        "SELECT v FROM t WHERE v > 900",
    ];
    let mut inserted = 0u64;
    for i in 0..statements {
        if i % (READS_PER_WRITE + 1) == READS_PER_WRITE {
            let k = 1_000_000 + client as u64 * 10_000 + inserted;
            inserted += 1;
            match conn.execute(&format!("INSERT INTO t VALUES ({k}, 1)")).expect("insert") {
                StatementResult::RowsAffected(1) => {}
                other => panic!("unexpected insert result: {other:?}"),
            }
        } else {
            match conn.execute(selects[(i % READS_PER_WRITE) as usize % selects.len()]) {
                Ok(StatementResult::Rows { .. }) => {}
                other => panic!("unexpected select result: {other:?}"),
            }
        }
    }
}

fn main() {
    let statements = statements_per_session();
    let mut results: Vec<ServerScaling> = Vec::new();
    let mut report = Report::new(
        "Serving throughput vs concurrent sessions (read-heavy, 1 ms crossings)",
        &["sessions", "seconds", "stmts/s", "speedup"],
    );
    for sessions in session_counts() {
        let (handle, addr) = start_point(sessions);
        let started = Instant::now();
        std::thread::scope(|scope| {
            for client in 0..sessions {
                let addr = addr.clone();
                scope.spawn(move || drive_client(&addr, client, statements));
            }
        });
        let seconds = started.elapsed().as_secs_f64();
        handle.shutdown();
        let stmts_per_sec = (sessions as u64 * statements) as f64 / seconds;
        let speedup = match results.first() {
            Some(base) => stmts_per_sec / base.stmts_per_sec,
            None => 1.0,
        };
        report.row(&[
            sessions.to_string(),
            format!("{seconds:.3}"),
            format!("{stmts_per_sec:.1}"),
            format!("{speedup:.2}"),
        ]);
        results.push(ServerScaling { sessions, seconds, stmts_per_sec, speedup });
    }
    report.print();
    let meta = ServerMeta {
        rows: table_rows(),
        statements_per_session: statements,
        reads_per_write: READS_PER_WRITE,
        stall_nanos_nominal: STALL_NANOS,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let path = write_server_json(std::path::Path::new("."), "server", &meta, &results)
        .expect("write BENCH_server.json");
    println!("\nwrote {}", path.display());
}
