//! Substrate comparison: the same engine workloads over in-RAM, disk,
//! cached-disk, and sharded backends, recorded for the perf trajectory.
//!
//! Runs scan-, select-, and ORAM-shaped workloads through the full
//! engine over each [`SubstrateSpec`] and emits `BENCH_substrates.json`
//! (one row per substrate × workload: wall-clock + the uniform
//! [`oblidb_enclave::StatsReport`] counters + backing crossings for
//! cached substrates).
//! The logical counters are identical across substrates by construction —
//! that is the conformance property — so the interesting columns are
//! seconds and, for the cache, how much backing traffic was absorbed.

use oblidb_bench::report::{write_substrate_json, Report, SubstrateMeasurement};
use oblidb_bench::timing::{fmt_duration, time_mean};
use oblidb_core::{Database, DbConfig, StorageMethod, Value};
use oblidb_enclave::EnclaveMemory;
use oblidb_substrates::{AnySubstrate, SubstrateSpec};
use std::time::Duration;

/// Same SGX-transition model as `batch_io`: ~8k cycles per crossing.
const SGX_CROSSING_SPINS: u32 = 250;

fn smoke() -> bool {
    oblidb_bench::harness::smoke_mode()
}

fn rows() -> i64 {
    if smoke() {
        128
    } else {
        2048
    }
}

fn iters() -> usize {
    if smoke() {
        1
    } else {
        5
    }
}

fn specs() -> Vec<SubstrateSpec> {
    // Sized for the hot set (flat table + ORAM buckets): the cache's
    // intended operating point. The conformance suite covers the
    // larger-than-cache regime; the ROADMAP notes the follow-up that
    // would soften it here (coalescing batched misses).
    let cache = rows() as usize * 2;
    vec![
        SubstrateSpec::Host,
        SubstrateSpec::Disk { dir: None },
        SubstrateSpec::CachedDisk { dir: None, capacity_blocks: cache },
        SubstrateSpec::ShardedHost { shards: 4 },
        SubstrateSpec::ShardedDisk { dir: None, shards: 4 },
    ]
}

/// Builds the experiment database: a flat fact table and an ORAM-indexed
/// point-lookup table, bulk-loaded.
fn setup(substrate: AnySubstrate) -> Database<AnySubstrate> {
    let n = rows();
    let mut db = Database::with_memory(substrate, DbConfig::default());
    let schema = oblidb_core::Schema::new(vec![
        oblidb_core::Column::new("k", oblidb_core::DataType::Int),
        oblidb_core::Column::new("v", oblidb_core::DataType::Int),
    ]);
    let data: Vec<Vec<Value>> =
        (0..n).map(|i| vec![Value::Int(i), Value::Int((i * 7) % 1000)]).collect();
    db.create_table_with_rows("t", schema.clone(), StorageMethod::Flat, None, &data, n as u64)
        .unwrap();
    let idx_n = n / 8;
    let idx_data: Vec<Vec<Value>> =
        (0..idx_n).map(|i| vec![Value::Int(i), Value::Int(i * 3)]).collect();
    db.create_table_with_rows(
        "idx",
        schema,
        StorageMethod::Indexed,
        Some("k"),
        &idx_data,
        idx_n as u64,
    )
    .unwrap();
    db
}

/// One workload measurement: times `iters()` runs, then captures the
/// counters of exactly one further run, so the JSON row pairs
/// mean-per-iteration seconds with per-iteration counters whatever the
/// iteration count (smoke and full artifacts stay comparable).
fn measure(
    db: &mut Database<AnySubstrate>,
    workload: &str,
    mut f: impl FnMut(&mut Database<AnySubstrate>),
) -> SubstrateMeasurement {
    // Warm once (page cache, allocator, ORAM stash) outside the timing.
    f(db);
    let mean = time_mean(iters(), || f(db));
    db.host_mut().reset_stats();
    let backing_before = db.host_mut().backing_stats().map(|s| s.crossings);
    f(db);
    let m = db.host_mut();
    SubstrateMeasurement {
        workload: workload.to_string(),
        report: m.stats().report(m.label()),
        seconds: mean.as_secs_f64(),
        backing_crossings: m.backing_stats().map(|s| s.crossings - backing_before.unwrap_or(0)),
    }
}

fn main() {
    let n = rows();
    let mut results: Vec<SubstrateMeasurement> = Vec::new();
    let mut cache_notes: Vec<String> = Vec::new();

    for spec in specs() {
        let mut substrate = spec.build().expect("substrate builds");
        substrate.set_crossing_cost(SGX_CROSSING_SPINS);
        let label = substrate.label();
        let mut db = setup(substrate);

        results.push(measure(&mut db, "scan", |db| {
            let out = db.execute("SELECT COUNT(*), SUM(v) FROM t WHERE k >= 0").unwrap();
            std::hint::black_box(out.rows()[0][0].as_int());
        }));
        results.push(measure(&mut db, "select", |db| {
            let out = db.execute(&format!("SELECT * FROM t WHERE k < {}", n / 8)).unwrap();
            std::hint::black_box(out.len());
        }));
        results.push(measure(&mut db, "oram_point", |db| {
            for probe in [1i64, n / 16, n / 8 - 1] {
                let out = db.execute(&format!("SELECT * FROM idx WHERE k = {probe}")).unwrap();
                std::hint::black_box(out.len());
            }
        }));

        if let Some(cs) = db.host_mut().cache_stats() {
            cache_notes.push(format!(
                "{label}: cache hit rate {:.1}% ({} hits / {} misses, {} evictions)",
                cs.hit_rate() * 100.0,
                cs.hits,
                cs.misses,
                cs.evictions
            ));
        }
    }

    let mut report = Report::new(
        format!("Engine workloads across substrates ({n} rows, SGX-priced crossings)"),
        &["substrate", "workload", "mean", "crossings", "backing-crossings"],
    );
    for r in &results {
        report.row(&[
            r.report.name.clone(),
            r.workload.clone(),
            fmt_duration(Duration::from_secs_f64(r.seconds)),
            r.report.stats.crossings.to_string(),
            r.backing_crossings.map_or_else(|| "-".into(), |b| b.to_string()),
        ]);
    }
    report.print();
    for note in &cache_notes {
        println!("{note}");
    }

    match write_substrate_json(std::path::Path::new("."), "substrates", &results) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_substrates.json: {e}"),
    }
}
