//! Telemetry overhead: the same query workloads with spans + metrics off
//! vs on, recorded as `BENCH_telemetry.json`.
//!
//! The disabled cost is one relaxed atomic load per instrumentation
//! site; the enabled cost is a monotonic clock read and a ring push per
//! span plus relaxed counter bumps — all in enclave memory, no host
//! crossings either way (the conformance suite asserts trace equality).
//! This binary quantifies the wall-clock side: spans-on must stay under
//! 5% of spans-off on every workload, and the assertion is enforced in
//! full mode (smoke runs are too short to time reliably but still
//! exercise the pipeline and emit the artifact).

use oblidb_bench::report::{write_telemetry_json, Report, TelemetryOverhead};
use oblidb_bench::timing::{fmt_duration, time_mean};
use oblidb_core::{Database, DbConfig};
use std::time::Duration;

fn smoke() -> bool {
    oblidb_bench::harness::smoke_mode()
}

fn iters() -> usize {
    if smoke() {
        2
    } else {
        15
    }
}

fn table_rows() -> u64 {
    if smoke() {
        64
    } else {
        1024
    }
}

/// A fresh engine with the benchmark tables loaded.
fn seeded() -> Database {
    let rows = table_rows();
    let mut db = Database::new(DbConfig::default());
    db.execute(&format!("CREATE TABLE t (k INT, v INT) CAPACITY {}", rows * 2)).unwrap();
    for i in 0..rows {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 3)).unwrap();
    }
    db.execute("CREATE TABLE d (g INT, label CHAR(8)) CAPACITY 16").unwrap();
    for g in 0..8 {
        db.execute(&format!("INSERT INTO d VALUES ({g}, 'g{g}')")).unwrap();
    }
    db
}

/// The measured workloads: one mid-selectivity select, one aggregate,
/// one join — the operator spectrum the spans instrument.
const WORKLOADS: &[(&str, &str)] = &[
    ("select_scan", "SELECT * FROM t WHERE k >= 16 AND k < 48"),
    ("aggregate", "SELECT COUNT(*), SUM(v) FROM t WHERE v < 300"),
    ("join", "SELECT * FROM d JOIN t ON d.g = t.k WHERE v < 18"),
];

/// One batch: mean seconds per run of `sql` on a prepared engine,
/// telemetry in whatever state the caller set. Draining the span ring
/// between runs makes the enabled case pay ring-overwrite costs honestly
/// rather than saturating and short-circuiting.
fn batch(db: &mut Database, sql: &str) -> f64 {
    time_mean(iters(), || {
        std::hint::black_box(db.execute(sql).unwrap());
        let _ = oblidb_telemetry::take_spans();
    })
    .as_secs_f64()
}

/// Cost floors for off and on, from *interleaved* batches: alternating
/// off/on exposes both phases to the same machine drift (thermal,
/// scheduler, allocator), and the per-phase min rejects the jitter —
/// the overhead compares floors, not means of unequal noise.
fn measure_pair(db_off: &mut Database, db_on: &mut Database, sql: &str) -> (f64, f64) {
    let batches = if smoke() { 1 } else { 5 };
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..batches {
        oblidb_telemetry::set_enabled(false);
        off = off.min(batch(db_off, sql));
        oblidb_telemetry::set_enabled(true);
        on = on.min(batch(db_on, sql));
    }
    oblidb_telemetry::set_enabled(false);
    (off, on)
}

fn main() {
    let mut results: Vec<TelemetryOverhead> = Vec::new();

    for (workload, sql) in WORKLOADS {
        // A fresh engine per phase so plan-cache state matches.
        oblidb_telemetry::set_enabled(false);
        let mut db_off = seeded();
        db_off.execute(sql).unwrap(); // warm
        let mut db_on = seeded();
        oblidb_telemetry::set_enabled(true);
        db_on.execute(sql).unwrap();
        let _ = oblidb_telemetry::take_spans();
        db_on.execute(sql).unwrap();
        let spans_per_iter = oblidb_telemetry::take_spans().len() as u64;

        let (off_seconds, on_seconds) = measure_pair(&mut db_off, &mut db_on, sql);
        let overhead = on_seconds / off_seconds - 1.0;
        results.push(TelemetryOverhead {
            workload: workload.to_string(),
            off_seconds,
            on_seconds,
            overhead,
            spans_per_iter,
        });
    }

    let mut report = Report::new(
        format!(
            "Telemetry overhead ({} rows, {} iters{})",
            table_rows(),
            iters(),
            if smoke() { ", smoke" } else { "" },
        ),
        &["workload", "off", "on", "overhead", "spans/iter"],
    );
    for r in &results {
        report.row(&[
            r.workload.clone(),
            fmt_duration(Duration::from_secs_f64(r.off_seconds)),
            fmt_duration(Duration::from_secs_f64(r.on_seconds)),
            format!("{:+.1}%", r.overhead * 100.0),
            r.spans_per_iter.to_string(),
        ]);
    }
    report.print();

    match write_telemetry_json(std::path::Path::new("."), "telemetry", iters(), &results) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_telemetry.json: {e}"),
    }

    // The acceptance bar: spans-on stays under 5% of spans-off. Smoke
    // iterations are far below timer noise, so the bar is only enforced
    // on full runs.
    if !smoke() {
        for r in &results {
            assert!(
                r.overhead < 0.05,
                "{}: telemetry-on overhead {:.1}% exceeds the 5% budget",
                r.workload,
                r.overhead * 100.0
            );
        }
        println!("all workloads under the 5% spans-on budget");
    }
}
