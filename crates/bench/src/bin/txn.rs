//! Group commit: write-heavy throughput on a disk store under the
//! per-statement-fsync discipline vs epoch group commit at several epoch
//! sizes, recorded as `BENCH_txn.json`.
//!
//! The baseline logs every mutation as a standalone durable record — one
//! `sync_region` (data fsync + region-table rewrite) per statement. The
//! epoch rows pool the same statements into open epochs that the
//! transaction manager seals every k statements: one commit marker and
//! one group fsync amortized over the whole window, exactly what
//! `oblidb-serve --epoch-ms` buys a write-heavy client. The acceptance
//! bar — group commit at least 3× the baseline — is enforced on full
//! runs (smoke runs still exercise the pipeline and emit the artifact).

use oblidb_bench::report::{write_txn_json, Report, TxnThroughput};
use oblidb_bench::timing::fmt_duration;
use oblidb_core::{DbConfig, EpochConfig, SharedDatabase, WalConfig};
use oblidb_substrates::DiskMemory;
use oblidb_txn::TxnManager;
use std::time::{Duration, Instant};

fn smoke() -> bool {
    oblidb_bench::harness::smoke_mode()
}

/// Mutations per measured run. Small even in full mode: the baseline
/// pays a real fsync per statement.
fn statements() -> u64 {
    if smoke() {
        48
    } else {
        384
    }
}

/// Epoch sizes swept (statements per group fsync).
const EPOCH_SIZES: &[usize] = &[8, 32, 128];

/// Runs the write-heavy stream — 3 inserts : 1 update — through a
/// transaction-manager session over a fresh disk store, and returns the
/// wall seconds for the stream plus the final flush. `epoch_cap` of
/// `None` is the per-statement-fsync baseline.
fn run(epoch_cap: Option<usize>) -> f64 {
    let epoch = epoch_cap.map(|k| EpochConfig { duration_ms: 3_600_000, max_statements: k });
    let config = DbConfig { wal: Some(WalConfig::default()), epoch, ..DbConfig::default() };
    let store = DiskMemory::temp().expect("temp disk store");
    let shared = SharedDatabase::new(store, config.clone()).expect("shared engine");
    let mgr = TxnManager::new(shared, config.epoch);
    let mut session = mgr.session();
    session
        .execute(&format!("CREATE TABLE t (k INT, v INT) CAPACITY {}", statements() * 2))
        .unwrap();
    let start = Instant::now();
    for i in 0..statements() {
        if i % 4 == 3 {
            session.execute(&format!("UPDATE t SET v = -1 WHERE k = {}", i / 2)).unwrap();
        } else {
            session.execute(&format!("INSERT INTO t VALUES ({i}, {i})")).unwrap();
        }
    }
    mgr.flush().unwrap();
    start.elapsed().as_secs_f64()
}

fn main() {
    let n = statements();
    let mut results: Vec<TxnThroughput> = Vec::new();

    let base_seconds = run(None);
    results.push(TxnThroughput {
        mode: "per-statement".into(),
        epoch_statements: 1,
        seconds: base_seconds,
        stmts_per_sec: n as f64 / base_seconds,
        speedup: 1.0,
    });
    for &k in EPOCH_SIZES {
        let seconds = run(Some(k));
        results.push(TxnThroughput {
            mode: format!("epoch/{k}"),
            epoch_statements: k as u64,
            seconds,
            stmts_per_sec: n as f64 / seconds,
            speedup: base_seconds / seconds.max(f64::MIN_POSITIVE),
        });
    }

    let mut report = Report::new(
        format!(
            "Group commit vs per-statement fsync ({n} statements, disk{})",
            if smoke() { ", smoke" } else { "" },
        ),
        &["mode", "wall", "stmts/s", "speedup"],
    );
    for r in &results {
        report.row(&[
            r.mode.clone(),
            fmt_duration(Duration::from_secs_f64(r.seconds)),
            format!("{:.0}", r.stmts_per_sec),
            format!("{:.2}x", r.speedup),
        ]);
    }
    report.print();

    match write_txn_json(std::path::Path::new("."), "txn", n, &results) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_txn.json: {e}"),
    }

    // The acceptance bar: some epoch size reaches 3× the per-statement
    // baseline. Smoke runs are too short to time reliably.
    if !smoke() {
        let best = results[1..].iter().map(|r| r.speedup).fold(0.0, f64::max);
        assert!(best >= 3.0, "group commit best speedup {best:.2}x is under the 3x acceptance bar");
        println!("group commit clears the 3x bar (best {best:.2}x)");
    }
}
