//! A minimal, dependency-free stand-in for the subset of the `criterion`
//! API the micro-benchmarks use (the workspace builds offline, so the real
//! crate is unavailable). Timing is wall-clock with adaptive batching:
//! each sample runs enough iterations to cover ~1 ms, and the report
//! prints mean and best sample per benchmark, plus throughput when set.
//!
//! If criterion is ever vendored, the bench files migrate by switching
//! `use oblidb_bench::harness::…` back to `use criterion::…`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark configuration and entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

/// True when `OBLIDB_BENCH_SMOKE` is set: every benchmark body runs once
/// per sample with no calibration, so `cargo bench` becomes a fast
/// compile-and-run smoke check (used in CI to keep the bench crate from
/// rotting).
pub fn smoke_mode() -> bool {
    std::env::var_os("OBLIDB_BENCH_SMOKE").is_some()
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: if smoke_mode() { 1 } else { 20 } }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (ignored in smoke mode).
    pub fn sample_size(mut self, n: usize) -> Self {
        if !smoke_mode() {
            self.sample_size = n.max(2);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        BenchmarkGroup { criterion: self, throughput: None }
    }
}

/// Throughput annotation for a group (mirrors `criterion::Throughput`).
#[derive(Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark id (mirrors `criterion::BenchmarkId`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one label.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { label: format!("{name}/{param}") }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in the report.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        b.report(&id.label, self.throughput);
        self
    }

    /// Runs a benchmark without inputs.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        b.report(name, self.throughput);
        self
    }

    /// Ends the group (report is emitted incrementally).
    pub fn finish(&mut self) {}
}

/// Runs and times one benchmark body (mirrors `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

/// Minimum time one sample should cover, to dominate timer resolution.
const TARGET_SAMPLE: Duration = Duration::from_millis(1);

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, samples: Vec::new(), iters_per_sample: 1 }
    }

    /// Times `f`, batching fast bodies so each sample is measurable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if smoke_mode() {
            self.iters_per_sample = 1;
            self.samples.clear();
            for _ in 0..self.sample_size {
                let start = Instant::now();
                std::hint::black_box(f());
                self.samples.push(start.elapsed());
            }
            return;
        }
        // Calibration: find a batch size covering the target sample time.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || batch >= 1 << 20 {
                break;
            }
            batch = if elapsed.is_zero() {
                batch * 16
            } else {
                let scale = TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1) + 1;
                (batch * scale as u64).clamp(batch + 1, batch * 16)
            };
        }
        self.iters_per_sample = batch;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("  {label}: no samples");
            return;
        }
        let per_iter = |d: Duration| d.as_secs_f64() / self.iters_per_sample as f64;
        let total: f64 = self.samples.iter().map(|d| per_iter(*d)).sum();
        let mean = total / self.samples.len() as f64;
        let best = self.samples.iter().map(|d| per_iter(*d)).fold(f64::INFINITY, f64::min);
        let tp = match throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  {:>8.1} MiB/s", b as f64 / mean / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "  {label}: mean {} best {} ({} samples x {} iters){tp}",
            fmt_secs(mean),
            fmt_secs(best),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3}µs", secs * 1e6)
    } else {
        format!("{:.1}ns", secs * 1e9)
    }
}

/// Declares a benchmark group runner (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_batches_and_reports() {
        let mut b = Bencher::new(3);
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.iters_per_sample >= 1);
        b.report("smoke", Some(Throughput::Bytes(64)));
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_secs(2.0).ends_with('s'));
        assert!(fmt_secs(2e-3).ends_with("ms"));
        assert!(fmt_secs(2e-6).ends_with("µs"));
        assert!(fmt_secs(2e-9).ends_with("ns"));
    }
}
