//! Shared helpers for the benchmark harness binaries (one per paper
//! table/figure; see DESIGN.md §5 for the experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;
pub mod timing;

pub mod setup;
