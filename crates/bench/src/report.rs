//! Result-table printing for the figure harness binaries.
//!
//! Each binary prints the rows/series its paper figure reports, with the
//! paper's numbers alongside for shape comparison (absolute values differ:
//! our substrate is a simulator, not the authors' SGX testbed — see
//! EXPERIMENTS.md).

use oblidb_enclave::StatsReport;

/// A printable results table.
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report with a figure title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} ==", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:<w$}", w = widths[i]))
            .collect();
        println!("{}", header.join("  "));
        println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().enumerate().map(|(i, c)| format!("{c:<w$}", w = widths[i])).collect();
            println!("{}", line.join("  "));
        }
    }

    /// Renders as a markdown table (for EXPERIMENTS.md snippets).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// One per-block vs. batched measurement for the perf trajectory.
#[derive(Debug, Clone)]
pub struct BatchComparison {
    /// Case label, e.g. `"read/4096B"`.
    pub name: String,
    /// Blocks moved per measured operation.
    pub blocks: usize,
    /// Mean seconds for the per-block loop.
    pub per_block_s: f64,
    /// Mean seconds for the batched call.
    pub batched_s: f64,
}

impl BatchComparison {
    /// Wall-clock speedup of the batched path.
    pub fn speedup(&self) -> f64 {
        self.per_block_s / self.batched_s.max(f64::MIN_POSITIVE)
    }
}

/// Writes `BENCH_<name>.json` (hand-rolled JSON — the workspace is
/// dependency-free) with a stable schema the perf trajectory can diff:
/// `{"bench": name, "results": [{name, blocks, per_block_s, batched_s,
/// speedup}, …]}`. Returns the path written.
pub fn write_batch_json(
    dir: &std::path::Path,
    name: &str,
    results: &[BatchComparison],
) -> std::io::Result<std::path::PathBuf> {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"bench\": {},\n  \"results\": [\n", json_str(name)));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": {}, \"blocks\": {}, \"per_block_s\": {:.9}, \"batched_s\": {:.9}, \"speedup\": {:.3}}}{}\n",
            json_str(&r.name),
            r.blocks,
            r.per_block_s,
            r.batched_s,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, out)?;
    Ok(path)
}

/// One substrate × workload measurement for the substrate trajectory:
/// wall-clock plus the uniform [`StatsReport`] counters, and the backing
/// traffic when a cache layer absorbed part of it.
#[derive(Debug, Clone)]
pub struct SubstrateMeasurement {
    /// Workload label, e.g. `"scan"`.
    pub workload: String,
    /// The logical access counters, named by substrate
    /// ([`StatsReport::name`] is the substrate label).
    pub report: StatsReport,
    /// Mean seconds per workload iteration.
    pub seconds: f64,
    /// Inner-substrate crossings after cache absorption (`None` when the
    /// substrate has no cache layer).
    pub backing_crossings: Option<u64>,
}

/// Writes `BENCH_<name>.json` with one row per substrate × workload:
/// `{"bench": name, "results": [{substrate, workload, seconds, reads,
/// writes, bytes_read, bytes_written, crossings, stall_nanos,
/// backing_crossings?}, …]}`. Returns the path written.
pub fn write_substrate_json(
    dir: &std::path::Path,
    name: &str,
    results: &[SubstrateMeasurement],
) -> std::io::Result<std::path::PathBuf> {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"bench\": {},\n  \"results\": [\n", json_str(name)));
    for (i, r) in results.iter().enumerate() {
        let s = r.report.stats;
        let backing = match r.backing_crossings {
            Some(b) => format!(", \"backing_crossings\": {b}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"substrate\": {}, \"workload\": {}, \"seconds\": {:.9}, \"reads\": {}, \
             \"writes\": {}, \"bytes_read\": {}, \"bytes_written\": {}, \"crossings\": {}, \
             \"stall_nanos\": {}{}}}{}\n",
            json_str(&r.report.name),
            json_str(&r.workload),
            r.seconds,
            s.reads,
            s.writes,
            s.bytes_read,
            s.bytes_written,
            s.crossings,
            s.stall_nanos,
            backing,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, out)?;
    Ok(path)
}

/// One worker-count measurement of the parallel scan-scaling bench.
#[derive(Debug, Clone)]
pub struct ParallelScaling {
    /// Worker threads driving the shards.
    pub workers: usize,
    /// Mean seconds per full scan of every shard.
    pub seconds: f64,
    /// Wall-clock speedup over the serial (workers = 1) row.
    pub speedup: f64,
    /// Total boundary crossings per scan, summed over shards (identical
    /// at every worker count — parallelism never changes the counters).
    pub crossings: u64,
}

/// The fixed experimental conditions behind a parallel-scaling run —
/// recorded in the artifact so a reader can judge the numbers: the
/// speedup comes from overlapping per-crossing *stalls* (the enclave
/// waiting on the untrusted host), which parallelize even when
/// `available_parallelism` is 1.
#[derive(Debug, Clone)]
pub struct ParallelMeta {
    /// Shard (and therefore maximum worker) count.
    pub shards: usize,
    /// Rows scanned per shard.
    pub rows_per_shard: u64,
    /// Configured per-crossing stall, nanoseconds.
    pub stall_nanos_nominal: u64,
    /// Measured mean stall (sleep granularity inflates the nominal
    /// value), nanoseconds.
    pub stall_nanos_measured: u64,
    /// `std::thread::available_parallelism()` on the machine that ran it.
    pub available_parallelism: usize,
}

/// Writes `BENCH_<name>.json` for the parallel scan-scaling bench:
/// `{"bench": name, <meta fields>, "results": [{workers, seconds,
/// speedup, crossings}, …]}`. Returns the path written.
pub fn write_parallel_json(
    dir: &std::path::Path,
    name: &str,
    meta: &ParallelMeta,
    results: &[ParallelScaling],
) -> std::io::Result<std::path::PathBuf> {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"bench\": {},\n", json_str(name)));
    out.push_str(&format!("  \"shards\": {},\n", meta.shards));
    out.push_str(&format!("  \"rows_per_shard\": {},\n", meta.rows_per_shard));
    out.push_str(&format!("  \"stall_nanos_nominal\": {},\n", meta.stall_nanos_nominal));
    out.push_str(&format!("  \"stall_nanos_measured\": {},\n", meta.stall_nanos_measured));
    out.push_str(&format!("  \"available_parallelism\": {},\n", meta.available_parallelism));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"seconds\": {:.9}, \"speedup\": {:.3}, \"crossings\": {}}}{}\n",
            r.workers,
            r.seconds,
            r.speedup,
            r.crossings,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, out)?;
    Ok(path)
}

/// One crypto hot-path measurement: an AEAD (or scan) op at one batch
/// geometry under one forced SIMD backend.
#[derive(Debug, Clone)]
pub struct CryptoThroughput {
    /// Operation label, e.g. `"seal"`, `"open"`, `"region_scan"`.
    pub op: String,
    /// Forced backend label (`"scalar"`, `"sse2"`, `"avx2"`).
    pub backend: String,
    /// Blocks per batched call.
    pub batch_blocks: usize,
    /// Payload bytes per block.
    pub block_bytes: usize,
    /// Measured throughput, MiB/s of payload.
    pub mib_s: f64,
    /// Throughput relative to the scalar backend at the same (op, batch).
    pub speedup_vs_scalar: f64,
}

/// Writes `BENCH_<name>.json` for the crypto hot-path bench:
/// `{"bench": name, "detected_backend": label, "results": [{op, backend,
/// batch_blocks, block_bytes, mib_s, speedup_vs_scalar}, …]}`. The scalar
/// rows are always present so the artifact records the fallback numbers
/// alongside the SIMD ones. Returns the path written.
pub fn write_crypto_json(
    dir: &std::path::Path,
    name: &str,
    detected_backend: &str,
    results: &[CryptoThroughput],
) -> std::io::Result<std::path::PathBuf> {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"bench\": {},\n", json_str(name)));
    out.push_str(&format!("  \"detected_backend\": {},\n", json_str(detected_backend)));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": {}, \"backend\": {}, \"batch_blocks\": {}, \"block_bytes\": {}, \
             \"mib_s\": {:.3}, \"speedup_vs_scalar\": {:.3}}}{}\n",
            json_str(&r.op),
            json_str(&r.backend),
            r.batch_blocks,
            r.block_bytes,
            r.mib_s,
            r.speedup_vs_scalar,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, out)?;
    Ok(path)
}

/// One telemetry-overhead measurement: the same workload with spans and
/// metrics off vs on.
#[derive(Debug, Clone)]
pub struct TelemetryOverhead {
    /// Workload label, e.g. `"select_scan"`, `"join"`.
    pub workload: String,
    /// Mean seconds per iteration, telemetry disabled.
    pub off_seconds: f64,
    /// Mean seconds per iteration, telemetry enabled.
    pub on_seconds: f64,
    /// `on_seconds / off_seconds - 1`, as a fraction (0.03 = 3%).
    pub overhead: f64,
    /// Spans the enabled run recorded per iteration.
    pub spans_per_iter: u64,
}

/// Writes `BENCH_<name>.json` for the telemetry-overhead bench:
/// `{"bench": name, "iters": n, "results": [{workload, off_seconds,
/// on_seconds, overhead, spans_per_iter}, …]}`. Returns the path written.
pub fn write_telemetry_json(
    dir: &std::path::Path,
    name: &str,
    iters: usize,
    results: &[TelemetryOverhead],
) -> std::io::Result<std::path::PathBuf> {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"bench\": {},\n", json_str(name)));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": {}, \"off_seconds\": {:.9}, \"on_seconds\": {:.9}, \
             \"overhead\": {:.4}, \"spans_per_iter\": {}}}{}\n",
            json_str(&r.workload),
            r.off_seconds,
            r.on_seconds,
            r.overhead,
            r.spans_per_iter,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, out)?;
    Ok(path)
}

/// One serving-throughput measurement: N concurrent client connections
/// (one session each) driving a read-heavy statement mix over TCP.
#[derive(Debug, Clone)]
pub struct ServerScaling {
    /// Concurrent client connections (= sessions = pool workers).
    pub sessions: usize,
    /// Wall seconds for every client to finish its statement budget.
    pub seconds: f64,
    /// Aggregate statements per second across all sessions.
    pub stmts_per_sec: f64,
    /// Throughput relative to the single-session row.
    pub speedup: f64,
}

/// Fixed experimental conditions behind a serving-scaling run.
#[derive(Debug, Clone)]
pub struct ServerMeta {
    /// Rows in the served table.
    pub rows: u64,
    /// Statements each client submits.
    pub statements_per_session: u64,
    /// Selects per insert in the statement mix.
    pub reads_per_write: u64,
    /// Configured per-crossing stall (paid at the shared-store layer,
    /// outside the store lock), nanoseconds.
    pub stall_nanos_nominal: u64,
    /// `std::thread::available_parallelism()` on the machine that ran it.
    pub available_parallelism: usize,
}

/// Writes `BENCH_<name>.json` for the serving-throughput bench:
/// `{"bench": name, <meta fields>, "results": [{sessions, seconds,
/// stmts_per_sec, speedup}, …]}`. Returns the path written.
pub fn write_server_json(
    dir: &std::path::Path,
    name: &str,
    meta: &ServerMeta,
    results: &[ServerScaling],
) -> std::io::Result<std::path::PathBuf> {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"bench\": {},\n", json_str(name)));
    out.push_str(&format!("  \"rows\": {},\n", meta.rows));
    out.push_str(&format!("  \"statements_per_session\": {},\n", meta.statements_per_session));
    out.push_str(&format!("  \"reads_per_write\": {},\n", meta.reads_per_write));
    out.push_str(&format!("  \"stall_nanos_nominal\": {},\n", meta.stall_nanos_nominal));
    out.push_str(&format!("  \"available_parallelism\": {},\n", meta.available_parallelism));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sessions\": {}, \"seconds\": {:.9}, \"stmts_per_sec\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.sessions,
            r.seconds,
            r.stmts_per_sec,
            r.speedup,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, out)?;
    Ok(path)
}

/// One commit-discipline measurement of the group-commit bench: a
/// write-heavy statement stream on a disk store under one epoch size
/// (or the per-statement-fsync baseline).
#[derive(Debug, Clone)]
pub struct TxnThroughput {
    /// Discipline label: `"per-statement"` or `"epoch/<k>"`.
    pub mode: String,
    /// Statements per group fsync (1 for the per-statement baseline).
    pub epoch_statements: u64,
    /// Wall seconds for the whole statement stream.
    pub seconds: f64,
    /// Statements per second.
    pub stmts_per_sec: f64,
    /// Throughput relative to the per-statement baseline.
    pub speedup: f64,
}

/// Writes `BENCH_<name>.json` for the group-commit bench:
/// `{"bench": name, "statements": n, "results": [{mode,
/// epoch_statements, seconds, stmts_per_sec, speedup}, …]}`. Returns the
/// path written.
pub fn write_txn_json(
    dir: &std::path::Path,
    name: &str,
    statements: u64,
    results: &[TxnThroughput],
) -> std::io::Result<std::path::PathBuf> {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"bench\": {},\n", json_str(name)));
    out.push_str(&format!("  \"statements\": {statements},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": {}, \"epoch_statements\": {}, \"seconds\": {:.9}, \
             \"stmts_per_sec\": {:.3}, \"speedup\": {:.3}}}{}\n",
            json_str(&r.mode),
            r.epoch_statements,
            r.seconds,
            r.stmts_per_sec,
            r.speedup,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, out)?;
    Ok(path)
}

/// JSON string quoting per RFC 8259: escape quotes, backslashes, and
/// control characters; everything else (including non-ASCII) passes
/// through unescaped, which valid JSON allows.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_json_schema_is_stable() {
        let dir = std::env::temp_dir();
        let rows = vec![
            BatchComparison {
                name: "read/64B".into(),
                blocks: 256,
                per_block_s: 2e-3,
                batched_s: 1e-3,
            },
            BatchComparison {
                name: "write/64B".into(),
                blocks: 256,
                per_block_s: 3e-3,
                batched_s: 1e-3,
            },
        ];
        let path = write_batch_json(&dir, "batch_io_test", &rows).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"batch_io_test\""));
        assert!(body.contains("\"per_block_s\": 0.002000000"));
        assert!(body.contains("\"speedup\": 2.000"));
        assert!(body.trim_end().ends_with('}'));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn telemetry_json_schema_is_stable() {
        let dir = std::env::temp_dir();
        let rows = vec![
            TelemetryOverhead {
                workload: "select_scan".into(),
                off_seconds: 0.010,
                on_seconds: 0.0102,
                overhead: 0.02,
                spans_per_iter: 12,
            },
            TelemetryOverhead {
                workload: "join".into(),
                off_seconds: 0.020,
                on_seconds: 0.0201,
                overhead: 0.005,
                spans_per_iter: 30,
            },
        ];
        let path = write_telemetry_json(&dir, "telemetry_test", 7, &rows).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"telemetry_test\""));
        assert!(body.contains("\"iters\": 7"));
        assert!(body.contains("\"workload\": \"select_scan\""));
        assert!(body.contains("\"off_seconds\": 0.010000000"));
        assert!(body.contains("\"overhead\": 0.0200"));
        assert!(body.contains("\"spans_per_iter\": 12"));
        assert!(body.trim_end().ends_with('}'));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn substrate_json_schema_is_stable() {
        let dir = std::env::temp_dir();
        let stats = oblidb_enclave::HostStats {
            reads: 5,
            writes: 2,
            bytes_read: 100,
            bytes_written: 40,
            crossings: 3,
            stall_nanos: 9,
        };
        let rows = vec![
            SubstrateMeasurement {
                workload: "scan".into(),
                report: stats.report("disk"),
                seconds: 0.5,
                backing_crossings: None,
            },
            SubstrateMeasurement {
                workload: "scan".into(),
                report: stats.report("cached-disk"),
                seconds: 0.25,
                backing_crossings: Some(1),
            },
        ];
        let path = write_substrate_json(&dir, "substrates_test", &rows).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"substrates_test\""));
        assert!(body.contains("\"substrate\": \"disk\""));
        assert!(body.contains("\"crossings\": 3"));
        assert!(body.contains("\"stall_nanos\": 9"));
        assert!(body.contains("\"backing_crossings\": 1"));
        assert!(!body.contains("\"backing_crossings\": null"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn parallel_json_schema_is_stable() {
        let dir = std::env::temp_dir();
        let meta = ParallelMeta {
            shards: 8,
            rows_per_shard: 512,
            stall_nanos_nominal: 1_000_000,
            stall_nanos_measured: 1_110_000,
            available_parallelism: 1,
        };
        let rows = vec![
            ParallelScaling { workers: 1, seconds: 0.016, speedup: 1.0, crossings: 16 },
            ParallelScaling { workers: 4, seconds: 0.004, speedup: 4.0, crossings: 16 },
        ];
        let path = write_parallel_json(&dir, "parallel_test", &meta, &rows).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"parallel_test\""));
        assert!(body.contains("\"stall_nanos_nominal\": 1000000"));
        assert!(body.contains("\"workers\": 4"));
        assert!(body.contains("\"speedup\": 4.000"));
        assert!(body.trim_end().ends_with('}'));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn crypto_json_schema_is_stable() {
        let dir = std::env::temp_dir();
        let rows = vec![
            CryptoThroughput {
                op: "seal".into(),
                backend: "scalar".into(),
                batch_blocks: 256,
                block_bytes: 1024,
                mib_s: 400.0,
                speedup_vs_scalar: 1.0,
            },
            CryptoThroughput {
                op: "seal".into(),
                backend: "avx2".into(),
                batch_blocks: 256,
                block_bytes: 1024,
                mib_s: 1200.0,
                speedup_vs_scalar: 3.0,
            },
        ];
        let path = write_crypto_json(&dir, "crypto_test", "avx2", &rows).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"crypto_test\""));
        assert!(body.contains("\"detected_backend\": \"avx2\""));
        assert!(body.contains("\"backend\": \"scalar\""));
        assert!(body.contains("\"speedup_vs_scalar\": 3.000"));
        assert!(body.trim_end().ends_with('}'));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn txn_json_schema_is_stable() {
        let dir = std::env::temp_dir();
        let rows = vec![
            TxnThroughput {
                mode: "per-statement".into(),
                epoch_statements: 1,
                seconds: 0.8,
                stmts_per_sec: 320.0,
                speedup: 1.0,
            },
            TxnThroughput {
                mode: "epoch/32".into(),
                epoch_statements: 32,
                seconds: 0.1,
                stmts_per_sec: 2560.0,
                speedup: 8.0,
            },
        ];
        let path = write_txn_json(&dir, "txn_test", 256, &rows).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"txn_test\""));
        assert!(body.contains("\"statements\": 256"));
        assert!(body.contains("\"mode\": \"per-statement\""));
        assert!(body.contains("\"epoch_statements\": 32"));
        assert!(body.contains("\"speedup\": 8.000"));
        assert!(body.trim_end().ends_with('}'));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn builds_and_renders() {
        let mut r = Report::new("Fig X", &["a", "b"]);
        r.row(&["1".into(), "2".into()]);
        let md = r.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        r.print();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut r = Report::new("Fig X", &["a", "b"]);
        r.row(&["1".into()]);
    }
}
