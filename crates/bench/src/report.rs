//! Result-table printing for the figure harness binaries.
//!
//! Each binary prints the rows/series its paper figure reports, with the
//! paper's numbers alongside for shape comparison (absolute values differ:
//! our substrate is a simulator, not the authors' SGX testbed — see
//! EXPERIMENTS.md).

/// A printable results table.
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report with a figure title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} ==", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:<w$}", w = widths[i]))
            .collect();
        println!("{}", header.join("  "));
        println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().enumerate().map(|(i, c)| format!("{c:<w$}", w = widths[i])).collect();
            println!("{}", line.join("  "));
        }
    }

    /// Renders as a markdown table (for EXPERIMENTS.md snippets).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let mut r = Report::new("Fig X", &["a", "b"]);
        r.row(&["1".into(), "2".into()]);
        let md = r.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        r.print();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut r = Report::new("Fig X", &["a", "b"]);
        r.row(&["1".into()]);
    }
}
