//! Experiment setup shared by the figure binaries.
//!
//! Every binary supports two scales, chosen by the `OBLIDB_SCALE`
//! environment variable:
//!
//! * `small` (default): sizes that finish in seconds-to-a-minute on a
//!   laptop while preserving every shape the paper reports;
//! * `paper`: the paper's sizes (360 k/350 k-row BDB tables, 100 k-row
//!   microbenchmark tables, up to 10⁶-row indexes). Expect long runtimes.

use oblidb_core::{Database, DbConfig, StorageMethod};
use oblidb_workloads::synthetic;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes, same shapes.
    Small,
    /// The paper's sizes.
    Paper,
}

/// Reads `OBLIDB_SCALE` (default [`Scale::Small`]).
pub fn scale() -> Scale {
    match std::env::var("OBLIDB_SCALE").as_deref() {
        Ok("paper") | Ok("PAPER") | Ok("full") => Scale::Paper,
        _ => Scale::Small,
    }
}

impl Scale {
    /// Scales a paper-sized count down for the small configuration.
    pub fn pick(&self, small: usize, paper: usize) -> usize {
        match self {
            Scale::Small => small,
            Scale::Paper => paper,
        }
    }
}

/// Builds a database holding one synthetic table `t` of `n` rows with the
/// given storage method (index on `id` where applicable).
pub fn synthetic_db(n: usize, method: StorageMethod, seed: u64) -> Database {
    let mut db = Database::new(DbConfig { seed, ..DbConfig::default() });
    let rows = synthetic::table(n, 8, seed);
    let index = match method {
        StorageMethod::Flat => None,
        _ => Some("id"),
    };
    db.create_table_with_rows(
        "t",
        synthetic::schema(8),
        method,
        index,
        &rows,
        (n + n / 4 + 16) as u64,
    )
    .unwrap();
    db
}

/// Formats a ratio like "2.13x".
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".into()
    } else {
        format!("{:.2}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_small() {
        // (Environment-dependent, but the default path must parse.)
        let s = scale();
        assert!(matches!(s, Scale::Small | Scale::Paper));
        assert_eq!(Scale::Small.pick(10, 100), 10);
        assert_eq!(Scale::Paper.pick(10, 100), 100);
    }

    #[test]
    fn synthetic_db_builds_all_methods() {
        for m in [StorageMethod::Flat, StorageMethod::Indexed, StorageMethod::Both] {
            let mut db = synthetic_db(50, m, 1);
            let out = db.execute("SELECT COUNT(*) FROM t").unwrap();
            assert_eq!(out.rows()[0][0].as_int(), Some(50));
        }
    }
}
