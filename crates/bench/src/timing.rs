//! Wall-clock measurement helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Times one invocation of `f`, returning (result, elapsed).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times `f` over `iters` invocations and returns the mean duration.
pub fn time_mean(iters: usize, mut f: impl FnMut()) -> Duration {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters as u32
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}µs", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_result() {
        let (v, d) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn formats() {
        assert!(fmt_duration(Duration::from_secs(2)).ends_with('s'));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
    }
}
