//! Oblivious B+ tree stored inside Path ORAM (paper §3.2).
//!
//! ObliDB's indexed storage method is a B+ tree whose nodes live in a Path
//! ORAM. A direct composition of B+ trees and ORAM still leaks through the
//! *number* of ORAM accesses (splits and merges fire at data-dependent
//! moments) — so every operation here is **padded with dummy ORAM accesses
//! to its worst case** for the tree's current (public) height:
//!
//! * lookups already touch a fixed number of nodes (all data is in the
//!   leaves of a balanced tree);
//! * inserts and deletes are padded to the worst-case split/unlink chain;
//! * parent pointers are removed entirely (paper §3.2: updating them on
//!   splits would cost an ORAM write per child), and nodes fetched during
//!   an operation are cached in the enclave and written back once ("lazy
//!   write-back").
//!
//! Layout choices follow the paper's implementation: **one record per leaf
//! block** (footnote 2), internal nodes with a configurable fanout, and a
//! doubly-linked leaf chain for range scans. The tree's height and record
//! count are public (table sizes leak by design); *which* key an operation
//! touches is hidden.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod tree;

pub use node::{InternalNode, LeafNode, Node, NIL};
pub use tree::{ObTree, ObTreeError, OpKind};
