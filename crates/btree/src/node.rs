//! Node serialization for the oblivious B+ tree.
//!
//! Every node occupies exactly one ORAM block so the adversary cannot tell
//! internal nodes from leaves. Keys are `u128` so callers can pack a column
//! value and a row id into one composite key (making duplicate column
//! values distinct index entries).

/// Null node address.
pub const NIL: u64 = u64::MAX;

const TAG_FREE: u8 = 0;
const TAG_INTERNAL: u8 = 1;
const TAG_LEAF: u8 = 2;

/// An internal node: `count` fence entries `(min_key, child)`, where
/// `min_key` is the minimum key in the child's subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalNode {
    /// Fence entries, sorted by `min_key`.
    pub entries: Vec<(u128, u64)>,
}

impl InternalNode {
    /// Index of the child whose subtree should contain `key`: the last
    /// entry with `min_key <= key`, or 0 if the key sorts before all
    /// entries (the leftmost subtree absorbs small keys).
    pub fn route(&self, key: u128) -> usize {
        self.entries.iter().rposition(|&(min, _)| min <= key).unwrap_or_default()
    }

    /// Inserts a fence entry keeping order.
    pub fn insert_entry(&mut self, min_key: u128, child: u64) {
        let pos = self.entries.partition_point(|&(k, _)| k <= min_key);
        self.entries.insert(pos, (min_key, child));
    }

    /// Removes the entry pointing at `child`, returning its position.
    pub fn remove_child(&mut self, child: u64) -> Option<usize> {
        let pos = self.entries.iter().position(|&(_, c)| c == child)?;
        self.entries.remove(pos);
        Some(pos)
    }
}

/// A leaf node: exactly one record (paper footnote 2) plus chain links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafNode {
    /// The record's composite key.
    pub key: u128,
    /// Previous leaf in key order, or [`NIL`].
    pub prev: u64,
    /// Next leaf in key order, or [`NIL`].
    pub next: u64,
    /// Fixed-length record payload.
    pub payload: Vec<u8>,
}

/// A B+ tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Unallocated block.
    Free,
    /// Routing node.
    Internal(InternalNode),
    /// Data-bearing node.
    Leaf(LeafNode),
}

impl Node {
    /// Serialized node size for a tree with the given fanout and record
    /// payload length. All node kinds share one size (the ORAM block size).
    pub fn serialized_len(fanout: usize, payload_len: usize) -> usize {
        let internal = 1 + 2 + fanout * (16 + 8);
        let leaf = 1 + 16 + 8 + 8 + payload_len;
        internal.max(leaf)
    }

    /// Serializes into a zero-padded buffer of exactly
    /// [`Node::serialized_len`] bytes.
    pub fn serialize(&self, fanout: usize, payload_len: usize) -> Vec<u8> {
        let mut out = vec![0u8; Self::serialized_len(fanout, payload_len)];
        match self {
            Node::Free => {
                out[0] = TAG_FREE;
            }
            Node::Internal(n) => {
                assert!(n.entries.len() <= fanout, "internal node overflow");
                out[0] = TAG_INTERNAL;
                out[1..3].copy_from_slice(&(n.entries.len() as u16).to_le_bytes());
                let mut off = 3;
                for &(key, child) in &n.entries {
                    out[off..off + 16].copy_from_slice(&key.to_le_bytes());
                    off += 16;
                    out[off..off + 8].copy_from_slice(&child.to_le_bytes());
                    off += 8;
                }
            }
            Node::Leaf(n) => {
                assert_eq!(n.payload.len(), payload_len, "leaf payload length");
                out[0] = TAG_LEAF;
                out[1..17].copy_from_slice(&n.key.to_le_bytes());
                out[17..25].copy_from_slice(&n.prev.to_le_bytes());
                out[25..33].copy_from_slice(&n.next.to_le_bytes());
                out[33..33 + payload_len].copy_from_slice(&n.payload);
            }
        }
        out
    }

    /// Parses a node from an ORAM block.
    pub fn deserialize(bytes: &[u8], payload_len: usize) -> Node {
        match bytes[0] {
            TAG_INTERNAL => {
                let count = u16::from_le_bytes(bytes[1..3].try_into().unwrap()) as usize;
                let mut entries = Vec::with_capacity(count);
                let mut off = 3;
                for _ in 0..count {
                    let key = u128::from_le_bytes(bytes[off..off + 16].try_into().unwrap());
                    off += 16;
                    let child = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
                    off += 8;
                    entries.push((key, child));
                }
                Node::Internal(InternalNode { entries })
            }
            TAG_LEAF => {
                let key = u128::from_le_bytes(bytes[1..17].try_into().unwrap());
                let prev = u64::from_le_bytes(bytes[17..25].try_into().unwrap());
                let next = u64::from_le_bytes(bytes[25..33].try_into().unwrap());
                let payload = bytes[33..33 + payload_len].to_vec();
                Node::Leaf(LeafNode { key, prev, next, payload })
            }
            _ => Node::Free,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_roundtrip() {
        let n = Node::Internal(InternalNode { entries: vec![(5, 1), (10, 2), (300, 9)] });
        let bytes = n.serialize(8, 4);
        assert_eq!(Node::deserialize(&bytes, 4), n);
    }

    #[test]
    fn leaf_roundtrip() {
        let n = Node::Leaf(LeafNode { key: 42, prev: 1, next: NIL, payload: vec![7, 8, 9, 10] });
        let bytes = n.serialize(8, 4);
        assert_eq!(Node::deserialize(&bytes, 4), n);
    }

    #[test]
    fn free_roundtrip() {
        let bytes = Node::Free.serialize(8, 4);
        assert_eq!(Node::deserialize(&bytes, 4), Node::Free);
    }

    #[test]
    fn zeroed_block_reads_as_free() {
        // Unwritten ORAM blocks are all-zero; they must parse as Free.
        let bytes = vec![0u8; Node::serialized_len(8, 4)];
        assert_eq!(Node::deserialize(&bytes, 4), Node::Free);
    }

    #[test]
    fn route_picks_last_at_most() {
        let n = InternalNode { entries: vec![(10, 0), (20, 1), (30, 2)] };
        assert_eq!(n.route(5), 0); // below all: leftmost
        assert_eq!(n.route(10), 0);
        assert_eq!(n.route(19), 0);
        assert_eq!(n.route(20), 1);
        assert_eq!(n.route(25), 1);
        assert_eq!(n.route(1000), 2);
    }

    #[test]
    fn insert_entry_keeps_order() {
        let mut n = InternalNode { entries: vec![(10, 0), (30, 2)] };
        n.insert_entry(20, 1);
        assert_eq!(n.entries, vec![(10, 0), (20, 1), (30, 2)]);
        n.insert_entry(5, 7);
        assert_eq!(n.entries[0], (5, 7));
    }

    #[test]
    fn remove_child_by_address() {
        let mut n = InternalNode { entries: vec![(10, 0), (20, 1), (30, 2)] };
        assert_eq!(n.remove_child(1), Some(1));
        assert_eq!(n.entries, vec![(10, 0), (30, 2)]);
        assert_eq!(n.remove_child(99), None);
    }

    #[test]
    fn node_sizes_uniform() {
        let len = Node::serialized_len(16, 64);
        for n in [
            Node::Free,
            Node::Internal(InternalNode { entries: vec![(1, 1)] }),
            Node::Leaf(LeafNode { key: 1, prev: NIL, next: NIL, payload: vec![0; 64] }),
        ] {
            assert_eq!(n.serialize(16, 64).len(), len);
        }
    }
}
