//! The oblivious B+ tree.
//!
//! # Obliviousness strategy (paper §3.2)
//!
//! For a tree of (public) height `h`, every operation performs a number of
//! ORAM accesses that depends only on `h` and the operation *type* — never
//! on the key, the payload, or the tree's private contents:
//!
//! | op      | budget (ORAM accesses)        |
//! |---------|-------------------------------|
//! | get     | `h + 2`                       |
//! | update  | `h + 3`                       |
//! | insert  | `3h + 8`                      |
//! | delete  | `5h + 10`                     |
//! | range   | `h + 2 + limit` (limit leaks) |
//!
//! Operations that finish early (a lookup miss, an insert without splits)
//! issue dummy ORAM accesses until they hit the budget. Since each ORAM
//! access is itself oblivious, the composed operation is too. Height `h`
//! (the number of internal levels) is a function of the public record
//! count, so leaking it adds nothing.
//!
//! # Structure
//!
//! One record per leaf block (paper footnote 2); internal nodes hold up to
//! `fanout` fence entries `(subtree min key, child)`; leaves form a doubly
//! linked chain headed by a permanent sentinel (logical key −∞) so every
//! real leaf has a predecessor. Deletion rebalances with borrow/merge so
//! non-root internal nodes keep ≥ `fanout/2` entries, which bounds the node
//! count used to size the ORAM.

use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveMemory, EnclaveRng, OmBudget};
use oblidb_oram::{OramError, PathOram, PosMapKind};

use crate::node::{InternalNode, LeafNode, Node, NIL};

/// Errors from tree operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObTreeError {
    /// Underlying ORAM failure (includes tamper detection).
    Oram(OramError),
    /// The tree reached its fixed record capacity.
    CapacityExceeded,
}

impl std::fmt::Display for ObTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObTreeError::Oram(e) => write!(f, "oram: {e}"),
            ObTreeError::CapacityExceeded => write!(f, "tree capacity exceeded"),
        }
    }
}

impl std::error::Error for ObTreeError {}

impl From<OramError> for ObTreeError {
    fn from(e: OramError) -> Self {
        ObTreeError::Oram(e)
    }
}

/// Operation types, used to query public access budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Point lookup.
    Get,
    /// Payload overwrite of an existing key.
    Update,
    /// Insert of a new key.
    Insert,
    /// Delete of a key.
    Delete,
}

/// In-enclave node cache for one operation ("lazy write-back", paper §3.2).
///
/// Nodes fetched during the operation stay in the enclave and are written
/// back once at the end, in deterministic order.
struct OpCtx {
    entries: Vec<(u64, Node, bool)>,
    oram_reads: u64,
}

impl OpCtx {
    fn new() -> Self {
        OpCtx { entries: Vec::with_capacity(16), oram_reads: 0 }
    }

    fn find(&self, addr: u64) -> Option<usize> {
        self.entries.iter().position(|&(a, _, _)| a == addr)
    }

    fn node(&self, idx: usize) -> &Node {
        &self.entries[idx].1
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node {
        self.entries[idx].2 = true;
        &mut self.entries[idx].1
    }

    fn addr(&self, idx: usize) -> u64 {
        self.entries[idx].0
    }

    fn internal(&self, idx: usize) -> &InternalNode {
        match self.node(idx) {
            Node::Internal(n) => n,
            other => panic!("expected internal node, found {other:?}"),
        }
    }

    fn internal_mut(&mut self, idx: usize) -> &mut InternalNode {
        match self.node_mut(idx) {
            Node::Internal(n) => n,
            other => panic!("expected internal node, found {other:?}"),
        }
    }

    fn leaf(&self, idx: usize) -> &LeafNode {
        match self.node(idx) {
            Node::Leaf(n) => n,
            other => panic!("expected leaf node, found {other:?}"),
        }
    }

    fn leaf_mut(&mut self, idx: usize) -> &mut LeafNode {
        match self.node_mut(idx) {
            Node::Leaf(n) => n,
            other => panic!("expected leaf node, found {other:?}"),
        }
    }

    /// Registers a freshly created node (no ORAM read needed).
    fn create(&mut self, addr: u64, node: Node) -> usize {
        self.entries.push((addr, node, true));
        self.entries.len() - 1
    }
}

/// The oblivious B+ tree. See the module docs for the design.
pub struct ObTree {
    oram: PathOram,
    fanout: usize,
    payload_len: usize,
    root: u64,
    /// Number of internal levels (≥ 1). A leaf lookup reads `height`
    /// internal nodes plus one leaf.
    height: u32,
    sentinel: u64,
    len: u64,
    max_records: u64,
    free_list: Vec<u64>,
    next_fresh: u64,
    capacity_nodes: u64,
}

/// Node capacity needed for `max_records` records with the given fanout:
/// sentinel + leaves + worst-case internal nodes (min occupancy fanout/2,
/// maintained by rebalancing deletes) + slack for transient splits.
fn node_capacity(max_records: u64, fanout: usize) -> u64 {
    let min_fill = (fanout / 2).max(2) as u64;
    let mut cap = 1 + max_records; // sentinel + leaves
    let mut level = max_records + 1;
    loop {
        level = level.div_ceil(min_fill);
        cap += level;
        if level == 1 {
            break;
        }
    }
    cap + 16
}

impl ObTree {
    /// Creates an empty tree with a fixed record capacity.
    ///
    /// The ORAM position map (8 bytes per node) is charged against `om`.
    pub fn new<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        max_records: u64,
        payload_len: usize,
        fanout: usize,
        pos_kind: PosMapKind,
        om: &OmBudget,
        rng: EnclaveRng,
    ) -> Result<Self, ObTreeError> {
        assert!(fanout >= 4, "fanout must be at least 4");
        let capacity_nodes = node_capacity(max_records, fanout);
        let block_len = Node::serialized_len(fanout, payload_len);
        let mut oram = PathOram::new(host, key, capacity_nodes, block_len, pos_kind, om, rng)?;

        // addr 0 = sentinel leaf, addr 1 = root (bottom internal).
        let sentinel = LeafNode { key: 0, prev: NIL, next: NIL, payload: vec![0u8; payload_len] };
        oram.write(host, 0, &Node::Leaf(sentinel).serialize(fanout, payload_len))?;
        let root = InternalNode { entries: vec![(0, 0)] };
        oram.write(host, 1, &Node::Internal(root).serialize(fanout, payload_len))?;

        Ok(Self {
            oram,
            fanout,
            payload_len,
            root: 1,
            height: 1,
            sentinel: 0,
            len: 0,
            max_records,
            free_list: Vec::new(),
            next_fresh: 2,
            capacity_nodes,
        })
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the tree has no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current number of internal levels (public).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Fixed record capacity.
    pub fn max_records(&self) -> u64 {
        self.max_records
    }

    /// Record payload size.
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// The public ORAM-access budget for an operation at the current
    /// height. Every executed operation performs exactly this many
    /// accesses.
    pub fn op_budget(&self, op: OpKind) -> u64 {
        let h = self.height as u64;
        match op {
            OpKind::Get => h + 2,
            OpKind::Update => h + 3,
            OpKind::Insert => 3 * h + 8,
            OpKind::Delete => 5 * h + 10,
        }
    }

    /// ORAM statistics (accesses, stash peak).
    pub fn oram_stats(&self) -> oblidb_oram::OramStats {
        self.oram.stats()
    }

    fn alloc_addr(&mut self) -> Result<u64, ObTreeError> {
        if let Some(a) = self.free_list.pop() {
            return Ok(a);
        }
        if self.next_fresh >= self.capacity_nodes {
            return Err(ObTreeError::CapacityExceeded);
        }
        let a = self.next_fresh;
        self.next_fresh += 1;
        Ok(a)
    }

    fn ctx_read<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        ctx: &mut OpCtx,
        addr: u64,
    ) -> Result<usize, ObTreeError> {
        if let Some(idx) = ctx.find(addr) {
            return Ok(idx);
        }
        let bytes = self.oram.read(host, addr)?;
        ctx.oram_reads += 1;
        let node = Node::deserialize(&bytes, self.payload_len);
        ctx.entries.push((addr, node, false));
        Ok(ctx.entries.len() - 1)
    }

    /// Writes back dirty nodes and pads with dummy accesses to `budget`.
    fn finish<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        ctx: OpCtx,
        budget: u64,
    ) -> Result<(), ObTreeError> {
        let mut writes = 0u64;
        for (addr, node, dirty) in &ctx.entries {
            if *dirty {
                self.oram.write(host, *addr, &node.serialize(self.fanout, self.payload_len))?;
                writes += 1;
            }
        }
        let used = ctx.oram_reads + writes;
        assert!(
            used <= budget,
            "operation exceeded its oblivious budget: used {used}, budget {budget}"
        );
        for _ in used..budget {
            self.oram.dummy_access(host)?;
        }
        Ok(())
    }

    /// Descends from the root to the leaf that is the predecessor-or-equal
    /// of `key` (or the catch-all minimum leaf when `key` sorts below a
    /// stale fence). Returns (path of internal ctx indices, leaf ctx index).
    fn descend<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        ctx: &mut OpCtx,
        key: u128,
    ) -> Result<(Vec<usize>, usize), ObTreeError> {
        let mut path = Vec::with_capacity(self.height as usize);
        let mut addr = self.root;
        for _ in 0..self.height {
            let idx = self.ctx_read(host, ctx, addr)?;
            path.push(idx);
            let node = ctx.internal(idx);
            let child_idx = node.route(key);
            addr = node.entries[child_idx].1;
        }
        let leaf_idx = self.ctx_read(host, ctx, addr)?;
        Ok((path, leaf_idx))
    }

    /// Point lookup. The miss case performs the same accesses as a hit.
    pub fn get<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        key: u128,
    ) -> Result<Option<Vec<u8>>, ObTreeError> {
        let budget = self.op_budget(OpKind::Get);
        let mut ctx = OpCtx::new();
        let (_, leaf_idx) = self.descend(host, &mut ctx, key)?;
        let leaf = ctx.leaf(leaf_idx);
        let result = if ctx.addr(leaf_idx) != self.sentinel && leaf.key == key {
            Some(leaf.payload.clone())
        } else {
            None
        };
        self.finish(host, ctx, budget)?;
        Ok(result)
    }

    /// Overwrites the payload of `key` if present; returns whether it was.
    pub fn update<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        key: u128,
        payload: &[u8],
    ) -> Result<bool, ObTreeError> {
        assert_eq!(payload.len(), self.payload_len, "payload length");
        let budget = self.op_budget(OpKind::Update);
        let mut ctx = OpCtx::new();
        let (_, leaf_idx) = self.descend(host, &mut ctx, key)?;
        let is_match = ctx.addr(leaf_idx) != self.sentinel && ctx.leaf(leaf_idx).key == key;
        if is_match {
            ctx.leaf_mut(leaf_idx).payload.copy_from_slice(payload);
        }
        self.finish(host, ctx, budget)?;
        Ok(is_match)
    }

    /// Inserts `key`. If the key already exists its payload is overwritten
    /// (composite keys make this case rare in ObliDB). Returns `true` when
    /// a new record was created.
    pub fn insert<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        key: u128,
        payload: &[u8],
    ) -> Result<bool, ObTreeError> {
        assert_eq!(payload.len(), self.payload_len, "payload length");
        if self.len >= self.max_records {
            return Err(ObTreeError::CapacityExceeded);
        }
        let budget = self.op_budget(OpKind::Insert);
        let mut ctx = OpCtx::new();
        let (path, leaf_idx) = self.descend(host, &mut ctx, key)?;
        let landed_addr = ctx.addr(leaf_idx);
        let landed_key = ctx.leaf(leaf_idx).key;

        if landed_addr != self.sentinel && landed_key == key {
            ctx.leaf_mut(leaf_idx).payload.copy_from_slice(payload);
            self.finish(host, ctx, budget)?;
            return Ok(false);
        }

        let new_addr = self.alloc_addr()?;
        let insert_before = landed_addr != self.sentinel && landed_key > key;
        if insert_before {
            // `key` sorts before the landed leaf (stale-fence catch-all
            // case): splice it in front.
            let prev_addr = ctx.leaf(leaf_idx).prev;
            let new_leaf =
                LeafNode { key, prev: prev_addr, next: landed_addr, payload: payload.to_vec() };
            ctx.create(new_addr, Node::Leaf(new_leaf));
            let prev_idx = self.ctx_read(host, &mut ctx, prev_addr)?;
            ctx.leaf_mut(prev_idx).next = new_addr;
            let leaf_idx = ctx.find(landed_addr).expect("landed leaf cached");
            ctx.leaf_mut(leaf_idx).prev = new_addr;
        } else {
            // Normal case: splice after the predecessor-or-equal leaf.
            let next_addr = ctx.leaf(leaf_idx).next;
            let new_leaf =
                LeafNode { key, prev: landed_addr, next: next_addr, payload: payload.to_vec() };
            ctx.create(new_addr, Node::Leaf(new_leaf));
            ctx.leaf_mut(leaf_idx).next = new_addr;
            if next_addr != NIL {
                let next_idx = self.ctx_read(host, &mut ctx, next_addr)?;
                ctx.leaf_mut(next_idx).prev = new_addr;
            }
        }

        // Register the new leaf in the bottom internal node and split up
        // the path as needed.
        let bottom = *path.last().expect("height >= 1");
        ctx.internal_mut(bottom).insert_entry(key, new_addr);
        self.split_up(&mut ctx, &path)?;

        self.len += 1;
        self.finish(host, ctx, budget)?;
        Ok(true)
    }

    /// Splits overflowing internal nodes along the descent path, bottom-up.
    fn split_up(&mut self, ctx: &mut OpCtx, path: &[usize]) -> Result<(), ObTreeError> {
        for level in (0..path.len()).rev() {
            let idx = path[level];
            if ctx.internal(idx).entries.len() <= self.fanout {
                break;
            }
            let right_entries = {
                let node = ctx.internal_mut(idx);
                let mid = node.entries.len() / 2;
                node.entries.split_off(mid)
            };
            let right_min = right_entries[0].0;
            let right_addr = self.alloc_addr()?;
            ctx.create(right_addr, Node::Internal(InternalNode { entries: right_entries }));

            if level == 0 {
                // Root split: grow the tree by one level.
                let old_root = self.root;
                let left_min = ctx.internal(idx).entries[0].0;
                let new_root_addr = self.alloc_addr()?;
                ctx.create(
                    new_root_addr,
                    Node::Internal(InternalNode {
                        entries: vec![(left_min, old_root), (right_min, right_addr)],
                    }),
                );
                self.root = new_root_addr;
                self.height += 1;
            } else {
                let parent = path[level - 1];
                ctx.internal_mut(parent).insert_entry(right_min, right_addr);
            }
        }
        Ok(())
    }

    /// Deletes `key`; returns whether it was present. Misses perform the
    /// same number of ORAM accesses as hits.
    pub fn delete<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        key: u128,
    ) -> Result<bool, ObTreeError> {
        let budget = self.op_budget(OpKind::Delete);
        let mut ctx = OpCtx::new();
        let (path, leaf_idx) = self.descend(host, &mut ctx, key)?;
        let landed_addr = ctx.addr(leaf_idx);
        let is_match = landed_addr != self.sentinel && ctx.leaf(leaf_idx).key == key;
        if !is_match {
            self.finish(host, ctx, budget)?;
            return Ok(false);
        }

        // Unlink from the leaf chain.
        let (prev_addr, next_addr) = {
            let leaf = ctx.leaf(leaf_idx);
            (leaf.prev, leaf.next)
        };
        let prev_idx = self.ctx_read(host, &mut ctx, prev_addr)?;
        ctx.leaf_mut(prev_idx).next = next_addr;
        if next_addr != NIL {
            let next_idx = self.ctx_read(host, &mut ctx, next_addr)?;
            ctx.leaf_mut(next_idx).prev = prev_addr;
        }
        *ctx.node_mut(leaf_idx) = Node::Free;
        self.free_list.push(landed_addr);

        // Remove the leaf's fence entry and rebalance up the path.
        let bottom = *path.last().expect("height >= 1");
        ctx.internal_mut(bottom)
            .remove_child(landed_addr)
            .expect("leaf registered in its bottom internal node");
        self.rebalance_up(host, &mut ctx, &path)?;

        self.len -= 1;
        self.finish(host, ctx, budget)?;
        Ok(true)
    }

    /// Restores the min-occupancy invariant (≥ fanout/2 entries in non-root
    /// internal nodes) by borrowing from or merging with a sibling,
    /// cascading upward; collapses single-child roots.
    fn rebalance_up<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        ctx: &mut OpCtx,
        path: &[usize],
    ) -> Result<(), ObTreeError> {
        let min_fill = (self.fanout / 2).max(2);
        for level in (1..path.len()).rev() {
            let idx = path[level];
            if ctx.internal(idx).entries.len() >= min_fill {
                break;
            }
            let parent = path[level - 1];
            let addr = ctx.addr(idx);
            let pos = ctx
                .internal(parent)
                .entries
                .iter()
                .position(|&(_, c)| c == addr)
                .expect("child registered in parent");

            // Prefer the left sibling; fall back to the right.
            let (sib_pos, sib_is_left) = if pos > 0 { (pos - 1, true) } else { (pos + 1, false) };
            let sib_addr = ctx.internal(parent).entries[sib_pos].1;
            let sib_idx = self.ctx_read(host, ctx, sib_addr)?;

            if ctx.internal(sib_idx).entries.len() > min_fill {
                // Borrow one entry; update the fence of whichever node's
                // minimum changed.
                if sib_is_left {
                    let moved = ctx.internal_mut(sib_idx).entries.pop().expect("nonempty");
                    ctx.internal_mut(idx).entries.insert(0, moved);
                    ctx.internal_mut(parent).entries[pos].0 = moved.0;
                } else {
                    let moved = ctx.internal_mut(sib_idx).entries.remove(0);
                    ctx.internal_mut(idx).entries.push(moved);
                    let new_sib_min = ctx.internal(sib_idx).entries[0].0;
                    ctx.internal_mut(parent).entries[sib_pos].0 = new_sib_min;
                }
                break;
            }

            // Merge the underfull node into its sibling and free it.
            let own_entries = std::mem::take(&mut ctx.internal_mut(idx).entries);
            if sib_is_left {
                ctx.internal_mut(sib_idx).entries.extend(own_entries);
            } else {
                let sib_entries = std::mem::take(&mut ctx.internal_mut(sib_idx).entries);
                let node = ctx.internal_mut(sib_idx);
                node.entries = own_entries;
                node.entries.extend(sib_entries);
                // The sibling's fence must drop to the merged minimum.
                let new_min = ctx.internal(sib_idx).entries[0].0;
                ctx.internal_mut(parent).entries[sib_pos].0 = new_min;
            }
            *ctx.node_mut(idx) = Node::Free;
            self.free_list.push(addr);
            ctx.internal_mut(parent).remove_child(addr);
        }

        // Collapse trivial roots.
        while self.height > 1 {
            let root_idx = ctx.find(self.root).expect("root on path");
            if ctx.internal(root_idx).entries.len() > 1 {
                break;
            }
            let only_child = ctx.internal(root_idx).entries[0].1;
            *ctx.node_mut(root_idx) = Node::Free;
            self.free_list.push(self.root);
            self.root = only_child;
            self.height -= 1;
        }
        Ok(())
    }

    /// Range scan: returns records with keys in `[lo, hi]`, walking the
    /// leaf chain for exactly `limit` steps (dummy accesses after the range
    /// ends). The total access count is `h + 2 + limit`; `limit` is chosen
    /// by the query planner and is part of the leaked result-size
    /// information (paper §4.1, "Selection over Indexes").
    pub fn range<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        lo: u128,
        hi: u128,
        limit: u64,
    ) -> Result<Vec<(u128, Vec<u8>)>, ObTreeError> {
        let budget = self.op_budget(OpKind::Get) + limit;
        let mut ctx = OpCtx::new();
        let (_, leaf_idx) = self.descend(host, &mut ctx, lo)?;
        let leaf = ctx.leaf(leaf_idx);

        let mut out = Vec::new();
        // Start at the landed leaf if it is in range, else at its successor.
        let mut cursor = if ctx.addr(leaf_idx) != self.sentinel && leaf.key >= lo {
            if leaf.key <= hi {
                out.push((leaf.key, leaf.payload.clone()));
            }
            leaf.next
        } else {
            leaf.next
        };

        // `finish` pads the descent portion; chain steps are padded here.
        let descent_budget = self.op_budget(OpKind::Get);
        self.finish(host, ctx, descent_budget)?;

        for _ in 0..limit {
            if cursor == NIL {
                self.oram.dummy_access(host)?;
                continue;
            }
            let bytes = self.oram.read(host, cursor)?;
            match Node::deserialize(&bytes, self.payload_len) {
                Node::Leaf(leaf) => {
                    if leaf.key > hi {
                        cursor = NIL;
                    } else {
                        out.push((leaf.key, leaf.payload.clone()));
                        cursor = leaf.next;
                    }
                }
                _ => cursor = NIL,
            }
        }
        let _ = budget;
        Ok(out)
    }

    /// Full scan in key order via the leaf chain (`len + h + 2` accesses).
    pub fn scan_chain<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
    ) -> Result<Vec<(u128, Vec<u8>)>, ObTreeError> {
        self.range(host, 0, u128::MAX, self.len)
    }

    /// Range scan that stops as soon as the range is exhausted instead of
    /// padding to a limit. The access count therefore reveals the size of
    /// the scanned segment — exactly the leakage the paper accepts for
    /// selection over indexes (§4.1: "the leakage also includes the size
    /// of the segment of the database scanned in the index"), counted as
    /// part of the intermediate-table sizes. Which keys were scanned stays
    /// hidden.
    pub fn range_leaky<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        lo: u128,
        hi: u128,
    ) -> Result<Vec<(u128, Vec<u8>)>, ObTreeError> {
        Ok(self.range_leaky_capped(host, lo, hi, u64::MAX)?.expect("uncapped"))
    }

    /// Like [`ObTree::range_leaky`], but gives up once more than `cap`
    /// records are found, returning `None`. The planner uses this to probe
    /// whether an index range is small enough to beat a flat scan without
    /// paying for a full walk; the abort point is a public function of the
    /// (leaked) table size.
    pub fn range_leaky_capped<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        lo: u128,
        hi: u128,
        cap: u64,
    ) -> Result<Option<Vec<(u128, Vec<u8>)>>, ObTreeError> {
        let descent_budget = self.op_budget(OpKind::Get);
        let mut ctx = OpCtx::new();
        let (_, leaf_idx) = self.descend(host, &mut ctx, lo)?;
        let leaf = ctx.leaf(leaf_idx);

        let mut out = Vec::new();
        let mut cursor = if ctx.addr(leaf_idx) != self.sentinel && leaf.key >= lo {
            if leaf.key <= hi {
                out.push((leaf.key, leaf.payload.clone()));
            }
            leaf.next
        } else {
            leaf.next
        };
        self.finish(host, ctx, descent_budget)?;

        if out.len() as u64 > cap {
            return Ok(None);
        }
        let mut chain_accesses: u64 = 0;
        while cursor != NIL {
            let bytes = self.oram.read(host, cursor)?;
            chain_accesses += 1;
            match Node::deserialize(&bytes, self.payload_len) {
                Node::Leaf(leaf) => {
                    if leaf.key > hi {
                        break;
                    }
                    out.push((leaf.key, leaf.payload.clone()));
                    if out.len() as u64 > cap {
                        return Ok(None);
                    }
                    cursor = leaf.next;
                }
                _ => break,
            }
        }
        // Pad the chain walk to exactly `matches + 2` ORAM accesses so the
        // scanned-segment leakage is a function of the (already leaked)
        // result size only — hit/miss at the bounds and range-ends-at-the-
        // last-leaf cases all cost the same.
        let target = out.len() as u64 + 2;
        for _ in chain_accesses..target {
            self.oram.dummy_access(host)?;
        }
        Ok(Some(out))
    }

    /// Scans the *physical structure* linearly, as the flat storage method
    /// would (paper §3.2: internal tree nodes and ORAM dummies are treated
    /// as dummy blocks with no security consequences). The callback sees
    /// `Some((key, payload))` for real records and `None` for every other
    /// slot, in a fixed data-independent order.
    pub fn scan_structure<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        mut f: impl FnMut(Option<(u128, &[u8])>),
    ) -> Result<(), ObTreeError> {
        let payload_len = self.payload_len;
        let sentinel = self.sentinel;
        self.oram.scan_slots(host, |slot| {
            if !slot.is_real() {
                f(None);
                return;
            }
            match Node::deserialize(&slot.data, payload_len) {
                Node::Leaf(leaf) if slot.addr != sentinel => f(Some((leaf.key, &leaf.payload))),
                _ => f(None),
            }
        })?;
        Ok(())
    }

    /// Builds a tree from records pre-sorted by key (pre-deployment bulk
    /// load; see DESIGN.md §7). Much faster than repeated `insert`.
    ///
    /// Node addresses are assigned contiguously level by level (sentinel,
    /// then the leaf run, then each internal level bottom-up), so the
    /// whole serialized tree streams into the backing ORAM through its
    /// batched contiguous bulk-write path — a handful of boundary
    /// crossings where per-bucket sealing paid one per node.
    pub fn bulk_load<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        items: &[(u128, Vec<u8>)],
        max_records: u64,
        payload_len: usize,
        fanout: usize,
        pos_kind: PosMapKind,
        om: &OmBudget,
        rng: EnclaveRng,
    ) -> Result<Self, ObTreeError> {
        assert!(items.len() as u64 <= max_records, "more items than capacity");
        assert!(items.windows(2).all(|w| w[0].0 <= w[1].0), "items must be sorted");
        assert!(fanout >= 4);

        let capacity_nodes = node_capacity(max_records, fanout);
        let block_len = Node::serialized_len(fanout, payload_len);

        // Assign addresses: 0 = sentinel, 1..=n = leaves, then internals.
        let n = items.len() as u64;
        let mut nodes: Vec<Node> = Vec::with_capacity(n as usize * 2 + 2);
        nodes.push(Node::Leaf(LeafNode {
            key: 0,
            prev: NIL,
            next: if n > 0 { 1 } else { NIL },
            payload: vec![0u8; payload_len],
        }));
        for (i, (k, payload)) in items.iter().enumerate() {
            assert_eq!(payload.len(), payload_len);
            let addr = 1 + i as u64;
            let next = if (i as u64) < n - 1 { addr + 1 } else { NIL };
            nodes.push(Node::Leaf(LeafNode {
                key: *k,
                prev: addr - 1,
                next,
                payload: payload.clone(),
            }));
        }

        // Build internal levels bottom-up, packing `fanout` children per
        // node (leaving the last node possibly short but nonempty).
        let mut level: Vec<(u128, u64)> = Vec::with_capacity(n as usize + 1);
        level.push((0, 0)); // sentinel fence
        for (i, (k, _)) in items.iter().enumerate() {
            level.push((*k, 1 + i as u64));
        }
        let mut height = 0u32;
        let root;
        loop {
            height += 1;
            let mut next_level = Vec::with_capacity(level.len().div_ceil(fanout));
            for chunk in level.chunks(fanout) {
                let addr = nodes.len() as u64;
                nodes.push(Node::Internal(InternalNode { entries: chunk.to_vec() }));
                next_level.push((chunk[0].0, addr));
            }
            if next_level.len() == 1 {
                root = next_level[0].1;
                break;
            }
            level = next_level;
        }

        let next_fresh = nodes.len() as u64;
        assert!(next_fresh <= capacity_nodes, "bulk load exceeded node capacity");
        let blocks: Vec<Vec<u8>> =
            nodes.iter().map(|nd| nd.serialize(fanout, payload_len)).collect();
        drop(nodes);
        // The ORAM must span the full node capacity so later inserts fit;
        // pad with Free blocks.
        let mut all_blocks = blocks;
        all_blocks.resize(capacity_nodes as usize, Node::Free.serialize(fanout, payload_len));

        let oram = PathOram::with_contents(host, key, &all_blocks, block_len, pos_kind, om, rng)?;

        Ok(Self {
            oram,
            fanout,
            payload_len,
            root,
            height,
            sentinel: 0,
            len: n,
            max_records,
            free_list: Vec::new(),
            next_fresh,
            capacity_nodes,
        })
    }

    /// Releases untrusted memory.
    pub fn free<M: EnclaveMemory>(self, host: &mut M) -> Result<(), ObTreeError> {
        self.oram.free(host)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_enclave::Host;
    use oblidb_enclave::DEFAULT_OM_BYTES;

    fn setup(max_records: u64) -> (Host, ObTree) {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let tree = ObTree::new(
            &mut host,
            AeadKey([3u8; 32]),
            max_records,
            8,
            4,
            PosMapKind::Direct,
            &om,
            EnclaveRng::seed_from_u64(77),
        )
        .unwrap();
        (host, tree)
    }

    fn payload(i: u64) -> Vec<u8> {
        i.to_le_bytes().to_vec()
    }

    #[test]
    fn insert_get_roundtrip() {
        let (mut host, mut tree) = setup(100);
        for i in 0..50u64 {
            assert!(tree.insert(&mut host, i as u128 * 7, &payload(i)).unwrap());
        }
        assert_eq!(tree.len(), 50);
        for i in 0..50u64 {
            assert_eq!(tree.get(&mut host, i as u128 * 7).unwrap(), Some(payload(i)));
        }
        assert_eq!(tree.get(&mut host, 1_000_000).unwrap(), None);
    }

    #[test]
    fn reverse_order_inserts() {
        let (mut host, mut tree) = setup(100);
        for i in (0..60u64).rev() {
            tree.insert(&mut host, i as u128, &payload(i)).unwrap();
        }
        for i in 0..60u64 {
            assert_eq!(tree.get(&mut host, i as u128).unwrap(), Some(payload(i)));
        }
        // Chain order must be sorted.
        let all = tree.scan_chain(&mut host).unwrap();
        let keys: Vec<u128> = all.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..60).map(|i| i as u128).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_insert_overwrites() {
        let (mut host, mut tree) = setup(10);
        assert!(tree.insert(&mut host, 5, &payload(1)).unwrap());
        assert!(!tree.insert(&mut host, 5, &payload(2)).unwrap());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.get(&mut host, 5).unwrap(), Some(payload(2)));
    }

    #[test]
    fn update_hits_and_misses() {
        let (mut host, mut tree) = setup(10);
        tree.insert(&mut host, 1, &payload(1)).unwrap();
        assert!(tree.update(&mut host, 1, &payload(9)).unwrap());
        assert!(!tree.update(&mut host, 2, &payload(9)).unwrap());
        assert_eq!(tree.get(&mut host, 1).unwrap(), Some(payload(9)));
    }

    #[test]
    fn delete_and_chain_integrity() {
        let (mut host, mut tree) = setup(100);
        for i in 0..40u64 {
            tree.insert(&mut host, i as u128, &payload(i)).unwrap();
        }
        for i in (0..40u64).step_by(2) {
            assert!(tree.delete(&mut host, i as u128).unwrap());
        }
        assert!(!tree.delete(&mut host, 0).unwrap());
        assert_eq!(tree.len(), 20);
        let keys: Vec<u128> = tree.scan_chain(&mut host).unwrap().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (1..40).step_by(2).map(|i| i as u128).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan_inclusive() {
        let (mut host, mut tree) = setup(100);
        for i in 0..50u64 {
            tree.insert(&mut host, (i * 2) as u128, &payload(i)).unwrap();
        }
        let hits = tree.range(&mut host, 10, 20, 10).unwrap();
        let keys: Vec<u128> = hits.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
    }

    #[test]
    fn range_scan_pads_to_limit() {
        let (mut host, mut tree) = setup(50);
        for i in 0..10u64 {
            tree.insert(&mut host, i as u128, &payload(i)).unwrap();
        }
        // Two ranges with identical limits must cost identical accesses,
        // whatever they match.
        host.reset_stats();
        tree.range(&mut host, 0, 3, 8).unwrap();
        let a = host.stats().total_accesses();
        host.reset_stats();
        tree.range(&mut host, 9, 9, 8).unwrap();
        let b = host.stats().total_accesses();
        assert_eq!(a, b);
    }

    #[test]
    fn op_access_counts_are_key_independent() {
        // The heart of §3.2: every op type performs a fixed number of
        // untrusted accesses at a given tree state, whatever the key.
        let (mut host, mut tree) = setup(200);
        for i in 0..100u64 {
            tree.insert(&mut host, (i * 3) as u128, &payload(i)).unwrap();
        }
        // GET: hit vs miss, first vs last.
        let mut counts = Vec::new();
        for k in [0u128, 150, 297, 1, 500] {
            host.reset_stats();
            tree.get(&mut host, k).unwrap();
            counts.push(host.stats().total_accesses());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "get counts {counts:?}");

        // DELETE: hit vs miss must be indistinguishable. Tree height must
        // not change between probes for a fair comparison.
        host.reset_stats();
        tree.delete(&mut host, 1).unwrap(); // miss
        let miss = host.stats().total_accesses();
        host.reset_stats();
        tree.delete(&mut host, 150).unwrap(); // hit
        let hit = host.stats().total_accesses();
        assert_eq!(miss, hit);
    }

    #[test]
    fn insert_counts_match_with_and_without_splits() {
        let (mut host, mut tree) = setup(200);
        for i in 0..64u64 {
            tree.insert(&mut host, (i * 10) as u128, &payload(i)).unwrap();
        }
        let h = tree.height();
        // Probe several inserts; all at the same height must cost the same.
        let mut counts = Vec::new();
        for k in [5u128, 15, 25, 35] {
            host.reset_stats();
            tree.insert(&mut host, k, &payload(0)).unwrap();
            if tree.height() != h {
                break; // height changed: budget legitimately differs
            }
            counts.push(host.stats().total_accesses());
        }
        assert!(counts.len() >= 2);
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "insert counts {counts:?}");
    }

    #[test]
    fn capacity_enforced() {
        let (mut host, mut tree) = setup(5);
        for i in 0..5u64 {
            tree.insert(&mut host, i as u128, &payload(i)).unwrap();
        }
        assert_eq!(
            tree.insert(&mut host, 99, &payload(0)).unwrap_err(),
            ObTreeError::CapacityExceeded
        );
    }

    #[test]
    fn delete_then_reinsert_reuses_space() {
        let (mut host, mut tree) = setup(20);
        for round in 0..5 {
            for i in 0..20u64 {
                tree.insert(&mut host, i as u128, &payload(i + round)).unwrap();
            }
            for i in 0..20u64 {
                assert!(tree.delete(&mut host, i as u128).unwrap());
            }
            assert!(tree.is_empty());
        }
    }

    #[test]
    fn scan_structure_sees_exactly_the_records() {
        let (mut host, mut tree) = setup(30);
        for i in 0..30u64 {
            tree.insert(&mut host, i as u128, &payload(i)).unwrap();
        }
        let mut real = Vec::new();
        let mut total_slots = 0usize;
        tree.scan_structure(&mut host, |slot| {
            total_slots += 1;
            if let Some((k, _)) = slot {
                real.push(k);
            }
        })
        .unwrap();
        real.sort_unstable();
        assert_eq!(real, (0..30).map(|i| i as u128).collect::<Vec<_>>());
        assert!(total_slots > real.len()); // dummies and internals included
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let items: Vec<(u128, Vec<u8>)> =
            (0..200u64).map(|i| (i as u128 * 2, payload(i))).collect();
        let mut tree = ObTree::bulk_load(
            &mut host,
            AeadKey([3u8; 32]),
            &items,
            400,
            8,
            4,
            PosMapKind::Direct,
            &om,
            EnclaveRng::seed_from_u64(5),
        )
        .unwrap();
        assert_eq!(tree.len(), 200);
        for (k, v) in &items {
            assert_eq!(tree.get(&mut host, *k).unwrap().as_ref(), Some(v));
        }
        // The bulk-loaded tree remains fully mutable.
        tree.insert(&mut host, 3, &payload(999)).unwrap();
        tree.delete(&mut host, 0).unwrap();
        assert_eq!(tree.get(&mut host, 3).unwrap(), Some(payload(999)));
        assert_eq!(tree.get(&mut host, 0).unwrap(), None);
        let keys: Vec<u128> = tree.scan_chain(&mut host).unwrap().iter().map(|(k, _)| *k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bulk_load_batches_bucket_writes() {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let items: Vec<(u128, Vec<u8>)> = (0..200u64).map(|i| (i as u128, payload(i))).collect();
        host.reset_stats();
        let tree = ObTree::bulk_load(
            &mut host,
            AeadKey([3u8; 32]),
            &items,
            400,
            8,
            4,
            PosMapKind::Direct,
            &om,
            EnclaveRng::seed_from_u64(5),
        )
        .unwrap();
        let s = host.stats();
        assert!(
            s.writes >= tree.oram_stats().accesses.max(1000),
            "every bucket of the node-capacity tree is sealed ({} writes)",
            s.writes
        );
        assert!(
            s.crossings * 16 <= s.writes,
            "contiguous level layout must batch bucket writes: {} crossings for {} writes",
            s.crossings,
            s.writes
        );
    }

    #[test]
    fn height_grows_and_shrinks() {
        let (mut host, mut tree) = setup(300);
        assert_eq!(tree.height(), 1);
        for i in 0..300u64 {
            tree.insert(&mut host, i as u128, &payload(i)).unwrap();
        }
        assert!(tree.height() >= 3, "height {}", tree.height());
        for i in 0..300u64 {
            tree.delete(&mut host, i as u128).unwrap();
        }
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.height(), 1, "root should collapse back");
    }
}
