//! Property-based model test: the oblivious B+ tree must behave exactly
//! like `std::collections::BTreeMap` under arbitrary operation sequences,
//! while keeping its per-operation ORAM access counts key-independent.
//!
//! Cases are generated from a seeded [`EnclaveRng`] (the workspace is
//! dependency-free, so no proptest); failures print the offending case.

use oblidb_btree::{ObTree, OpKind};
use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveRng, Host, OmBudget, DEFAULT_OM_BYTES};
use oblidb_oram::PosMapKind;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8),
    Delete(u8),
    Get(u8),
    Update(u8, u8),
    Range(u8, u8),
}

fn rand_op(rng: &mut EnclaveRng) -> Op {
    let k = rng.below(256) as u8;
    let v = rng.below(256) as u8;
    match rng.below(5) {
        0 => Op::Insert(k, v),
        1 => Op::Delete(k),
        2 => Op::Get(k),
        3 => Op::Update(k, v),
        _ => Op::Range(k.min(v), k.max(v)),
    }
}

#[test]
fn matches_btreemap_model() {
    let mut rng = EnclaveRng::seed_from_u64(0xB7EE);
    for case in 0..48 {
        let ops: Vec<Op> = {
            let n = 1 + rng.below(119) as usize;
            (0..n).map(|_| rand_op(&mut rng)).collect()
        };
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let mut tree = ObTree::new(
            &mut host,
            AeadKey([1u8; 32]),
            300,
            4,
            4,
            PosMapKind::Direct,
            &om,
            EnclaveRng::seed_from_u64(99),
        )
        .unwrap();
        let mut model: BTreeMap<u128, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let created = tree.insert(&mut host, k as u128, &[v; 4]).unwrap();
                    let existed = model.insert(k as u128, vec![v; 4]).is_some();
                    assert_eq!(created, !existed, "case {case}: {op:?}");
                }
                Op::Delete(k) => {
                    let deleted = tree.delete(&mut host, k as u128).unwrap();
                    assert_eq!(deleted, model.remove(&(k as u128)).is_some(), "case {case}");
                }
                Op::Get(k) => {
                    let got = tree.get(&mut host, k as u128).unwrap();
                    assert_eq!(
                        got.as_deref(),
                        model.get(&(k as u128)).map(|v| v.as_slice()),
                        "case {case}: {op:?}"
                    );
                }
                Op::Update(k, v) => {
                    let updated = tree.update(&mut host, k as u128, &[v; 4]).unwrap();
                    let present = model.contains_key(&(k as u128));
                    assert_eq!(updated, present, "case {case}: {op:?}");
                    if present {
                        model.insert(k as u128, vec![v; 4]);
                    }
                }
                Op::Range(lo, hi) => {
                    let expected: Vec<u128> =
                        model.range(lo as u128..=hi as u128).map(|(k, _)| *k).collect();
                    let limit = (hi - lo) as u64 + 2;
                    let got: Vec<u128> = tree
                        .range(&mut host, lo as u128, hi as u128, limit)
                        .unwrap()
                        .iter()
                        .map(|(k, _)| *k)
                        .collect();
                    assert_eq!(got, expected, "case {case}: {op:?}");
                }
            }
            assert_eq!(tree.len(), model.len() as u64, "case {case}");
        }
    }
}

#[test]
fn access_counts_depend_only_on_height_and_op() {
    let mut rng = EnclaveRng::seed_from_u64(0xACC);
    for case in 0..12 {
        let keys: Vec<u8> = {
            let n = 2 + rng.below(38) as usize;
            (0..n).map(|_| rng.below(256) as u8).collect()
        };
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let mut tree = ObTree::new(
            &mut host,
            AeadKey([1u8; 32]),
            300,
            4,
            4,
            PosMapKind::Direct,
            &om,
            EnclaveRng::seed_from_u64(4),
        )
        .unwrap();
        for (i, k) in keys.iter().enumerate() {
            tree.insert(&mut host, (*k as u128) << 8 | i as u128, &[0u8; 4]).unwrap();
        }
        // All gets cost the same untrusted accesses, hit or miss.
        let mut counts = std::collections::HashSet::new();
        for probe in [0u128, 1, 77, u128::from(u64::MAX)] {
            host.reset_stats();
            tree.get(&mut host, probe).unwrap();
            counts.insert(host.stats().total_accesses());
        }
        assert_eq!(counts.len(), 1, "case {case}: {keys:?}");
        // And the observed count matches the public budget formula.
        host.reset_stats();
        tree.get(&mut host, 42).unwrap();
        let per_access = host.stats().total_accesses() / tree.op_budget(OpKind::Get);
        assert!(per_access >= 1, "case {case}");
    }
}
