//! Oblivious-trace auditor (telemetry tentpole): checks, at run time,
//! the property ObliDB's operators promise by construction — that a
//! statement's physical access pattern depends only on *public*
//! parameters, never on data.
//!
//! When [`crate::DbConfig::audit`] is on (or `OBLIDB_AUDIT=1`), every
//! statement runs under an access trace. The trace is folded into a
//! 64-bit FNV-1a hash and compared against the first hash recorded for
//! the same *statement shape*: the normalized SQL text plus the public
//! sizes the plan is allowed to depend on (table row counts and the
//! result size — ObliDB leaks sizes by design, §2.3). Two runs with the
//! same shape that touch untrusted memory differently can only have
//! branched on payload bytes — exactly the leak class the paper's
//! operators are built to exclude — so a hash divergence is recorded as
//! an [`AuditViolation`].
//!
//! The auditor lives entirely inside the enclave: it never exports the
//! trace, only aggregate hashes on explicit request, and it allocates
//! per *shape*, not per statement. Statements that run while a caller
//! already holds the trace channel (conformance tests, experiments) are
//! counted as skips rather than silently unaudited.

use std::collections::HashMap;

use oblidb_enclave::{AccessKind, Trace};

/// One detected access-pattern divergence: the same statement shape
/// produced two different traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// The statement shape (normalized SQL + public sizes) that diverged.
    pub shape: String,
    /// Trace hash recorded the first time this shape ran.
    pub expected_hash: u64,
    /// The differing hash observed on a later run.
    pub observed_hash: u64,
}

/// What the auditor has seen so far, for operator dashboards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Distinct statement shapes with a recorded reference hash.
    pub shapes: usize,
    /// Statements whose trace was hashed and checked.
    pub checks: u64,
    /// Statements not audited because the trace channel was taken.
    pub skips: u64,
    /// Divergences recorded (also available via
    /// [`TraceAuditor::violations`]).
    pub violations: usize,
}

/// Per-statement-shape trace hashes plus recorded divergences.
#[derive(Debug, Default)]
pub struct TraceAuditor {
    shapes: HashMap<String, u64>,
    violations: Vec<AuditViolation>,
    checks: u64,
    skips: u64,
}

impl TraceAuditor {
    /// Hashes `trace` and checks it against the reference hash for
    /// `shape`, recording the reference on first sight and a violation
    /// on divergence.
    pub fn observe(&mut self, shape: &str, trace: &Trace) {
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::AuditChecks, 1);
        self.checks += 1;
        let observed = trace_hash(trace);
        match self.shapes.get(shape) {
            None => {
                self.shapes.insert(shape.to_string(), observed);
            }
            Some(&expected) if expected == observed => {}
            Some(&expected) => {
                oblidb_telemetry::counter_add(oblidb_telemetry::Counter::AuditViolations, 1);
                self.violations.push(AuditViolation {
                    shape: shape.to_string(),
                    expected_hash: expected,
                    observed_hash: observed,
                });
            }
        }
    }

    /// Records a statement the auditor had to skip (trace channel busy).
    pub fn skip(&mut self) {
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::AuditSkips, 1);
        self.skips += 1;
    }

    /// Divergences recorded so far, in detection order.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Aggregate counters.
    pub fn report(&self) -> AuditReport {
        AuditReport {
            shapes: self.shapes.len(),
            checks: self.checks,
            skips: self.skips,
            violations: self.violations.len(),
        }
    }
}

/// Folds a trace into a 64-bit FNV-1a hash: region, block index, and
/// access kind per event, in order. Region ids are canonicalized to
/// first-appearance ordinals before hashing: the engine allocates fresh
/// region ids for every intermediate table, so two runs of the same
/// statement touch structurally identical regions under drifting absolute
/// numbers — the *pattern* (which region by position, which block, which
/// direction) is the oblivious contract, not the allocator's counter.
/// Collisions are astronomically unlikely for an auditor, and a colliding
/// *divergent* trace would go unflagged, never the reverse — hashing adds
/// no false positives.
pub fn trace_hash(trace: &Trace) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    let mut order: HashMap<u32, u64> = HashMap::new();
    for ev in &trace.0 {
        let next = order.len() as u64;
        let region = *order.entry(ev.region.0).or_insert(next);
        mix(region);
        mix(ev.index);
        mix(match ev.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
    }
    h
}

/// Builds the statement-shape key: the normalized SQL (literals masked,
/// case and whitespace folded) concatenated with the public sizes the
/// access pattern may legitimately depend on — each table's row count
/// and the statement's result size. Everything else a trace varies with
/// is, by ObliDB's contract, a leak.
pub fn statement_shape(sql: &str, tables: &[(String, u64)], output_rows: u64) -> String {
    let mut shape = normalize_statement(sql);
    for (name, rows) in tables {
        shape.push_str("|t:");
        shape.push_str(name);
        shape.push('=');
        shape.push_str(&rows.to_string());
    }
    shape.push_str("|out=");
    shape.push_str(&output_rows.to_string());
    shape
}

/// Normalizes SQL for shape keying: string literals and standalone
/// numbers become `?`, letters fold to lowercase, and whitespace runs
/// collapse to one space — so `SELECT … WHERE v = 3` and
/// `select … where v = 7` share a shape (their traces must agree; the
/// literal only selects *which* rows match, not how many blocks are
/// touched) while structurally different statements never collide.
pub fn normalize_statement(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut prev_space = true;
    while let Some(c) = chars.next() {
        if c == '\'' {
            // Mask the quoted literal ('' escapes a quote inside it).
            while let Some(q) = chars.next() {
                if q == '\'' {
                    if chars.peek() == Some(&'\'') {
                        chars.next();
                    } else {
                        break;
                    }
                }
            }
            out.push('?');
            prev_space = false;
        } else if c.is_ascii_digit()
            && !out.chars().last().is_some_and(|p| p.is_ascii_alphanumeric() || p == '_')
        {
            // A number not continuing an identifier: mask the whole run.
            while chars.peek().is_some_and(|d| d.is_ascii_digit() || *d == '.') {
                chars.next();
            }
            out.push('?');
            prev_space = false;
        } else if c.is_whitespace() {
            if !prev_space {
                out.push(' ');
            }
            prev_space = true;
        } else {
            out.push(c.to_ascii_lowercase());
            prev_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_enclave::{AccessEvent, RegionId};

    fn ev(region: u32, index: u64, kind: AccessKind) -> AccessEvent {
        AccessEvent { region: RegionId(region), index, kind }
    }

    #[test]
    fn normalization_masks_literals_and_folds_case() {
        assert_eq!(
            normalize_statement("SELECT  v FROM t WHERE v = 31"),
            "select v from t where v = ?"
        );
        assert_eq!(
            normalize_statement("select v from t where v = 7"),
            "select v from t where v = ?"
        );
        // Digits continuing an identifier (t2, c1x) stay; standalone
        // number literals are masked.
        assert_eq!(
            normalize_statement("INSERT INTO t2 VALUES ('o''brien', 4)"),
            "insert into t2 values (?, ?)"
        );
        assert_eq!(normalize_statement("select c1x from t"), "select c1x from t");
    }

    #[test]
    fn hash_is_order_and_kind_sensitive() {
        let a = Trace(vec![ev(1, 0, AccessKind::Read), ev(1, 1, AccessKind::Read)]);
        let b = Trace(vec![ev(1, 1, AccessKind::Read), ev(1, 0, AccessKind::Read)]);
        let c = Trace(vec![ev(1, 0, AccessKind::Write), ev(1, 1, AccessKind::Read)]);
        assert_ne!(trace_hash(&a), trace_hash(&b));
        assert_ne!(trace_hash(&a), trace_hash(&c));
        assert_eq!(trace_hash(&a), trace_hash(&a.clone()));
    }

    #[test]
    fn hash_canonicalizes_region_ids_but_not_region_structure() {
        // A consistent renaming (regions 1,2 → 7,9) is the same pattern:
        // intermediates get fresh ids on every run.
        let a = Trace(vec![
            ev(1, 0, AccessKind::Read),
            ev(2, 0, AccessKind::Write),
            ev(1, 1, AccessKind::Read),
        ]);
        let renamed = Trace(vec![
            ev(7, 0, AccessKind::Read),
            ev(9, 0, AccessKind::Write),
            ev(7, 1, AccessKind::Read),
        ]);
        assert_eq!(trace_hash(&a), trace_hash(&renamed));
        // Collapsing two regions into one is a different pattern.
        let collapsed = Trace(vec![
            ev(7, 0, AccessKind::Read),
            ev(7, 0, AccessKind::Write),
            ev(7, 1, AccessKind::Read),
        ]);
        assert_ne!(trace_hash(&a), trace_hash(&collapsed));
    }

    #[test]
    fn auditor_flags_divergence_per_shape() {
        let mut aud = TraceAuditor::default();
        let t1 = Trace(vec![ev(1, 0, AccessKind::Read)]);
        let t2 = Trace(vec![ev(1, 3, AccessKind::Read)]);
        aud.observe("s1", &t1);
        aud.observe("s1", &t1);
        assert!(aud.violations().is_empty());
        aud.observe("s2", &t2); // different shape: its own reference
        aud.observe("s1", &t2); // same shape, different trace: flagged
        let report = aud.report();
        assert_eq!(report.shapes, 2);
        assert_eq!(report.checks, 4);
        assert_eq!(report.violations, 1);
        assert_eq!(aud.violations()[0].shape, "s1");
        assert_ne!(aud.violations()[0].expected_hash, aud.violations()[0].observed_hash);
    }
}
