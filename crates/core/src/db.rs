//! The ObliDB database facade and the prepare/explain/execute lifecycle.
//!
//! Owns the simulated enclave state (host memory handle, oblivious-memory
//! budget, master key, RNG) and the table catalog. Queries move through
//! three explicit phases:
//!
//! 1. [`Database::prepare`] compiles SQL into a typed physical-plan IR
//!    ([`crate::plan::QueryPlan`]): a tree of scan/filter/join/aggregate
//!    nodes, each annotated with the chosen operator, padded bounds, OM
//!    budget, and a cost estimate counted by dry-running the candidates
//!    against `CountingMemory` and weighing them with the configured
//!    [`crate::plan::cost::CostProfile`] (paper §5, cost-calibrated per
//!    substrate).
//! 2. [`PreparedStatement::explain`] renders the tree with estimated and,
//!    post-run, actual costs; `EXPLAIN SELECT ...` does the same through
//!    SQL.
//! 3. [`PreparedStatement::run`] executes the tree — resolve → (push-down
//!    select) → join → select → aggregate/group-by → decode — measuring
//!    each node's actual access counts as it goes. [`Database::execute`]
//!    remains as a thin prepare-then-run shim.

pub mod persist;
pub mod shared;

use std::collections::HashMap;

use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{
    EnclaveMemory, EnclaveRng, Host, OmBudget, ThreadPool, Trace, DEFAULT_OM_BYTES,
};

use crate::error::DbError;
use crate::exec::{self, AggFunc, SortMergeVariant};
use crate::padding::PaddingConfig;
use crate::plan::cost::{self, CostProfile, JoinShape, SelectShape};
use crate::plan::{
    AccessPath, AggregateNode, Explain, FilterNode, GroupByNode, JoinChoice, JoinNode, NodeCost,
    PlanAction, PlanNode, QueryPlan, ScanNode, SelectChoice, SelectPlan, TxnVerb,
};
use crate::planner::{self, CostModel, JoinAlgo, PlannerConfig, SelectAlgo, SelectStats};
use crate::predicate::Predicate;
use crate::sql::{self, Projection, SelectItem, Statement};
use crate::table::{FlatTable, IndexedTable, TableStorage};
use crate::types::{Column, DataType, Row, Schema, Value};

/// Default initial table capacity (rows) when CREATE TABLE gives none.
pub const DEFAULT_CAPACITY: u64 = 1024;

/// Which storage method(s) a table uses (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMethod {
    /// Flat only.
    Flat,
    /// Oblivious B+ tree only.
    Indexed,
    /// Both, kept in sync (Figure 12).
    Both,
}

/// Parallel-execution configuration: how many worker threads the engine
/// may use for partitioned sealing inside batched region I/O.
///
/// Parallelism never changes what the untrusted host observes — the
/// memory-call sequence, crossing counts, and sealed bytes are identical
/// to serial execution — so the worker count is a pure performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads (`1` = serial, the default; `0` is clamped to 1).
    pub threads: usize,
}

impl ExecConfig {
    /// Serial execution (one worker).
    pub const SERIAL: ExecConfig = ExecConfig { threads: 1 };

    /// Reads the worker count from the `OBLIDB_THREADS` environment
    /// variable; unset, empty, or unparsable values mean serial.
    pub fn from_env() -> Self {
        let threads = std::env::var("OBLIDB_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|n| *n > 0)
            .unwrap_or(1);
        ExecConfig { threads }
    }

    /// The worker pool this configuration describes.
    pub fn pool(&self) -> ThreadPool {
        ThreadPool::new(self.threads)
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::SERIAL
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Oblivious-memory budget in bytes (paper default: ≤ 20 MB).
    pub om_bytes: usize,
    /// RNG seed (experiments reproduce exactly under a fixed seed).
    pub seed: u64,
    /// Planner tunables and operator overrides.
    pub planner: PlannerConfig,
    /// Padding mode; `Some` disables the planner and pads result sizes.
    pub padding: Option<PaddingConfig>,
    /// Use the constant-time fast insert on flat tables (§3.1). On by
    /// default, as for tables with few deletions.
    pub fast_inserts: bool,
    /// Plain (non-oblivious) enclave scratch rows granted to the 0-OM
    /// join's sort (§4.3: it speeds up "regardless of whether the memory
    /// is oblivious").
    pub zero_om_scratch_rows: usize,
    /// Write-ahead logging of mutation statements (paper §3). `Some`
    /// appends every INSERT/UPDATE/DELETE statement to an encrypted log
    /// before executing it; replay with [`Database::wal_records`] +
    /// [`Database::replay`].
    pub wal: Option<crate::wal::WalConfig>,
    /// Epoch-based group commit (Obladi-style). `Some` pools mutation WAL
    /// records into an open epoch instead of fsyncing each append;
    /// closing the epoch ([`Database::commit_epoch`] — driven by the
    /// transaction manager's scheduler) writes one commit marker and pays
    /// one `sync_region` for the whole group. Recovery replays whole
    /// epochs or none. Only meaningful with `wal` on.
    pub epoch: Option<crate::wal::EpochConfig>,
    /// Parallel execution (worker threads for partitioned sealing). The
    /// default honors `OBLIDB_THREADS`; set explicitly to override.
    pub exec: ExecConfig,
    /// Oblivious-trace auditing: when on, every statement records its
    /// access trace, hashes it, and checks the hash against the first
    /// trace observed for the same statement *shape* (normalized SQL plus
    /// the public table sizes). A divergence means an access pattern
    /// depended on data, not just on public parameters — exactly the
    /// property ObliDB promises never to violate. The default honors
    /// `OBLIDB_AUDIT=1`; statements that run while a caller already holds
    /// the trace channel are skipped (counted, never silently dropped).
    pub audit: bool,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            om_bytes: DEFAULT_OM_BYTES,
            seed: 0xB10C_5EED,
            planner: PlannerConfig::default(),
            padding: None,
            fast_inserts: true,
            zero_om_scratch_rows: 1,
            wal: None,
            epoch: None,
            exec: ExecConfig::from_env(),
            audit: std::env::var("OBLIDB_AUDIT").is_ok_and(|v| v == "1"),
        }
    }
}

/// The physical plan chosen for a query — exactly the plan-shaped leakage
/// of §2.3, surfaced for tests and experiments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanInfo {
    /// Selection operator used, if any.
    pub select_algo: Option<SelectAlgo>,
    /// Join operator used, if any.
    pub join_algo: Option<JoinAlgo>,
    /// Whether an index satisfied part of the query.
    pub used_index: bool,
    /// Whether select+aggregate were fused into one pass.
    pub fused_aggregate: bool,
    /// Sizes of intermediate tables, in creation order.
    pub intermediate_rows: Vec<u64>,
    /// Result row count.
    pub output_rows: u64,
}

/// Decoded query results plus the plan leakage.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Result schema.
    pub schema: Schema,
    rows: Vec<Row>,
    /// The physical plan (the query's non-size leakage).
    pub plan: PlanInfo,
    /// Rows changed by a mutation statement (`Some` for INSERT / UPDATE /
    /// DELETE, `None` for reads) — the mutation result in its own right,
    /// no longer smuggled through an empty-schema plan field.
    pub rows_affected: Option<u64>,
}

impl QueryOutput {
    /// The decoded rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn empty(schema: Schema) -> Self {
        QueryOutput { schema, rows: Vec::new(), plan: PlanInfo::default(), rows_affected: None }
    }

    /// A mutation result: no rows, `rows_affected` set. The count is also
    /// mirrored into `plan.output_rows` for pre-lifecycle callers.
    fn affected(n: u64) -> Self {
        let mut out = QueryOutput::empty(Schema::new(Vec::new()));
        out.rows_affected = Some(n);
        out.plan.output_rows = n;
        out
    }
}

/// The database engine, generic over its untrusted memory substrate.
///
/// `M` is the [`EnclaveMemory`] backing every table region: [`Host`] (the
/// default, stores sealed blocks in memory) or any other implementor —
/// e.g. [`oblidb_enclave::CountingMemory`] for payload-free cost modeling.
pub struct Database<M: EnclaveMemory = Host> {
    host: M,
    om: OmBudget,
    rng: EnclaveRng,
    master_key: [u8; 32],
    /// Per-incarnation entropy folded into every derived region key:
    /// two engine incarnations (e.g. a crash rebuild replaying only the
    /// WAL-logged prefix of the original history) must never seal
    /// different plaintexts under the same (key, region, nonce) triple,
    /// and the nonce counter alone cannot guarantee that because region
    /// ids and key counters replay deterministically. Persisted keys are
    /// wrapped in the manifest, so reopening does not need to re-derive
    /// them.
    key_epoch: [u8; 16],
    key_counter: u64,
    tables: Vec<(String, TableStorage)>,
    config: DbConfig,
    wal: Option<crate::wal::Wal>,
    /// Bumped on every catalog or data mutation; prepared statements
    /// re-plan transparently when their snapshot goes stale.
    version: u64,
    /// Compiled SELECT plans keyed by statement text, each validated
    /// against the catalog version it was planned under — repeated
    /// `prepare` of the same SQL skips parsing, the preliminary scan, and
    /// dry-run costing. Any catalog/data change (version bump) makes an
    /// entry stale; DDL included.
    plan_cache: HashMap<String, QueryPlan>,
    plan_cache_stats: PlanCacheStats,
    /// Per-statement-shape trace hashes when [`DbConfig::audit`] is on.
    auditor: crate::audit::TraceAuditor,
}

/// Hit/miss counters for the prepared-plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// `prepare` calls served from the cache (same SQL, same catalog
    /// version — no parse, no preliminary scan, no dry-run costing).
    pub hits: u64,
    /// `prepare` calls that compiled a plan (first sight, or stale).
    pub misses: u64,
}

/// Cached plans beyond this are evicted stale-first (then wholesale) —
/// a bound, not a tuning knob; plans are small.
const PLAN_CACHE_CAP: usize = 128;

impl Database<Host> {
    /// Creates an empty database over a fresh in-memory [`Host`].
    pub fn new(config: DbConfig) -> Self {
        Self::with_memory(Host::new(), config)
    }
}

impl<M: EnclaveMemory> Database<M> {
    /// Creates an empty database over a caller-provided memory substrate.
    ///
    /// Convenience wrapper over [`Database::try_with_memory`] that panics
    /// if the substrate cannot allocate the WAL region — impossible for
    /// in-memory substrates; use `try_with_memory` when handing over a
    /// disk-backed substrate whose allocation can genuinely fail.
    ///
    /// Payload-free substrates (e.g. `CountingMemory`) support flat
    /// storage with padding mode or a forced size-oblivious select;
    /// adaptive planning and indexed storage return typed errors there,
    /// since both depend on payload contents.
    pub fn with_memory(host: M, config: DbConfig) -> Self {
        Self::try_with_memory(host, config).expect("substrate failed to allocate the WAL region")
    }

    /// Creates an empty database over a caller-provided memory substrate,
    /// surfacing substrate allocation failure (e.g. a full disk while
    /// creating the WAL region) as a typed error instead of panicking.
    pub fn try_with_memory(host: M, config: DbConfig) -> Result<Self, DbError> {
        // A fresh engine keeps the all-zero epoch: its nonce counters
        // alone guarantee uniqueness within the incarnation, and
        // deterministic keys under a fixed seed are part of the
        // reproducibility contract (trace-equality tests construct
        // parallel engines). Incarnations that *share a store* with a
        // predecessor (reopen, crash rebuild) must use
        // [`Database::try_with_memory_fresh_epoch`] /
        // [`Database::open_with_memory`] instead, which randomize it.
        Self::try_with_memory_at_epoch(host, config, [0u8; 16])
    }

    /// [`Database::try_with_memory`] with a freshly randomized key epoch:
    /// for engines rebuilt over a store an earlier incarnation wrote
    /// (crash recovery), where replaying a prefix of the old history
    /// would otherwise re-derive the same region keys and nonce counters
    /// for different plaintexts — ciphertexts the untrusted host still
    /// holds.
    pub fn try_with_memory_fresh_epoch(host: M, config: DbConfig) -> Result<Self, DbError> {
        let (mut rng, _) = persist::derive_identity(config.seed);
        let epoch = persist::fresh_key_epoch(&mut rng);
        Self::try_with_memory_at_epoch(host, config, epoch)
    }

    fn try_with_memory_at_epoch(
        host: M,
        config: DbConfig,
        key_epoch: [u8; 16],
    ) -> Result<Self, DbError> {
        let (rng, master_key) = persist::derive_identity(config.seed);
        let mut db = Database {
            host,
            om: OmBudget::new(config.om_bytes),
            rng,
            master_key,
            key_epoch,
            key_counter: 0,
            tables: Vec::new(),
            config,
            wal: None,
            version: 0,
            plan_cache: HashMap::new(),
            plan_cache_stats: PlanCacheStats::default(),
            auditor: crate::audit::TraceAuditor::default(),
        };
        if let Some(wal_config) = db.config.wal {
            let key = db.next_key();
            db.wal = Some(crate::wal::Wal::create(&mut db.host, key, wal_config)?);
        }
        Ok(db)
    }

    /// Decrypts and returns the logged mutation statements, oldest first
    /// (empty when WAL is off).
    pub fn wal_records(&mut self) -> Result<Vec<String>, DbError> {
        match &mut self.wal {
            Some(w) => {
                // Log records live in payloads; a payload-free substrate
                // would decode zeroed blocks into empty statements and
                // recovery would silently no-op. Refuse loudly, like every
                // other payload-dependent read path.
                if !self.host.retains_payloads() {
                    return Err(DbError::Unsupported(
                        "WAL recovery requires a payload-retaining EnclaveMemory \
                         (log records live in block payloads)"
                            .into(),
                    ));
                }
                w.records(&mut self.host)
            }
            None => Ok(Vec::new()),
        }
    }

    /// Replays logged statements (from [`Database::wal_records`] of a
    /// previous incarnation) into this engine — the redo half of
    /// recovery. Schema statements must be re-issued first, as in a
    /// conventional redo from a checkpoint.
    pub fn replay(&mut self, statements: &[String]) -> Result<(), DbError> {
        for stmt in statements {
            self.execute(stmt)?;
        }
        Ok(())
    }

    /// Checkpoints the engine: flushes the substrate's buffered state to
    /// its durable medium ([`EnclaveMemory::sync`]) — write-back caches
    /// flush dirty blocks, disk regions fsync, in-memory substrates
    /// no-op. The WAL (when enabled) lives in host regions like every
    /// table, so this is also the log's flush point; checkpoint *records*
    /// and log truncation are future work (see ROADMAP).
    pub fn checkpoint(&mut self) -> Result<(), DbError> {
        self.host.sync().map_err(DbError::from)
    }

    /// Closes the currently open WAL epoch: appends one commit marker and
    /// pays one group fsync for every statement logged since the last
    /// close. Returns how many statements became durable (0 when already
    /// at an epoch boundary, or without a WAL). The epoch scheduler
    /// ([`crate::wal::EpochConfig`] via `oblidb::txn`) drives this on its
    /// window; callers handing the store to someone else (checkpoint,
    /// shutdown) call it directly so the log never ends mid-epoch.
    pub fn commit_epoch(&mut self) -> Result<u64, DbError> {
        let Some(wal) = &mut self.wal else { return Ok(0) };
        if wal.epoch_pending() == 0 {
            return Ok(0);
        }
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Epoch);
        let sealed = wal.append_epoch_commit(&mut self.host)?;
        if wal.durable_appends() {
            let region = wal.region_id();
            self.host.sync_region(region)?;
            oblidb_telemetry::counter_add(oblidb_telemetry::Counter::EpochFsyncs, 1);
        }
        Ok(sealed)
    }

    /// Statements pending in the open WAL epoch (0 without a WAL).
    pub fn epoch_pending(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.epoch_pending())
    }

    /// The WAL's monotonic log sequence number — records ever appended
    /// across truncating checkpoints (`None` without a WAL).
    pub fn wal_lsn(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.checkpoint_lsn())
    }

    /// Records dropped from the WAL prefix by truncating checkpoints
    /// (`None` without a WAL).
    pub fn wal_base_lsn(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.base_lsn())
    }

    /// Records currently in the live WAL region (0 without a WAL) —
    /// bounded under [`crate::wal::WalConfig::truncate_at_checkpoint`],
    /// monotone otherwise.
    pub fn wal_len(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.len())
    }

    /// Dry-run validation of an atomic statement batch (a transaction
    /// commit): every statement must parse, be a mutation, target a table
    /// that exists (or that the batch itself creates), and carry values /
    /// predicates / assignments its schema accepts — all checked *before*
    /// the first statement executes, so a mid-batch rejection cannot
    /// leave the group half-applied. After a clean validation, execution
    /// can still fail only on substrate I/O errors.
    pub(crate) fn validate_batch(&self, statements: &[String]) -> Result<(), DbError> {
        // Tables the batch itself creates, visible to its later statements.
        let mut created: Vec<(String, Schema)> = Vec::new();
        let lookup = |created: &[(String, Schema)], this: &Self, name: &str| {
            if let Some((_, s)) = created.iter().find(|(n, _)| n == name) {
                return Ok(s.clone());
            }
            this.table_index(name).map(|i| this.tables[i].1.schema().clone())
        };
        for stmt in statements {
            match sql::parse(stmt)? {
                Statement::Create(c) => {
                    if self.table_index(&c.name).is_ok()
                        || created.iter().any(|(n, _)| n == &c.name)
                    {
                        return Err(DbError::Sql(format!("table '{}' already exists", c.name)));
                    }
                    let schema = Schema::new(
                        c.columns.iter().map(|cd| Column::new(cd.name.clone(), cd.dtype)).collect(),
                    );
                    created.push((c.name.clone(), schema));
                }
                Statement::Insert(i) => {
                    let schema = lookup(&created, self, &i.table)?;
                    schema.encode_row(&i.values)?;
                }
                Statement::Update(u) => {
                    let schema = lookup(&created, self, &u.table)?;
                    if let Some(w) = &u.where_clause {
                        w.resolve(&schema)?;
                    }
                    for a in &u.sets {
                        let idx = schema.col(&a.col)?;
                        check_assignable(schema.columns[idx].dtype, &a.value, &a.col)?;
                    }
                }
                Statement::Delete(d) => {
                    let schema = lookup(&created, self, &d.table)?;
                    if let Some(w) = &d.where_clause {
                        w.resolve(&schema)?;
                    }
                }
                Statement::Select(_) | Statement::Explain(_) | Statement::ExplainAnalyze(_) => {
                    return Err(DbError::Unsupported(format!(
                        "read-only statement in an atomic commit batch: {stmt}"
                    )));
                }
                Statement::Begin | Statement::Commit | Statement::Rollback => {
                    return Err(DbError::Unsupported(
                        "nested transaction control inside a commit batch".into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Compacts the live state into a replayable statement list — the
    /// CREATE + INSERT history an empty engine needs to reproduce every
    /// table exactly. This is what a truncating checkpoint seeds its
    /// fresh WAL region with, in place of the dropped statement history.
    /// Flat tables only (the same restriction as [`Database::persist_to`]).
    pub(crate) fn dump_state_statements(&mut self) -> Result<Vec<String>, DbError> {
        let mut out = Vec::new();
        for (name, storage) in &mut self.tables {
            let TableStorage::Flat(f) = storage else {
                return Err(DbError::Unsupported(format!(
                    "table '{name}' uses indexed storage; state dumps (WAL truncation) \
                     support FLAT tables only"
                )));
            };
            let cols = f
                .schema()
                .columns
                .iter()
                .map(|c| format!("{} {}", c.name, render_dtype(c.dtype)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push(format!("CREATE TABLE {name} ({cols}) CAPACITY {}", f.capacity()));
            for row in f.collect_rows(&mut self.host)? {
                let vals = row.iter().map(sql_literal).collect::<Vec<_>>().join(", ");
                out.push(format!("INSERT INTO {name} VALUES ({vals})"));
            }
        }
        Ok(out)
    }

    /// Unpadded GROUP BY sizes its output by the group count, which is
    /// decoded from block payloads — unavailable on a payload-free
    /// substrate, where the trace would silently diverge from the real
    /// engine. Padding mode sizes by the (public) configured maximum, so
    /// it stays exact. Mirrors `require_payloads` for indexed storage.
    fn require_payloads_for_group_by(&self) -> Result<(), DbError> {
        if self.host.retains_payloads() || self.config.padding.is_some() {
            Ok(())
        } else {
            Err(DbError::Unsupported(
                "GROUP BY on a payload-free EnclaveMemory substrate requires padding \
                 mode (the unpadded output size is payload-derived)"
                    .into(),
            ))
        }
    }

    /// Fresh derived key for a new region/table: master key, incarnation
    /// epoch, and a monotone counter — unique per region per incarnation.
    fn next_key(&mut self) -> AeadKey {
        self.key_counter += 1;
        let mut label = Vec::with_capacity(7 + 16 + 8);
        label.extend_from_slice(b"region:");
        label.extend_from_slice(&self.key_epoch);
        label.extend_from_slice(&self.key_counter.to_le_bytes());
        AeadKey(oblidb_crypto::derive_key(&self.master_key, &label))
    }

    /// Engine configuration (mutable, so experiments can flip planner
    /// settings between queries). Handing out the borrow drops every
    /// cached plan: planner settings are part of what a plan was compiled
    /// under, and the catalog version cannot see them change.
    pub fn config_mut(&mut self) -> &mut DbConfig {
        self.plan_cache.clear();
        &mut self.config
    }

    /// The untrusted memory substrate — exposed so tests and experiments
    /// can record and inspect access-pattern traces.
    pub fn host_mut(&mut self) -> &mut M {
        &mut self.host
    }

    /// The oblivious-memory budget handle.
    pub fn om(&self) -> &OmBudget {
        &self.om
    }

    /// Starts recording the adversary's view.
    pub fn start_trace(&mut self) {
        self.host.start_trace();
    }

    /// Stops recording and returns the transcript.
    pub fn take_trace(&mut self) -> Trace {
        self.host.take_trace()
    }

    /// Trace-audit divergences recorded so far (empty unless
    /// [`DbConfig::audit`] is on — see [`crate::audit`]).
    pub fn audit_violations(&self) -> &[crate::audit::AuditViolation] {
        self.auditor.violations()
    }

    /// Aggregate trace-audit counters (shapes seen, checks, skips,
    /// violations).
    pub fn audit_report(&self) -> crate::audit::AuditReport {
        self.auditor.report()
    }

    /// One merged telemetry snapshot: the process-wide metrics registry
    /// (counters + histograms) plus this engine's substrate traffic and
    /// plan-cache counters — the single surface that absorbs `HostStats`,
    /// substrate cache stats, and `PlanCacheStats`.
    ///
    /// Exporting it is an *explicit* boundary crossing: the snapshot
    /// aggregates sizes and counts the adversary model already concedes
    /// (it watches every block access live), so exporting leaks nothing
    /// new — but callers inside an enclave should still ship it only at
    /// deliberate points (shutdown, operator request), never per query.
    pub fn metrics_snapshot(&self) -> oblidb_telemetry::MetricsSnapshot {
        let mut snap = oblidb_telemetry::snapshot();
        let stats = self.host.stats();
        snap.push_counter("host_reads", stats.reads);
        snap.push_counter("host_writes", stats.writes);
        snap.push_counter("host_bytes_read", stats.bytes_read);
        snap.push_counter("host_bytes_written", stats.bytes_written);
        snap.push_counter("host_crossings", stats.crossings);
        snap.push_counter("host_stall_nanos", stats.stall_nanos);
        snap.push_counter("plan_cache_hits", self.plan_cache_stats.hits);
        snap.push_counter("plan_cache_misses", self.plan_cache_stats.misses);
        let audit = self.auditor.report();
        snap.push_counter("audit_shapes", audit.shapes as u64);
        snap.push_counter("audit_violations", audit.violations as u64);
        snap
    }

    fn table_index(&self, name: &str) -> Result<usize, DbError> {
        self.tables
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Creates a table.
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        method: StorageMethod,
        index_on: Option<&str>,
        capacity: u64,
    ) -> Result<(), DbError> {
        if self.tables.iter().any(|(n, _)| n == name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let storage = match method {
            StorageMethod::Flat => {
                let key = self.next_key();
                let mut flat = FlatTable::create(&mut self.host, key, schema, capacity)?;
                flat.set_parallelism(self.config.exec.pool());
                TableStorage::Flat(flat)
            }
            StorageMethod::Indexed => {
                let col = index_on.ok_or(DbError::Unsupported(
                    "INDEXED storage requires INDEX ON <col>".into(),
                ))?;
                let key_col = schema.col(col)?;
                let key = self.next_key();
                let rng = self.rng.fork();
                TableStorage::Indexed(IndexedTable::create(
                    &mut self.host,
                    key,
                    schema,
                    key_col,
                    capacity,
                    &self.om,
                    rng,
                )?)
            }
            StorageMethod::Both => {
                let col = index_on
                    .ok_or(DbError::Unsupported("BOTH storage requires INDEX ON <col>".into()))?;
                let key_col = schema.col(col)?;
                let fk = self.next_key();
                let mut flat = FlatTable::create(&mut self.host, fk, schema.clone(), capacity)?;
                flat.set_parallelism(self.config.exec.pool());
                let ik = self.next_key();
                let rng = self.rng.fork();
                let indexed = IndexedTable::create(
                    &mut self.host,
                    ik,
                    schema,
                    key_col,
                    capacity,
                    &self.om,
                    rng,
                );
                // Don't leak the flat region if the index half fails
                // (deterministic on payload-free substrates).
                let indexed = match indexed {
                    Ok(i) => i,
                    Err(e) => {
                        // Best-effort cleanup; the index failure is the
                        // error worth surfacing.
                        let _ = flat.free(&mut self.host);
                        return Err(e);
                    }
                };
                TableStorage::Both { flat, indexed }
            }
        };
        self.tables.push((name.to_string(), storage));
        self.version += 1;
        Ok(())
    }

    /// Bulk-creates a table with contents (pre-deployment load; avoids one
    /// oblivious insert per row when building experiment datasets).
    pub fn create_table_with_rows(
        &mut self,
        name: &str,
        schema: Schema,
        method: StorageMethod,
        index_on: Option<&str>,
        rows: &[Vec<Value>],
        capacity: u64,
    ) -> Result<(), DbError> {
        if self.tables.iter().any(|(n, _)| n == name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let encoded: Vec<Vec<u8>> =
            rows.iter().map(|r| schema.encode_row(r)).collect::<Result<_, _>>()?;
        let cap = capacity.max(rows.len() as u64);
        let storage = match method {
            StorageMethod::Flat => {
                let key = self.next_key();
                let mut flat =
                    FlatTable::from_encoded_rows(&mut self.host, key, schema, &encoded, cap)?;
                flat.set_parallelism(self.config.exec.pool());
                TableStorage::Flat(flat)
            }
            StorageMethod::Indexed => {
                let col = index_on.ok_or(DbError::Unsupported(
                    "INDEXED storage requires INDEX ON <col>".into(),
                ))?;
                let key_col = schema.col(col)?;
                let key = self.next_key();
                let rng = self.rng.fork();
                TableStorage::Indexed(IndexedTable::from_encoded_rows(
                    &mut self.host,
                    key,
                    schema,
                    key_col,
                    &encoded,
                    cap,
                    &self.om,
                    rng,
                )?)
            }
            StorageMethod::Both => {
                let col = index_on
                    .ok_or(DbError::Unsupported("BOTH storage requires INDEX ON <col>".into()))?;
                let key_col = schema.col(col)?;
                let fk = self.next_key();
                let mut flat = FlatTable::from_encoded_rows(
                    &mut self.host,
                    fk,
                    schema.clone(),
                    &encoded,
                    cap,
                )?;
                flat.set_parallelism(self.config.exec.pool());
                let ik = self.next_key();
                let rng = self.rng.fork();
                let indexed = match IndexedTable::from_encoded_rows(
                    &mut self.host,
                    ik,
                    schema,
                    key_col,
                    &encoded,
                    cap,
                    &self.om,
                    rng,
                ) {
                    Ok(i) => i,
                    Err(e) => {
                        // Best-effort cleanup; the index failure is the
                        // error worth surfacing.
                        let _ = flat.free(&mut self.host);
                        return Err(e);
                    }
                };
                TableStorage::Both { flat, indexed }
            }
        };
        self.tables.push((name.to_string(), storage));
        self.version += 1;
        Ok(())
    }

    /// Row count of a table (public information).
    pub fn table_rows(&self, name: &str) -> Result<u64, DbError> {
        Ok(self.tables[self.table_index(name)?].1.num_rows())
    }

    /// Schema of a table.
    pub fn table_schema(&self, name: &str) -> Result<&Schema, DbError> {
        Ok(self.tables[self.table_index(name)?].1.schema())
    }

    /// Inserts a row, updating every storage method the table has.
    pub fn insert(&mut self, name: &str, values: &[Value]) -> Result<(), DbError> {
        let idx = self.table_index(name)?;
        let fast = self.config.fast_inserts;
        // Auto-grow flat storage when full (paper §3: capacity "can be
        // increased later by copying to a new, larger table").
        let needs_grow = {
            let (_, storage) = &self.tables[idx];
            match storage {
                TableStorage::Flat(f) | TableStorage::Both { flat: f, .. } => {
                    f.num_rows() >= f.capacity()
                }
                TableStorage::Indexed(_) => false,
            }
        };
        if needs_grow {
            let key = self.next_key();
            if let Some(f) = self.tables[idx].1.flat_mut() {
                let new_cap = f.capacity() * 2;
                f.grow(&mut self.host, key, new_cap)?;
            }
        }
        let (_, storage) = &mut self.tables[idx];
        match storage {
            TableStorage::Flat(f) => {
                if fast {
                    f.insert_fast(&mut self.host, values)?;
                } else {
                    f.insert_oblivious(&mut self.host, values)?;
                }
            }
            TableStorage::Indexed(i) => {
                i.insert(&mut self.host, values)?;
            }
            TableStorage::Both { flat, indexed } => {
                if fast {
                    flat.insert_fast(&mut self.host, values)?;
                } else {
                    flat.insert_oblivious(&mut self.host, values)?;
                }
                indexed.insert(&mut self.host, values)?;
            }
        }
        // Bumped only on success: a rejected mutation changes nothing, so
        // it must not invalidate prepared statements.
        self.version += 1;
        Ok(())
    }

    /// Deletes rows matching `pred`; returns the count (a result size).
    pub fn delete_where(&mut self, name: &str, pred: &Predicate) -> Result<u64, DbError> {
        let idx = self.table_index(name)?;
        let (_, storage) = &mut self.tables[idx];
        let n = match storage {
            TableStorage::Flat(f) => f.delete_where(&mut self.host, pred)?,
            TableStorage::Indexed(i) => i.delete_where(&mut self.host, pred)?,
            TableStorage::Both { flat, indexed } => {
                let n = flat.delete_where(&mut self.host, pred)?;
                indexed.delete_where(&mut self.host, pred)?;
                n
            }
        };
        self.version += 1;
        Ok(n)
    }

    /// Updates rows matching `pred`; returns the count.
    pub fn update_where(
        &mut self,
        name: &str,
        pred: &Predicate,
        assignments: &[(usize, Value)],
    ) -> Result<u64, DbError> {
        let idx = self.table_index(name)?;
        let (_, storage) = &mut self.tables[idx];
        let n = match storage {
            TableStorage::Flat(f) => f.update_where(&mut self.host, pred, assignments)?,
            TableStorage::Indexed(i) => i.update_where(&mut self.host, pred, assignments)?,
            TableStorage::Both { flat, indexed } => {
                let n = flat.update_where(&mut self.host, pred, assignments)?;
                indexed.update_where(&mut self.host, pred, assignments)?;
                n
            }
        };
        self.version += 1;
        Ok(n)
    }

    /// Parses and executes one SQL statement — a thin compatibility shim
    /// over the prepare → run lifecycle.
    pub fn execute(&mut self, query: &str) -> Result<QueryOutput, DbError> {
        self.prepare(query)?.run()
    }

    /// Prepares and runs `query`, recording an access trace around the
    /// *run phase only* — the same window the engine-level auditor uses
    /// (tracing `prepare` would smuggle plan-cache state into the trace,
    /// because a cache hit skips the preliminary scan). While the trace
    /// channel is borrowed the engine-level auditor stands down, so the
    /// caller — [`shared::SharedDatabase`], which funnels every member
    /// engine's statements into one shared auditor — owns observation.
    pub(crate) fn execute_with_run_trace(
        &mut self,
        query: &str,
    ) -> (Result<QueryOutput, DbError>, Trace) {
        let mut plan = match self.prepare(query) {
            Ok(stmt) => stmt.plan,
            Err(e) => return (Err(e), Trace(Vec::new())),
        };
        self.host.start_trace();
        let result = self.run_plan(&mut plan, query);
        let trace = self.host.take_trace();
        (result, trace)
    }

    /// Parses and compiles one SQL statement into a physical plan without
    /// executing it. The returned [`PreparedStatement`] can be inspected
    /// ([`PreparedStatement::explain`]) and run — repeatedly; it re-plans
    /// itself transparently if the database changed in between.
    ///
    /// Compiled SELECT plans are cached by statement text and validated
    /// against the catalog version, so preparing the same SQL again with
    /// no intervening change skips the dry-run costing entirely
    /// ([`Database::plan_cache_stats`] counts it). Mutations are never
    /// cached — running one bumps the version, which would invalidate the
    /// entry immediately anyway.
    pub fn prepare(&mut self, query: &str) -> Result<PreparedStatement<'_, M>, DbError> {
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Prepare);
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::Prepares, 1);
        if let Some(plan) =
            self.plan_cache.get(query).filter(|p| p.version == self.version).cloned()
        {
            self.plan_cache_stats.hits += 1;
            oblidb_telemetry::counter_add(oblidb_telemetry::Counter::PlanCacheHits, 1);
            return Ok(PreparedStatement { db: self, sql: query.to_string(), plan });
        }
        self.plan_cache_stats.misses += 1;
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::PlanCacheMisses, 1);
        let plan = self.build_plan(query)?;
        if matches!(
            plan.action,
            PlanAction::Select(_)
                | PlanAction::ExplainSelect(_)
                | PlanAction::ExplainAnalyzeSelect(_)
        ) {
            if self.plan_cache.len() >= PLAN_CACHE_CAP {
                let current = self.version;
                self.plan_cache.retain(|_, p| p.version == current);
                if self.plan_cache.len() >= PLAN_CACHE_CAP {
                    self.plan_cache.clear();
                }
            }
            self.plan_cache.insert(query.to_string(), plan.clone());
        }
        Ok(PreparedStatement { db: self, sql: query.to_string(), plan })
    }

    /// Prepared-plan cache counters (hits avoid re-planning entirely).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache_stats
    }

    // ---- plan construction ------------------------------------------------

    fn build_plan(&mut self, query: &str) -> Result<QueryPlan, DbError> {
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Plan);
        let statement = sql::parse(query)?;
        let profile =
            self.config.planner.cost_model.profile().with_threads(self.config.exec.threads);
        let action = match statement {
            Statement::Create(c) => PlanAction::Create(c),
            Statement::Insert(i) => PlanAction::Insert(i),
            Statement::Update(u) => {
                let idx = self.table_index(&u.table)?;
                let schema = self.tables[idx].1.schema().clone();
                let pred = match &u.where_clause {
                    Some(w) => w.resolve(&schema)?,
                    None => Predicate::True,
                };
                let assignments: Vec<(usize, Value)> = u
                    .sets
                    .iter()
                    .map(|a| Ok((schema.col(&a.col)?, a.value.clone())))
                    .collect::<Result<_, DbError>>()?;
                PlanAction::Update { table: u.table, assignments, pred }
            }
            Statement::Delete(d) => {
                let idx = self.table_index(&d.table)?;
                let schema = self.tables[idx].1.schema().clone();
                let pred = match &d.where_clause {
                    Some(w) => w.resolve(&schema)?,
                    None => Predicate::True,
                };
                PlanAction::Delete { table: d.table, pred }
            }
            Statement::Select(s) => PlanAction::Select(self.plan_select(s, &profile)?),
            Statement::Explain(s) => PlanAction::ExplainSelect(self.plan_select(s, &profile)?),
            Statement::ExplainAnalyze(s) => {
                PlanAction::ExplainAnalyzeSelect(self.plan_select(s, &profile)?)
            }
            Statement::Begin => PlanAction::TxnControl(TxnVerb::Begin),
            Statement::Commit => PlanAction::TxnControl(TxnVerb::Commit),
            Statement::Rollback => PlanAction::TxnControl(TxnVerb::Rollback),
        };
        Ok(QueryPlan { action, profile, version: self.version })
    }

    /// Compiles a SELECT into its operator tree, choosing physical
    /// operators wherever the input shape is already known (base flat
    /// tables) and deferring the rest to run time.
    fn plan_select(
        &mut self,
        s: sql::Select,
        profile: &CostProfile,
    ) -> Result<SelectPlan, DbError> {
        let (agg_items, _) = split_projection(&s.projection);
        let has_aggs = !agg_items.is_empty();
        let pad_groups = self.config.padding.map(|p| p.max_groups);

        let root = if let Some(join) = &s.join {
            // Adaptive join choice consumes num_rows, which is
            // payload-derived after a pushed-down filter — refuse loudly on
            // payload-free substrates unless the operator is pinned,
            // mirroring the select and GROUP BY guards.
            if !self.host.retains_payloads() && self.config.planner.force_join.is_none() {
                return Err(DbError::Unsupported(
                    "joins on a payload-free EnclaveMemory substrate require a pinned \
                     operator: set planner.force_join"
                        .into(),
                ));
            }
            let li = self.table_index(&s.table)?;
            let ri = self.table_index(&join.table)?;
            let ls = self.tables[li].1.schema().clone();
            let rs = self.tables[ri].1.schema().clone();
            let lc = ls.col(&join.left_col)?;
            let rc = rs.col(&join.right_col)?;

            // Push the WHERE down to whichever single side it resolves on.
            let mut pushed = false;
            let (left_pred, right_pred) = match &s.where_clause {
                Some(w) => {
                    if let Ok(p) = w.resolve(&ls) {
                        pushed = true;
                        (Some(p), None)
                    } else if let Ok(p) = w.resolve(&rs) {
                        pushed = true;
                        (None, Some(p))
                    } else {
                        (None, None)
                    }
                }
                None => (None, None),
            };

            let (left, left_shape) = self.plan_join_side(li, &s.table, left_pred, profile)?;
            let (right, right_shape) = self.plan_join_side(ri, &join.table, right_pred, profile)?;

            let om_bytes = self.om.available();
            let renamed = ls.join(&s.table, &rs, &join.table);
            let (choice, est) = if let Some(algo) = self.config.planner.force_join {
                (JoinChoice::Forced(algo), None)
            } else if let (Some((lcap, lrows)), Some((rcap, rrows))) = (left_shape, right_shape) {
                let shape = JoinShape {
                    left_schema: ls.clone(),
                    left_capacity: lcap,
                    right_schema: rs.clone(),
                    right_capacity: rcap,
                    om_bytes,
                    zero_om_scratch_rows: self.config.zero_om_scratch_rows,
                };
                match &self.config.planner.cost_model {
                    CostModel::Measured(_) => {
                        let (algo, candidates) = cost::choose_join_costed(&shape, profile)?;
                        let est = candidates.iter().find(|c| c.algo == algo).map(|c| c.cost);
                        (JoinChoice::Chosen { algo, candidates }, est)
                    }
                    CostModel::ClosedForm => {
                        let union_row = 18 + ls.row_len().max(rs.row_len());
                        let algo = planner::choose_join(
                            lrows,
                            rrows,
                            ls.row_len(),
                            union_row,
                            &self.om,
                            &self.config.planner,
                        );
                        let est = cost::simulate_join(algo, &shape)
                            .ok()
                            .map(|c| NodeCost::from_stats(&c, profile));
                        (JoinChoice::Chosen { algo, candidates: Vec::new() }, est)
                    }
                }
            } else {
                (JoinChoice::Deferred, None)
            };

            let mut top = PlanNode::Join(JoinNode {
                left: Box::new(left),
                right: Box::new(right),
                left_col: lc,
                right_col: rc,
                choice,
                est,
                actual: None,
                om_bytes,
                renamed: renamed.clone(),
            });

            // WHERE after the join, unless push-down already consumed it.
            if let (Some(w), false) = (&s.where_clause, pushed) {
                let pred = w.resolve(&renamed)?;
                let choice = match &self.config.padding {
                    Some(pad) => SelectChoice::Padded { pad_rows: pad.pad_rows },
                    None => SelectChoice::Deferred,
                };
                top = PlanNode::Filter(FilterNode {
                    input: Box::new(top),
                    pred,
                    choice,
                    est_matches: None,
                    est: None,
                    actual: None,
                    om_bytes,
                    out_key: None,
                });
            }

            if let Some(g) = &s.group_by {
                self.require_payloads_for_group_by()?;
                let (func, agg_col) = single_agg(&agg_items)?;
                let group_col = renamed.col(g)?;
                let agg_col = agg_col.map(|c| renamed.col(&c)).transpose()?;
                PlanNode::GroupBy(GroupByNode {
                    input: Box::new(top),
                    group_col,
                    func,
                    agg_col,
                    pred: Predicate::True,
                    pad_groups,
                    actual: None,
                })
            } else if has_aggs {
                PlanNode::Aggregate(AggregateNode {
                    input: Box::new(top),
                    items: agg_items,
                    pred: Predicate::True,
                    actual: None,
                })
            } else {
                top
            }
        } else {
            let idx = self.table_index(&s.table)?;
            let schema = self.tables[idx].1.schema().clone();
            let pred = match &s.where_clause {
                Some(w) => w.resolve(&schema)?,
                None => Predicate::True,
            };
            let scan = self.plan_scan(idx, &s.table, &pred);
            if let Some(g) = &s.group_by {
                self.require_payloads_for_group_by()?;
                let (func, agg_col) = single_agg(&agg_items)?;
                let group_col = schema.col(g)?;
                let agg_col = agg_col.map(|c| schema.col(&c)).transpose()?;
                PlanNode::GroupBy(GroupByNode {
                    input: Box::new(PlanNode::Scan(scan)),
                    group_col,
                    func,
                    agg_col,
                    pred,
                    pad_groups,
                    actual: None,
                })
            } else if has_aggs {
                PlanNode::Aggregate(AggregateNode {
                    input: Box::new(PlanNode::Scan(scan)),
                    items: agg_items,
                    pred,
                    actual: None,
                })
            } else {
                self.plan_base_filter(scan, pred, profile)?
            }
        };
        Ok(SelectPlan { root, stmt: s })
    }

    /// Plans one join input: a pushed-down filter over its base table or a
    /// bare scan. Returns the node plus its estimated output shape
    /// `(capacity, rows)` when that shape is exact at prepare time —
    /// `None` (→ deferred join choice) when a runtime index probe could
    /// change it.
    fn plan_join_side(
        &mut self,
        idx: usize,
        name: &str,
        pred: Option<Predicate>,
        profile: &CostProfile,
    ) -> Result<(PlanNode, Option<(u64, u64)>), DbError> {
        match pred {
            Some(p) => {
                let scan = self.plan_scan(idx, name, &p);
                let exact_input = matches!(scan.access, AccessPath::Flat);
                let node = self.plan_base_filter(scan, p, profile)?;
                let shape = if exact_input {
                    if let PlanNode::Filter(f) = &node {
                        filter_output_shape(f)
                    } else {
                        None
                    }
                } else {
                    None
                };
                Ok((node, shape))
            }
            None => {
                let scan = self.plan_scan(idx, name, &Predicate::True);
                let shape = match scan.access {
                    // A bare stored table is copied as-is (one oblivious
                    // pass), keeping its capacity and fill.
                    AccessPath::Flat => Some((scan.capacity, scan.rows)),
                    // Index materialization sizes the copy by the walk.
                    _ => None,
                };
                Ok((PlanNode::Scan(scan), shape))
            }
        }
    }

    /// Decides the physical access path for a base table (paper §4.1/§5):
    /// attempt the index when the predicate maps to a range on the indexed
    /// column (with the public abort cap), otherwise the flat
    /// representation.
    fn plan_scan(&self, idx: usize, name: &str, pred: &Predicate) -> ScanNode {
        let storage = &self.tables[idx].1;
        let has_flat = matches!(storage, TableStorage::Flat(_) | TableStorage::Both { .. });
        let has_index = matches!(storage, TableStorage::Indexed(_) | TableStorage::Both { .. });
        let rows = storage.num_rows();
        let capacity = match storage {
            TableStorage::Flat(f) | TableStorage::Both { flat: f, .. } => f.capacity(),
            TableStorage::Indexed(_) => rows,
        };

        let index_range = pred.index_range().filter(|(col, lo, hi)| {
            let key_col = match storage {
                TableStorage::Indexed(i) => i.key_col(),
                TableStorage::Both { indexed, .. } => indexed.key_col(),
                TableStorage::Flat(_) => return false,
            };
            *col == key_col
                && !(matches!(lo, crate::predicate::Bound::Unbounded)
                    && matches!(hi, crate::predicate::Bound::Unbounded))
        });

        let access = if let Some((_, lo, hi)) =
            index_range.filter(|_| has_index && self.config.padding.is_none())
        {
            // The cap is the match count beyond which a flat scan is
            // cheaper: an index chain read costs ≈ 2·(path length) bucket
            // accesses of 4-slot blocks versus ~2 row accesses per
            // flat-scanned row. Both the cap and the abort decision are
            // functions of public sizes, so the probe leaks nothing beyond
            // the final plan choice (§5).
            let cap = if has_flat {
                let height = match storage {
                    TableStorage::Both { indexed, .. } => indexed.height() as u64,
                    _ => 1,
                };
                let oram_factor = 8 * (height + 2);
                (2 * rows.max(1)) / oram_factor.max(1)
            } else {
                u64::MAX
            };
            AccessPath::IndexRange { lo, hi, cap }
        } else if has_flat {
            AccessPath::Flat
        } else {
            AccessPath::IndexFull
        };
        ScanNode { table: name.to_string(), access, rows, capacity, actual: None }
    }

    /// Plans the selection stage over a base-table scan. For a flat access
    /// path the operator is chosen here (the input shape is exact); index
    /// candidates defer the choice to run time, when the probe has
    /// materialized its result.
    fn plan_base_filter(
        &mut self,
        scan: ScanNode,
        pred: Predicate,
        profile: &CostProfile,
    ) -> Result<PlanNode, DbError> {
        let om_bytes = self.om.available();
        let (table_name, capacity, rows) = (scan.table.clone(), scan.capacity, scan.rows);
        let flat_access = matches!(scan.access, AccessPath::Flat);
        let mut node = FilterNode {
            input: Box::new(PlanNode::Scan(scan)),
            pred,
            choice: SelectChoice::Deferred,
            est_matches: None,
            est: None,
            actual: None,
            om_bytes,
            out_key: None,
        };

        if let Some(pad) = &self.config.padding {
            let pad_rows = pad.pad_rows;
            let out_key = self.next_key();
            let shape = SelectShape {
                schema: self.tables[self.table_index(&table_name)?].1.schema().clone(),
                capacity,
                rows,
                matches: pad_rows,
                continuous: false,
                om_bytes,
                out_key: out_key.clone(),
            };
            node.choice = SelectChoice::Padded { pad_rows };
            node.est = cost::simulate_select(SelectAlgo::Padded, &shape)
                .ok()
                .map(|s| NodeCost::from_stats(&s, profile));
            node.out_key = Some(crate::plan::PlanKey(out_key));
            return Ok(PlanNode::Filter(node));
        }

        if !flat_access {
            // The probe result shapes the stage; decide at run time.
            return Ok(PlanNode::Filter(node));
        }

        // Every remaining plan except the forced Large algorithm shapes its
        // trace from scan statistics, and statistics live in payloads. On a
        // payload-free substrate (cost modeling) those stats read as zero,
        // so planning would silently diverge from the real engine — refuse
        // loudly instead, mirroring `require_payloads` for indexed storage.
        if !self.host.retains_payloads()
            && self.config.planner.force_select != Some(SelectAlgo::Large)
        {
            return Err(DbError::Unsupported(
                "payload-free EnclaveMemory substrates need a size-oblivious plan: \
                 set padding mode or force_select = Some(SelectAlgo::Large)"
                    .into(),
            ));
        }

        // The planner's preliminary scan (paper §5) — also supplies |R|
        // for the operator's output sizing, so run() does not rescan.
        let idx = self.table_index(&table_name)?;
        let schema = self.tables[idx].1.schema().clone();
        let stats = {
            let (_, storage) = &mut self.tables[idx];
            let table = storage.flat_mut().expect("flat access path");
            planner::scan_stats(&mut self.host, table, &node.pred)?
        };
        let out_key = self.next_key();
        let shape = SelectShape {
            schema,
            capacity,
            rows,
            matches: stats.matches,
            continuous: stats.continuous,
            om_bytes,
            out_key: out_key.clone(),
        };
        let (choice, est) = choose_filter(&self.config, &shape, stats, profile)?;
        node.choice = choice;
        node.est = est;
        node.est_matches = Some(stats.matches);
        node.out_key = Some(crate::plan::PlanKey(out_key));
        Ok(PlanNode::Filter(node))
    }

    // ---- plan execution ---------------------------------------------------

    /// Executes a compiled plan, writing measured node costs back into it.
    ///
    /// This is the statement-level telemetry boundary: a `Run` span and
    /// latency histogram wrap the whole execution, and when
    /// [`DbConfig::audit`] is on the statement runs under an access trace
    /// whose hash is checked against the first trace recorded for the same
    /// statement shape (see [`crate::audit`]). Auditing borrows the trace
    /// channel — a statement that runs while the caller is already tracing
    /// is counted as a skip, never silently unaudited.
    fn run_plan(&mut self, plan: &mut QueryPlan, query: &str) -> Result<QueryOutput, DbError> {
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Run);
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::StatementsRun, 1);
        let timed = oblidb_telemetry::enabled().then(std::time::Instant::now);
        let audit = self.config.audit && !self.host.tracing();
        if self.config.audit && !audit {
            self.auditor.skip();
        }
        if audit {
            self.host.start_trace();
        }
        let result = self.run_plan_inner(plan, query);
        if audit {
            let trace = self.host.take_trace();
            if let Ok(out) = &result {
                let tables: Vec<(String, u64)> =
                    self.tables.iter().map(|(n, t)| (n.clone(), t.num_rows())).collect();
                let shape = crate::audit::statement_shape(query, &tables, out.plan.output_rows);
                self.auditor.observe(&shape, &trace);
            }
        }
        if let Some(t0) = timed {
            oblidb_telemetry::histogram_record(
                oblidb_telemetry::HistogramId::StatementNanos,
                t0.elapsed().as_nanos() as u64,
            );
        }
        result
    }

    fn run_plan_inner(
        &mut self,
        plan: &mut QueryPlan,
        query: &str,
    ) -> Result<QueryOutput, DbError> {
        // WAL: log DDL and mutations before executing them (paper §3).
        // One sealed append per statement, no data-dependent pattern;
        // CREATE is logged too so crash recovery can replay a complete
        // history without a separate schema dump. With durable appends
        // (the default), the record is flushed to the durable medium —
        // one region-level sync — before the statement runs: the
        // write-*ahead* property crash recovery relies on.
        if matches!(
            plan.action,
            PlanAction::Create(_)
                | PlanAction::Insert(_)
                | PlanAction::Update { .. }
                | PlanAction::Delete { .. }
        ) {
            if let Some(wal) = &mut self.wal {
                if self.config.epoch.is_some() {
                    // Group commit: the record joins the open epoch and
                    // becomes durable at the next commit marker's single
                    // group fsync ([`Database::commit_epoch`]) — the
                    // Obladi trade: a bounded (one-epoch) loss window in
                    // exchange for one fsync per epoch instead of per
                    // statement.
                    wal.append_pending(&mut self.host, query)?;
                } else {
                    wal.append(&mut self.host, query)?;
                    // The durability policy belongs to the log itself (it
                    // is persisted and reattached with it), not to
                    // whichever config happened to reopen the store.
                    if wal.durable_appends() {
                        let region = wal.region_id();
                        self.host.sync_region(region)?;
                    }
                }
            }
        }
        if matches!(plan.action, PlanAction::ExplainSelect(_)) {
            // EXPLAIN executes nothing: the result set is the rendering.
            let rendering = Explain::of(plan);
            let width = rendering.lines().iter().map(|l| l.len()).max().unwrap_or(0).max(1);
            let schema = Schema::new(vec![Column::new("plan", DataType::Text(width))]);
            let rows = rendering.lines().iter().map(|l| vec![Value::Text(l.clone())]).collect();
            return Ok(QueryOutput {
                schema,
                rows,
                plan: PlanInfo::default(),
                rows_affected: None,
            });
        }
        if matches!(plan.action, PlanAction::ExplainAnalyzeSelect(_)) {
            // EXPLAIN ANALYZE executes the select for real, then renders
            // the tree with the measured actuals (wall time, crossings,
            // AEAD bytes) the execution wrote into each node, next to the
            // planner's estimates. The result set is the rendering; the
            // plan-shaped leakage of the real run is kept in `.plan`.
            let profile = plan.profile.clone();
            let (mut root, stmt) = match &mut plan.action {
                PlanAction::ExplainAnalyzeSelect(sp) => {
                    let root = std::mem::replace(
                        &mut sp.root,
                        PlanNode::Scan(ScanNode {
                            table: String::new(),
                            access: AccessPath::Flat,
                            rows: 0,
                            capacity: 0,
                            actual: None,
                        }),
                    );
                    (root, sp.stmt.clone())
                }
                _ => unreachable!("checked above"),
            };
            let result = self.run_select_root(&mut root, &stmt, &profile);
            if let PlanAction::ExplainAnalyzeSelect(sp) = &mut plan.action {
                sp.root = root;
            }
            let executed = result?;
            let rendering = Explain::of(plan);
            let width = rendering.lines().iter().map(|l| l.len()).max().unwrap_or(0).max(1);
            let schema = Schema::new(vec![Column::new("plan", DataType::Text(width))]);
            let rows = rendering.lines().iter().map(|l| vec![Value::Text(l.clone())]).collect();
            return Ok(QueryOutput { schema, rows, plan: executed.plan, rows_affected: None });
        }
        let QueryPlan { action, profile, .. } = plan;
        match action {
            PlanAction::Create(c) => {
                let schema = Schema::new(
                    c.columns.iter().map(|cd| Column::new(cd.name.clone(), cd.dtype)).collect(),
                );
                let cap = c.capacity.unwrap_or(DEFAULT_CAPACITY);
                self.create_table(&c.name, schema, c.storage, c.index_on.as_deref(), cap)?;
                Ok(QueryOutput::empty(Schema::new(Vec::new())))
            }
            PlanAction::Insert(i) => {
                self.insert(&i.table, &i.values)?;
                Ok(QueryOutput::affected(1))
            }
            PlanAction::Update { table, assignments, pred } => {
                let n = self.update_where(table, pred, assignments)?;
                Ok(QueryOutput::affected(n))
            }
            PlanAction::Delete { table, pred } => {
                let n = self.delete_where(table, pred)?;
                Ok(QueryOutput::affected(n))
            }
            PlanAction::Select(sp) => {
                // Take the tree out of the plan so it can be mutated
                // (actual costs, deferred choices) while `sp.stmt` and
                // `profile` stay borrowed for the walk.
                let mut root = std::mem::replace(
                    &mut sp.root,
                    PlanNode::Scan(ScanNode {
                        table: String::new(),
                        access: AccessPath::Flat,
                        rows: 0,
                        capacity: 0,
                        actual: None,
                    }),
                );
                let result = self.run_select_root(&mut root, &sp.stmt, profile);
                sp.root = root;
                result
            }
            PlanAction::ExplainSelect(_) | PlanAction::ExplainAnalyzeSelect(_) => {
                unreachable!("handled above")
            }
            PlanAction::TxnControl(verb) => Err(DbError::Unsupported(format!(
                "{} requires a transaction session (oblidb::txn) — a bare engine has no \
                 statement buffer to control",
                verb.keyword()
            ))),
        }
    }

    /// Runs a SELECT tree: operators → decode → ORDER BY / LIMIT →
    /// projection.
    fn run_select_root(
        &mut self,
        root: &mut PlanNode,
        s: &sql::Select,
        profile: &CostProfile,
    ) -> Result<QueryOutput, DbError> {
        let mut info = PlanInfo::default();
        let mut current = self.exec_node(root, &mut info, profile)?;

        info.output_rows = current.num_rows();
        let mut rows = current.collect_rows(&mut self.host)?;
        let schema = current.schema().clone();
        current.free(&mut self.host)?;

        // ORDER BY / LIMIT run on the decoded result inside the enclave;
        // they touch no untrusted memory and add no leakage beyond the
        // (already leaked) result size.
        if let Some((col, desc)) = &s.order_by {
            let idx = schema.col(col)?;
            rows.sort_by(|a, b| a[idx].cmp_total(&b[idx]));
            if *desc {
                rows.reverse();
            }
        }
        if let Some(limit) = s.limit {
            rows.truncate(limit as usize);
        }

        let (agg_items, col_items) = split_projection(&s.projection);
        let (schema, rows) = project(schema, rows, &col_items, &agg_items, s)?;
        Ok(QueryOutput { schema, rows, plan: info, rows_affected: None })
    }

    /// Executes one operator node, returning its materialized output.
    fn exec_node(
        &mut self,
        node: &mut PlanNode,
        info: &mut PlanInfo,
        profile: &CostProfile,
    ) -> Result<FlatTable, DbError> {
        match node {
            PlanNode::Scan(scan) => {
                // A bare scan only appears as a join side: materialize an
                // owned copy (join operators consume flat inputs; a copy
                // is one oblivious pass).
                let input = self.exec_input(scan, info, profile)?;
                match input {
                    InputRef::Owned(t) => Ok(t),
                    InputRef::Stored(i) => {
                        let key = self.next_key();
                        let (_, storage) = &mut self.tables[i];
                        let f = storage.flat_mut().expect("stored input is flat");
                        copy_flat(&mut self.host, f, key)
                    }
                }
            }
            PlanNode::Filter(f) => self.exec_filter(f, info, profile),
            PlanNode::Join(j) => self.exec_join(j, info, profile),
            PlanNode::Aggregate(a) => self.exec_aggregate(a, info, profile),
            PlanNode::GroupBy(g) => self.exec_group(g, info, profile),
        }
    }

    /// Materializes a base-table access per the planned path: the stored
    /// flat table, or an owned table the index probe produced (with the
    /// capped walk falling back to the flat representation, paper §4.1).
    fn exec_input(
        &mut self,
        scan: &mut ScanNode,
        info: &mut PlanInfo,
        profile: &CostProfile,
    ) -> Result<InputRef, DbError> {
        let idx = self.table_index(&scan.table)?;
        match scan.access.clone() {
            AccessPath::Flat => Ok(InputRef::Stored(idx)),
            AccessPath::IndexRange { lo, hi, cap } => {
                let key = self.next_key();
                let before = self.host.stats();
                let started = std::time::Instant::now();
                let (_, storage) = &mut self.tables[idx];
                let index = storage.indexed_mut().expect("planned index access");
                if let Some(t) = index.range_to_flat_capped(&mut self.host, key, &lo, &hi, cap)? {
                    scan.actual = Some(timed_cost(self.host.stats() - before, profile, started));
                    info.used_index = true;
                    info.intermediate_rows.push(t.num_rows());
                    Ok(InputRef::Owned(t))
                } else {
                    // Probe aborted past the cap: a flat scan is cheaper.
                    Ok(InputRef::Stored(idx))
                }
            }
            AccessPath::IndexFull => {
                let key = self.next_key();
                let before = self.host.stats();
                let started = std::time::Instant::now();
                let (_, storage) = &mut self.tables[idx];
                let index = storage.indexed_mut().expect("indexed-only");
                let t = index.range_to_flat(
                    &mut self.host,
                    key,
                    &crate::predicate::Bound::Unbounded,
                    &crate::predicate::Bound::Unbounded,
                )?;
                scan.actual = Some(timed_cost(self.host.stats() - before, profile, started));
                info.used_index = true;
                info.intermediate_rows.push(t.num_rows());
                Ok(InputRef::Owned(t))
            }
        }
    }

    /// Executes a filter node: materialize the input, resolve a deferred
    /// operator choice with the same cost machinery prepare uses, run the
    /// operator, and record the measured cost.
    fn exec_filter(
        &mut self,
        f: &mut FilterNode,
        info: &mut PlanInfo,
        profile: &CostProfile,
    ) -> Result<FlatTable, DbError> {
        let over_intermediate = !matches!(f.input.as_ref(), PlanNode::Scan(_));
        let mut input = match f.input.as_mut() {
            PlanNode::Scan(scan) => self.exec_input(scan, info, profile)?,
            other => InputRef::Owned(self.exec_node(other, info, profile)?),
        };

        let out_key = match &f.out_key {
            Some(k) => k.0.clone(),
            None => {
                let k = self.next_key();
                f.out_key = Some(crate::plan::PlanKey(k.clone()));
                k
            }
        };
        let rng = self.rng.fork();

        let out = match &mut input {
            InputRef::Owned(t) => run_filter_stage(
                &mut self.host,
                &self.om,
                &self.config,
                f,
                t,
                out_key.clone(),
                rng,
                profile,
                info,
            )?,
            InputRef::Stored(i) => {
                let i = *i;
                let (_, storage) = &mut self.tables[i];
                let table = storage.flat_mut().expect("stored input is flat");
                run_filter_stage(
                    &mut self.host,
                    &self.om,
                    &self.config,
                    f,
                    table,
                    out_key.clone(),
                    rng,
                    profile,
                    info,
                )?
            }
        };
        input.free(self)?;
        if over_intermediate {
            info.intermediate_rows.push(out.num_rows());
        }
        Ok(out)
    }

    /// Executes a join node over its materialized sides.
    fn exec_join(
        &mut self,
        j: &mut JoinNode,
        info: &mut PlanInfo,
        profile: &CostProfile,
    ) -> Result<FlatTable, DbError> {
        info.fused_aggregate = false;
        let mut left = self.exec_join_side(&mut j.left, info, profile)?;
        let mut right = self.exec_join_side(&mut j.right, info, profile)?;

        let algo = match &j.choice {
            JoinChoice::Forced(a) => *a,
            JoinChoice::Chosen { algo, .. } => *algo,
            JoinChoice::Deferred => {
                let shape = JoinShape {
                    left_schema: left.schema().clone(),
                    left_capacity: left.capacity(),
                    right_schema: right.schema().clone(),
                    right_capacity: right.capacity(),
                    om_bytes: self.om.available(),
                    zero_om_scratch_rows: self.config.zero_om_scratch_rows,
                };
                j.om_bytes = shape.om_bytes;
                match &self.config.planner.cost_model {
                    CostModel::Measured(_) => {
                        let (algo, candidates) = cost::choose_join_costed(&shape, profile)?;
                        j.est = candidates.iter().find(|c| c.algo == algo).map(|c| c.cost);
                        j.choice = JoinChoice::Chosen { algo, candidates };
                        algo
                    }
                    CostModel::ClosedForm => {
                        let union_row = 18 + left.row_len().max(right.row_len());
                        let algo = planner::choose_join(
                            left.num_rows(),
                            right.num_rows(),
                            left.row_len(),
                            union_row,
                            &self.om,
                            &self.config.planner,
                        );
                        j.est = cost::simulate_join(algo, &shape)
                            .ok()
                            .map(|c| NodeCost::from_stats(&c, profile));
                        j.choice = JoinChoice::Chosen { algo, candidates: Vec::new() };
                        algo
                    }
                }
            }
        };
        info.join_algo = Some(algo);

        let key = self.next_key();
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Join);
        let before = self.host.stats();
        let started = std::time::Instant::now();
        let out = match algo {
            JoinAlgo::Hash => exec::hash_join(
                &mut self.host,
                &self.om,
                &mut left,
                j.left_col,
                &mut right,
                j.right_col,
                key,
            )?,
            JoinAlgo::Opaque => exec::sort_merge_join(
                &mut self.host,
                &self.om,
                &mut left,
                j.left_col,
                &mut right,
                j.right_col,
                key,
                SortMergeVariant::Opaque,
            )?,
            JoinAlgo::ZeroOm => exec::sort_merge_join(
                &mut self.host,
                &self.om,
                &mut left,
                j.left_col,
                &mut right,
                j.right_col,
                key,
                SortMergeVariant::ZeroOm { scratch_rows: self.config.zero_om_scratch_rows },
            )?,
        };
        j.actual = Some(timed_cost(self.host.stats() - before, profile, started));
        left.free(&mut self.host)?;
        right.free(&mut self.host)?;
        info.intermediate_rows.push(out.num_rows());

        // Rename output columns with the real table names so WHERE/GROUP BY
        // can reference them.
        let mut out = out;
        out.rename_columns(j.renamed.clone());
        Ok(out)
    }

    /// Materializes one join side: a pushed-down filter's output, or an
    /// owned copy of the base table.
    fn exec_join_side(
        &mut self,
        node: &mut PlanNode,
        info: &mut PlanInfo,
        profile: &CostProfile,
    ) -> Result<FlatTable, DbError> {
        match node {
            PlanNode::Filter(f) => {
                let out = self.exec_filter(f, info, profile)?;
                info.intermediate_rows.push(out.num_rows());
                Ok(out)
            }
            other => self.exec_node(other, info, profile),
        }
    }

    /// Executes a fused select + aggregate node (paper §4.2): one pass per
    /// aggregate over the input, no intermediate table.
    fn exec_aggregate(
        &mut self,
        a: &mut AggregateNode,
        info: &mut PlanInfo,
        profile: &CostProfile,
    ) -> Result<FlatTable, DbError> {
        let mut input = match a.input.as_mut() {
            PlanNode::Scan(scan) => self.exec_input(scan, info, profile)?,
            other => InputRef::Owned(self.exec_node(other, info, profile)?),
        };
        let schema = match &input {
            InputRef::Owned(t) => t.schema().clone(),
            InputRef::Stored(i) => self.tables[*i].1.schema().clone(),
        };
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Aggregate);
        let before = self.host.stats();
        let started = std::time::Instant::now();
        let mut states = Vec::new();
        for (func, col_name) in &a.items {
            let col = col_name.as_ref().map(|c| schema.col(c)).transpose()?;
            let v = match &mut input {
                InputRef::Owned(t) => exec::aggregate(&mut self.host, t, *func, col, &a.pred)?,
                InputRef::Stored(i) => {
                    let (_, storage) = &mut self.tables[*i];
                    let f = storage.flat_mut().expect("stored input is flat");
                    exec::aggregate(&mut self.host, f, *func, col, &a.pred)?
                }
            };
            states.push(v);
        }
        input.free(self)?;
        info.fused_aggregate = true;
        let out_schema = Schema::new(
            a.items
                .iter()
                .zip(&states)
                .map(|((func, col), v)| Column::new(agg_name(*func, col.as_deref()), value_type(v)))
                .collect(),
        );
        let key = self.next_key();
        let encoded = out_schema.encode_row(&states)?;
        let mut out = FlatTable::from_encoded_rows(&mut self.host, key, out_schema, &[encoded], 1)?;
        out.set_parallelism(self.config.exec.pool());
        out.set_num_rows(1);
        a.actual = Some(timed_cost(self.host.stats() - before, profile, started));
        Ok(out)
    }

    /// Executes a grouped-aggregation node (fused with its filter).
    fn exec_group(
        &mut self,
        g: &mut GroupByNode,
        info: &mut PlanInfo,
        profile: &CostProfile,
    ) -> Result<FlatTable, DbError> {
        let over_base = matches!(g.input.as_ref(), PlanNode::Scan(_));
        let mut input = match g.input.as_mut() {
            PlanNode::Scan(scan) => self.exec_input(scan, info, profile)?,
            other => InputRef::Owned(self.exec_node(other, info, profile)?),
        };
        let key = self.next_key();
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::GroupBy);
        let before = self.host.stats();
        let started = std::time::Instant::now();
        let out = match &mut input {
            InputRef::Owned(t) => exec::aggregate::group_aggregate_padded(
                &mut self.host,
                &self.om,
                t,
                g.group_col,
                g.func,
                g.agg_col,
                &g.pred,
                key,
                g.pad_groups,
            )?,
            InputRef::Stored(i) => {
                let (_, storage) = &mut self.tables[*i];
                let f = storage.flat_mut().expect("stored input is flat");
                exec::aggregate::group_aggregate_padded(
                    &mut self.host,
                    &self.om,
                    f,
                    g.group_col,
                    g.func,
                    g.agg_col,
                    &g.pred,
                    key,
                    g.pad_groups,
                )?
            }
        };
        g.actual = Some(timed_cost(self.host.stats() - before, profile, started));
        input.free(self)?;
        if over_base {
            info.fused_aggregate = true;
        }
        Ok(out)
    }
}

/// A compiled statement bound to its database: phase two and three of the
/// prepare/explain/execute lifecycle.
///
/// ```
/// use oblidb_core::{Database, DbConfig};
///
/// let mut db = Database::new(DbConfig::default());
/// db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
/// db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
/// let mut stmt = db.prepare("SELECT * FROM t WHERE k = 1").unwrap();
/// println!("{}", stmt.explain()); // estimated costs
/// let out = stmt.run().unwrap();
/// println!("{}", stmt.explain()); // now with actual costs
/// assert_eq!(out.len(), 1);
/// ```
pub struct PreparedStatement<'db, M: EnclaveMemory> {
    db: &'db mut Database<M>,
    sql: String,
    plan: QueryPlan,
}

impl<M: EnclaveMemory> PreparedStatement<'_, M> {
    /// The compiled physical plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Renders the plan tree with estimated and, after [`Self::run`],
    /// actual per-node costs.
    pub fn explain(&self) -> Explain {
        Explain::of(&self.plan)
    }

    /// Executes the plan. Runnable repeatedly — a statement prepared
    /// before the database changed re-plans itself first (sizes and
    /// match-count statistics may have moved, and the operators size
    /// their outputs from them).
    pub fn run(&mut self) -> Result<QueryOutput, DbError> {
        if self.plan.version != self.db.version {
            self.plan = self.db.build_plan(&self.sql)?;
        }
        self.db.run_plan(&mut self.plan, &self.sql)
    }
}

/// Either a stored base table or an owned intermediate.
enum InputRef {
    Stored(usize),
    Owned(FlatTable),
}

impl InputRef {
    fn free<M: EnclaveMemory>(self, db: &mut Database<M>) -> Result<(), DbError> {
        if let InputRef::Owned(t) = self {
            t.free(&mut db.host)?;
        }
        Ok(())
    }
}

/// A node's measured actual: the host-stats delta weighted under
/// `profile`, stamped with the wall time elapsed since `started` — the
/// number `EXPLAIN ANALYZE` renders as `time=` next to the estimate.
fn timed_cost(
    delta: oblidb_enclave::HostStats,
    profile: &CostProfile,
    started: std::time::Instant,
) -> NodeCost {
    let mut cost = NodeCost::from_stats(&delta, profile);
    cost.nanos = started.elapsed().as_nanos() as u64;
    cost
}

/// The span kind instrumenting one selection operator.
fn select_span_kind(algo: SelectAlgo) -> oblidb_telemetry::SpanKind {
    use oblidb_telemetry::SpanKind;
    match algo {
        SelectAlgo::Small => SpanKind::SelectSmall,
        SelectAlgo::Large => SpanKind::SelectLarge,
        SelectAlgo::Continuous => SpanKind::SelectContinuous,
        SelectAlgo::Hash => SpanKind::SelectHash,
        SelectAlgo::Naive => SpanKind::SelectNaive,
        SelectAlgo::Padded => SpanKind::SelectPadded,
    }
}

/// Picks a filter operator for a fully-shaped input: forced, cost-chosen
/// (dry-run candidates, weigh, argmin), or closed-form — shared between
/// prepare-time and deferred run-time decisions.
fn choose_filter(
    config: &DbConfig,
    shape: &SelectShape,
    stats: SelectStats,
    profile: &CostProfile,
) -> Result<(SelectChoice, Option<NodeCost>), DbError> {
    if let Some(algo) = config.planner.force_select {
        let est =
            cost::simulate_select(algo, shape).ok().map(|s| NodeCost::from_stats(&s, profile));
        return Ok((SelectChoice::Forced(algo), est));
    }
    match &config.planner.cost_model {
        CostModel::Measured(_) => {
            let (algo, candidates) =
                cost::choose_select_costed(shape, stats, &config.planner, profile)?;
            let est = candidates.iter().find(|c| c.algo == algo).map(|c| c.cost);
            Ok((SelectChoice::Chosen { algo, candidates }, est))
        }
        CostModel::ClosedForm => {
            let om = OmBudget::new(shape.om_bytes);
            let algo = planner::choose_select(
                stats,
                shape.rows,
                shape.schema.row_len(),
                &om,
                &config.planner,
            );
            let est =
                cost::simulate_select(algo, shape).ok().map(|s| NodeCost::from_stats(&s, profile));
            Ok((SelectChoice::Chosen { algo, candidates: Vec::new() }, est))
        }
    }
}

/// Runs a filter node's selection stage over a materialized flat input
/// (paper §4.1 + §5): resolves a deferred choice, dispatches the chosen
/// operator, and records the measured cost into the node.
#[allow(clippy::too_many_arguments)]
fn run_filter_stage<M: EnclaveMemory>(
    host: &mut M,
    om: &OmBudget,
    config: &DbConfig,
    f: &mut FilterNode,
    input: &mut FlatTable,
    out_key: AeadKey,
    rng: EnclaveRng,
    profile: &CostProfile,
    info: &mut PlanInfo,
) -> Result<FlatTable, DbError> {
    if let SelectChoice::Padded { pad_rows } = f.choice {
        // Padding mode: the planner is skipped; pass count and output
        // size are fixed by the padded bound (§2.3).
        info.select_algo = Some(SelectAlgo::Padded);
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::SelectPadded);
        let before = host.stats();
        let started = std::time::Instant::now();
        let out = exec::select::select_padded(host, om, input, &f.pred, out_key, pad_rows)?;
        f.actual = Some(timed_cost(host.stats() - before, profile, started));
        return Ok(out);
    }

    // Every remaining plan except the forced Large algorithm shapes its
    // trace from scan statistics, and statistics live in payloads. On a
    // payload-free substrate (cost modeling) those stats read as zero, so
    // planning would silently diverge from the real engine — refuse loudly
    // instead, mirroring `require_payloads` for indexed storage.
    if !host.retains_payloads() && config.planner.force_select != Some(SelectAlgo::Large) {
        return Err(DbError::Unsupported(
            "payload-free EnclaveMemory substrates need a size-oblivious plan: \
             set padding mode or force_select = Some(SelectAlgo::Large)"
                .into(),
        ));
    }

    // |R| for output sizing: reuse the prepare-time preliminary scan when
    // the plan has one (the version guard re-plans on staleness); scan now
    // for deferred stages over fresh intermediates.
    let stats: SelectStats = match (&f.choice, f.est_matches) {
        (SelectChoice::Forced(_) | SelectChoice::Chosen { .. }, Some(m)) => {
            SelectStats { matches: m, continuous: false }
        }
        _ => {
            let s = planner::scan_stats(host, input, &f.pred)?;
            f.est_matches = Some(s.matches);
            s
        }
    };

    let algo = match &f.choice {
        SelectChoice::Forced(a) => *a,
        SelectChoice::Chosen { algo, .. } => *algo,
        SelectChoice::Deferred => {
            let shape = SelectShape {
                schema: input.schema().clone(),
                capacity: input.capacity(),
                rows: input.num_rows(),
                matches: stats.matches,
                continuous: stats.continuous,
                om_bytes: om.available(),
                out_key: out_key.clone(),
            };
            f.om_bytes = shape.om_bytes;
            let (choice, est) = choose_filter(config, &shape, stats, profile)?;
            f.est = est;
            f.choice = choice;
            f.choice.algo().expect("deferred choice is resolved")
        }
        SelectChoice::Padded { .. } => unreachable!("handled above"),
    };
    info.select_algo = Some(algo);

    let _span = oblidb_telemetry::span(select_span_kind(algo));
    let before = host.stats();
    let started = std::time::Instant::now();
    let out = match algo {
        SelectAlgo::Small => exec::select_small(host, om, input, &f.pred, out_key, stats.matches)?,
        SelectAlgo::Large => exec::select_large(host, input, &f.pred, out_key)?,
        SelectAlgo::Continuous => {
            exec::select_continuous(host, input, &f.pred, out_key, stats.matches)?
        }
        SelectAlgo::Hash => exec::select_hash(host, input, &f.pred, out_key, stats.matches)?,
        SelectAlgo::Naive => {
            exec::select_naive(host, om, input, &f.pred, out_key, stats.matches, rng)?
        }
        SelectAlgo::Padded => {
            // Only reachable via force_select; pad to the match count.
            exec::select::select_padded(host, om, input, &f.pred, out_key, stats.matches)?
        }
    };
    f.actual = Some(timed_cost(host.stats() - before, profile, started));
    Ok(out)
}

/// Exact output shape `(capacity, rows)` of a filter whose operator and
/// match count were pinned at prepare time — the basis for prepare-time
/// join costing. `None` when the shape depends on runtime state.
fn filter_output_shape(f: &FilterNode) -> Option<(u64, u64)> {
    let input_capacity = match f.input.as_ref() {
        PlanNode::Scan(s) => s.capacity,
        _ => return None,
    };
    if let SelectChoice::Padded { pad_rows } = &f.choice {
        return Some(((*pad_rows).max(1), *pad_rows));
    }
    let m = f.est_matches?;
    let capacity = match f.choice.algo()? {
        SelectAlgo::Large => input_capacity,
        SelectAlgo::Hash => m.max(1) * exec::HASH_SLOTS as u64,
        _ => m.max(1),
    };
    Some((capacity, m))
}

/// One oblivious copy pass.
fn copy_flat<M: EnclaveMemory>(
    host: &mut M,
    input: &mut FlatTable,
    key: AeadKey,
) -> Result<FlatTable, DbError> {
    let mut out = FlatTable::create(host, key, input.schema().clone(), input.capacity())?;
    out.set_parallelism(input.parallelism());
    let chunk = input.io_chunk_rows();
    let cap = input.capacity();
    let mut start = 0u64;
    while start < cap {
        let n = chunk.min((cap - start) as usize);
        let bytes = input.read_rows(host, start, n)?;
        out.write_rows(host, start, bytes)?;
        start += n as u64;
    }
    out.set_num_rows(input.num_rows());
    out.set_insert_cursor(input.capacity());
    Ok(out)
}

/// Renders a column type exactly as the SQL grammar accepts it.
fn render_dtype(dt: DataType) -> String {
    match dt {
        DataType::Int => "INT".into(),
        DataType::Float => "FLOAT".into(),
        DataType::Text(n) => format!("CHAR({n})"),
    }
}

/// Renders a value as a SQL literal that re-parses to the identical
/// value: `{:?}` floats are shortest-roundtrip (the lexer accepts the
/// exponent form they may take), quotes in text double per the grammar.
fn sql_literal(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// The (column type, assigned value) compatibility check UPDATE encoding
/// enforces at run time, applied at validation time — mirrors
/// [`Schema::encode_row`]'s acceptance rules.
fn check_assignable(dtype: DataType, value: &Value, col: &str) -> Result<(), DbError> {
    match (dtype, value) {
        (DataType::Int, Value::Int(_))
        | (DataType::Float, Value::Float(_))
        | (DataType::Float, Value::Int(_)) => Ok(()),
        (DataType::Text(n), Value::Text(s)) if s.len() <= n => Ok(()),
        (DataType::Text(n), Value::Text(s)) => Err(DbError::TypeMismatch(format!(
            "string of {} bytes exceeds CHAR({n}) column {col}",
            s.len()
        ))),
        (dt, v) => Err(DbError::TypeMismatch(format!("column {col} is {dt:?}, value {v:?}"))),
    }
}

fn split_projection(p: &Projection) -> (Vec<(AggFunc, Option<String>)>, Vec<String>) {
    let mut aggs = Vec::new();
    let mut cols = Vec::new();
    if let Projection::Items(items) = p {
        for item in items {
            match item {
                SelectItem::Aggregate { func, col } => aggs.push((*func, col.clone())),
                SelectItem::Column(c) => cols.push(c.clone()),
            }
        }
    }
    (aggs, cols)
}

fn single_agg(aggs: &[(AggFunc, Option<String>)]) -> Result<(AggFunc, Option<String>), DbError> {
    match aggs {
        [one] => Ok(one.clone()),
        [] => Err(DbError::Unsupported("GROUP BY requires exactly one aggregate".into())),
        _ => Err(DbError::Unsupported("GROUP BY supports exactly one aggregate per query".into())),
    }
}

fn agg_name(func: AggFunc, col: Option<&str>) -> String {
    let f = match func {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::Avg => "avg",
    };
    match col {
        Some(c) => format!("{f}({c})"),
        None => format!("{f}(*)"),
    }
}

fn value_type(v: &Value) -> crate::types::DataType {
    match v {
        Value::Int(_) => crate::types::DataType::Int,
        Value::Float(_) => crate::types::DataType::Float,
        Value::Text(s) => crate::types::DataType::Text(s.len().max(1)),
    }
}

/// Applies the final column projection to decoded rows.
fn project(
    schema: Schema,
    rows: Vec<Row>,
    col_items: &[String],
    agg_items: &[(AggFunc, Option<String>)],
    s: &sql::Select,
) -> Result<(Schema, Vec<Row>), DbError> {
    // Star, pure aggregates, or group-by outputs pass through unchanged.
    if matches!(s.projection, Projection::Star) || col_items.is_empty() || s.group_by.is_some() {
        let _ = agg_items;
        return Ok((schema, rows));
    }
    let indices: Vec<usize> = col_items.iter().map(|c| schema.col(c)).collect::<Result<_, _>>()?;
    let out_schema = Schema::new(indices.iter().map(|&i| schema.columns[i].clone()).collect());
    let out_rows =
        rows.into_iter().map(|r| indices.iter().map(|&i| r[i].clone()).collect()).collect();
    Ok((out_schema, out_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn db() -> Database {
        Database::new(DbConfig::default())
    }

    fn setup_people(db: &mut Database, method: StorageMethod) {
        let storage = match method {
            StorageMethod::Flat => "STORAGE = FLAT",
            StorageMethod::Indexed => "STORAGE = INDEXED INDEX ON id",
            StorageMethod::Both => "STORAGE = BOTH INDEX ON id",
        };
        db.execute(&format!(
            "CREATE TABLE people (id INT, age INT, name CHAR(12)) {storage} CAPACITY 64"
        ))
        .unwrap();
        for i in 0..20i64 {
            db.execute(&format!("INSERT INTO people VALUES ({i}, {}, 'p{}')", 20 + i, i)).unwrap();
        }
    }

    #[test]
    fn create_insert_select_flat() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db.execute("SELECT * FROM people WHERE id = 7").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][1], Value::Int(27));
        assert_eq!(out.rows()[0][2], Value::Text("p7".into()));
    }

    #[test]
    fn select_projection() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db.execute("SELECT name, age FROM people WHERE id < 3").unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema.columns[0].name, "name");
        assert_eq!(out.rows()[0], vec![Value::Text("p0".into()), Value::Int(20)]);
    }

    #[test]
    fn select_via_index() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Indexed);
        let out = db.execute("SELECT * FROM people WHERE id = 13").unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.plan.used_index);
        assert_eq!(out.rows()[0][0], Value::Int(13));
    }

    #[test]
    fn range_query_on_index() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Indexed);
        let out = db.execute("SELECT * FROM people WHERE id >= 5 AND id < 9").unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.plan.used_index);
    }

    #[test]
    fn both_storage_picks_index_for_point_flat_for_big() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Both);
        let point = db.execute("SELECT * FROM people WHERE id = 3").unwrap();
        assert!(point.plan.used_index, "point query should use the index");
        let big = db.execute("SELECT * FROM people WHERE id >= 0").unwrap();
        assert!(!big.plan.used_index, "full-range query should scan flat");
        assert_eq!(big.len(), 20);
    }

    #[test]
    fn aggregates_fused() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db
            .execute(
                "SELECT COUNT(*), SUM(age), MIN(age), MAX(age), AVG(age) FROM people WHERE id < 10",
            )
            .unwrap();
        assert!(out.plan.fused_aggregate);
        assert_eq!(out.rows()[0][0], Value::Int(10));
        assert_eq!(out.rows()[0][1], Value::Int(245));
        assert_eq!(out.rows()[0][2], Value::Int(20));
        assert_eq!(out.rows()[0][3], Value::Int(29));
        assert_eq!(out.rows()[0][4], Value::Float(24.5));
    }

    #[test]
    fn group_by_with_where() {
        let mut db = db();
        db.execute("CREATE TABLE sales (region INT, amount INT)").unwrap();
        for (r, a) in [(1, 10), (1, 20), (2, 5), (2, 5), (3, 100), (1, -1)] {
            db.execute(&format!("INSERT INTO sales VALUES ({r}, {a})")).unwrap();
        }
        let out = db
            .execute("SELECT region, SUM(amount) FROM sales WHERE amount > 0 GROUP BY region")
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows()[0], vec![Value::Int(1), Value::Int(30)]);
        assert_eq!(out.rows()[1], vec![Value::Int(2), Value::Int(10)]);
        assert_eq!(out.rows()[2], vec![Value::Int(3), Value::Int(100)]);
    }

    #[test]
    fn update_and_delete_sql() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db.execute("UPDATE people SET age = 99 WHERE id >= 15").unwrap();
        assert_eq!(out.rows_affected, Some(5));
        assert_eq!(out.plan.output_rows, 5, "mirrored for pre-lifecycle callers");
        let check = db.execute("SELECT * FROM people WHERE age = 99").unwrap();
        assert_eq!(check.len(), 5);
        assert_eq!(check.rows_affected, None, "reads carry no mutation count");
        let out = db.execute("DELETE FROM people WHERE age = 99").unwrap();
        assert_eq!(out.rows_affected, Some(5));
        assert_eq!(db.table_rows("people").unwrap(), 15);
        let ins = db.execute("INSERT INTO people VALUES (99, 1, 'x')").unwrap();
        assert_eq!(ins.rows_affected, Some(1));
    }

    #[test]
    fn prepare_explain_run_lifecycle() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let mut stmt = db.prepare("SELECT * FROM people WHERE id < 6").unwrap();
        // Prepare-time plan: a cost-chosen filter with estimates, no
        // actuals yet.
        let filter = stmt.plan().select_root().unwrap().find_filter().unwrap();
        assert_eq!(filter.est_matches, Some(6));
        assert!(filter.est.is_some(), "flat base filters are costed at prepare");
        assert!(filter.actual.is_none());
        assert!(matches!(filter.choice, SelectChoice::Chosen { .. }));
        let before = stmt.explain().to_string();
        assert!(before.contains("Filter"), "{before}");
        assert!(before.contains("candidates:"), "{before}");
        assert!(!before.contains("act:"), "{before}");

        let out = stmt.run().unwrap();
        assert_eq!(out.len(), 6);
        let filter = stmt.plan().select_root().unwrap().find_filter().unwrap();
        assert!(filter.actual.is_some(), "run() writes measured costs back");
        let after = stmt.explain().to_string();
        assert!(after.contains("act:"), "{after}");
    }

    #[test]
    fn prepared_statement_reruns_and_replans() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        // A prepared SELECT is rerunnable.
        let mut stmt = db.prepare("SELECT * FROM people WHERE age >= 30").unwrap();
        assert_eq!(stmt.run().unwrap().len(), 10);
        assert_eq!(stmt.run().unwrap().len(), 10);
        // A prepared mutation bumps the catalog version when run, so its
        // second run goes through the transparent re-plan path (the
        // statement holds the only &mut Database, so nothing else can
        // invalidate it in between).
        let mut ins = db.prepare("INSERT INTO people VALUES (100, 1, 'y')").unwrap();
        ins.run().unwrap();
        ins.run().unwrap();
        assert_eq!(db.table_rows("people").unwrap(), 22);
        let mut del = db.prepare("DELETE FROM people WHERE id = 100").unwrap();
        assert_eq!(del.run().unwrap().rows_affected, Some(2));
        assert_eq!(del.run().unwrap().rows_affected, Some(0), "re-planned, nothing left");
    }

    #[test]
    fn explain_select_statement_renders_plan() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let before_trace_rows = db.table_rows("people").unwrap();
        let out = db.execute("EXPLAIN SELECT * FROM people WHERE id < 6").unwrap();
        assert_eq!(out.schema.columns[0].name, "plan");
        let text: Vec<String> =
            out.rows().iter().map(|r| r[0].as_text().unwrap().to_string()).collect();
        assert!(text[0].starts_with("Select"), "{text:?}");
        assert!(text.iter().any(|l| l.contains("Filter")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("Scan people")), "{text:?}");
        // EXPLAIN executes nothing.
        assert_eq!(db.table_rows("people").unwrap(), before_trace_rows);
        assert!(db.execute("EXPLAIN SELECT * FROM nope").is_err());
    }

    #[test]
    fn update_delete_on_both_storage_stays_consistent() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Both);
        db.execute("UPDATE people SET age = 0 WHERE id < 5").unwrap();
        db.execute("DELETE FROM people WHERE id >= 15").unwrap();
        // Query via index...
        let via_index = db.execute("SELECT * FROM people WHERE id = 2").unwrap();
        assert_eq!(via_index.rows()[0][1], Value::Int(0));
        // ...and via flat scan agree.
        let via_flat = db.execute("SELECT * FROM people WHERE age = 0").unwrap();
        assert_eq!(via_flat.len(), 5);
        assert_eq!(db.table_rows("people").unwrap(), 15);
        let gone = db.execute("SELECT * FROM people WHERE id = 16").unwrap();
        assert!(gone.is_empty());
    }

    #[test]
    fn join_two_tables() {
        let mut db = db();
        db.execute("CREATE TABLE dept (did INT, dname CHAR(8))").unwrap();
        db.execute("CREATE TABLE emp (eid INT, did INT)").unwrap();
        for d in 0..4 {
            db.execute(&format!("INSERT INTO dept VALUES ({d}, 'd{d}')")).unwrap();
        }
        for e in 0..12 {
            db.execute(&format!("INSERT INTO emp VALUES ({e}, {})", e % 3)).unwrap();
        }
        let out = db.execute("SELECT * FROM dept JOIN emp ON dept.did = emp.did").unwrap();
        assert_eq!(out.len(), 12);
        assert!(out.plan.join_algo.is_some());
    }

    #[test]
    fn join_with_where_pushdown_and_group() {
        let mut db = db();
        db.execute("CREATE TABLE r (url INT, rank INT)").unwrap();
        db.execute("CREATE TABLE v (dest INT, rev INT, day INT)").unwrap();
        for u in 0..8 {
            db.execute(&format!("INSERT INTO r VALUES ({u}, {})", u * 10)).unwrap();
        }
        for i in 0..24 {
            db.execute(&format!("INSERT INTO v VALUES ({}, {}, {})", i % 8, i, i % 4)).unwrap();
        }
        // Push-down filter on v only.
        let out = db.execute("SELECT * FROM r JOIN v ON r.url = v.dest WHERE day = 1").unwrap();
        assert_eq!(out.len(), 6);
        // Grouped aggregation over a join: matching dests are {1, 5}, so
        // two rank groups with revenue sums 1+9+17 and 5+13+21.
        let out = db
            .execute("SELECT r.rank, SUM(rev) FROM r JOIN v ON r.url = v.dest WHERE day = 1 GROUP BY r.rank")
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], vec![Value::Int(10), Value::Int(27)]);
        assert_eq!(out.rows()[1], vec![Value::Int(50), Value::Int(39)]);
    }

    #[test]
    fn padding_mode_hides_result_sizes() {
        // Two selections of very different selectivity must produce
        // identical traces under padding mode (fresh engine per query so
        // region numbering matches; numbering is itself size-determined).
        let run = |query: &str, expect: usize| {
            let mut db = Database::new(DbConfig {
                padding: Some(crate::padding::PaddingConfig::uniform(32)),
                ..DbConfig::default()
            });
            db.execute("CREATE TABLE t (id INT, v INT) CAPACITY 64").unwrap();
            for i in 0..20 {
                db.execute(&format!("INSERT INTO t VALUES ({i}, {i})")).unwrap();
            }
            db.start_trace();
            let out = db.execute(query).unwrap();
            assert_eq!(out.len(), expect);
            assert_eq!(out.plan.select_algo, Some(SelectAlgo::Padded));
            db.take_trace()
        };
        let ta = run("SELECT * FROM t WHERE id = 3", 1);
        let tb = run("SELECT * FROM t WHERE id < 15", 15);
        assert_eq!(ta, tb);
    }

    #[test]
    fn select_traces_identical_for_same_sizes() {
        // The engine-level obliviousness check: same table size, same
        // output size, different query parameters → identical traces.
        let make = |lo: i64| {
            let mut db = db();
            setup_people(&mut db, StorageMethod::Flat);
            db.config_mut().planner.enable_continuous = false;
            db.start_trace();
            let out = db
                .execute(&format!("SELECT * FROM people WHERE id >= {lo} AND id < {}", lo + 4))
                .unwrap();
            assert_eq!(out.len(), 4);
            db.take_trace()
        };
        assert_eq!(make(0), make(13));
    }

    #[test]
    fn flat_table_autogrows() {
        let mut db = db();
        db.execute("CREATE TABLE t (x INT) CAPACITY 2").unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        assert_eq!(db.table_rows("t").unwrap(), 10);
        let out = db.execute("SELECT * FROM t WHERE x >= 0").unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn oblivious_insert_mode() {
        let mut db = Database::new(DbConfig { fast_inserts: false, ..DbConfig::default() });
        db.execute("CREATE TABLE t (x INT) CAPACITY 8").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute("INSERT INTO t VALUES (2)").unwrap();
        let out = db.execute("SELECT * FROM t WHERE x > 0").unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn errors_surface() {
        let mut db = db();
        assert!(matches!(db.execute("SELECT * FROM nope"), Err(DbError::NoSuchTable(_))));
        db.execute("CREATE TABLE t (x INT)").unwrap();
        assert!(matches!(
            db.execute("SELECT * FROM t WHERE missing = 1"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(db.execute("CREATE TABLE t (y INT)"), Err(DbError::TableExists(_))));
        assert!(matches!(
            db.execute("INSERT INTO t VALUES ('wrong')"),
            Err(DbError::TypeMismatch(_))
        ));
        assert!(matches!(
            db.create_table(
                "u",
                Schema::new(vec![Column::new("x", DataType::Int)]),
                StorageMethod::Indexed,
                None,
                8
            ),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn bulk_load_constructor() {
        let mut db = db();
        let schema =
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)]);
        let rows: Vec<Vec<Value>> =
            (0..100i64).map(|i| vec![Value::Int(i), Value::Int(i * 2)]).collect();
        db.create_table_with_rows("bulk", schema, StorageMethod::Both, Some("id"), &rows, 200)
            .unwrap();
        assert_eq!(db.table_rows("bulk").unwrap(), 100);
        let out = db.execute("SELECT * FROM bulk WHERE id = 42").unwrap();
        assert_eq!(out.rows()[0][1], Value::Int(84));
        assert!(out.plan.used_index);
    }

    #[test]
    fn forced_operators() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        for algo in [SelectAlgo::Small, SelectAlgo::Large, SelectAlgo::Hash, SelectAlgo::Naive] {
            db.config_mut().planner.force_select = Some(algo);
            let out = db.execute("SELECT * FROM people WHERE id < 6").unwrap();
            assert_eq!(out.plan.select_algo, Some(algo));
            assert_eq!(out.len(), 6, "{algo:?}");
        }
    }

    #[test]
    fn order_by_and_limit() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db
            .execute("SELECT id, age FROM people WHERE id < 10 ORDER BY age DESC LIMIT 3")
            .unwrap();
        assert_eq!(out.len(), 3);
        let ages: Vec<i64> = out.rows().iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(ages, vec![29, 28, 27]);
    }

    #[test]
    fn plan_cache_hits_skip_replanning_and_invalidate_on_change() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let q = "SELECT * FROM people WHERE id < 6";
        assert_eq!(db.prepare(q).unwrap().run().unwrap().len(), 6);
        let after_first = db.plan_cache_stats();
        assert_eq!(after_first.hits, 0);

        // Same SQL, unchanged catalog: served from the cache with zero
        // host accesses (no preliminary scan, no dry-run costing).
        db.host_mut().reset_stats();
        {
            let stmt = db.prepare(q).unwrap();
            assert!(stmt.plan().select_root().is_some());
        }
        assert_eq!(db.host_mut().stats().total_accesses(), 0, "hit must not touch the host");
        assert_eq!(db.plan_cache_stats().hits, after_first.hits + 1);
        // A cached plan still runs correctly (fresh output regions).
        assert_eq!(db.prepare(q).unwrap().run().unwrap().len(), 6);

        // Any mutation (data or DDL) bumps the version: stale entry,
        // re-planned, and the fresh row is visible.
        db.execute("INSERT INTO people VALUES (3, 21, 'x')").unwrap();
        let before = db.plan_cache_stats();
        assert_eq!(db.prepare(q).unwrap().run().unwrap().len(), 7);
        let after = db.plan_cache_stats();
        assert_eq!(after.misses, before.misses + 1, "stale plans are not hits");

        // Planner-config changes cannot bump the version; handing out the
        // config borrow drops the cache instead.
        db.config_mut().planner.force_select = Some(SelectAlgo::Large);
        let out = db.execute(q).unwrap();
        assert_eq!(out.plan.select_algo, Some(SelectAlgo::Large));
    }

    #[test]
    fn empty_result_queries() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db.execute("SELECT * FROM people WHERE id > 1000").unwrap();
        assert!(out.is_empty());
        let agg = db.execute("SELECT COUNT(*) FROM people WHERE id > 1000").unwrap();
        assert_eq!(agg.rows()[0][0], Value::Int(0));
    }
}

#[cfg(test)]
mod wal_tests {
    use super::*;

    #[test]
    fn wal_logs_mutations_and_replays() {
        let mut db = Database::new(DbConfig {
            wal: Some(crate::wal::WalConfig::default()),
            ..DbConfig::default()
        });
        db.execute("CREATE TABLE t (k INT, v INT) CAPACITY 32").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        db.execute("INSERT INTO t VALUES (2, 20)").unwrap();
        db.execute("UPDATE t SET v = 99 WHERE k = 1").unwrap();
        db.execute("DELETE FROM t WHERE k = 2").unwrap();
        // Reads are not logged.
        db.execute("SELECT * FROM t").unwrap();

        let log = db.wal_records().unwrap();
        assert_eq!(log.len(), 5, "CREATE is logged too, so replay needs no schema dump");
        assert!(log[0].starts_with("CREATE"));
        assert!(log[1].starts_with("INSERT"));
        assert!(log[4].starts_with("DELETE"));

        // Redo into a fresh engine — the log alone carries the schema.
        let mut recovered = Database::new(DbConfig::default());
        recovered.replay(&log).unwrap();
        let a = db.execute("SELECT * FROM t ORDER BY k").unwrap();
        let b = recovered.execute("SELECT * FROM t ORDER BY k").unwrap();
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn wal_appends_do_not_change_mutation_obliviousness() {
        // With WAL on, two equal-shape mutations still produce identical
        // traces (the log write is one extra fixed event).
        let run = |key: i64| {
            let mut db = Database::new(DbConfig {
                wal: Some(crate::wal::WalConfig::default()),
                ..DbConfig::default()
            });
            db.execute("CREATE TABLE t (k INT) CAPACITY 16").unwrap();
            for i in 0..16 {
                db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            }
            db.start_trace();
            db.execute(&format!("DELETE FROM t WHERE k = {key}")).unwrap();
            db.take_trace()
        };
        assert_eq!(run(0), run(15));
    }

    #[test]
    fn checkpoint_is_a_noop_on_host() {
        // In-memory substrates have nothing to flush; the checkpoint path
        // must still exist (and add no observable accesses).
        let mut db = Database::new(DbConfig {
            wal: Some(crate::wal::WalConfig::default()),
            ..DbConfig::default()
        });
        db.execute("CREATE TABLE t (k INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.start_trace();
        db.checkpoint().unwrap();
        assert!(db.take_trace().is_empty(), "host checkpoint adds no accesses");
        let mut plain = Database::new(DbConfig::default());
        plain.checkpoint().unwrap();
    }

    #[test]
    fn wal_off_means_no_log() {
        let mut db = Database::new(DbConfig::default());
        db.execute("CREATE TABLE t (k INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        assert!(db.wal_records().unwrap().is_empty());
    }
}
