//! The ObliDB database facade.
//!
//! Owns the simulated enclave state (host memory handle, oblivious-memory
//! budget, master key, RNG) and the table catalog, and drives the
//! query-execution pipeline: resolve → (push-down select) → join → select
//! → aggregate/group-by → decode, with the planner picking physical
//! operators at each step (paper §5) and an optional padding mode
//! (§2.3).

use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveMemory, EnclaveRng, Host, OmBudget, Trace, DEFAULT_OM_BYTES};

use crate::error::DbError;
use crate::exec::{self, AggFunc, SortMergeVariant};
use crate::padding::PaddingConfig;
use crate::planner::{self, JoinAlgo, PlannerConfig, SelectAlgo, SelectStats};
use crate::predicate::Predicate;
use crate::sql::{self, Projection, SelectItem, Statement};
use crate::table::{FlatTable, IndexedTable, TableStorage};
use crate::types::{Column, Row, Schema, Value};

/// Default initial table capacity (rows) when CREATE TABLE gives none.
pub const DEFAULT_CAPACITY: u64 = 1024;

/// Which storage method(s) a table uses (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMethod {
    /// Flat only.
    Flat,
    /// Oblivious B+ tree only.
    Indexed,
    /// Both, kept in sync (Figure 12).
    Both,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Oblivious-memory budget in bytes (paper default: ≤ 20 MB).
    pub om_bytes: usize,
    /// RNG seed (experiments reproduce exactly under a fixed seed).
    pub seed: u64,
    /// Planner tunables and operator overrides.
    pub planner: PlannerConfig,
    /// Padding mode; `Some` disables the planner and pads result sizes.
    pub padding: Option<PaddingConfig>,
    /// Use the constant-time fast insert on flat tables (§3.1). On by
    /// default, as for tables with few deletions.
    pub fast_inserts: bool,
    /// Plain (non-oblivious) enclave scratch rows granted to the 0-OM
    /// join's sort (§4.3: it speeds up "regardless of whether the memory
    /// is oblivious").
    pub zero_om_scratch_rows: usize,
    /// Write-ahead logging of mutation statements (paper §3). `Some`
    /// appends every INSERT/UPDATE/DELETE statement to an encrypted log
    /// before executing it; replay with [`Database::wal_records`] +
    /// [`Database::replay`].
    pub wal: Option<crate::wal::WalConfig>,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            om_bytes: DEFAULT_OM_BYTES,
            seed: 0xB10C_5EED,
            planner: PlannerConfig::default(),
            padding: None,
            fast_inserts: true,
            zero_om_scratch_rows: 1,
            wal: None,
        }
    }
}

/// The physical plan chosen for a query — exactly the plan-shaped leakage
/// of §2.3, surfaced for tests and experiments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanInfo {
    /// Selection operator used, if any.
    pub select_algo: Option<SelectAlgo>,
    /// Join operator used, if any.
    pub join_algo: Option<JoinAlgo>,
    /// Whether an index satisfied part of the query.
    pub used_index: bool,
    /// Whether select+aggregate were fused into one pass.
    pub fused_aggregate: bool,
    /// Sizes of intermediate tables, in creation order.
    pub intermediate_rows: Vec<u64>,
    /// Result row count.
    pub output_rows: u64,
}

/// Decoded query results plus the plan leakage.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Result schema.
    pub schema: Schema,
    rows: Vec<Row>,
    /// The physical plan (the query's non-size leakage).
    pub plan: PlanInfo,
}

impl QueryOutput {
    /// The decoded rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn empty(schema: Schema) -> Self {
        QueryOutput { schema, rows: Vec::new(), plan: PlanInfo::default() }
    }
}

/// The database engine, generic over its untrusted memory substrate.
///
/// `M` is the [`EnclaveMemory`] backing every table region: [`Host`] (the
/// default, stores sealed blocks in memory) or any other implementor —
/// e.g. [`oblidb_enclave::CountingMemory`] for payload-free cost modeling.
pub struct Database<M: EnclaveMemory = Host> {
    host: M,
    om: OmBudget,
    rng: EnclaveRng,
    master_key: [u8; 32],
    key_counter: u64,
    tables: Vec<(String, TableStorage)>,
    config: DbConfig,
    wal: Option<crate::wal::Wal>,
}

impl Database<Host> {
    /// Creates an empty database over a fresh in-memory [`Host`].
    pub fn new(config: DbConfig) -> Self {
        Self::with_memory(Host::new(), config)
    }
}

impl<M: EnclaveMemory> Database<M> {
    /// Creates an empty database over a caller-provided memory substrate.
    ///
    /// Payload-free substrates (e.g. `CountingMemory`) support flat
    /// storage with padding mode or a forced size-oblivious select;
    /// adaptive planning and indexed storage return typed errors there,
    /// since both depend on payload contents.
    pub fn with_memory(host: M, config: DbConfig) -> Self {
        let mut rng = EnclaveRng::seed_from_u64(config.seed);
        let mut master_key = [0u8; 32];
        rng.fill(&mut master_key);
        let mut db = Database {
            host,
            om: OmBudget::new(config.om_bytes),
            rng,
            master_key,
            key_counter: 0,
            tables: Vec::new(),
            config,
            wal: None,
        };
        if let Some(wal_config) = db.config.wal {
            let key = db.next_key();
            db.wal = Some(
                crate::wal::Wal::create(&mut db.host, key, wal_config)
                    .expect("fresh host accepts the WAL region"),
            );
        }
        db
    }

    /// Decrypts and returns the logged mutation statements, oldest first
    /// (empty when WAL is off).
    pub fn wal_records(&mut self) -> Result<Vec<String>, DbError> {
        match &mut self.wal {
            Some(w) => {
                // Log records live in payloads; a payload-free substrate
                // would decode zeroed blocks into empty statements and
                // recovery would silently no-op. Refuse loudly, like every
                // other payload-dependent read path.
                if !self.host.retains_payloads() {
                    return Err(DbError::Unsupported(
                        "WAL recovery requires a payload-retaining EnclaveMemory \
                         (log records live in block payloads)"
                            .into(),
                    ));
                }
                w.records(&mut self.host)
            }
            None => Ok(Vec::new()),
        }
    }

    /// Replays logged statements (from [`Database::wal_records`] of a
    /// previous incarnation) into this engine — the redo half of
    /// recovery. Schema statements must be re-issued first, as in a
    /// conventional redo from a checkpoint.
    pub fn replay(&mut self, statements: &[String]) -> Result<(), DbError> {
        for stmt in statements {
            self.execute(stmt)?;
        }
        Ok(())
    }

    /// Checkpoints the engine: flushes the substrate's buffered state to
    /// its durable medium ([`EnclaveMemory::sync`]) — write-back caches
    /// flush dirty blocks, disk regions fsync, in-memory substrates
    /// no-op. The WAL (when enabled) lives in host regions like every
    /// table, so this is also the log's flush point; checkpoint *records*
    /// and log truncation are future work (see ROADMAP).
    pub fn checkpoint(&mut self) -> Result<(), DbError> {
        self.host.sync().map_err(DbError::from)
    }

    /// Unpadded GROUP BY sizes its output by the group count, which is
    /// decoded from block payloads — unavailable on a payload-free
    /// substrate, where the trace would silently diverge from the real
    /// engine. Padding mode sizes by the (public) configured maximum, so
    /// it stays exact. Mirrors `require_payloads` for indexed storage.
    fn require_payloads_for_group_by(&self) -> Result<(), DbError> {
        if self.host.retains_payloads() || self.config.padding.is_some() {
            Ok(())
        } else {
            Err(DbError::Unsupported(
                "GROUP BY on a payload-free EnclaveMemory substrate requires padding \
                 mode (the unpadded output size is payload-derived)"
                    .into(),
            ))
        }
    }

    /// Fresh derived key for a new region/table.
    fn next_key(&mut self) -> AeadKey {
        self.key_counter += 1;
        AeadKey(oblidb_crypto::derive_key(
            &self.master_key,
            format!("region:{}", self.key_counter).as_bytes(),
        ))
    }

    /// Engine configuration (mutable, so experiments can flip planner
    /// settings between queries).
    pub fn config_mut(&mut self) -> &mut DbConfig {
        &mut self.config
    }

    /// The untrusted memory substrate — exposed so tests and experiments
    /// can record and inspect access-pattern traces.
    pub fn host_mut(&mut self) -> &mut M {
        &mut self.host
    }

    /// The oblivious-memory budget handle.
    pub fn om(&self) -> &OmBudget {
        &self.om
    }

    /// Starts recording the adversary's view.
    pub fn start_trace(&mut self) {
        self.host.start_trace();
    }

    /// Stops recording and returns the transcript.
    pub fn take_trace(&mut self) -> Trace {
        self.host.take_trace()
    }

    fn table_index(&self, name: &str) -> Result<usize, DbError> {
        self.tables
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Creates a table.
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        method: StorageMethod,
        index_on: Option<&str>,
        capacity: u64,
    ) -> Result<(), DbError> {
        if self.tables.iter().any(|(n, _)| n == name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let storage = match method {
            StorageMethod::Flat => {
                let key = self.next_key();
                TableStorage::Flat(FlatTable::create(&mut self.host, key, schema, capacity)?)
            }
            StorageMethod::Indexed => {
                let col = index_on.ok_or(DbError::Unsupported(
                    "INDEXED storage requires INDEX ON <col>".into(),
                ))?;
                let key_col = schema.col(col)?;
                let key = self.next_key();
                let rng = self.rng.fork();
                TableStorage::Indexed(IndexedTable::create(
                    &mut self.host,
                    key,
                    schema,
                    key_col,
                    capacity,
                    &self.om,
                    rng,
                )?)
            }
            StorageMethod::Both => {
                let col = index_on
                    .ok_or(DbError::Unsupported("BOTH storage requires INDEX ON <col>".into()))?;
                let key_col = schema.col(col)?;
                let fk = self.next_key();
                let flat = FlatTable::create(&mut self.host, fk, schema.clone(), capacity)?;
                let ik = self.next_key();
                let rng = self.rng.fork();
                let indexed = IndexedTable::create(
                    &mut self.host,
                    ik,
                    schema,
                    key_col,
                    capacity,
                    &self.om,
                    rng,
                );
                // Don't leak the flat region if the index half fails
                // (deterministic on payload-free substrates).
                let indexed = match indexed {
                    Ok(i) => i,
                    Err(e) => {
                        flat.free(&mut self.host);
                        return Err(e);
                    }
                };
                TableStorage::Both { flat, indexed }
            }
        };
        self.tables.push((name.to_string(), storage));
        Ok(())
    }

    /// Bulk-creates a table with contents (pre-deployment load; avoids one
    /// oblivious insert per row when building experiment datasets).
    pub fn create_table_with_rows(
        &mut self,
        name: &str,
        schema: Schema,
        method: StorageMethod,
        index_on: Option<&str>,
        rows: &[Vec<Value>],
        capacity: u64,
    ) -> Result<(), DbError> {
        if self.tables.iter().any(|(n, _)| n == name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let encoded: Vec<Vec<u8>> =
            rows.iter().map(|r| schema.encode_row(r)).collect::<Result<_, _>>()?;
        let cap = capacity.max(rows.len() as u64);
        let storage = match method {
            StorageMethod::Flat => {
                let key = self.next_key();
                TableStorage::Flat(FlatTable::from_encoded_rows(
                    &mut self.host,
                    key,
                    schema,
                    &encoded,
                    cap,
                )?)
            }
            StorageMethod::Indexed => {
                let col = index_on.ok_or(DbError::Unsupported(
                    "INDEXED storage requires INDEX ON <col>".into(),
                ))?;
                let key_col = schema.col(col)?;
                let key = self.next_key();
                let rng = self.rng.fork();
                TableStorage::Indexed(IndexedTable::from_encoded_rows(
                    &mut self.host,
                    key,
                    schema,
                    key_col,
                    &encoded,
                    cap,
                    &self.om,
                    rng,
                )?)
            }
            StorageMethod::Both => {
                let col = index_on
                    .ok_or(DbError::Unsupported("BOTH storage requires INDEX ON <col>".into()))?;
                let key_col = schema.col(col)?;
                let fk = self.next_key();
                let flat = FlatTable::from_encoded_rows(
                    &mut self.host,
                    fk,
                    schema.clone(),
                    &encoded,
                    cap,
                )?;
                let ik = self.next_key();
                let rng = self.rng.fork();
                let indexed = match IndexedTable::from_encoded_rows(
                    &mut self.host,
                    ik,
                    schema,
                    key_col,
                    &encoded,
                    cap,
                    &self.om,
                    rng,
                ) {
                    Ok(i) => i,
                    Err(e) => {
                        flat.free(&mut self.host);
                        return Err(e);
                    }
                };
                TableStorage::Both { flat, indexed }
            }
        };
        self.tables.push((name.to_string(), storage));
        Ok(())
    }

    /// Row count of a table (public information).
    pub fn table_rows(&self, name: &str) -> Result<u64, DbError> {
        Ok(self.tables[self.table_index(name)?].1.num_rows())
    }

    /// Schema of a table.
    pub fn table_schema(&self, name: &str) -> Result<&Schema, DbError> {
        Ok(self.tables[self.table_index(name)?].1.schema())
    }

    /// Inserts a row, updating every storage method the table has.
    pub fn insert(&mut self, name: &str, values: &[Value]) -> Result<(), DbError> {
        let idx = self.table_index(name)?;
        let fast = self.config.fast_inserts;
        // Auto-grow flat storage when full (paper §3: capacity "can be
        // increased later by copying to a new, larger table").
        let needs_grow = {
            let (_, storage) = &self.tables[idx];
            match storage {
                TableStorage::Flat(f) | TableStorage::Both { flat: f, .. } => {
                    f.num_rows() >= f.capacity()
                }
                TableStorage::Indexed(_) => false,
            }
        };
        if needs_grow {
            let key = self.next_key();
            if let Some(f) = self.tables[idx].1.flat_mut() {
                let new_cap = f.capacity() * 2;
                f.grow(&mut self.host, key, new_cap)?;
            }
        }
        let (_, storage) = &mut self.tables[idx];
        match storage {
            TableStorage::Flat(f) => {
                if fast {
                    f.insert_fast(&mut self.host, values)
                } else {
                    f.insert_oblivious(&mut self.host, values)
                }
            }
            TableStorage::Indexed(i) => i.insert(&mut self.host, values).map(|_| ()),
            TableStorage::Both { flat, indexed } => {
                if fast {
                    flat.insert_fast(&mut self.host, values)?;
                } else {
                    flat.insert_oblivious(&mut self.host, values)?;
                }
                indexed.insert(&mut self.host, values).map(|_| ())
            }
        }
    }

    /// Deletes rows matching `pred`; returns the count (a result size).
    pub fn delete_where(&mut self, name: &str, pred: &Predicate) -> Result<u64, DbError> {
        let idx = self.table_index(name)?;
        let (_, storage) = &mut self.tables[idx];
        match storage {
            TableStorage::Flat(f) => f.delete_where(&mut self.host, pred),
            TableStorage::Indexed(i) => i.delete_where(&mut self.host, pred),
            TableStorage::Both { flat, indexed } => {
                let n = flat.delete_where(&mut self.host, pred)?;
                indexed.delete_where(&mut self.host, pred)?;
                Ok(n)
            }
        }
    }

    /// Updates rows matching `pred`; returns the count.
    pub fn update_where(
        &mut self,
        name: &str,
        pred: &Predicate,
        assignments: &[(usize, Value)],
    ) -> Result<u64, DbError> {
        let idx = self.table_index(name)?;
        let (_, storage) = &mut self.tables[idx];
        match storage {
            TableStorage::Flat(f) => f.update_where(&mut self.host, pred, assignments),
            TableStorage::Indexed(i) => i.update_where(&mut self.host, pred, assignments),
            TableStorage::Both { flat, indexed } => {
                let n = flat.update_where(&mut self.host, pred, assignments)?;
                indexed.update_where(&mut self.host, pred, assignments)?;
                Ok(n)
            }
        }
    }

    /// Parses and executes one SQL statement.
    pub fn execute(&mut self, query: &str) -> Result<QueryOutput, DbError> {
        let statement = sql::parse(query)?;
        // WAL: log mutations before executing them (paper §3). One sealed
        // append per mutation; no data-dependent pattern.
        if matches!(statement, Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_)) {
            if let Some(wal) = &mut self.wal {
                wal.append(&mut self.host, query)?;
            }
        }
        match statement {
            Statement::Create(c) => {
                let schema = Schema::new(
                    c.columns.iter().map(|cd| Column::new(cd.name.clone(), cd.dtype)).collect(),
                );
                let cap = c.capacity.unwrap_or(DEFAULT_CAPACITY);
                self.create_table(&c.name, schema, c.storage, c.index_on.as_deref(), cap)?;
                Ok(QueryOutput::empty(Schema::new(Vec::new())))
            }
            Statement::Insert(i) => {
                self.insert(&i.table, &i.values)?;
                Ok(QueryOutput::empty(Schema::new(Vec::new())))
            }
            Statement::Update(u) => {
                let idx = self.table_index(&u.table)?;
                let schema = self.tables[idx].1.schema().clone();
                let pred = match &u.where_clause {
                    Some(w) => w.resolve(&schema)?,
                    None => Predicate::True,
                };
                let assignments: Vec<(usize, Value)> = u
                    .sets
                    .iter()
                    .map(|a| Ok((schema.col(&a.col)?, a.value.clone())))
                    .collect::<Result<_, DbError>>()?;
                let n = self.update_where(&u.table, &pred, &assignments)?;
                let mut out = QueryOutput::empty(Schema::new(Vec::new()));
                out.plan.output_rows = n;
                Ok(out)
            }
            Statement::Delete(d) => {
                let idx = self.table_index(&d.table)?;
                let schema = self.tables[idx].1.schema().clone();
                let pred = match &d.where_clause {
                    Some(w) => w.resolve(&schema)?,
                    None => Predicate::True,
                };
                let n = self.delete_where(&d.table, &pred)?;
                let mut out = QueryOutput::empty(Schema::new(Vec::new()));
                out.plan.output_rows = n;
                Ok(out)
            }
            Statement::Select(s) => self.execute_select(&s),
        }
    }

    // ---- SELECT pipeline --------------------------------------------------

    /// Runs a SELECT: (optional push-down filters) → (optional join) →
    /// (filter | fused aggregate | grouped aggregate) → decode.
    fn execute_select(&mut self, s: &sql::Select) -> Result<QueryOutput, DbError> {
        let mut plan = PlanInfo::default();

        // Resolve aggregates from the projection.
        let (agg_items, col_items) = split_projection(&s.projection);
        let has_aggs = !agg_items.is_empty();

        let mut where_consumed = s.join.is_none();
        let mut current: FlatTable = if let Some(join) = &s.join {
            let (t, consumed) = self.run_join(s, join, &mut plan)?;
            where_consumed = consumed;
            t
        } else {
            self.stage_base_select(s, &mut plan, has_aggs)?
        };

        // If the base stage already produced the final answer (fused
        // aggregate or group-by handled inside), `plan.fused_aggregate`
        // or group handling flags it via schema shape; otherwise apply
        // remaining stages on `current`.
        if s.join.is_some() {
            // WHERE after the join, unless push-down already consumed it.
            if let Some(w) = &s.where_clause {
                if !where_consumed {
                    let pred = w.resolve(current.schema())?;
                    current = self.run_select_stage(current, &pred, &mut plan)?;
                }
            }
            if let Some(g) = &s.group_by {
                self.require_payloads_for_group_by()?;
                let (func, agg_col) = single_agg(&agg_items)?;
                let group_col = current.schema().col(g)?;
                let agg_col = agg_col.map(|c| current.schema().col(&c)).transpose()?;
                let key = self.next_key();
                let pad = self.config.padding.map(|p| p.max_groups);
                let out = exec::aggregate::group_aggregate_padded(
                    &mut self.host,
                    &self.om,
                    &mut current,
                    group_col,
                    func,
                    agg_col,
                    &Predicate::True,
                    key,
                    pad,
                )?;
                current.free(&mut self.host);
                current = out;
            } else if has_aggs {
                return self.finish_aggregates(current, &agg_items, &Predicate::True, plan);
            }
        }

        plan.output_rows = current.num_rows();
        let mut rows = current.collect_rows(&mut self.host)?;
        let schema = current.schema().clone();
        current.free(&mut self.host);

        // ORDER BY / LIMIT run on the decoded result inside the enclave;
        // they touch no untrusted memory and add no leakage beyond the
        // (already leaked) result size.
        if let Some((col, desc)) = &s.order_by {
            let idx = schema.col(col)?;
            rows.sort_by(|a, b| a[idx].cmp_total(&b[idx]));
            if *desc {
                rows.reverse();
            }
        }
        if let Some(limit) = s.limit {
            rows.truncate(limit as usize);
        }

        let (schema, rows) = project(schema, rows, &col_items, &agg_items, s)?;
        Ok(QueryOutput { schema, rows, plan })
    }

    /// Base-table stage for non-join queries: index or flat access, fused
    /// aggregates, group-by, or a planned select.
    fn stage_base_select(
        &mut self,
        s: &sql::Select,
        plan: &mut PlanInfo,
        has_aggs: bool,
    ) -> Result<FlatTable, DbError> {
        let idx = self.table_index(&s.table)?;
        let schema = self.tables[idx].1.schema().clone();
        let pred = match &s.where_clause {
            Some(w) => w.resolve(&schema)?,
            None => Predicate::True,
        };

        // Grouped aggregation (fused with the WHERE filter).
        if let Some(g) = &s.group_by {
            self.require_payloads_for_group_by()?;
            let (agg_items, _) = split_projection(&s.projection);
            let (func, agg_col) = single_agg(&agg_items)?;
            let group_col = schema.col(g)?;
            let agg_col = agg_col.map(|c| schema.col(&c)).transpose()?;
            let mut input = self.materialize_input(idx, &pred, plan)?;
            let key = self.next_key();
            let pad = self.config.padding.map(|p| p.max_groups);
            let out = match &mut input {
                InputRef::Owned(t) => exec::aggregate::group_aggregate_padded(
                    &mut self.host,
                    &self.om,
                    t,
                    group_col,
                    func,
                    agg_col,
                    &pred,
                    key,
                    pad,
                )?,
                InputRef::Stored(i) => {
                    let (_, storage) = &mut self.tables[*i];
                    let f = storage.flat_mut().expect("stored input is flat");
                    exec::aggregate::group_aggregate_padded(
                        &mut self.host,
                        &self.om,
                        f,
                        group_col,
                        func,
                        agg_col,
                        &pred,
                        key,
                        pad,
                    )?
                }
            };
            input.free(self);
            plan.fused_aggregate = true;
            return Ok(out);
        }

        // Fused select + aggregate (paper §4.2): skip the intermediate.
        if has_aggs {
            let (agg_items, _) = split_projection(&s.projection);
            let mut input = self.materialize_input(idx, &pred, plan)?;
            let mut states = Vec::new();
            for item in &agg_items {
                let (func, col_name) = item;
                let col = col_name.as_ref().map(|c| schema.col(c)).transpose()?;
                let v = match &mut input {
                    InputRef::Owned(t) => exec::aggregate(&mut self.host, t, *func, col, &pred)?,
                    InputRef::Stored(i) => {
                        let (_, storage) = &mut self.tables[*i];
                        let f = storage.flat_mut().expect("stored input is flat");
                        exec::aggregate(&mut self.host, f, *func, col, &pred)?
                    }
                };
                states.push(v);
            }
            input.free(self);
            plan.fused_aggregate = true;
            let out_schema = Schema::new(
                agg_items
                    .iter()
                    .zip(&states)
                    .map(|((func, col), v)| {
                        Column::new(agg_name(*func, col.as_deref()), value_type(v))
                    })
                    .collect(),
            );
            let key = self.next_key();
            let encoded = out_schema.encode_row(&states)?;
            let mut out =
                FlatTable::from_encoded_rows(&mut self.host, key, out_schema, &[encoded], 1)?;
            out.set_num_rows(1);
            return Ok(out);
        }

        // Plain selection.
        let mut input = self.materialize_input(idx, &pred, plan)?;
        let out = match &mut input {
            InputRef::Owned(t) => {
                // Index already materialized the range; apply the full
                // predicate over T′ (paper §4.1, Selection over Indexes).
                self.owned_select_stage(t, &pred, plan)?
            }
            InputRef::Stored(i) => {
                let i = *i;
                self.stored_select_stage(i, &pred, plan)?
            }
        };
        input.free(self);
        Ok(out)
    }

    /// Runs the planned select over a stored flat table.
    fn stored_select_stage(
        &mut self,
        idx: usize,
        pred: &Predicate,
        plan: &mut PlanInfo,
    ) -> Result<FlatTable, DbError> {
        let key = self.next_key();
        let rng = self.rng.fork();
        let (_, storage) = &mut self.tables[idx];
        let f = storage.flat_mut().expect("stored input is flat");
        run_planned_select(&mut self.host, &self.om, f, pred, key, rng, &self.config, plan)
    }

    /// Runs the planned select over an owned intermediate.
    fn owned_select_stage(
        &mut self,
        t: &mut FlatTable,
        pred: &Predicate,
        plan: &mut PlanInfo,
    ) -> Result<FlatTable, DbError> {
        let key = self.next_key();
        let rng = self.rng.fork();
        run_planned_select(&mut self.host, &self.om, t, pred, key, rng, &self.config, plan)
    }

    fn run_select_stage(
        &mut self,
        mut input: FlatTable,
        pred: &Predicate,
        plan: &mut PlanInfo,
    ) -> Result<FlatTable, DbError> {
        let out = self.owned_select_stage(&mut input, pred, plan)?;
        input.free(&mut self.host);
        plan.intermediate_rows.push(out.num_rows());
        Ok(out)
    }

    /// Picks the physical access path for a base table: the index (when
    /// the predicate maps to a range on the indexed column and the index
    /// is cheaper) or the flat representation.
    fn materialize_input(
        &mut self,
        idx: usize,
        pred: &Predicate,
        plan: &mut PlanInfo,
    ) -> Result<InputRef, DbError> {
        let has_flat =
            matches!(&self.tables[idx].1, TableStorage::Flat(_) | TableStorage::Both { .. });
        let has_index =
            matches!(&self.tables[idx].1, TableStorage::Indexed(_) | TableStorage::Both { .. });

        let index_range = pred.index_range().filter(|(col, lo, hi)| {
            let key_col = match &self.tables[idx].1 {
                TableStorage::Indexed(i) => i.key_col(),
                TableStorage::Both { indexed, .. } => indexed.key_col(),
                TableStorage::Flat(_) => return false,
            };
            *col == key_col
                && !(matches!(lo, crate::predicate::Bound::Unbounded)
                    && matches!(hi, crate::predicate::Bound::Unbounded))
        });

        if let Some((_, lo, hi)) =
            index_range.filter(|_| has_index && self.config.padding.is_none())
        {
            // Probe the index with a capped range walk. The cap is the
            // match count beyond which a flat scan is cheaper: an index
            // chain read costs ≈ 2·(path length) bucket accesses of 4-slot
            // blocks versus ~2 row accesses per flat-scanned row. Both the
            // cap and the abort decision are functions of public sizes, so
            // the probe leaks nothing beyond the final plan choice (§5).
            let cap = if has_flat {
                let n = self.tables[idx].1.num_rows();
                let height = match &self.tables[idx].1 {
                    TableStorage::Both { indexed, .. } => indexed.height() as u64,
                    _ => 1,
                };
                let oram_factor = 8 * (height + 2);
                (2 * n.max(1)) / oram_factor.max(1)
            } else {
                u64::MAX
            };
            let key = self.next_key();
            let (_, storage) = &mut self.tables[idx];
            let index = storage.indexed_mut().expect("has index");
            if let Some(t) = index.range_to_flat_capped(&mut self.host, key, &lo, &hi, cap)? {
                plan.used_index = true;
                plan.intermediate_rows.push(t.num_rows());
                return Ok(InputRef::Owned(t));
            }
        }

        if has_flat {
            return Ok(InputRef::Stored(idx));
        }

        // Indexed-only table without a usable range: materialize the full
        // range through the index (chain scan).
        let key = self.next_key();
        let (_, storage) = &mut self.tables[idx];
        let index = storage.indexed_mut().expect("indexed-only");
        let t = index.range_to_flat(
            &mut self.host,
            key,
            &crate::predicate::Bound::Unbounded,
            &crate::predicate::Bound::Unbounded,
        )?;
        plan.used_index = true;
        plan.intermediate_rows.push(t.num_rows());
        Ok(InputRef::Owned(t))
    }

    /// Join stage with single-table predicate push-down.
    fn run_join(
        &mut self,
        s: &sql::Select,
        join: &sql::JoinClause,
        plan: &mut PlanInfo,
    ) -> Result<(FlatTable, bool), DbError> {
        // Adaptive join choice consumes num_rows, which is payload-derived
        // after a pushed-down filter — refuse loudly on payload-free
        // substrates unless the operator is pinned, mirroring the select
        // and GROUP BY guards.
        if !self.host.retains_payloads() && self.config.planner.force_join.is_none() {
            return Err(DbError::Unsupported(
                "joins on a payload-free EnclaveMemory substrate require a pinned \
                 operator: set planner.force_join"
                    .into(),
            ));
        }
        let li = self.table_index(&s.table)?;
        let ri = self.table_index(&join.table)?;
        let ls = self.tables[li].1.schema().clone();
        let rs = self.tables[ri].1.schema().clone();
        let lc = ls.col(&join.left_col)?;
        let rc = rs.col(&join.right_col)?;

        // Push the WHERE down to whichever single side it resolves on.
        let mut pushed = false;
        let (left_pred, right_pred) = match &s.where_clause {
            Some(w) => {
                if let Ok(p) = w.resolve(&ls) {
                    pushed = true;
                    (Some(p), None)
                } else if let Ok(p) = w.resolve(&rs) {
                    pushed = true;
                    (None, Some(p))
                } else {
                    (None, None)
                }
            }
            None => (None, None),
        };
        plan.fused_aggregate = false;

        let mut left = self.join_input(li, left_pred.as_ref(), plan)?;
        let mut right = self.join_input(ri, right_pred.as_ref(), plan)?;

        let n1 = left.num_rows();
        let n2 = right.num_rows();
        let union_row = 18 + left.row_len().max(right.row_len());
        let algo =
            planner::choose_join(n1, n2, left.row_len(), union_row, &self.om, &self.config.planner);
        plan.join_algo = Some(algo);

        let key = self.next_key();
        let out = match algo {
            JoinAlgo::Hash => {
                exec::hash_join(&mut self.host, &self.om, &mut left, lc, &mut right, rc, key)?
            }
            JoinAlgo::Opaque => exec::sort_merge_join(
                &mut self.host,
                &self.om,
                &mut left,
                lc,
                &mut right,
                rc,
                key,
                SortMergeVariant::Opaque,
            )?,
            JoinAlgo::ZeroOm => exec::sort_merge_join(
                &mut self.host,
                &self.om,
                &mut left,
                lc,
                &mut right,
                rc,
                key,
                SortMergeVariant::ZeroOm { scratch_rows: self.config.zero_om_scratch_rows },
            )?,
        };
        left.free(&mut self.host);
        right.free(&mut self.host);
        plan.intermediate_rows.push(out.num_rows());

        // Rename output columns with the real table names so WHERE/GROUP BY
        // can reference them.
        let mut out = out;
        let renamed = ls.join(&s.table, &rs, &join.table);
        out.rename_columns(renamed);

        Ok((out, pushed))
    }

    /// Materializes one join input as an owned filtered copy (push-down) or
    /// a plain copy of the stored flat table.
    fn join_input(
        &mut self,
        idx: usize,
        pred: Option<&Predicate>,
        plan: &mut PlanInfo,
    ) -> Result<FlatTable, DbError> {
        match pred {
            Some(p) => {
                let mut input = self.materialize_input(idx, p, plan)?;
                let out = match &mut input {
                    InputRef::Owned(t) => self.owned_select_stage(t, p, plan)?,
                    InputRef::Stored(i) => {
                        let i = *i;
                        self.stored_select_stage(i, p, plan)?
                    }
                };
                input.free(self);
                plan.intermediate_rows.push(out.num_rows());
                Ok(out)
            }
            None => {
                // Copy the stored table (join operators consume flat
                // inputs; a copy is one oblivious pass).
                let key = self.next_key();
                let mut input = self.materialize_input(idx, &Predicate::True, plan)?;
                let out = match &mut input {
                    InputRef::Owned(_) => {
                        // Already an owned materialization — take it.
                        match std::mem::replace(&mut input, InputRef::Stored(usize::MAX)) {
                            InputRef::Owned(t) => t,
                            InputRef::Stored(_) => unreachable!(),
                        }
                    }
                    InputRef::Stored(i) => {
                        let (_, storage) = &mut self.tables[*i];
                        let f = storage.flat_mut().expect("stored input is flat");
                        copy_flat(&mut self.host, f, key)?
                    }
                };
                Ok(out)
            }
        }
    }

    fn finish_aggregates(
        &mut self,
        mut current: FlatTable,
        agg_items: &[(AggFunc, Option<String>)],
        pred: &Predicate,
        mut plan: PlanInfo,
    ) -> Result<QueryOutput, DbError> {
        let schema = current.schema().clone();
        let mut values = Vec::new();
        for (func, col_name) in agg_items {
            let col = col_name.as_ref().map(|c| schema.col(c)).transpose()?;
            values.push(exec::aggregate(&mut self.host, &mut current, *func, col, pred)?);
        }
        current.free(&mut self.host);
        let out_schema = Schema::new(
            agg_items
                .iter()
                .zip(&values)
                .map(|((func, col), v)| Column::new(agg_name(*func, col.as_deref()), value_type(v)))
                .collect(),
        );
        plan.fused_aggregate = true;
        plan.output_rows = 1;
        Ok(QueryOutput { schema: out_schema, rows: vec![values], plan })
    }
}

/// Either a stored base table or an owned intermediate.
enum InputRef {
    Stored(usize),
    Owned(FlatTable),
}

impl InputRef {
    fn free<M: EnclaveMemory>(self, db: &mut Database<M>) {
        if let InputRef::Owned(t) = self {
            t.free(&mut db.host);
        }
    }
}

/// Runs the planner and the chosen select algorithm over a flat input
/// (paper §4.1 + §5). In padding mode the planner is skipped: the Hash
/// operator runs with the configured padded output size (§2.3).
#[allow(clippy::too_many_arguments)]
fn run_planned_select<M: EnclaveMemory>(
    host: &mut M,
    om: &OmBudget,
    input: &mut FlatTable,
    pred: &Predicate,
    out_key: AeadKey,
    rng: EnclaveRng,
    config: &DbConfig,
    plan: &mut PlanInfo,
) -> Result<FlatTable, DbError> {
    if let Some(pad) = &config.padding {
        plan.select_algo = Some(SelectAlgo::Padded);
        let out = exec::select::select_padded(host, om, input, pred, out_key, pad.pad_rows)?;
        return Ok(out);
    }

    // Every remaining plan except the forced Large algorithm shapes its
    // trace from scan statistics, and statistics live in payloads. On a
    // payload-free substrate (cost modeling) those stats read as zero, so
    // planning would silently diverge from the real engine — refuse loudly
    // instead, mirroring `require_payloads` for indexed storage.
    if !host.retains_payloads() && config.planner.force_select != Some(SelectAlgo::Large) {
        return Err(DbError::Unsupported(
            "payload-free EnclaveMemory substrates need a size-oblivious plan: \
             set padding mode or force_select = Some(SelectAlgo::Large)"
                .into(),
        ));
    }

    let stats: SelectStats = planner::scan_stats(host, input, pred)?;
    let algo =
        planner::choose_select(stats, input.num_rows(), input.row_len(), om, &config.planner);
    plan.select_algo = Some(algo);
    let out = match algo {
        SelectAlgo::Small => exec::select_small(host, om, input, pred, out_key, stats.matches)?,
        SelectAlgo::Large => exec::select_large(host, input, pred, out_key)?,
        SelectAlgo::Continuous => {
            exec::select_continuous(host, input, pred, out_key, stats.matches)?
        }
        SelectAlgo::Hash => exec::select_hash(host, input, pred, out_key, stats.matches)?,
        SelectAlgo::Naive => {
            exec::select_naive(host, om, input, pred, out_key, stats.matches, rng)?
        }
        SelectAlgo::Padded => {
            // Only reachable via force_select; pad to the match count.
            exec::select::select_padded(host, om, input, pred, out_key, stats.matches)?
        }
    };
    Ok(out)
}

/// One oblivious copy pass.
fn copy_flat<M: EnclaveMemory>(
    host: &mut M,
    input: &mut FlatTable,
    key: AeadKey,
) -> Result<FlatTable, DbError> {
    let mut out = FlatTable::create(host, key, input.schema().clone(), input.capacity())?;
    let chunk = input.io_chunk_rows();
    let cap = input.capacity();
    let mut start = 0u64;
    while start < cap {
        let n = chunk.min((cap - start) as usize);
        let bytes = input.read_rows(host, start, n)?;
        out.write_rows(host, start, bytes)?;
        start += n as u64;
    }
    out.set_num_rows(input.num_rows());
    out.set_insert_cursor(input.capacity());
    Ok(out)
}

fn split_projection(p: &Projection) -> (Vec<(AggFunc, Option<String>)>, Vec<String>) {
    let mut aggs = Vec::new();
    let mut cols = Vec::new();
    if let Projection::Items(items) = p {
        for item in items {
            match item {
                SelectItem::Aggregate { func, col } => aggs.push((*func, col.clone())),
                SelectItem::Column(c) => cols.push(c.clone()),
            }
        }
    }
    (aggs, cols)
}

fn single_agg(aggs: &[(AggFunc, Option<String>)]) -> Result<(AggFunc, Option<String>), DbError> {
    match aggs {
        [one] => Ok(one.clone()),
        [] => Err(DbError::Unsupported("GROUP BY requires exactly one aggregate".into())),
        _ => Err(DbError::Unsupported("GROUP BY supports exactly one aggregate per query".into())),
    }
}

fn agg_name(func: AggFunc, col: Option<&str>) -> String {
    let f = match func {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::Avg => "avg",
    };
    match col {
        Some(c) => format!("{f}({c})"),
        None => format!("{f}(*)"),
    }
}

fn value_type(v: &Value) -> crate::types::DataType {
    match v {
        Value::Int(_) => crate::types::DataType::Int,
        Value::Float(_) => crate::types::DataType::Float,
        Value::Text(s) => crate::types::DataType::Text(s.len().max(1)),
    }
}

/// Applies the final column projection to decoded rows.
fn project(
    schema: Schema,
    rows: Vec<Row>,
    col_items: &[String],
    agg_items: &[(AggFunc, Option<String>)],
    s: &sql::Select,
) -> Result<(Schema, Vec<Row>), DbError> {
    // Star, pure aggregates, or group-by outputs pass through unchanged.
    if matches!(s.projection, Projection::Star) || col_items.is_empty() || s.group_by.is_some() {
        let _ = agg_items;
        return Ok((schema, rows));
    }
    let indices: Vec<usize> = col_items.iter().map(|c| schema.col(c)).collect::<Result<_, _>>()?;
    let out_schema = Schema::new(indices.iter().map(|&i| schema.columns[i].clone()).collect());
    let out_rows =
        rows.into_iter().map(|r| indices.iter().map(|&i| r[i].clone()).collect()).collect();
    Ok((out_schema, out_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn db() -> Database {
        Database::new(DbConfig::default())
    }

    fn setup_people(db: &mut Database, method: StorageMethod) {
        let storage = match method {
            StorageMethod::Flat => "STORAGE = FLAT",
            StorageMethod::Indexed => "STORAGE = INDEXED INDEX ON id",
            StorageMethod::Both => "STORAGE = BOTH INDEX ON id",
        };
        db.execute(&format!(
            "CREATE TABLE people (id INT, age INT, name CHAR(12)) {storage} CAPACITY 64"
        ))
        .unwrap();
        for i in 0..20i64 {
            db.execute(&format!("INSERT INTO people VALUES ({i}, {}, 'p{}')", 20 + i, i)).unwrap();
        }
    }

    #[test]
    fn create_insert_select_flat() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db.execute("SELECT * FROM people WHERE id = 7").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][1], Value::Int(27));
        assert_eq!(out.rows()[0][2], Value::Text("p7".into()));
    }

    #[test]
    fn select_projection() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db.execute("SELECT name, age FROM people WHERE id < 3").unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema.columns[0].name, "name");
        assert_eq!(out.rows()[0], vec![Value::Text("p0".into()), Value::Int(20)]);
    }

    #[test]
    fn select_via_index() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Indexed);
        let out = db.execute("SELECT * FROM people WHERE id = 13").unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.plan.used_index);
        assert_eq!(out.rows()[0][0], Value::Int(13));
    }

    #[test]
    fn range_query_on_index() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Indexed);
        let out = db.execute("SELECT * FROM people WHERE id >= 5 AND id < 9").unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.plan.used_index);
    }

    #[test]
    fn both_storage_picks_index_for_point_flat_for_big() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Both);
        let point = db.execute("SELECT * FROM people WHERE id = 3").unwrap();
        assert!(point.plan.used_index, "point query should use the index");
        let big = db.execute("SELECT * FROM people WHERE id >= 0").unwrap();
        assert!(!big.plan.used_index, "full-range query should scan flat");
        assert_eq!(big.len(), 20);
    }

    #[test]
    fn aggregates_fused() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db
            .execute(
                "SELECT COUNT(*), SUM(age), MIN(age), MAX(age), AVG(age) FROM people WHERE id < 10",
            )
            .unwrap();
        assert!(out.plan.fused_aggregate);
        assert_eq!(out.rows()[0][0], Value::Int(10));
        assert_eq!(out.rows()[0][1], Value::Int(245));
        assert_eq!(out.rows()[0][2], Value::Int(20));
        assert_eq!(out.rows()[0][3], Value::Int(29));
        assert_eq!(out.rows()[0][4], Value::Float(24.5));
    }

    #[test]
    fn group_by_with_where() {
        let mut db = db();
        db.execute("CREATE TABLE sales (region INT, amount INT)").unwrap();
        for (r, a) in [(1, 10), (1, 20), (2, 5), (2, 5), (3, 100), (1, -1)] {
            db.execute(&format!("INSERT INTO sales VALUES ({r}, {a})")).unwrap();
        }
        let out = db
            .execute("SELECT region, SUM(amount) FROM sales WHERE amount > 0 GROUP BY region")
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows()[0], vec![Value::Int(1), Value::Int(30)]);
        assert_eq!(out.rows()[1], vec![Value::Int(2), Value::Int(10)]);
        assert_eq!(out.rows()[2], vec![Value::Int(3), Value::Int(100)]);
    }

    #[test]
    fn update_and_delete_sql() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db.execute("UPDATE people SET age = 99 WHERE id >= 15").unwrap();
        assert_eq!(out.plan.output_rows, 5);
        let check = db.execute("SELECT * FROM people WHERE age = 99").unwrap();
        assert_eq!(check.len(), 5);
        let out = db.execute("DELETE FROM people WHERE age = 99").unwrap();
        assert_eq!(out.plan.output_rows, 5);
        assert_eq!(db.table_rows("people").unwrap(), 15);
    }

    #[test]
    fn update_delete_on_both_storage_stays_consistent() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Both);
        db.execute("UPDATE people SET age = 0 WHERE id < 5").unwrap();
        db.execute("DELETE FROM people WHERE id >= 15").unwrap();
        // Query via index...
        let via_index = db.execute("SELECT * FROM people WHERE id = 2").unwrap();
        assert_eq!(via_index.rows()[0][1], Value::Int(0));
        // ...and via flat scan agree.
        let via_flat = db.execute("SELECT * FROM people WHERE age = 0").unwrap();
        assert_eq!(via_flat.len(), 5);
        assert_eq!(db.table_rows("people").unwrap(), 15);
        let gone = db.execute("SELECT * FROM people WHERE id = 16").unwrap();
        assert!(gone.is_empty());
    }

    #[test]
    fn join_two_tables() {
        let mut db = db();
        db.execute("CREATE TABLE dept (did INT, dname CHAR(8))").unwrap();
        db.execute("CREATE TABLE emp (eid INT, did INT)").unwrap();
        for d in 0..4 {
            db.execute(&format!("INSERT INTO dept VALUES ({d}, 'd{d}')")).unwrap();
        }
        for e in 0..12 {
            db.execute(&format!("INSERT INTO emp VALUES ({e}, {})", e % 3)).unwrap();
        }
        let out = db.execute("SELECT * FROM dept JOIN emp ON dept.did = emp.did").unwrap();
        assert_eq!(out.len(), 12);
        assert!(out.plan.join_algo.is_some());
    }

    #[test]
    fn join_with_where_pushdown_and_group() {
        let mut db = db();
        db.execute("CREATE TABLE r (url INT, rank INT)").unwrap();
        db.execute("CREATE TABLE v (dest INT, rev INT, day INT)").unwrap();
        for u in 0..8 {
            db.execute(&format!("INSERT INTO r VALUES ({u}, {})", u * 10)).unwrap();
        }
        for i in 0..24 {
            db.execute(&format!("INSERT INTO v VALUES ({}, {}, {})", i % 8, i, i % 4)).unwrap();
        }
        // Push-down filter on v only.
        let out = db.execute("SELECT * FROM r JOIN v ON r.url = v.dest WHERE day = 1").unwrap();
        assert_eq!(out.len(), 6);
        // Grouped aggregation over a join: matching dests are {1, 5}, so
        // two rank groups with revenue sums 1+9+17 and 5+13+21.
        let out = db
            .execute("SELECT r.rank, SUM(rev) FROM r JOIN v ON r.url = v.dest WHERE day = 1 GROUP BY r.rank")
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], vec![Value::Int(10), Value::Int(27)]);
        assert_eq!(out.rows()[1], vec![Value::Int(50), Value::Int(39)]);
    }

    #[test]
    fn padding_mode_hides_result_sizes() {
        // Two selections of very different selectivity must produce
        // identical traces under padding mode (fresh engine per query so
        // region numbering matches; numbering is itself size-determined).
        let run = |query: &str, expect: usize| {
            let mut db = Database::new(DbConfig {
                padding: Some(crate::padding::PaddingConfig::uniform(32)),
                ..DbConfig::default()
            });
            db.execute("CREATE TABLE t (id INT, v INT) CAPACITY 64").unwrap();
            for i in 0..20 {
                db.execute(&format!("INSERT INTO t VALUES ({i}, {i})")).unwrap();
            }
            db.start_trace();
            let out = db.execute(query).unwrap();
            assert_eq!(out.len(), expect);
            assert_eq!(out.plan.select_algo, Some(SelectAlgo::Padded));
            db.take_trace()
        };
        let ta = run("SELECT * FROM t WHERE id = 3", 1);
        let tb = run("SELECT * FROM t WHERE id < 15", 15);
        assert_eq!(ta, tb);
    }

    #[test]
    fn select_traces_identical_for_same_sizes() {
        // The engine-level obliviousness check: same table size, same
        // output size, different query parameters → identical traces.
        let make = |lo: i64| {
            let mut db = db();
            setup_people(&mut db, StorageMethod::Flat);
            db.config_mut().planner.enable_continuous = false;
            db.start_trace();
            let out = db
                .execute(&format!("SELECT * FROM people WHERE id >= {lo} AND id < {}", lo + 4))
                .unwrap();
            assert_eq!(out.len(), 4);
            db.take_trace()
        };
        assert_eq!(make(0), make(13));
    }

    #[test]
    fn flat_table_autogrows() {
        let mut db = db();
        db.execute("CREATE TABLE t (x INT) CAPACITY 2").unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        assert_eq!(db.table_rows("t").unwrap(), 10);
        let out = db.execute("SELECT * FROM t WHERE x >= 0").unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn oblivious_insert_mode() {
        let mut db = Database::new(DbConfig { fast_inserts: false, ..DbConfig::default() });
        db.execute("CREATE TABLE t (x INT) CAPACITY 8").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute("INSERT INTO t VALUES (2)").unwrap();
        let out = db.execute("SELECT * FROM t WHERE x > 0").unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn errors_surface() {
        let mut db = db();
        assert!(matches!(db.execute("SELECT * FROM nope"), Err(DbError::NoSuchTable(_))));
        db.execute("CREATE TABLE t (x INT)").unwrap();
        assert!(matches!(
            db.execute("SELECT * FROM t WHERE missing = 1"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(db.execute("CREATE TABLE t (y INT)"), Err(DbError::TableExists(_))));
        assert!(matches!(
            db.execute("INSERT INTO t VALUES ('wrong')"),
            Err(DbError::TypeMismatch(_))
        ));
        assert!(matches!(
            db.create_table(
                "u",
                Schema::new(vec![Column::new("x", DataType::Int)]),
                StorageMethod::Indexed,
                None,
                8
            ),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn bulk_load_constructor() {
        let mut db = db();
        let schema =
            Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)]);
        let rows: Vec<Vec<Value>> =
            (0..100i64).map(|i| vec![Value::Int(i), Value::Int(i * 2)]).collect();
        db.create_table_with_rows("bulk", schema, StorageMethod::Both, Some("id"), &rows, 200)
            .unwrap();
        assert_eq!(db.table_rows("bulk").unwrap(), 100);
        let out = db.execute("SELECT * FROM bulk WHERE id = 42").unwrap();
        assert_eq!(out.rows()[0][1], Value::Int(84));
        assert!(out.plan.used_index);
    }

    #[test]
    fn forced_operators() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        for algo in [SelectAlgo::Small, SelectAlgo::Large, SelectAlgo::Hash, SelectAlgo::Naive] {
            db.config_mut().planner.force_select = Some(algo);
            let out = db.execute("SELECT * FROM people WHERE id < 6").unwrap();
            assert_eq!(out.plan.select_algo, Some(algo));
            assert_eq!(out.len(), 6, "{algo:?}");
        }
    }

    #[test]
    fn order_by_and_limit() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db
            .execute("SELECT id, age FROM people WHERE id < 10 ORDER BY age DESC LIMIT 3")
            .unwrap();
        assert_eq!(out.len(), 3);
        let ages: Vec<i64> = out.rows().iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(ages, vec![29, 28, 27]);
    }

    #[test]
    fn empty_result_queries() {
        let mut db = db();
        setup_people(&mut db, StorageMethod::Flat);
        let out = db.execute("SELECT * FROM people WHERE id > 1000").unwrap();
        assert!(out.is_empty());
        let agg = db.execute("SELECT COUNT(*) FROM people WHERE id > 1000").unwrap();
        assert_eq!(agg.rows()[0][0], Value::Int(0));
    }
}

#[cfg(test)]
mod wal_tests {
    use super::*;

    #[test]
    fn wal_logs_mutations_and_replays() {
        let mut db = Database::new(DbConfig {
            wal: Some(crate::wal::WalConfig::default()),
            ..DbConfig::default()
        });
        db.execute("CREATE TABLE t (k INT, v INT) CAPACITY 32").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        db.execute("INSERT INTO t VALUES (2, 20)").unwrap();
        db.execute("UPDATE t SET v = 99 WHERE k = 1").unwrap();
        db.execute("DELETE FROM t WHERE k = 2").unwrap();
        // Reads are not logged.
        db.execute("SELECT * FROM t").unwrap();

        let log = db.wal_records().unwrap();
        assert_eq!(log.len(), 4);
        assert!(log[0].starts_with("INSERT"));
        assert!(log[3].starts_with("DELETE"));

        // Redo into a fresh engine (schema re-issued, as from a checkpoint).
        let mut recovered = Database::new(DbConfig::default());
        recovered.execute("CREATE TABLE t (k INT, v INT) CAPACITY 32").unwrap();
        recovered.replay(&log).unwrap();
        let a = db.execute("SELECT * FROM t ORDER BY k").unwrap();
        let b = recovered.execute("SELECT * FROM t ORDER BY k").unwrap();
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn wal_appends_do_not_change_mutation_obliviousness() {
        // With WAL on, two equal-shape mutations still produce identical
        // traces (the log write is one extra fixed event).
        let run = |key: i64| {
            let mut db = Database::new(DbConfig {
                wal: Some(crate::wal::WalConfig::default()),
                ..DbConfig::default()
            });
            db.execute("CREATE TABLE t (k INT) CAPACITY 16").unwrap();
            for i in 0..16 {
                db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            }
            db.start_trace();
            db.execute(&format!("DELETE FROM t WHERE k = {key}")).unwrap();
            db.take_trace()
        };
        assert_eq!(run(0), run(15));
    }

    #[test]
    fn checkpoint_is_a_noop_on_host() {
        // In-memory substrates have nothing to flush; the checkpoint path
        // must still exist (and add no observable accesses).
        let mut db = Database::new(DbConfig {
            wal: Some(crate::wal::WalConfig::default()),
            ..DbConfig::default()
        });
        db.execute("CREATE TABLE t (k INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.start_trace();
        db.checkpoint().unwrap();
        assert!(db.take_trace().is_empty(), "host checkpoint adds no accesses");
        let mut plain = Database::new(DbConfig::default());
        plain.checkpoint().unwrap();
    }

    #[test]
    fn wal_off_means_no_log() {
        let mut db = Database::new(DbConfig::default());
        db.execute("CREATE TABLE t (k INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        assert!(db.wal_records().unwrap().is_empty());
    }
}
