//! Database persistence: the sealed manifest that lets a `Database` over a
//! durable substrate survive an enclave restart.
//!
//! [`Database::persist_to`] checkpoints the engine into a directory: it
//! flushes the substrate ([`EnclaveMemory::sync`]) and writes
//! [`DB_MANIFEST_FILE`] — one encrypted + MACed blob, sealed under a key
//! derived from the enclave identity (here: the deterministic master key
//! the RNG seed produces, modeling SGX's sealing-key derivation), that
//! wraps the whole catalog: table names, schemas, row counters, region
//! ids, region keys, and each region's [`SealedRegion::seal_manifest`]
//! snapshot of its in-enclave revision counters and nonce counter.
//!
//! [`Database::open_with_memory`] reverses it over a substrate reopened
//! with `DiskMemory::open`-style re-attachment. Verification is layered:
//!
//! 1. the manifest blob must authenticate (wrong seed, tampering, or
//!    truncation → [`DbError::ManifestRejected`]);
//! 2. every region's observed geometry must match the manifest
//!    (swapped/resized files → [`DbError::ManifestRejected`]);
//! 3. block contents authenticate lazily against the reopened revision
//!    counters on first read (bit flips, block shuffling, and — the case
//!    the manifest exists for — *rollback* of a region file to an older
//!    version all surface as `StorageError::TamperDetected`).
//!
//! Crash consistency: when the database runs with a WAL whose appends are
//! durable ([`crate::wal::WalConfig::durable_appends`]), the log on disk
//! may extend past the last checkpoint. `open_with_memory` detects that
//! (the log itself is scanned with [`crate::wal::Wal::recover_records`],
//! which trusts only the log key) and returns
//! [`Reopened::NeedsRecovery`] with every
//! durable statement; [`Database::restore`] replays them into a fresh
//! engine. Rolling back manifest *and* region files together to an older
//! mutually-consistent checkpoint, or truncating the WAL tail, is
//! undetectable without a hardware monotonic counter — the standard
//! sealed-storage bound, inherited here and documented in the README.

use super::*;
use oblidb_storage::{SealedRegion, SEAL_OVERHEAD};
use std::io::Write as _;
use std::path::Path;

/// File name of the sealed database manifest inside a persistence
/// directory.
pub const DB_MANIFEST_FILE: &str = "oblidb.manifest";

/// File name of the sealed recovery journal: the durable statement log a
/// crash recovery extracts from the old store *before* wiping it, so a
/// second crash mid-rebuild loses nothing. Deleted by the `persist_to`
/// that completes the rebuild.
pub const RECOVERY_JOURNAL_FILE: &str = "oblidb.recovery";

const MANIFEST_MAGIC: &[u8; 8] = b"OBLIDBDB";
const MANIFEST_VERSION: u32 = 1;
const MANIFEST_AAD: &[u8] = b"oblidb-db-manifest-v1";
const JOURNAL_AAD: &[u8] = b"oblidb-recovery-journal-v1";

/// A fresh 96-bit nonce for manifest-scale sealing, from OS randomness.
///
/// Block nonces come from a persisted counter; the manifest cannot — a
/// crash-recovery rebuild resets the seed-derived RNG to a replayed
/// state, so any deterministic source would repeat a nonce under the
/// same sealing key. Checkpoints are rare, so `/dev/urandom` is the
/// right source; if it is unavailable the fallback hashes the RNG
/// stream with the wall clock and PID, which cannot replay across
/// incarnations.
fn fresh_nonce(rng: &mut EnclaveRng) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    fill_entropy(&mut nonce, rng);
    nonce
}

/// Fills `buf` (≤ 32 bytes) with per-incarnation entropy: `/dev/urandom`,
/// or the hashed (RNG stream ‖ wall clock ‖ PID) fallback.
fn fill_entropy(buf: &mut [u8], rng: &mut EnclaveRng) {
    let urandom = (|| -> std::io::Result<()> {
        use std::io::Read as _;
        std::fs::File::open("/dev/urandom")?.read_exact(buf)
    })();
    if urandom.is_err() {
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        let mut material = seed.to_vec();
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        material.extend_from_slice(&now.to_le_bytes());
        material.extend_from_slice(&std::process::id().to_le_bytes());
        let digest = oblidb_crypto::sha256(&material);
        buf.copy_from_slice(&digest[..buf.len()]);
    }
}

/// A per-incarnation key epoch, folded into every derived region key so
/// two engine incarnations (in particular a crash rebuild replaying only
/// the WAL-logged prefix of the original history) can never reuse a
/// (key, region id, nonce counter) triple for different plaintexts.
pub(super) fn fresh_key_epoch(rng: &mut EnclaveRng) -> [u8; 16] {
    let mut epoch = [0u8; 16];
    fill_entropy(&mut epoch, rng);
    epoch
}

/// The seed → (RNG, master key) derivation every surface shares: the
/// simulation's stand-in for SGX's enclave-identity-bound sealing key.
pub(super) fn derive_identity(seed: u64) -> (EnclaveRng, [u8; 32]) {
    let mut rng = EnclaveRng::seed_from_u64(seed);
    let mut master_key = [0u8; 32];
    rng.fill(&mut master_key);
    (rng, master_key)
}

/// Fsyncs a directory so a just-renamed file inside it survives power
/// loss (the rename itself is only durable once the directory entry is).
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Writes `blob` to `dir/name` atomically (temp + rename + dir fsync).
fn write_atomically(dir: &Path, name: &str, blob: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(format!(".{name}.tmp"));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(blob)?;
    f.sync_data()?;
    std::fs::rename(&tmp, dir.join(name))?;
    sync_dir(dir)
}

/// What reopening a persisted database found.
///
/// (The variant size difference is fine: this value is matched and
/// consumed immediately, never stored.)
#[allow(clippy::large_enum_variant)]
pub enum Reopened<M: EnclaveMemory> {
    /// The store matches its manifest (clean shutdown): a ready database.
    Clean(Database<M>),
    /// The durable WAL extends past the manifest — the engine crashed (or
    /// was dropped) after its last checkpoint. The store's data regions
    /// cannot be trusted beyond the checkpoint; rebuild with
    /// [`Database::restore`] over a fresh substrate.
    NeedsRecovery(RecoveryPlan),
}

/// Where the authoritative durable history lives when a journal outlasts
/// a rebuilt-but-unpersistable store (see
/// [`Database::journal_live_wal`]): the rebuilt engine's own WAL.
#[derive(Clone)]
pub(crate) struct WalPointer {
    pub(crate) region: oblidb_enclave::RegionId,
    pub(crate) key: AeadKey,
    pub(crate) block_bytes: usize,
}

impl std::fmt::Debug for WalPointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalPointer")
            .field("region", &self.region)
            .field("block_bytes", &self.block_bytes)
            .field("key", &"<redacted>")
            .finish()
    }
}

/// Everything crash recovery needs, extracted from the old store before
/// it is discarded: the durable statement log, oldest first.
#[derive(Debug, Clone)]
pub struct RecoveryPlan {
    /// Every durable WAL record (CREATE TABLE and mutations), in append
    /// order — the history as of the moment the journal was written.
    pub statements: Vec<String>,
    /// When set, the pointed WAL holds the authoritative (possibly
    /// longer) history; `statements` is the fallback if it is
    /// unreachable. Resolve with [`resolve_recovery_statements`].
    pub(crate) wal_pointer: Option<WalPointer>,
}

/// What [`Database::restore`] did.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Statements replayed successfully.
    pub replayed: usize,
    /// Statements that failed during replay, with their errors. A
    /// statement that failed during the original run (it was logged
    /// *before* executing) fails here identically and changes nothing;
    /// anything else in this list deserves operator attention.
    pub skipped: Vec<(String, DbError)>,
    /// Wall time the replay took.
    pub duration: std::time::Duration,
    /// Host traffic the replay generated (reads, writes, bytes, crossings,
    /// stall) — the recovery cost in the same currency as
    /// [`oblidb_enclave::StatsReport`].
    pub replay_stats: oblidb_enclave::HostStats,
}

struct TableRecord {
    name: String,
    schema: Schema,
    num_rows: u64,
    insert_cursor: u64,
    region: oblidb_enclave::RegionId,
    key: AeadKey,
    region_manifest: Vec<u8>,
}

struct WalRecord {
    region: oblidb_enclave::RegionId,
    key: AeadKey,
    block_bytes: u64,
    len: u64,
    base_lsn: u64,
    durable: bool,
    region_manifest: Vec<u8>,
}

struct DbManifest {
    key_counter: u64,
    version: u64,
    wal: Option<WalRecord>,
    tables: Vec<TableRecord>,
}

// ---- plaintext codec ------------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u64).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    out.extend_from_slice(&(schema.columns.len() as u64).to_le_bytes());
    for col in &schema.columns {
        put_bytes(out, col.name.as_bytes());
        let (tag, width) = match col.dtype {
            DataType::Int => (0u8, 0u64),
            DataType::Float => (1, 0),
            DataType::Text(n) => (2, n as u64),
        };
        out.push(tag);
        out.extend_from_slice(&width.to_le_bytes());
    }
}

/// Sequential reader over the manifest plaintext; every getter fails
/// softly so truncated or fuzzed input is a typed error, never a panic.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|e| *e <= self.buf.len())
            .ok_or_else(|| DbError::ManifestRejected("truncated manifest body".into()))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, DbError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("u64")))
    }

    fn u8(&mut self) -> Result<u8, DbError> {
        Ok(self.take(1)?[0])
    }

    fn bytes(&mut self) -> Result<&'a [u8], DbError> {
        let n = self.u64()? as usize;
        self.take(n)
    }

    fn string(&mut self) -> Result<String, DbError> {
        std::str::from_utf8(self.bytes()?)
            .map(str::to_string)
            .map_err(|_| DbError::ManifestRejected("non-UTF-8 name in manifest".into()))
    }

    fn key(&mut self) -> Result<AeadKey, DbError> {
        Ok(AeadKey(self.take(32)?.try_into().expect("key length")))
    }

    fn schema(&mut self) -> Result<Schema, DbError> {
        let cols = self.u64()? as usize;
        if cols > 4096 {
            return Err(DbError::ManifestRejected("implausible column count".into()));
        }
        let mut columns = Vec::with_capacity(cols);
        for _ in 0..cols {
            let name = self.string()?;
            let tag = self.u8()?;
            let width = self.u64()? as usize;
            let dtype = match tag {
                0 => DataType::Int,
                1 => DataType::Float,
                2 => DataType::Text(width),
                _ => return Err(DbError::ManifestRejected("unknown column type tag".into())),
            };
            columns.push(Column::new(name, dtype));
        }
        Ok(Schema::new(columns))
    }
}

fn encode_manifest(m: &DbManifest) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&m.key_counter.to_le_bytes());
    out.extend_from_slice(&m.version.to_le_bytes());
    match &m.wal {
        None => out.push(0),
        Some(w) => {
            out.push(1);
            out.extend_from_slice(&w.region.0.to_le_bytes());
            out.extend_from_slice(&w.key.0);
            out.extend_from_slice(&w.block_bytes.to_le_bytes());
            out.extend_from_slice(&w.len.to_le_bytes());
            out.extend_from_slice(&w.base_lsn.to_le_bytes());
            out.push(w.durable as u8);
            put_bytes(&mut out, &w.region_manifest);
        }
    }
    out.extend_from_slice(&(m.tables.len() as u64).to_le_bytes());
    for t in &m.tables {
        put_bytes(&mut out, t.name.as_bytes());
        put_schema(&mut out, &t.schema);
        out.extend_from_slice(&t.num_rows.to_le_bytes());
        out.extend_from_slice(&t.insert_cursor.to_le_bytes());
        out.extend_from_slice(&t.region.0.to_le_bytes());
        out.extend_from_slice(&t.key.0);
        put_bytes(&mut out, &t.region_manifest);
    }
    out
}

fn decode_manifest(plain: &[u8]) -> Result<DbManifest, DbError> {
    let mut r = Reader { buf: plain, at: 0 };
    let key_counter = r.u64()?;
    let version = r.u64()?;
    let wal = match r.u8()? {
        0 => None,
        1 => {
            let region =
                oblidb_enclave::RegionId(u32::from_le_bytes(r.take(4)?.try_into().expect("u32")));
            let key = r.key()?;
            let block_bytes = r.u64()?;
            let len = r.u64()?;
            let base_lsn = r.u64()?;
            let durable = r.u8()? != 0;
            let region_manifest = r.bytes()?.to_vec();
            Some(WalRecord { region, key, block_bytes, len, base_lsn, durable, region_manifest })
        }
        _ => return Err(DbError::ManifestRejected("bad WAL flag".into())),
    };
    let count = r.u64()? as usize;
    if count > 1 << 20 {
        return Err(DbError::ManifestRejected("implausible table count".into()));
    }
    let mut tables = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.string()?;
        let schema = r.schema()?;
        let num_rows = r.u64()?;
        let insert_cursor = r.u64()?;
        let region =
            oblidb_enclave::RegionId(u32::from_le_bytes(r.take(4)?.try_into().expect("u32")));
        let key = r.key()?;
        let region_manifest = r.bytes()?.to_vec();
        tables.push(TableRecord {
            name,
            schema,
            num_rows,
            insert_cursor,
            region,
            key,
            region_manifest,
        });
    }
    if r.at != r.buf.len() {
        return Err(DbError::ManifestRejected("trailing bytes in manifest".into()));
    }
    Ok(DbManifest { key_counter, version, wal, tables })
}

// ---- sealing --------------------------------------------------------------

/// The manifest sealing key: derived from the master key, which itself is
/// a pure function of `DbConfig::seed` — the simulation's stand-in for
/// SGX's enclave-identity-bound sealing key. Reopening with a different
/// seed is a different enclave identity and is rejected.
fn manifest_key(master: &[u8; 32]) -> AeadKey {
    AeadKey(oblidb_crypto::derive_key(master, b"db-manifest"))
}

/// Frames and seals one blob (manifest or recovery journal):
/// `magic ‖ version ‖ nonce ‖ ciphertext ‖ tag`, domain-separated by
/// `aad`.
fn seal_blob(key: &AeadKey, nonce12: [u8; 12], aad: &[u8], plain: &[u8]) -> Vec<u8> {
    use oblidb_crypto::aead::{self, Nonce, NONCE_LEN};
    let nonce = Nonce(nonce12);
    let mut out = Vec::with_capacity(8 + 4 + NONCE_LEN + plain.len() + 16);
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.extend_from_slice(&nonce.0);
    let body_at = out.len();
    out.extend_from_slice(plain);
    let tag = aead::seal(key, &nonce, aad, &mut out[body_at..]);
    out.extend_from_slice(&tag);
    out
}

fn open_blob(key: &AeadKey, aad: &[u8], blob: &[u8]) -> Result<Vec<u8>, DbError> {
    use oblidb_crypto::aead::{self, Nonce, NONCE_LEN, TAG_LEN};
    let header = 8 + 4 + NONCE_LEN;
    if blob.len() < header + TAG_LEN || &blob[..8] != MANIFEST_MAGIC {
        return Err(DbError::ManifestRejected("not an ObliDB manifest".into()));
    }
    if u32::from_le_bytes(blob[8..12].try_into().expect("u32")) != MANIFEST_VERSION {
        return Err(DbError::ManifestRejected("unsupported manifest version".into()));
    }
    let nonce = Nonce(blob[12..12 + NONCE_LEN].try_into().expect("nonce"));
    let tag: [u8; TAG_LEN] = blob[blob.len() - TAG_LEN..].try_into().expect("tag");
    let mut body = blob[header..blob.len() - TAG_LEN].to_vec();
    aead::open(key, &nonce, aad, &mut body, &tag).map_err(|_| {
        DbError::ManifestRejected(
            "authentication failed — tampered manifest or wrong enclave seed".into(),
        )
    })?;
    Ok(body)
}

// ---- recovery journal -----------------------------------------------------

/// Seals and atomically writes the recovery journal: the full durable
/// statement history, preserved outside the store so wiping region files
/// for the rebuild cannot lose it.
fn write_recovery_journal(
    dir: &Path,
    master_key: &[u8; 32],
    rng: &mut EnclaveRng,
    plan: &RecoveryPlan,
) -> Result<(), DbError> {
    let mut plain = Vec::new();
    plain.extend_from_slice(&(plan.statements.len() as u64).to_le_bytes());
    for stmt in &plan.statements {
        put_bytes(&mut plain, stmt.as_bytes());
    }
    match &plan.wal_pointer {
        None => plain.push(0),
        Some(p) => {
            plain.push(1);
            plain.extend_from_slice(&p.region.0.to_le_bytes());
            plain.extend_from_slice(&p.key.0);
            plain.extend_from_slice(&(p.block_bytes as u64).to_le_bytes());
        }
    }
    let blob = seal_blob(&manifest_key(master_key), fresh_nonce(rng), JOURNAL_AAD, &plain);
    write_atomically(dir, RECOVERY_JOURNAL_FILE, &blob).map_err(|e| {
        DbError::ManifestRejected(format!(
            "cannot write recovery journal in {}: {e}",
            dir.display()
        ))
    })
}

/// Checks `dir` for a pending recovery journal — an interrupted rebuild —
/// and returns its statement history when one authenticates. Callers (the
/// facade's `database_open`) must consult this *before* trying to open the
/// substrate: a crash mid-rebuild can leave the store in any state,
/// including unopenable, while the journal still holds the full committed
/// history. A present-but-unauthentic journal is a typed error, never
/// ignored.
pub fn read_recovery_journal(
    dir: impl AsRef<Path>,
    config: &DbConfig,
) -> Result<Option<RecoveryPlan>, DbError> {
    let path = dir.as_ref().join(RECOVERY_JOURNAL_FILE);
    let blob = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(DbError::ManifestRejected(format!("cannot read {}: {e}", path.display())));
        }
    };
    let (_, master_key) = derive_identity(config.seed);
    let rejected = || DbError::ManifestRejected("recovery journal rejected".into());
    let plain =
        open_blob(&manifest_key(&master_key), JOURNAL_AAD, &blob).map_err(|_| rejected())?;
    let mut r = Reader { buf: &plain, at: 0 };
    let count = r.u64()? as usize;
    if count > 1 << 24 {
        return Err(rejected());
    }
    let mut statements = Vec::with_capacity(count);
    for _ in 0..count {
        statements.push(r.string()?);
    }
    let wal_pointer = match r.u8()? {
        0 => None,
        1 => {
            let region =
                oblidb_enclave::RegionId(u32::from_le_bytes(r.take(4)?.try_into().expect("u32")));
            let key = r.key()?;
            let block_bytes = r.u64()? as usize;
            Some(WalPointer { region, key, block_bytes })
        }
        _ => return Err(rejected()),
    };
    if r.at != r.buf.len() {
        return Err(rejected());
    }
    Ok(Some(RecoveryPlan { statements, wal_pointer }))
}

/// Resolves a recovery plan to its authoritative statement list: scans
/// the pointed live WAL when the plan carries one (it may hold statements
/// executed *after* the journal was written), falling back to the inline
/// statements when the pointer is unreachable.
pub fn resolve_recovery_statements<M: EnclaveMemory>(
    host: &mut M,
    plan: &RecoveryPlan,
) -> Vec<String> {
    if let Some(p) = &plan.wal_pointer {
        if let Ok(statements) =
            crate::wal::Wal::recover_records(host, p.key.clone(), p.region, p.block_bytes)
        {
            return statements;
        }
    }
    plan.statements.clone()
}

/// Seals and atomically writes a plain (statements-only) recovery journal
/// under the identity `config.seed` derives — the pre-wipe safety write a
/// rebuild performs so destroying the store can never outrun the history.
pub fn write_recovery_statements(
    dir: impl AsRef<Path>,
    config: &DbConfig,
    statements: &[String],
) -> Result<(), DbError> {
    let (mut rng, master_key) = derive_identity(config.seed);
    let plan = RecoveryPlan { statements: statements.to_vec(), wal_pointer: None };
    write_recovery_journal(dir.as_ref(), &master_key, &mut rng, &plan)
}

// ---- Database surface -----------------------------------------------------

impl<M: EnclaveMemory> Database<M> {
    /// Checkpoints the database into `dir`: flushes the substrate to its
    /// durable medium, then atomically writes the sealed manifest
    /// ([`DB_MANIFEST_FILE`]) that [`Database::open_with_memory`] needs to
    /// re-attach. The manifest write is the commit point: a crash before
    /// the rename leaves the previous checkpoint intact and the WAL
    /// covering the gap.
    ///
    /// Only flat tables persist today; indexed/`Both` storage lives in
    /// Path ORAM whose position maps and stash are enclave state with no
    /// manifest story yet (ROADMAP) and is refused with a typed error.
    pub fn persist_to(&mut self, dir: impl AsRef<Path>) -> Result<(), DbError> {
        let dir = dir.as_ref();
        for (name, storage) in &self.tables {
            if !matches!(storage, TableStorage::Flat(_)) {
                return Err(DbError::Unsupported(format!(
                    "table '{name}' uses indexed storage; persisting Path ORAM state \
                     (position map, stash) is not supported yet — only FLAT tables persist"
                )));
            }
        }
        // A persisted log must never end mid-epoch: reattach restarts the
        // pending counter at zero, so an open epoch would leave records
        // permanently unterminated (and thus silently dropped by every
        // later fold). Seal it now.
        self.commit_epoch()?;

        // Truncating checkpoint: retire the statement history by seeding a
        // *fresh* WAL region with a compacted state dump (CREATE + INSERT
        // per live row) and switching over atomically via the manifest
        // write below. In-place truncation is unsound under the
        // revision-2 probe discipline (each slot is written exactly
        // twice: zero-fill, then its append), so the old region is left
        // untouched until the manifest pointing at its replacement lands,
        // then freed.
        let mut retired_wal = None;
        if self.wal.is_some() && self.config.wal.is_some_and(|c| c.truncate_at_checkpoint) {
            let dump = self.dump_state_statements()?;
            let old = self.wal.take().expect("checked above");
            let old_lsn = old.base_lsn() + old.len();
            let durable = old.durable_appends();
            let longest = dump.iter().map(|s| s.len()).max().unwrap_or(0);
            let block_bytes = old.block_bytes().max(longest + 3);
            let key = self.next_key();
            let mut fresh = crate::wal::Wal::create(
                &mut self.host,
                key,
                crate::wal::WalConfig {
                    block_bytes,
                    capacity: (dump.len() as u64).max(8),
                    durable_appends: durable,
                    truncate_at_checkpoint: true,
                },
            )?;
            for stmt in &dump {
                fresh.append(&mut self.host, stmt)?;
            }
            fresh.set_base_lsn(old_lsn);
            self.wal = Some(fresh);
            retired_wal = Some(old);
        }

        // Data first: every sealed block (and the substrate's own region
        // table) must be durable before the manifest that describes it.
        self.host.sync()?;

        let mut tables = Vec::with_capacity(self.tables.len());
        for (name, storage) in &mut self.tables {
            let TableStorage::Flat(f) = storage else { unreachable!("checked above") };
            tables.push(TableRecord {
                name: name.clone(),
                schema: f.schema().clone(),
                num_rows: f.num_rows(),
                insert_cursor: f.insert_cursor(),
                region: f.region_id(),
                key: f.region_key(),
                region_manifest: f.seal_manifest(),
            });
        }
        let wal = self.wal.as_mut().map(|w| WalRecord {
            region: w.region_id(),
            key: w.key(),
            block_bytes: w.block_bytes() as u64,
            len: w.len(),
            base_lsn: w.base_lsn(),
            durable: w.durable_appends(),
            region_manifest: w.seal_manifest(),
        });
        let manifest =
            DbManifest { key_counter: self.key_counter, version: self.version, wal, tables };

        let nonce = fresh_nonce(&mut self.rng);
        let blob = seal_blob(
            &manifest_key(&self.master_key),
            nonce,
            MANIFEST_AAD,
            &encode_manifest(&manifest),
        );

        let io = |e: std::io::Error| {
            DbError::ManifestRejected(format!("cannot write manifest in {}: {e}", dir.display()))
        };
        std::fs::create_dir_all(dir).map_err(io)?;
        write_atomically(dir, DB_MANIFEST_FILE, &blob).map_err(io)?;
        // The manifest pointing at the fresh WAL region is durable — the
        // retired region is unreachable from any recovery path and its
        // untrusted memory can go. (A crash here merely leaks it.)
        if let Some(old) = retired_wal {
            old.free(&mut self.host)?;
        }
        // This checkpoint completes any in-flight recovery: the journal's
        // statements are now reflected by the manifest (best-effort
        // removal; a leftover journal is re-read and re-applied, which is
        // idempotent — it still describes the same committed history).
        let _ = std::fs::remove_file(dir.join(RECOVERY_JOURNAL_FILE));
        Ok(())
    }

    /// Re-attaches to a persisted database: `host` must be the reopened
    /// substrate (e.g. `DiskMemory::open` / `SubstrateSpec::open`) over
    /// the same store `dir`'s manifest describes, and `config.seed` must
    /// be the seed the database was created with (the enclave identity the
    /// manifest is sealed to).
    ///
    /// Returns [`Reopened::Clean`] when the durable WAL matches the
    /// manifest, or [`Reopened::NeedsRecovery`] (with every durable
    /// statement) when the engine crashed past its last checkpoint —
    /// see [`Database::restore`].
    pub fn open_with_memory(
        mut host: M,
        config: DbConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Reopened<M>, DbError> {
        let dir = dir.as_ref();
        let blob = std::fs::read(dir.join(DB_MANIFEST_FILE)).map_err(|e| {
            DbError::ManifestRejected(format!(
                "cannot read {DB_MANIFEST_FILE} in {}: {e}",
                dir.display()
            ))
        })?;

        // Same derivation as `with_memory`: the seed *is* the identity.
        let (mut rng, master_key) = derive_identity(config.seed);
        let plain = open_blob(&manifest_key(&master_key), MANIFEST_AAD, &blob)?;
        let manifest = decode_manifest(&plain)?;

        // Cross-check a region's observed (untrusted) geometry against the
        // verified manifest before trusting any of its blocks.
        let check_geometry = |host: &M, store: &SealedRegion, what: &str| -> Result<(), DbError> {
            let region = store.region_id();
            let len = host.region_len(region)?;
            let block_size = host.region_block_size(region)?;
            if len != store.len() || block_size != store.payload_len() + SEAL_OVERHEAD {
                return Err(DbError::ManifestRejected(format!(
                    "{what}: region {region:?} geometry mismatch (store {len}×{block_size}, \
                     manifest {}×{}); the region file was swapped or resized",
                    store.len(),
                    store.payload_len() + SEAL_OVERHEAD
                )));
            }
            Ok(())
        };

        // WAL first: it arbitrates clean-vs-crashed. Its geometry check is
        // looser than a table's: the log legitimately *grows* past the
        // checkpoint (appends double the region in place), so the live
        // region may be longer than the manifest snapshot — only a region
        // shorter than the checkpointed record count, or a different
        // block size, means the file was swapped or rolled back.
        let wal = match &manifest.wal {
            Some(w) => {
                let store =
                    SealedRegion::open_with_manifest(w.region, w.key.clone(), &w.region_manifest)?;
                let live_len = host.region_len(w.region)?;
                let live_block = host.region_block_size(w.region)?;
                if live_block != store.payload_len() + SEAL_OVERHEAD || live_len < w.len {
                    return Err(DbError::ManifestRejected(format!(
                        "WAL: region {:?} geometry mismatch (store {live_len}×{live_block}, \
                         manifest ≥{}×{}); the log file was swapped or truncated",
                        w.region,
                        w.len,
                        store.payload_len() + SEAL_OVERHEAD
                    )));
                }
                let block_bytes = w.block_bytes as usize;
                // Two O(1) probes decide clean-vs-crashed without decoding
                // the whole log: the last checkpointed record must still
                // authenticate (else the log was rolled back), and the
                // first slot past the checkpoint must not (else there is a
                // durable overhang — a crash). Only a crash pays for the
                // full scan.
                let last_ok = w.len == 0
                    || crate::wal::Wal::probe_record(
                        &mut host,
                        w.key.clone(),
                        w.region,
                        block_bytes,
                        w.len - 1,
                    )?;
                if !last_ok {
                    return Err(DbError::ManifestRejected(format!(
                        "durable WAL lost record {} that the manifest checkpointed; \
                         the log was rolled back or truncated",
                        w.len - 1
                    )));
                }
                let overhang = crate::wal::Wal::probe_record(
                    &mut host,
                    w.key.clone(),
                    w.region,
                    block_bytes,
                    w.len,
                )?;
                if overhang {
                    // Crash past the checkpoint: the data regions cannot be
                    // trusted beyond it. Journal every durable statement
                    // *before* anyone wipes the store, so a second crash
                    // mid-rebuild still recovers the full history, then
                    // hand them to a fresh-engine replay.
                    let statements = crate::wal::Wal::recover_records(
                        &mut host,
                        w.key.clone(),
                        w.region,
                        block_bytes,
                    )?;
                    let plan = RecoveryPlan { statements, wal_pointer: None };
                    write_recovery_journal(dir, &master_key, &mut rng, &plan)?;
                    return Ok(Reopened::NeedsRecovery(plan));
                }
                // The caller's explicit WAL config wins over the persisted
                // durability flag; absent one, the log keeps its own.
                let durable = config.wal.map_or(w.durable, |c| c.durable_appends);
                Some(crate::wal::Wal::reattach(
                    store,
                    w.key.clone(),
                    w.len,
                    block_bytes,
                    durable,
                    w.base_lsn,
                ))
            }
            None => None,
        };

        let mut tables = Vec::with_capacity(manifest.tables.len());
        for t in &manifest.tables {
            let store =
                SealedRegion::open_with_manifest(t.region, t.key.clone(), &t.region_manifest)?;
            check_geometry(&host, &store, &t.name)?;
            if store.payload_len() != t.schema.row_len() {
                return Err(DbError::ManifestRejected(format!(
                    "table '{}': schema row length {} disagrees with its region manifest ({})",
                    t.name,
                    t.schema.row_len(),
                    store.payload_len()
                )));
            }
            let mut flat =
                FlatTable::reattach(store, t.schema.clone(), t.num_rows, t.insert_cursor);
            flat.set_parallelism(config.exec.pool());
            tables.push((t.name.clone(), TableStorage::Flat(flat)));
        }

        let key_epoch = fresh_key_epoch(&mut rng);
        let mut db = Database {
            host,
            om: OmBudget::new(config.om_bytes),
            rng,
            master_key,
            key_epoch,
            key_counter: manifest.key_counter,
            tables,
            config,
            wal,
            version: manifest.version,
            plan_cache: Default::default(),
            plan_cache_stats: Default::default(),
            auditor: Default::default(),
        };
        // The store was persisted without a WAL but the caller wants one:
        // honor the config by creating a fresh log now — silently leaving
        // write-ahead durability off would betray the request.
        if db.wal.is_none() {
            if let Some(wal_config) = db.config.wal {
                let key = db.next_key();
                db.wal = Some(crate::wal::Wal::create(&mut db.host, key, wal_config)?);
            }
        }
        Ok(Reopened::Clean(db))
    }

    /// Rebuilds a crashed database by replaying a recovered statement
    /// history into this fresh engine (fresh substrate, same config — WAL
    /// enabled, so the replay itself rebuilds the log). Statements are
    /// replayed in append order; ones that fail are skipped and reported,
    /// since a statement logged-then-failed during the original run fails
    /// here identically (the WAL records intent, not success).
    pub fn restore(&mut self, statements: &[String]) -> Result<RecoveryReport, DbError> {
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Recovery);
        let before = self.host.stats();
        let started = std::time::Instant::now();
        let mut report = RecoveryReport::default();
        for stmt in statements {
            match self.execute(stmt) {
                Ok(_) => report.replayed += 1,
                Err(e) => report.skipped.push((stmt.clone(), e)),
            }
        }
        // Under group commit the replayed statements pooled into an open
        // epoch; seal it so the rebuilt log ends on an epoch boundary and
        // the replayed history is itself durable.
        self.commit_epoch()?;
        report.duration = started.elapsed();
        report.replay_stats = self.host.stats() - before;
        Ok(report)
    }

    /// Rewrites the recovery journal to point at this engine's live WAL,
    /// with `fallback_statements` as the inline history should the WAL
    /// become unreachable. Used when a rebuilt store cannot be
    /// checkpointed (`persist_to` refused — e.g. an indexed table in the
    /// replayed history): the journal then stays authoritative across
    /// restarts, and post-rebuild mutations keep landing in the pointed
    /// WAL, so nothing committed is ever outside it.
    pub fn journal_live_wal(
        &mut self,
        dir: impl AsRef<Path>,
        fallback_statements: &[String],
    ) -> Result<(), DbError> {
        let pointer = match &self.wal {
            Some(w) => {
                WalPointer { region: w.region_id(), key: w.key(), block_bytes: w.block_bytes() }
            }
            None => {
                return Err(DbError::Unsupported(
                    "journal_live_wal needs a WAL to point at".into(),
                ));
            }
        };
        let plan =
            RecoveryPlan { statements: fallback_statements.to_vec(), wal_pointer: Some(pointer) };
        write_recovery_journal(dir.as_ref(), &self.master_key, &mut self.rng, &plan)
    }
}
