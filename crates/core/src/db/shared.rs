//! Concurrent sessions over one store: [`SharedDatabase`] and [`Session`].
//!
//! One ObliDB engine owns its substrate exclusively — `&mut self`
//! everywhere. A server needs many connections over the *same* sealed
//! store. This module layers statement-granular concurrency on top of the
//! unchanged single-owner engine instead of threading locks through it:
//!
//! * **Writes serialize.** Mutations (and reads that touch index-backed
//!   tables) take the write side of a statement latch and run on the
//!   resident *master* engine, exactly as a single-owner `Database`
//!   would. Any serial schedule therefore produces results, sealed
//!   bytes, and access traces bit-identical to replaying the same
//!   statements on one `Database` — there is no second write path to
//!   diverge.
//! * **Reads snapshot.** A `SELECT` / `EXPLAIN` / `EXPLAIN ANALYZE`
//!   whose referenced tables are all flat-stored takes the *read* side
//!   of the latch and runs on a throwaway **fork**: a fresh `Database`
//!   over a [`SessionMemory`] sibling of the shared store, with
//!   read-only [`FlatTable::snapshot_handle`] clones of the catalog, a
//!   [`OmBudget::snapshot`] of the master's oblivious-memory pool (same
//!   availability ⇒ same plan choices), and a per-fork key epoch so
//!   operator scratch regions never reuse a `(key, nonce)` pair across
//!   forks. Forks read table payloads and write only their own scratch,
//!   so any number run concurrently; the latch's read side only excludes
//!   writers. Index-backed tables are excluded because ORAM reads
//!   *mutate* position maps — those selects fall back to the write path.
//! * **Leakage is unchanged.** The adversary already sees every block
//!   access; concurrency adds interleaving, not new event kinds. Each
//!   session's own trace (and the shared [`TraceAuditor`]'s per-shape
//!   hashes, which canonicalize region ids by first appearance) is
//!   schedule-independent for the serial schedules the audit compares.
//!
//! Isolation level: statement-granular snapshot reads over serialized
//! writes. A read observes every write that completed before it forked
//! and none that started after — per-statement. Multi-statement
//! transactions layer on top (`oblidb::txn`): they buffer their writes
//! client-side and apply them through [`SharedDatabase::execute_atomic`],
//! one write-latch hold for the whole batch, so snapshot reads see a
//! transaction's effects all-or-nothing.
//!
//! Plan-cache sharing: forks are throwaway, so a per-fork cache would
//! never hit. Instead each fork is seeded from a shared plan cache
//! (version-checked, same staleness rule as the engine's own) and its
//! compiled plans + hit/miss counters are folded back under one mutex
//! after the run — counts are never lost, and the totals reported by
//! [`SharedDatabase::plan_cache_stats`] are the shared counters plus the
//! master engine's internal ones (exclusive statements use the master's
//! own cache). Lock order everywhere: latch → master → plans/auditor —
//! later locks are only taken while earlier ones are held in that order,
//! so the hierarchy is acyclic and deadlock-free.
//!
//! Stall pricing: configure crossing stalls on the [`SharedMemory`]
//! handle (see [`SharedDatabase::store`]), not on the inner substrate —
//! session stalls are then paid *outside* the store lock and overlap
//! across sessions, which is where serving throughput scaling comes
//! from.
//!
//! [`FlatTable::snapshot_handle`]: crate::table::FlatTable::snapshot_handle
//! [`OmBudget::snapshot`]: oblidb_enclave::OmBudget::snapshot

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use oblidb_enclave::{EnclaveMemory, EnclaveRng, SessionMemory, SharedMemory, Trace};

use crate::audit::{statement_shape, AuditReport, AuditViolation, TraceAuditor};
use crate::error::DbError;
use crate::sql::{self, Statement};
use crate::table::TableStorage;

use super::{Database, DbConfig, PlanCacheStats, QueryOutput, QueryPlan, PLAN_CACHE_CAP};

/// Locks a mutex, recovering the guard if a holder panicked — the
/// protected state is counters, caches, and the master engine, all of
/// which stay structurally valid across an unwound statement.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn latch_read(l: &RwLock<()>) -> RwLockReadGuard<'_, ()> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn latch_write(l: &RwLock<()>) -> RwLockWriteGuard<'_, ()> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// The shared prepared-plan cache: compiled SELECT plans keyed by
/// statement text (same key and staleness rule as the engine-internal
/// cache) plus the hit/miss counters harvested from fork runs.
struct SharedPlans {
    cache: HashMap<String, QueryPlan>,
    stats: PlanCacheStats,
}

struct Inner<M: EnclaveMemory + Send> {
    /// Statement latch: read side = concurrent snapshot selects, write
    /// side = one exclusive statement on the master engine.
    latch: RwLock<()>,
    /// The resident engine every mutation runs on. Locked briefly by
    /// snapshot readers too (to classify + fork under a consistent
    /// catalog), but only while they hold the read latch, so a writer
    /// never waits on a fork's execution — just on its setup.
    master: Mutex<Database<SessionMemory<M>>>,
    /// The shared substrate handle; mints `SessionMemory` siblings.
    store: SharedMemory<M>,
    plans: Mutex<SharedPlans>,
    /// One auditor for every session and path (fork + master), so a
    /// statement shape first seen under one session is checked against
    /// reruns under any other.
    auditor: Mutex<TraceAuditor>,
    /// The adopted engine's `DbConfig::audit` flag, hoisted to this
    /// layer (member engines run with it off — see [`SharedDatabase::adopt`]).
    audit: bool,
    session_seq: AtomicU64,
    fork_seq: AtomicU64,
    snapshot_reads: AtomicU64,
    exclusive_statements: AtomicU64,
    statement_errors: AtomicU64,
}

/// A cloneable, `Send + Sync` handle to one ObliDB engine shared by many
/// concurrent [`Session`]s. See the [module docs](self) for the
/// concurrency contract.
pub struct SharedDatabase<M: EnclaveMemory + Send = oblidb_enclave::Host> {
    inner: Arc<Inner<M>>,
}

impl<M: EnclaveMemory + Send> Clone for SharedDatabase<M> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<M: EnclaveMemory + Send> std::fmt::Debug for SharedDatabase<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedDatabase")
            .field("sessions", &self.inner.session_seq.load(Ordering::Relaxed))
            .field("snapshot_reads", &self.inner.snapshot_reads.load(Ordering::Relaxed))
            .field("exclusive_statements", &self.inner.exclusive_statements.load(Ordering::Relaxed))
            .finish()
    }
}

/// Per-session statement counters, folded into
/// [`SharedDatabase::metrics_snapshot`] server-side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// This session's id (1-based mint order).
    pub id: u64,
    /// Statements this session submitted.
    pub statements: u64,
    /// Statements that returned an error.
    pub errors: u64,
}

/// One connection's view of a [`SharedDatabase`]: submit statements,
/// get results. Cheap to mint, `Send`, single-threaded by design
/// (`&mut self`) — a server hands one to each connection handler.
pub struct Session<M: EnclaveMemory + Send = oblidb_enclave::Host> {
    db: SharedDatabase<M>,
    stats: SessionStats,
}

impl<M: EnclaveMemory + Send> SharedDatabase<M> {
    /// Creates an empty shared database over a caller-provided substrate.
    pub fn new(store: M, config: DbConfig) -> Result<Self, DbError> {
        Database::try_with_memory(store, config).map(Self::adopt)
    }

    /// Wraps an existing single-owner engine — tables, WAL, plan cache,
    /// auditor history and all — for concurrent serving. The inverse of
    /// handing a `Database` to one caller: the engine becomes the
    /// resident *master* behind the statement latch, its substrate is
    /// rehomed into a [`SharedMemory`] so snapshot forks can mint
    /// siblings, and its `DbConfig::audit` flag is hoisted to this layer
    /// (member engines run with auditing off; one shared
    /// [`TraceAuditor`] observes every path so shapes are checked
    /// *across* sessions, not per-engine).
    pub fn adopt(db: Database<M>) -> Self {
        let Database {
            host,
            om,
            rng,
            master_key,
            key_epoch,
            key_counter,
            tables,
            mut config,
            wal,
            version,
            plan_cache,
            plan_cache_stats,
            auditor,
        } = db;
        let audit = config.audit;
        config.audit = false;
        let store = SharedMemory::new(host);
        let master = Database {
            host: store.session(),
            om,
            rng,
            master_key,
            key_epoch,
            key_counter,
            tables,
            config,
            wal,
            version,
            plan_cache,
            plan_cache_stats,
            auditor: TraceAuditor::default(),
        };
        Self {
            inner: Arc::new(Inner {
                latch: RwLock::new(()),
                master: Mutex::new(master),
                store,
                plans: Mutex::new(SharedPlans {
                    cache: HashMap::new(),
                    stats: PlanCacheStats::default(),
                }),
                auditor: Mutex::new(auditor),
                audit,
                session_seq: AtomicU64::new(0),
                fork_seq: AtomicU64::new(0),
                snapshot_reads: AtomicU64::new(0),
                exclusive_statements: AtomicU64::new(0),
                statement_errors: AtomicU64::new(0),
            }),
        }
    }

    /// Mints a new session. Ids are 1-based in mint order.
    pub fn session(&self) -> Session<M> {
        let id = self.inner.session_seq.fetch_add(1, Ordering::Relaxed) + 1;
        Session { db: self.clone(), stats: SessionStats { id, statements: 0, errors: 0 } }
    }

    /// The shared substrate handle — for crossing-cost configuration
    /// ([`SharedMemory::set_crossing_stall`]) and store-level stats.
    pub fn store(&self) -> &SharedMemory<M> {
        &self.inner.store
    }

    /// Exclusive access to the master engine: checkpointing, DDL batches,
    /// config surgery. Takes the write latch, so it serializes with every
    /// statement — in-flight snapshot reads finish first. Version bumps
    /// made here invalidate shared cached plans through the same
    /// version check the engine uses.
    pub fn admin<R>(&self, f: impl FnOnce(&mut Database<SessionMemory<M>>) -> R) -> R {
        let _excl = latch_write(&self.inner.latch);
        let mut master = lock(&self.inner.master);
        f(&mut master)
    }

    /// Executes a statement batch atomically: all of it becomes visible
    /// under one write-latch hold, or none of it runs. The batch is
    /// dry-run validated first (parse, table/column resolution, value
    /// typing — see `Database::validate_batch`), so the only failures
    /// past the first executed statement are substrate I/O errors. This
    /// is the commit path of `oblidb::txn` transactions; under an epoch
    /// scheduler the whole batch lands inside one WAL epoch and shares
    /// its group fsync.
    pub fn execute_atomic(&self, statements: &[String]) -> Result<Vec<QueryOutput>, DbError> {
        let _excl = latch_write(&self.inner.latch);
        let mut master = lock(&self.inner.master);
        master.validate_batch(statements)?;
        let mut outputs = Vec::with_capacity(statements.len());
        for stmt in statements {
            self.inner.exclusive_statements.fetch_add(1, Ordering::Relaxed);
            let (result, _) = self.run_audited(&mut master, None, stmt, false);
            outputs.push(result?);
        }
        Ok(outputs)
    }

    /// Shared plan-cache counters: fork hits/misses (harvested after
    /// every snapshot read) plus the master engine's internal counters
    /// (exclusive statements plan through the master's own cache).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let master = lock(&self.inner.master).plan_cache_stats();
        let shared = lock(&self.inner.plans).stats;
        PlanCacheStats { hits: shared.hits + master.hits, misses: shared.misses + master.misses }
    }

    /// Aggregate counters from the shared trace auditor (all sessions,
    /// both paths). Empty unless the adopted config had audit on.
    pub fn audit_report(&self) -> AuditReport {
        lock(&self.inner.auditor).report()
    }

    /// Trace-audit divergences recorded so far, across all sessions.
    pub fn audit_violations(&self) -> Vec<AuditViolation> {
        lock(&self.inner.auditor).violations().to_vec()
    }

    /// One merged telemetry snapshot for the whole shared engine: the
    /// process-wide registry, store-level substrate traffic (every
    /// session's accounted accesses plus aggregated session stalls),
    /// combined plan-cache counters, shared audit counters, and the
    /// serving-level statement counters.
    ///
    /// Counters are read without the statement latch: each value is
    /// individually exact at its own read point, but values read while
    /// statements are in flight may straddle a statement (e.g. a
    /// `db_statements_*` bump visible before the corresponding
    /// `host_reads` traffic). Quiesce sessions first when exact
    /// cross-counter consistency matters.
    pub fn metrics_snapshot(&self) -> oblidb_telemetry::MetricsSnapshot {
        let mut snap = oblidb_telemetry::snapshot();
        let stats = self.inner.store.store_stats();
        snap.push_counter("host_reads", stats.reads);
        snap.push_counter("host_writes", stats.writes);
        snap.push_counter("host_bytes_read", stats.bytes_read);
        snap.push_counter("host_bytes_written", stats.bytes_written);
        snap.push_counter("host_crossings", stats.crossings);
        snap.push_counter("host_stall_nanos", stats.stall_nanos);
        // Prefixed `db_` to stay distinct from the global telemetry
        // counters of the same shape already in the snapshot.
        let plans = self.plan_cache_stats();
        snap.push_counter("db_plan_cache_hits", plans.hits);
        snap.push_counter("db_plan_cache_misses", plans.misses);
        let audit = self.audit_report();
        snap.push_counter("db_audit_shapes", audit.shapes as u64);
        snap.push_counter("db_audit_violations", audit.violations as u64);
        snap.push_counter("db_sessions", self.inner.session_seq.load(Ordering::Relaxed));
        snap.push_counter("db_snapshot_reads", self.inner.snapshot_reads.load(Ordering::Relaxed));
        snap.push_counter(
            "db_exclusive_statements",
            self.inner.exclusive_statements.load(Ordering::Relaxed),
        );
        snap.push_counter(
            "db_statement_errors",
            self.inner.statement_errors.load(Ordering::Relaxed),
        );
        snap
    }

    // ---- statement routing ------------------------------------------------

    fn route(&self, sql_text: &str, traced: bool) -> (Result<QueryOutput, DbError>, Option<Trace>) {
        let empty_trace = || traced.then(|| Trace(Vec::new()));
        let stmt = match sql::parse(sql_text) {
            Ok(s) => s,
            Err(e) => return (Err(e), empty_trace()),
        };
        let select = match &stmt {
            Statement::Select(s) | Statement::Explain(s) | Statement::ExplainAnalyze(s) => Some(s),
            _ => None,
        };
        if let Some(s) = select {
            // Classification and forking share one critical section under
            // the read latch, so no exclusive statement can change a
            // table's storage method between the check and the snapshot.
            let _shared = latch_read(&self.inner.latch);
            let forked = {
                let master = lock(&self.inner.master);
                let fork_safe = std::iter::once(s.table.as_str())
                    .chain(s.join.as_ref().map(|j| j.table.as_str()))
                    .all(|name| match master.tables.iter().find(|(n, _)| n == name) {
                        // Unknown tables fork fine: the fork raises the
                        // same NoSuchTable the master would, without
                        // taking the write latch for a typo.
                        Some((_, TableStorage::Flat(_))) | None => true,
                        // ORAM reads mutate position maps, and a Both
                        // table's planner may choose the index path.
                        Some(_) => false,
                    });
                fork_safe.then(|| self.fork(&master))
            };
            if let Some((fork, catalog)) = forked {
                self.inner.snapshot_reads.fetch_add(1, Ordering::Relaxed);
                return self.run_snapshot(fork, catalog, sql_text, traced);
            }
        }
        let _excl = latch_write(&self.inner.latch);
        let mut master = lock(&self.inner.master);
        self.inner.exclusive_statements.fetch_add(1, Ordering::Relaxed);
        self.run_audited(&mut master, None, sql_text, traced)
    }

    /// Builds a throwaway snapshot engine off the master: sibling store
    /// handle, budget snapshot, flat-only read-only catalog, per-fork key
    /// epoch (scratch regions seal under fork-unique keys — two forks
    /// both derive `key_counter = 1, 2, ...`, and nonce counters restart
    /// per region, so a shared epoch would reuse `(key, nonce)` pairs
    /// across different scratch plaintexts). Returns the fork plus the
    /// full `(table, rows)` catalog at fork time, which audit shapes use
    /// so fork-path and master-path shapes for the same statement agree.
    fn fork(
        &self,
        master: &Database<SessionMemory<M>>,
    ) -> (Database<SessionMemory<M>>, Vec<(String, u64)>) {
        let seq = self.inner.fork_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let catalog: Vec<(String, u64)> =
            master.tables.iter().map(|(n, t)| (n.clone(), t.num_rows())).collect();
        let tables: Vec<(String, TableStorage)> = master
            .tables
            .iter()
            .filter_map(|(name, storage)| match storage {
                TableStorage::Flat(f) => {
                    Some((name.clone(), TableStorage::Flat(f.snapshot_handle())))
                }
                _ => None,
            })
            .collect();
        let mut config = master.config.clone();
        config.audit = false;
        config.wal = None;
        let mut label = Vec::with_capacity(22);
        label.extend_from_slice(b"session-epoch:");
        label.extend_from_slice(&seq.to_le_bytes());
        let digest = oblidb_crypto::derive_key(&master.master_key, &label);
        let mut key_epoch = [0u8; 16];
        key_epoch.copy_from_slice(&digest[..16]);
        let fork = Database {
            host: master.host.sibling(),
            om: master.om.snapshot(),
            rng: EnclaveRng::seed_from_u64(config.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            master_key: master.master_key,
            key_epoch,
            key_counter: 0,
            tables,
            config,
            wal: None,
            version: master.version,
            plan_cache: HashMap::new(),
            plan_cache_stats: PlanCacheStats::default(),
            auditor: TraceAuditor::default(),
        };
        (fork, catalog)
    }

    /// Runs one snapshot select on its fork: seed the fork's plan cache
    /// from the shared one, execute (audited), then fold compiled plans
    /// and hit/miss counters back. Caller holds the read latch.
    fn run_snapshot(
        &self,
        mut fork: Database<SessionMemory<M>>,
        catalog: Vec<(String, u64)>,
        sql_text: &str,
        traced: bool,
    ) -> (Result<QueryOutput, DbError>, Option<Trace>) {
        {
            let plans = lock(&self.inner.plans);
            if let Some(p) = plans.cache.get(sql_text) {
                if p.version == fork.version {
                    fork.plan_cache.insert(sql_text.to_string(), p.clone());
                }
            }
        }
        let out = self.run_audited(&mut fork, Some(&catalog), sql_text, traced);
        let current = fork.version;
        let mut plans = lock(&self.inner.plans);
        plans.stats.hits += fork.plan_cache_stats.hits;
        plans.stats.misses += fork.plan_cache_stats.misses;
        for (key, plan) in fork.plan_cache.drain() {
            if plan.version != current {
                continue;
            }
            if !plans.cache.contains_key(&key) && plans.cache.len() >= PLAN_CACHE_CAP {
                plans.cache.retain(|_, p| p.version == current);
                if plans.cache.len() >= PLAN_CACHE_CAP {
                    plans.cache.clear();
                }
            }
            plans.cache.insert(key, plan);
        }
        out
    }

    /// Executes one statement on `engine` with the shared auditor
    /// observing the run-phase trace — the same window the engine-level
    /// auditor would use. `catalog` carries the fork-time `(table, rows)`
    /// list for fork runs (forks hold a filtered catalog; shapes must
    /// key on the full one); master runs recompute it post-run, exactly
    /// as the engine's internal audit does. When the caller asked for
    /// the trace itself (`traced`), the trace channel is busy and the
    /// audit counts a skip, mirroring engine semantics.
    fn run_audited(
        &self,
        engine: &mut Database<SessionMemory<M>>,
        catalog: Option<&[(String, u64)]>,
        sql_text: &str,
        traced: bool,
    ) -> (Result<QueryOutput, DbError>, Option<Trace>) {
        if traced {
            if self.inner.audit {
                lock(&self.inner.auditor).skip();
            }
            engine.host.start_trace();
            let result = engine.execute(sql_text);
            let trace = engine.host.take_trace();
            return (result, Some(trace));
        }
        if !self.inner.audit {
            return (engine.execute(sql_text), None);
        }
        let (result, trace) = engine.execute_with_run_trace(sql_text);
        if let Ok(out) = &result {
            let shape = match catalog {
                Some(tables) => statement_shape(sql_text, tables, out.plan.output_rows),
                None => {
                    let tables: Vec<(String, u64)> =
                        engine.tables.iter().map(|(n, t)| (n.clone(), t.num_rows())).collect();
                    statement_shape(sql_text, &tables, out.plan.output_rows)
                }
            };
            lock(&self.inner.auditor).observe(&shape, &trace);
        }
        (result, None)
    }
}

impl<M: EnclaveMemory + Send> Session<M> {
    /// Parses and executes one SQL statement through the shared engine.
    /// Routing (snapshot fork vs. exclusive master) is internal; results
    /// and errors are exactly what a single-owner [`Database`] returns.
    pub fn execute(&mut self, sql_text: &str) -> Result<QueryOutput, DbError> {
        self.stats.statements += 1;
        let (result, _) = self.db.route(sql_text, false);
        if result.is_err() {
            self.stats.errors += 1;
            self.db.inner.statement_errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// [`Session::execute`] plus the statement's access trace (prepare
    /// and run, session-local) — the conformance-test surface. While the
    /// trace channel is borrowed the shared auditor counts a skip, same
    /// as the engine-level auditor would.
    pub fn execute_traced(&mut self, sql_text: &str) -> (Result<QueryOutput, DbError>, Trace) {
        self.stats.statements += 1;
        let (result, trace) = self.db.route(sql_text, true);
        if result.is_err() {
            self.stats.errors += 1;
            self.db.inner.statement_errors.fetch_add(1, Ordering::Relaxed);
        }
        (result, trace.unwrap_or(Trace(Vec::new())))
    }

    /// This session's statement counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The shared handle this session runs over.
    pub fn database(&self) -> &SharedDatabase<M> {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::trace_hash;
    use crate::types::Value;
    use oblidb_enclave::Host;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_database_is_send_and_sync() {
        assert_send_sync::<SharedDatabase<Host>>();
        fn assert_send<T: Send>() {}
        assert_send::<Session<Host>>();
    }

    fn seed_statements() -> Vec<String> {
        let mut stmts =
            vec!["CREATE TABLE t (id INT, v INT) STORAGE = FLAT CAPACITY 64".to_string()];
        for i in 0..12 {
            stmts.push(format!("INSERT INTO t VALUES ({i}, {})", i * 10));
        }
        stmts
    }

    /// Any serial schedule through sessions must match the single-owner
    /// engine statement-for-statement: same rows, same traced run.
    #[test]
    fn serial_sessions_match_single_owner_results_and_traces() {
        let config = DbConfig::default();
        let mut solo = Database::with_memory(Host::new(), config.clone());
        let shared = SharedDatabase::new(Host::new(), config).unwrap();
        let mut session = shared.session();
        for stmt in seed_statements() {
            let a = solo.execute(&stmt).unwrap();
            let b = session.execute(&stmt).unwrap();
            assert_eq!(a.rows_affected, b.rows_affected, "{stmt}");
        }
        for sql_text in [
            "SELECT id, v FROM t WHERE id < 5",
            "SELECT id, v FROM t WHERE v > 60",
            "SELECT COUNT(*) FROM t",
        ] {
            solo.host_mut().start_trace();
            let a = solo.execute(sql_text).unwrap();
            let solo_trace = solo.host_mut().take_trace();
            let (b, session_trace) = session.execute_traced(sql_text);
            let b = b.unwrap();
            assert_eq!(a.rows(), b.rows(), "{sql_text}");
            assert_eq!(a.schema, b.schema, "{sql_text}");
            assert_eq!(
                trace_hash(&solo_trace),
                trace_hash(&session_trace),
                "canonical trace diverged for {sql_text}"
            );
        }
    }

    /// A session's read forks a snapshot that reflects every write that
    /// completed before it — including another session's.
    #[test]
    fn reads_see_writes_from_other_sessions() {
        let shared = SharedDatabase::new(Host::new(), DbConfig::default()).unwrap();
        let mut a = shared.session();
        let mut b = shared.session();
        for stmt in seed_statements() {
            a.execute(&stmt).unwrap();
        }
        b.execute("INSERT INTO t VALUES (100, 1000)").unwrap();
        let rows = a.execute("SELECT v FROM t WHERE id = 100").unwrap();
        assert_eq!(rows.rows(), &[vec![Value::Int(1000)]]);
        assert_eq!(a.stats().statements, seed_statements().len() as u64 + 1);
        assert_eq!(b.stats().id, 2);
    }

    /// Selects over index-backed tables take the exclusive path (ORAM
    /// reads mutate position maps) but still answer correctly.
    #[test]
    fn indexed_tables_route_exclusive() {
        let shared = SharedDatabase::new(Host::new(), DbConfig::default()).unwrap();
        let mut s = shared.session();
        s.execute("CREATE TABLE ix (id INT, v INT) STORAGE = INDEXED INDEX ON id CAPACITY 64")
            .unwrap();
        for i in 0..8 {
            s.execute(&format!("INSERT INTO ix VALUES ({i}, {})", i * 2)).unwrap();
        }
        let before = shared.inner.exclusive_statements.load(Ordering::Relaxed);
        let out = s.execute("SELECT v FROM ix WHERE id = 3").unwrap();
        assert_eq!(out.rows(), &[vec![Value::Int(6)]]);
        assert_eq!(
            shared.inner.exclusive_statements.load(Ordering::Relaxed),
            before + 1,
            "indexed select must not fork"
        );
        assert_eq!(shared.inner.snapshot_reads.load(Ordering::Relaxed), 0);
    }

    /// One session's compiled plan is a cache hit for every other
    /// session, and fork counters fold back without loss.
    #[test]
    fn plan_cache_is_shared_across_sessions() {
        let shared = SharedDatabase::new(Host::new(), DbConfig::default()).unwrap();
        let mut a = shared.session();
        for stmt in seed_statements() {
            a.execute(&stmt).unwrap();
        }
        let sql_text = "SELECT v FROM t WHERE id = 1";
        a.execute(sql_text).unwrap();
        let after_first = shared.plan_cache_stats();
        let mut b = shared.session();
        b.execute(sql_text).unwrap();
        let after_second = shared.plan_cache_stats();
        assert_eq!(after_second.hits, after_first.hits + 1, "second session should hit");
        assert_eq!(after_second.misses, after_first.misses);
        // A write invalidates by version: next select re-plans. Two new
        // misses — the INSERT itself (mutations always compile) and the
        // re-planned select.
        a.execute("INSERT INTO t VALUES (200, 2000)").unwrap();
        b.execute(sql_text).unwrap();
        assert_eq!(shared.plan_cache_stats().misses, after_second.misses + 2);
        assert_eq!(shared.plan_cache_stats().hits, after_second.hits);
    }

    /// Concurrent sessions hammering reads and writes converge to the
    /// serial-equivalent row count, and the shared auditor stays silent.
    #[test]
    fn concurrent_sessions_converge_and_audit_stays_silent() {
        let config = DbConfig { audit: true, ..DbConfig::default() };
        let shared = SharedDatabase::new(Host::new(), config).unwrap();
        let mut setup = shared.session();
        setup.execute("CREATE TABLE t (id INT, v INT) STORAGE = FLAT CAPACITY 256").unwrap();
        for i in 0..8 {
            setup.execute(&format!("INSERT INTO t VALUES ({i}, {i})")).unwrap();
        }
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 6;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let mut session = shared.session();
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        let id = 1000 + w * PER_WRITER + i;
                        session.execute(&format!("INSERT INTO t VALUES ({id}, {id})")).unwrap();
                        let out = session.execute("SELECT COUNT(*) FROM t").unwrap();
                        assert_eq!(out.rows().len(), 1);
                    }
                });
            }
        });
        let out = shared.session().execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(out.rows(), &[vec![Value::Int((8 + WRITERS * PER_WRITER) as i64)]]);
        let report = shared.audit_report();
        assert_eq!(report.violations, 0, "{:?}", shared.audit_violations());
        assert!(report.shapes > 0, "audit should have observed statement shapes");
        let snap = shared.metrics_snapshot();
        let text = snap.to_text();
        assert!(text.contains("db_sessions"), "serving counters missing:\n{text}");
    }

    /// Admin access serializes with statements and can run engine-level
    /// maintenance like checkpointing.
    #[test]
    fn admin_gives_exclusive_master_access() {
        let shared = SharedDatabase::new(Host::new(), DbConfig::default()).unwrap();
        let mut s = shared.session();
        for stmt in seed_statements() {
            s.execute(&stmt).unwrap();
        }
        let version = shared.admin(|db| {
            db.execute("INSERT INTO t VALUES (300, 3000)").unwrap();
            db.version
        });
        assert!(version > 0);
        let out = s.execute("SELECT v FROM t WHERE id = 300").unwrap();
        assert_eq!(out.rows(), &[vec![Value::Int(3000)]]);
    }
}
