//! Engine error type.

use oblidb_btree::ObTreeError;
use oblidb_enclave::{HostError, OmError};
use oblidb_oram::OramError;
use oblidb_storage::StorageError;

/// Errors surfaced by the ObliDB engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Untrusted host failure.
    Host(HostError),
    /// Sealed storage failure — includes tamper/rollback detection.
    Storage(StorageError),
    /// ORAM failure.
    Oram(OramError),
    /// Oblivious B+ tree failure.
    Tree(ObTreeError),
    /// Oblivious-memory budget exhausted.
    Om(OmError),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// The operation requires a storage method the table does not have.
    WrongStorage {
        /// Table name.
        table: String,
        /// What was needed.
        needed: &'static str,
    },
    /// Value/type mismatch (wrong arity, wrong type, oversized string).
    TypeMismatch(String),
    /// Table capacity exhausted.
    TableFull(String),
    /// The hash-select output table overflowed its collision chains
    /// (cryptographically unlikely; retry with another operator).
    HashSelectOverflow,
    /// Grouped aggregation exceeded the oblivious-memory group budget.
    TooManyGroups {
        /// Groups the operator could hold.
        limit: usize,
    },
    /// SQL lexing/parsing failure.
    Sql(String),
    /// Query shape the engine does not support.
    Unsupported(String),
    /// The persisted database manifest is unusable: unreadable, failing
    /// authentication (tampered, or sealed by a different enclave
    /// identity/seed), structurally invalid, or inconsistent with the
    /// reopened substrate (swapped/resized region files). The typed
    /// integrity signal of the reopen path; per-block tampering surfaces
    /// later as [`DbError::Storage`] with `TamperDetected`.
    ManifestRejected(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Host(e) => write!(f, "host: {e}"),
            DbError::Storage(e) => write!(f, "storage: {e}"),
            DbError::Oram(e) => write!(f, "oram: {e}"),
            DbError::Tree(e) => write!(f, "index: {e}"),
            DbError::Om(e) => write!(f, "oblivious memory: {e}"),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::WrongStorage { table, needed } => {
                write!(f, "table {table} lacks {needed} storage")
            }
            DbError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            DbError::TableFull(t) => write!(f, "table full: {t}"),
            DbError::HashSelectOverflow => write!(f, "hash select overflow"),
            DbError::TooManyGroups { limit } => {
                write!(f, "too many groups for oblivious memory (limit {limit})")
            }
            DbError::Sql(m) => write!(f, "sql: {m}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DbError::ManifestRejected(m) => write!(f, "database manifest rejected: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<HostError> for DbError {
    fn from(e: HostError) -> Self {
        DbError::Host(e)
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

impl From<OramError> for DbError {
    fn from(e: OramError) -> Self {
        DbError::Oram(e)
    }
}

impl From<ObTreeError> for DbError {
    fn from(e: ObTreeError) -> Self {
        DbError::Tree(e)
    }
}

impl From<OmError> for DbError {
    fn from(e: OmError) -> Self {
        DbError::Om(e)
    }
}
