//! Oblivious aggregation (paper §4.2).
//!
//! Plain aggregates are one sequential pass with the accumulator inside
//! the enclave — nothing leaks beyond |T|. Grouped aggregation keeps a
//! hash table of per-group accumulators in oblivious memory. The fused
//! select+project+aggregate operator applies the WHERE predicate during
//! the same pass, avoiding both the cost and the size-leak of an
//! intermediate filtered table.

use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveMemory, OmBudget};

use crate::error::DbError;
use crate::predicate::Predicate;
use crate::table::FlatTable;
use crate::types::{Column, DataType, Schema, Value};

/// Aggregate functions (paper §3: COUNT, SUM, MIN, MAX, AVG).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT(*) or COUNT(col).
    Count,
    /// SUM(col).
    Sum,
    /// MIN(col).
    Min,
    /// MAX(col).
    Max,
    /// AVG(col).
    Avg,
}

/// Incremental accumulator for one aggregate.
#[derive(Debug, Clone)]
pub struct AggState {
    count: u64,
    sum_i: i64,
    sum_f: f64,
    any_float: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    /// Fresh accumulator.
    pub fn new() -> Self {
        AggState { count: 0, sum_i: 0, sum_f: 0.0, any_float: false, min: None, max: None }
    }

    /// Folds one value in.
    pub fn add(&mut self, v: &Value) {
        self.count += 1;
        match v {
            Value::Int(i) => {
                self.sum_i = self.sum_i.wrapping_add(*i);
                self.sum_f += *i as f64;
            }
            Value::Float(f) => {
                self.any_float = true;
                self.sum_f += *f;
            }
            Value::Text(_) => {}
        }
        let better_min = self.min.as_ref().is_none_or(|m| v.cmp_total(m).is_lt());
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = self.max.as_ref().is_none_or(|m| v.cmp_total(m).is_gt());
        if better_max {
            self.max = Some(v.clone());
        }
    }

    /// Final value for `func`. Empty inputs give COUNT 0, SUM 0, AVG 0.0,
    /// and MIN/MAX Int(0) (SQL NULL is out of scope).
    pub fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.any_float {
                    Value::Float(self.sum_f)
                } else {
                    Value::Int(self.sum_i)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Int(0)),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Int(0)),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Float(0.0)
                } else {
                    Value::Float(self.sum_f / self.count as f64)
                }
            }
        }
    }

    /// The output type `func` produces given an input column type.
    pub fn output_type(func: AggFunc, input: DataType) -> DataType {
        match func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum => match input {
                DataType::Float => DataType::Float,
                _ => DataType::Int,
            },
            AggFunc::Min | AggFunc::Max => input,
        }
    }
}

impl Default for AggState {
    fn default() -> Self {
        Self::new()
    }
}

/// Fused select+aggregate (paper §4.2): one pass over T, folding matching
/// rows into the accumulator. Leaks only |T| — the filtered intermediate
/// size never materializes. `col = None` means COUNT(*)-style counting.
pub fn aggregate<M: EnclaveMemory>(
    host: &mut M,
    input: &mut FlatTable,
    func: AggFunc,
    col: Option<usize>,
    pred: &Predicate,
) -> Result<Value, DbError> {
    let schema = input.schema().clone();
    let mut state = AggState::new();
    input.for_each_row(host, |_, bytes| {
        if Schema::row_used(bytes) && pred.eval(&schema, bytes) {
            match col {
                Some(c) => state.add(&schema.decode_col(bytes, c)),
                None => state.add(&Value::Int(1)),
            }
        }
    })?;
    Ok(state.finish(func))
}

/// Grouped aggregation (paper §4.2): one pass with a per-group accumulator
/// table in oblivious memory (hash-bucketed by the group value). Output is
/// one row per group, sorted by group value for determinism, in a flat
/// table of exactly `#groups` rows (#groups is result-size leakage).
pub fn group_aggregate<M: EnclaveMemory>(
    host: &mut M,
    om: &OmBudget,
    input: &mut FlatTable,
    group_col: usize,
    func: AggFunc,
    agg_col: Option<usize>,
    pred: &Predicate,
    out_key: AeadKey,
) -> Result<FlatTable, DbError> {
    group_aggregate_padded(host, om, input, group_col, func, agg_col, pred, out_key, None)
}

/// [`group_aggregate`] with an optional padded output bound: in padding
/// mode the output structure is allocated at `pad_groups` rows whatever
/// the true group count (§7.2 pads "to the maximum supported number of
/// groups"), hiding it.
#[allow(clippy::too_many_arguments)]
pub fn group_aggregate_padded<M: EnclaveMemory>(
    host: &mut M,
    om: &OmBudget,
    input: &mut FlatTable,
    group_col: usize,
    func: AggFunc,
    agg_col: Option<usize>,
    pred: &Predicate,
    out_key: AeadKey,
    pad_groups: Option<u64>,
) -> Result<FlatTable, DbError> {
    use std::collections::HashMap;

    let schema = input.schema().clone();
    let group_width = schema.columns[group_col].dtype.width();
    // Conservative per-group charge: the encoded key plus the accumulator
    // (the paper's implementation claims 4 B/group; ours is honest about
    // its in-enclave footprint). The whole remaining budget is usable —
    // "each additional group requires very little space" (§4.2).
    let per_group = group_width + std::mem::size_of::<AggState>();
    let alloc = om.alloc_up_to(om.available());
    let group_limit = (alloc.bytes() / per_group).max(1);

    let mut groups: HashMap<Vec<u8>, AggState> = HashMap::new();
    let off = schema.col_offset(group_col);
    let mut overflow = false;
    input.for_each_row(host, |_, bytes| {
        if overflow || !Schema::row_used(bytes) || !pred.eval(&schema, bytes) {
            return;
        }
        let key = bytes[off..off + group_width].to_vec();
        if !groups.contains_key(&key) && groups.len() >= group_limit {
            overflow = true;
            return;
        }
        let state = groups.entry(key).or_default();
        match agg_col {
            Some(c) => state.add(&schema.decode_col(bytes, c)),
            None => state.add(&Value::Int(1)),
        }
    })?;
    if overflow {
        return Err(DbError::TooManyGroups { limit: group_limit });
    }

    // Deterministic output order: sort by encoded group key.
    let mut entries: Vec<(Vec<u8>, AggState)> = groups.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    let group_dtype = schema.columns[group_col].dtype;
    let agg_input_dtype = agg_col.map_or(DataType::Int, |c| schema.columns[c].dtype);
    let out_schema = Schema::new(vec![
        Column::new(schema.columns[group_col].name.clone(), group_dtype),
        Column::new("agg", AggState::output_type(func, agg_input_dtype)),
    ]);

    let n = entries.len() as u64;
    let capacity = pad_groups.unwrap_or(n).max(n).max(1);
    let mut out = FlatTable::create(host, out_key, out_schema.clone(), capacity)?;
    out.set_parallelism(input.parallelism());
    // Decode the group value through a scratch row so Text padding rules
    // match the input encoding. Output rows (groups, then the dummy pad up
    // to the public capacity) stream out in contiguous batched runs.
    let mut scratch = schema.dummy_row();
    let dummy = out_schema.dummy_row();
    let out_len = out_schema.row_len();
    let chunk = out.io_chunk_rows();
    let mut buf: Vec<u8> = Vec::with_capacity(chunk * out_len);
    let mut flushed = 0u64;
    for (i, (key_bytes, state)) in entries.iter().enumerate() {
        scratch[off..off + group_width].copy_from_slice(key_bytes);
        let group_value = schema.decode_col(&scratch, group_col);
        buf.extend_from_slice(&out_schema.encode_row(&[group_value, state.finish(func)])?);
        if buf.len() >= chunk * out_len {
            out.write_rows(host, flushed, &buf)?;
            flushed = i as u64 + 1;
            buf.clear();
        }
    }
    for i in n..capacity {
        buf.extend_from_slice(&dummy);
        if buf.len() >= chunk * out_len {
            out.write_rows(host, flushed, &buf)?;
            flushed = i + 1;
            buf.clear();
        }
    }
    out.write_rows(host, flushed, &buf)?;
    out.set_num_rows(n);
    out.set_insert_cursor(capacity);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use oblidb_enclave::Host;
    use oblidb_enclave::DEFAULT_OM_BYTES;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("grp", DataType::Int),
            Column::new("v", DataType::Int),
            Column::new("f", DataType::Float),
        ])
    }

    fn build(rows: &[(i64, i64, f64)]) -> (Host, FlatTable) {
        let s = schema();
        let mut host = Host::new();
        let encoded: Vec<Vec<u8>> = rows
            .iter()
            .map(|(g, v, f)| {
                s.encode_row(&[Value::Int(*g), Value::Int(*v), Value::Float(*f)]).unwrap()
            })
            .collect();
        let t = FlatTable::from_encoded_rows(
            &mut host,
            AeadKey([1u8; 32]),
            s,
            &encoded,
            rows.len() as u64,
        )
        .unwrap();
        (host, t)
    }

    #[test]
    fn plain_aggregates() {
        let (mut host, mut t) = build(&[(1, 10, 1.0), (1, 20, 2.0), (2, 30, 3.0), (2, 40, 4.5)]);
        assert_eq!(
            aggregate(&mut host, &mut t, AggFunc::Count, None, &Predicate::True).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            aggregate(&mut host, &mut t, AggFunc::Sum, Some(1), &Predicate::True).unwrap(),
            Value::Int(100)
        );
        assert_eq!(
            aggregate(&mut host, &mut t, AggFunc::Min, Some(1), &Predicate::True).unwrap(),
            Value::Int(10)
        );
        assert_eq!(
            aggregate(&mut host, &mut t, AggFunc::Max, Some(2), &Predicate::True).unwrap(),
            Value::Float(4.5)
        );
        assert_eq!(
            aggregate(&mut host, &mut t, AggFunc::Avg, Some(1), &Predicate::True).unwrap(),
            Value::Float(25.0)
        );
    }

    #[test]
    fn fused_predicate_filters() {
        let (mut host, mut t) = build(&[(1, 10, 0.0), (1, 20, 0.0), (2, 30, 0.0), (2, 40, 0.0)]);
        let pred = Predicate::cmp(t.schema(), "grp", CmpOp::Eq, Value::Int(2)).unwrap();
        assert_eq!(
            aggregate(&mut host, &mut t, AggFunc::Sum, Some(1), &pred).unwrap(),
            Value::Int(70)
        );
        assert_eq!(
            aggregate(&mut host, &mut t, AggFunc::Count, None, &pred).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn empty_aggregates() {
        let (mut host, mut t) = build(&[(1, 1, 1.0)]);
        let pred = Predicate::cmp(t.schema(), "v", CmpOp::Gt, Value::Int(100)).unwrap();
        assert_eq!(
            aggregate(&mut host, &mut t, AggFunc::Count, None, &pred).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            aggregate(&mut host, &mut t, AggFunc::Avg, Some(1), &pred).unwrap(),
            Value::Float(0.0)
        );
    }

    #[test]
    fn group_by_sums() {
        let (mut host, mut t) =
            build(&[(1, 10, 0.0), (2, 5, 0.0), (1, 20, 0.0), (3, 7, 0.0), (2, 5, 0.0)]);
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let mut out = group_aggregate(
            &mut host,
            &om,
            &mut t,
            0,
            AggFunc::Sum,
            Some(1),
            &Predicate::True,
            AeadKey([2u8; 32]),
        )
        .unwrap();
        let rows = out.collect_rows(&mut host).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(30)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(10)]);
        assert_eq!(rows[2], vec![Value::Int(3), Value::Int(7)]);
    }

    #[test]
    fn group_by_with_predicate_and_avg() {
        let (mut host, mut t) = build(&[(1, 10, 0.0), (1, 30, 0.0), (2, 100, 0.0), (1, -100, 0.0)]);
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let pred = Predicate::cmp(t.schema(), "v", CmpOp::Gt, Value::Int(0)).unwrap();
        let mut out = group_aggregate(
            &mut host,
            &om,
            &mut t,
            0,
            AggFunc::Avg,
            Some(1),
            &pred,
            AeadKey([2u8; 32]),
        )
        .unwrap();
        let rows = out.collect_rows(&mut host).unwrap();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Float(20.0)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Float(100.0)]);
    }

    #[test]
    fn group_limit_respects_om() {
        let rows: Vec<(i64, i64, f64)> = (0..50).map(|i| (i, 1, 0.0)).collect();
        let (mut host, mut t) = build(&rows);
        // Budget for only a handful of groups.
        let om = OmBudget::new(200);
        let result = group_aggregate(
            &mut host,
            &om,
            &mut t,
            0,
            AggFunc::Count,
            None,
            &Predicate::True,
            AeadKey([2u8; 32]),
        );
        assert!(matches!(result.err().unwrap(), DbError::TooManyGroups { .. }));
    }

    #[test]
    fn aggregate_trace_is_data_independent() {
        let (mut host, mut t) = build(&[(1, 1, 0.0), (2, 2, 0.0), (3, 3, 0.0)]);
        let p1 = Predicate::cmp(t.schema(), "v", CmpOp::Gt, Value::Int(100)).unwrap();
        host.start_trace();
        aggregate(&mut host, &mut t, AggFunc::Sum, Some(1), &p1).unwrap();
        let a = host.take_trace();
        host.start_trace();
        aggregate(&mut host, &mut t, AggFunc::Sum, Some(1), &Predicate::True).unwrap();
        let b = host.take_trace();
        assert_eq!(a, b, "aggregate access pattern must not depend on matches");
    }

    #[test]
    fn group_count_without_agg_col() {
        let (mut host, mut t) = build(&[(5, 0, 0.0), (5, 0, 0.0), (9, 0, 0.0)]);
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let mut out = group_aggregate(
            &mut host,
            &om,
            &mut t,
            0,
            AggFunc::Count,
            None,
            &Predicate::True,
            AeadKey([2u8; 32]),
        )
        .unwrap();
        let rows = out.collect_rows(&mut host).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::Int(5), Value::Int(2)], vec![Value::Int(9), Value::Int(1)],]
        );
    }
}
