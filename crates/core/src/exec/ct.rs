//! Branch-free (constant-time) select primitives for operator hot loops.
//!
//! The oblivious operators already make their *memory access patterns*
//! data-independent — every candidate block is read and rewritten either
//! way. These helpers remove the remaining data-dependent *branches*
//! inside those loops (the `if swap { .. }` / `if place { .. }` bodies),
//! replacing them with cmov-style `u64` mask selects: the condition
//! expands to an all-ones/all-zeros mask and both outcomes are computed
//! over whole 8-byte words. That keeps the instruction stream and store
//! pattern identical for hit and miss — no in-enclave branch predictor
//! signal — and, as a bonus, the now-predictable loops vectorize.
//!
//! All safe code; byte tails are handled with an 8-bit mask.

/// Expands a condition to an all-ones (`true`) or all-zeros (`false`)
/// 64-bit mask without branching.
#[inline(always)]
pub fn mask64(cond: bool) -> u64 {
    (cond as u64).wrapping_neg()
}

/// Swaps `a` and `b` when `cond` is true, touching every byte of both
/// slices either way. Slices must have equal length.
#[inline(always)]
pub fn cond_swap_bytes(cond: bool, a: &mut [u8], b: &mut [u8]) {
    debug_assert_eq!(a.len(), b.len());
    let m = mask64(cond);
    let mut ac = a.chunks_exact_mut(8);
    let mut bc = b.chunks_exact_mut(8);
    for (aw, bw) in (&mut ac).zip(&mut bc) {
        let x = (u64::from_ne_bytes(aw[..8].try_into().unwrap())
            ^ u64::from_ne_bytes(bw[..8].try_into().unwrap()))
            & m;
        aw.copy_from_slice(&(u64::from_ne_bytes(aw[..8].try_into().unwrap()) ^ x).to_ne_bytes());
        bw.copy_from_slice(&(u64::from_ne_bytes(bw[..8].try_into().unwrap()) ^ x).to_ne_bytes());
    }
    let m8 = m as u8;
    for (ab, bb) in ac.into_remainder().iter_mut().zip(bc.into_remainder().iter_mut()) {
        let x = (*ab ^ *bb) & m8;
        *ab ^= x;
        *bb ^= x;
    }
}

/// Swaps two `u128` values when `cond` is true, branch-free.
#[inline(always)]
pub fn cond_swap_u128(cond: bool, a: &mut u128, b: &mut u128) {
    let m = (cond as u128).wrapping_neg();
    let x = (*a ^ *b) & m;
    *a ^= x;
    *b ^= x;
}

/// Overwrites `dst` with `src` when `cond` is true, touching every byte
/// of `dst` either way. Slices must have equal length.
#[inline(always)]
pub fn cond_copy_bytes(cond: bool, dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let m = mask64(cond);
    let mut dc = dst.chunks_exact_mut(8);
    let mut sc = src.chunks_exact(8);
    for (dw, sw) in (&mut dc).zip(&mut sc) {
        let d = u64::from_ne_bytes(dw[..8].try_into().unwrap());
        let s = u64::from_ne_bytes(sw[..8].try_into().unwrap());
        dw.copy_from_slice(&(d ^ ((d ^ s) & m)).to_ne_bytes());
    }
    let m8 = m as u8;
    for (db, sb) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *db ^= (*db ^ *sb) & m8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_is_all_or_nothing() {
        assert_eq!(mask64(true), u64::MAX);
        assert_eq!(mask64(false), 0);
    }

    #[test]
    fn swap_bytes_both_ways() {
        for len in [0usize, 1, 7, 8, 9, 16, 37, 256] {
            let a0: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let b0: Vec<u8> = (0..len).map(|i| (i * 3 + 1) as u8).collect();
            let (mut a, mut b) = (a0.clone(), b0.clone());
            cond_swap_bytes(false, &mut a, &mut b);
            assert_eq!((&a, &b), (&a0, &b0), "len {len} hold");
            cond_swap_bytes(true, &mut a, &mut b);
            assert_eq!((&a, &b), (&b0, &a0), "len {len} swap");
        }
    }

    #[test]
    fn swap_u128_both_ways() {
        let (mut a, mut b) = (7u128 << 100, 9u128);
        cond_swap_u128(false, &mut a, &mut b);
        assert_eq!((a, b), (7u128 << 100, 9u128));
        cond_swap_u128(true, &mut a, &mut b);
        assert_eq!((a, b), (9u128, 7u128 << 100));
    }

    #[test]
    fn copy_bytes_both_ways() {
        for len in [0usize, 1, 7, 8, 9, 16, 37, 256] {
            let src: Vec<u8> = (0..len).map(|i| (i * 5 + 2) as u8).collect();
            let dst0: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut dst = dst0.clone();
            cond_copy_bytes(false, &mut dst, &src);
            assert_eq!(dst, dst0, "len {len} hold");
            cond_copy_bytes(true, &mut dst, &src);
            assert_eq!(dst, src, "len {len} copy");
        }
    }
}
