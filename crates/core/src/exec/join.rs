//! Oblivious join algorithms (paper §4.3).
//!
//! * [`hash_join`] — block-partitioned oblivious hash join: chunks of T1
//!   that fit in oblivious memory become an in-enclave hash table; every
//!   probe of T2 writes exactly one output block (joined row or dummy), so
//!   the access pattern depends only on the table sizes and the budget.
//! * [`sort_merge_join`] — the Opaque join and its 0-OM variant: union the
//!   tables, obliviously sort by join key, then a linear merge scan that
//!   writes one output block per union row. The two variants differ only
//!   in whether the sort's chunk buffer is charged to oblivious memory
//!   (Opaque) or lives in ordinary enclave memory (0-OM, chunk of 1 by
//!   default).
//!
//! Sort keys hash the join value (SipHash-2-4 of the encoded column bytes)
//! so text joins group correctly; the merge verifies true byte equality,
//! making a hash collision harmless for matching (it only costs adjacency,
//! with probability ≈ 2⁻⁶⁴).

use oblidb_crypto::aead::AeadKey;
use oblidb_crypto::SipHash24;
use oblidb_enclave::{EnclaveMemory, OmBudget};

use crate::error::DbError;
use crate::table::FlatTable;
use crate::types::{Column, Schema};

/// Bytes of an encoded column value (the join key's canonical form).
fn col_bytes(schema: &Schema, row: &[u8], col: usize) -> Vec<u8> {
    let off = schema.col_offset(col);
    let w = schema.columns[col].dtype.width();
    row[off..off + w].to_vec()
}

/// Output schema of a join: all of T1's columns then all of T2's.
fn join_schema(s1: &Schema, s2: &Schema) -> Schema {
    s1.join("t1", s2, "t2")
}

/// Encodes a joined row from two used input rows (strips the inner flags).
fn join_rows(out_len: usize, r1: &[u8], r2: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(out_len);
    out.push(1u8);
    out.extend_from_slice(&r1[1..]);
    out.extend_from_slice(&r2[1..]);
    debug_assert_eq!(out.len(), out_len);
    out
}

/// Oblivious hash join (paper §4.3). Complexity O(|T1|·|T2| / S); the
/// output data structure holds one block per probe:
/// `ceil(|T1| / chunk) · |T2|` blocks.
pub fn hash_join<M: EnclaveMemory>(
    host: &mut M,
    om: &OmBudget,
    t1: &mut FlatTable,
    c1: usize,
    t2: &mut FlatTable,
    c2: usize,
    out_key: AeadKey,
) -> Result<FlatTable, DbError> {
    use std::collections::HashMap;

    let s1 = t1.schema().clone();
    let s2 = t2.schema().clone();
    let out_schema = join_schema(&s1, &s2);
    let out_len = out_schema.row_len();

    // Oblivious-memory chunk: how much of T1 fits in the enclave at once.
    let entry_size = s1.row_len() + 32;
    let alloc = om.alloc_up_to(t1.capacity() as usize * entry_size);
    let chunk = ((alloc.bytes() / entry_size).max(1) as u64).min(t1.capacity());
    let passes = t1.capacity().div_ceil(chunk);

    let mut out = FlatTable::create(host, out_key, out_schema.clone(), passes * t2.capacity())?;
    out.set_parallelism(t1.parallelism());
    let dummy = out_schema.dummy_row();

    let row1 = s1.row_len();
    let row2 = s2.row_len();
    let io_chunk = t2.io_chunk_rows();
    let mut matches = 0u64;
    let mut out_pos = 0u64;
    let mut out_buf: Vec<u8> = Vec::with_capacity(io_chunk * out_len);
    for pass in 0..passes {
        let lo = pass * chunk;
        let hi = (lo + chunk).min(t1.capacity());
        // Build the in-enclave hash table from this chunk of T1, streaming
        // the (contiguous) chunk in io-sized batched runs so the region
        // scratch stays bounded — the hash table itself is what the OM
        // budget pays for.
        let mut build: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        let build_io = t1.io_chunk_rows();
        let mut at = lo;
        while at < hi {
            let n = build_io.min((hi - at) as usize);
            let data = t1.read_rows(host, at, n)?;
            for bytes in data.chunks_exact(row1) {
                if Schema::row_used(bytes) {
                    build.insert(col_bytes(&s1, bytes, c1), bytes.to_vec());
                }
            }
            at += n as u64;
        }
        // Probe every row of T2; each probe emits exactly one output block
        // (paper: "After each check, a row is written to the next block of
        // an output table") — reads and writes move in batched runs.
        let mut start = 0u64;
        while start < t2.capacity() {
            let n = io_chunk.min((t2.capacity() - start) as usize);
            let probes = t2.read_rows(host, start, n)?;
            out_buf.clear();
            for bytes in probes.chunks_exact(row2) {
                let hit = if Schema::row_used(bytes) {
                    build.get(&col_bytes(&s2, bytes, c2))
                } else {
                    None
                };
                match hit {
                    Some(r1) => {
                        out_buf.extend_from_slice(&join_rows(out_len, r1, bytes));
                        matches += 1;
                    }
                    None => out_buf.extend_from_slice(&dummy),
                }
            }
            out.write_rows(host, out_pos, &out_buf)?;
            out_pos += n as u64;
            start += n as u64;
        }
    }
    out.set_num_rows(matches);
    out.set_insert_cursor(out.capacity());
    Ok(out)
}

/// Which sort-merge variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortMergeVariant {
    /// Opaque join: quicksort chunks held in oblivious memory, then a
    /// bitonic network over chunks (paper §4.3).
    Opaque,
    /// 0-OM join: the same network with `scratch_rows` of ordinary
    /// (non-oblivious) enclave memory — zero oblivious memory used.
    ZeroOm {
        /// Rows of plain enclave scratch used to accelerate the sort.
        scratch_rows: usize,
    },
}

/// Oblivious sort-merge join for foreign-key joins: T1 is the primary
/// side (unique join keys), T2 the foreign side. Output structure size is
/// the padded union size; real rows number at most |T2|.
pub fn sort_merge_join<M: EnclaveMemory>(
    host: &mut M,
    om: &OmBudget,
    t1: &mut FlatTable,
    c1: usize,
    t2: &mut FlatTable,
    c2: usize,
    out_key: AeadKey,
    variant: SortMergeVariant,
) -> Result<FlatTable, DbError> {
    let s1 = t1.schema().clone();
    let s2 = t2.schema().clone();
    let out_schema = join_schema(&s1, &s2);
    let out_len = out_schema.row_len();

    // Union row layout: [used][tag][key u128][padded original row].
    let payload = s1.row_len().max(s2.row_len());
    let union_schema =
        Schema::new(vec![Column::new("u", crate::types::DataType::Text(1 + 16 + payload))]);
    let union_len = union_schema.row_len();
    let n = (t1.capacity() + t2.capacity()).max(2).next_power_of_two();
    let union_key = AeadKey(oblidb_crypto::derive_key(&out_key.0, b"join-union"));
    let mut union = FlatTable::create(host, union_key, union_schema, n)?;
    union.set_parallelism(t1.parallelism());

    let kd = oblidb_crypto::derive_key(&out_key.0, b"join-key-hash");
    let hasher = SipHash24::new(
        u64::from_le_bytes(kd[..8].try_into().unwrap()),
        u64::from_le_bytes(kd[8..16].try_into().unwrap()),
    );
    // Sort key: (hash of join value) ‖ tag, dummies at u128::MAX. The tag
    // bit puts the primary row before its foreign matches.
    let make_key = |hash: u64, tag: u8| ((hash as u128) << 1) | tag as u128;

    let pack = |used: bool, tag: u8, hash: u64, row: &[u8]| -> Vec<u8> {
        let mut out = vec![0u8; union_len];
        if used {
            out[0] = 1;
            out[1] = tag;
            out[2..18].copy_from_slice(&make_key(hash, tag).to_le_bytes());
            out[18..18 + row.len()].copy_from_slice(row);
        }
        out
    };

    // Fill the union table: T1 then T2 then dummies (all positions get one
    // write; the fill pattern is size-determined). Both sides stream in
    // batched runs: one read crossing from the source, one write crossing
    // into the union, per chunk.
    let mut pos = 0u64;
    let mut pack_buf: Vec<u8> = Vec::new();
    for side in 0..2u8 {
        let (table, schema, col): (&mut FlatTable, &Schema, usize) =
            if side == 0 { (&mut *t1, &s1, c1) } else { (&mut *t2, &s2, c2) };
        let row_len = schema.row_len();
        let chunk = table.io_chunk_rows();
        let cap = table.capacity();
        let mut start = 0u64;
        while start < cap {
            let count = chunk.min((cap - start) as usize);
            let data = table.read_rows(host, start, count)?;
            pack_buf.clear();
            for bytes in data.chunks_exact(row_len) {
                let used = Schema::row_used(bytes);
                let h = hasher.hash(&col_bytes(schema, bytes, col));
                pack_buf.extend_from_slice(&pack(used, side, h, bytes));
            }
            union.write_rows(host, pos, &pack_buf)?;
            pos += count as u64;
            start += count as u64;
        }
    }

    // Oblivious sort by key; dummies (key MAX) sink to the end.
    let union_sort_key = |bytes: &[u8]| -> u128 {
        if bytes[0] != 1 {
            return u128::MAX;
        }
        u128::from_le_bytes(bytes[2..18].try_into().unwrap())
    };
    let (chunk_rows, oblivious_local, _om_alloc) = match variant {
        SortMergeVariant::Opaque => {
            let alloc = om.alloc_up_to(n as usize * union_len);
            (((alloc.bytes() / union_len).max(1)).min(n as usize), false, Some(alloc))
        }
        // The 0-OM variant keeps even its in-enclave sorting data-oblivious
        // (bitonic), trading CPU for zero trust in enclave memory privacy.
        SortMergeVariant::ZeroOm { scratch_rows } => (scratch_rows.max(1), true, None),
    };
    super::sort::bitonic_sort_with(
        host,
        &mut union,
        n,
        union_sort_key,
        chunk_rows,
        oblivious_local,
    )?;

    // Merge scan: one read of the union and one output write per position,
    // both in batched runs.
    let mut out = FlatTable::create(host, out_key, out_schema.clone(), n)?;
    out.set_parallelism(t1.parallelism());
    let dummy = out_schema.dummy_row();
    let mut current_primary: Option<(Vec<u8>, Vec<u8>)> = None; // (key bytes, row)
    let mut matches = 0u64;
    let merge_chunk = union.io_chunk_rows();
    let mut out_buf: Vec<u8> = Vec::with_capacity(merge_chunk * out_len);
    let mut start = 0u64;
    while start < n {
        let count = merge_chunk.min((n - start) as usize);
        let data = union.read_rows(host, start, count)?;
        out_buf.clear();
        for bytes in data.chunks_exact(union_len) {
            let used = bytes[0] == 1;
            let tag = bytes[1];
            let row = &bytes[18..];
            let mut emit: Option<Vec<u8>> = None;
            if used && tag == 0 {
                let r1 = &row[..s1.row_len()];
                current_primary = Some((col_bytes(&s1, r1, c1), r1.to_vec()));
            } else if used && tag == 1 {
                let r2 = &row[..s2.row_len()];
                if let Some((pk, pr)) = &current_primary {
                    // Verify true equality — hash adjacency is not trusted.
                    if *pk == col_bytes(&s2, r2, c2) {
                        emit = Some(join_rows(out_len, pr, r2));
                    }
                }
            }
            match emit {
                Some(joined) => {
                    out_buf.extend_from_slice(&joined);
                    matches += 1;
                }
                None => out_buf.extend_from_slice(&dummy),
            }
        }
        out.write_rows(host, start, &out_buf)?;
        start += count as u64;
    }
    out.set_num_rows(matches);
    out.set_insert_cursor(out.capacity());
    union.free(host)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DataType, Value};
    use oblidb_enclave::Host;
    use oblidb_enclave::DEFAULT_OM_BYTES;

    fn schema1() -> Schema {
        Schema::new(vec![Column::new("pk", DataType::Int), Column::new("a", DataType::Int)])
    }

    fn schema2() -> Schema {
        Schema::new(vec![Column::new("fk", DataType::Int), Column::new("b", DataType::Int)])
    }

    fn build<M: EnclaveMemory>(
        host: &mut M,
        schema: Schema,
        rows: &[(i64, i64)],
        seed: u8,
    ) -> FlatTable {
        let encoded: Vec<Vec<u8>> = rows
            .iter()
            .map(|(k, v)| schema.encode_row(&[Value::Int(*k), Value::Int(*v)]).unwrap())
            .collect();
        FlatTable::from_encoded_rows(host, AeadKey([seed; 32]), schema, &encoded, rows.len() as u64)
            .unwrap()
    }

    /// Reference nested-loop join on decoded values.
    fn reference(t1: &[(i64, i64)], t2: &[(i64, i64)]) -> Vec<(i64, i64, i64, i64)> {
        let mut out = Vec::new();
        for (pk, a) in t1 {
            for (fk, b) in t2 {
                if pk == fk {
                    out.push((*pk, *a, *fk, *b));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn extract<M: EnclaveMemory>(host: &mut M, out: &mut FlatTable) -> Vec<(i64, i64, i64, i64)> {
        let mut rows: Vec<(i64, i64, i64, i64)> = out
            .collect_rows(host)
            .unwrap()
            .iter()
            .map(|r| {
                (
                    r[0].as_int().unwrap(),
                    r[1].as_int().unwrap(),
                    r[2].as_int().unwrap(),
                    r[3].as_int().unwrap(),
                )
            })
            .collect();
        rows.sort_unstable();
        rows
    }

    fn t1_rows() -> Vec<(i64, i64)> {
        (0..10).map(|i| (i, i * 100)).collect()
    }

    fn t2_rows() -> Vec<(i64, i64)> {
        // Foreign side: multiple matches per key, some misses.
        vec![(0, 1), (0, 2), (3, 3), (3, 4), (3, 5), (9, 6), (42, 7), (-1, 8)]
    }

    #[test]
    fn hash_join_matches_reference() {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let mut t1 = build(&mut host, schema1(), &t1_rows(), 1);
        let mut t2 = build(&mut host, schema2(), &t2_rows(), 2);
        let mut out =
            hash_join(&mut host, &om, &mut t1, 0, &mut t2, 0, AeadKey([9u8; 32])).unwrap();
        assert_eq!(extract(&mut host, &mut out), reference(&t1_rows(), &t2_rows()));
    }

    #[test]
    fn hash_join_multi_pass_small_om() {
        // Oblivious memory for ~2 rows of T1 → many passes, same answer.
        let mut host = Host::new();
        let mut t1 = build(&mut host, schema1(), &t1_rows(), 1);
        let mut t2 = build(&mut host, schema2(), &t2_rows(), 2);
        let om = OmBudget::new(2 * (t1.row_len() + 32));
        let mut out =
            hash_join(&mut host, &om, &mut t1, 0, &mut t2, 0, AeadKey([9u8; 32])).unwrap();
        assert_eq!(extract(&mut host, &mut out), reference(&t1_rows(), &t2_rows()));
        // Output structure: passes × |T2| blocks.
        assert_eq!(out.capacity() % t2_rows().len() as u64, 0);
        assert!(out.capacity() > t2_rows().len() as u64);
    }

    #[test]
    fn opaque_join_matches_reference() {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let mut t1 = build(&mut host, schema1(), &t1_rows(), 1);
        let mut t2 = build(&mut host, schema2(), &t2_rows(), 2);
        let mut out = sort_merge_join(
            &mut host,
            &om,
            &mut t1,
            0,
            &mut t2,
            0,
            AeadKey([9u8; 32]),
            SortMergeVariant::Opaque,
        )
        .unwrap();
        assert_eq!(extract(&mut host, &mut out), reference(&t1_rows(), &t2_rows()));
    }

    #[test]
    fn zero_om_join_matches_reference() {
        let mut host = Host::new();
        let om = OmBudget::new(0); // truly zero oblivious memory
        let mut t1 = build(&mut host, schema1(), &t1_rows(), 1);
        let mut t2 = build(&mut host, schema2(), &t2_rows(), 2);
        let mut out = sort_merge_join(
            &mut host,
            &om,
            &mut t1,
            0,
            &mut t2,
            0,
            AeadKey([9u8; 32]),
            SortMergeVariant::ZeroOm { scratch_rows: 1 },
        )
        .unwrap();
        assert_eq!(extract(&mut host, &mut out), reference(&t1_rows(), &t2_rows()));
    }

    #[test]
    fn text_join_keys() {
        let s1 = Schema::new(vec![
            Column::new("url", DataType::Text(24)),
            Column::new("rank", DataType::Int),
        ]);
        let s2 = Schema::new(vec![
            Column::new("dest", DataType::Text(24)),
            Column::new("rev", DataType::Int),
        ]);
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let urls = ["http://a.example/page", "http://b.example/page", "http://c.example"];
        let r1: Vec<Vec<u8>> = urls
            .iter()
            .enumerate()
            .map(|(i, u)| {
                s1.encode_row(&[Value::Text(u.to_string()), Value::Int(i as i64)]).unwrap()
            })
            .collect();
        let r2: Vec<Vec<u8>> = [urls[0], urls[2], urls[2], "http://nope"]
            .iter()
            .enumerate()
            .map(|(i, u)| {
                s2.encode_row(&[Value::Text(u.to_string()), Value::Int(100 + i as i64)]).unwrap()
            })
            .collect();
        let mut t1 =
            FlatTable::from_encoded_rows(&mut host, AeadKey([1u8; 32]), s1, &r1, 3).unwrap();
        let mut t2 =
            FlatTable::from_encoded_rows(&mut host, AeadKey([2u8; 32]), s2, &r2, 4).unwrap();
        for variant in [SortMergeVariant::Opaque, SortMergeVariant::ZeroOm { scratch_rows: 2 }] {
            let out = sort_merge_join(
                &mut host,
                &om,
                &mut t1,
                0,
                &mut t2,
                0,
                AeadKey([9u8; 32]),
                variant,
            )
            .unwrap();
            assert_eq!(out.num_rows(), 3, "{variant:?}");
        }
        let mut out =
            hash_join(&mut host, &om, &mut t1, 0, &mut t2, 0, AeadKey([9u8; 32])).unwrap();
        assert_eq!(out.num_rows(), 3);
        let rows = out.collect_rows(&mut host).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn empty_foreign_side() {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let mut t1 = build(&mut host, schema1(), &t1_rows(), 1);
        let mut t2 = build(&mut host, schema2(), &[(999, 0)], 2);
        let mut out =
            hash_join(&mut host, &om, &mut t1, 0, &mut t2, 0, AeadKey([9u8; 32])).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert!(out.collect_rows(&mut host).unwrap().is_empty());
    }

    #[test]
    fn join_traces_depend_only_on_sizes() {
        // Two different data sets of identical sizes: identical traces.
        for variant in [
            None, // hash join
            Some(SortMergeVariant::Opaque),
            Some(SortMergeVariant::ZeroOm { scratch_rows: 2 }),
        ] {
            let mut traces = Vec::new();
            for flip in [0i64, 1] {
                let mut host = Host::new();
                let om = OmBudget::new(4096);
                let d1: Vec<(i64, i64)> = (0..8).map(|i| (i * (1 + flip), i)).collect();
                let d2: Vec<(i64, i64)> = (0..6).map(|i| (i * (3 - flip), i)).collect();
                let mut t1 = build(&mut host, schema1(), &d1, 1);
                let mut t2 = build(&mut host, schema2(), &d2, 2);
                host.start_trace();
                match variant {
                    None => {
                        hash_join(&mut host, &om, &mut t1, 0, &mut t2, 0, AeadKey([9u8; 32]))
                            .unwrap();
                    }
                    Some(v) => {
                        sort_merge_join(
                            &mut host,
                            &om,
                            &mut t1,
                            0,
                            &mut t2,
                            0,
                            AeadKey([9u8; 32]),
                            v,
                        )
                        .unwrap();
                    }
                }
                traces.push(host.take_trace());
            }
            assert_eq!(traces[0], traces[1], "{variant:?}");
        }
    }

    #[test]
    fn output_of_join_composes_with_select() {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let mut t1 = build(&mut host, schema1(), &t1_rows(), 1);
        let mut t2 = build(&mut host, schema2(), &t2_rows(), 2);
        let mut joined =
            hash_join(&mut host, &om, &mut t1, 0, &mut t2, 0, AeadKey([9u8; 32])).unwrap();
        let pred = Predicate_on_b(&joined);
        let out = crate::exec::select::select_small(
            &mut host,
            &om,
            &mut joined,
            &pred,
            AeadKey([8u8; 32]),
            3,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[allow(non_snake_case)]
    fn Predicate_on_b(joined: &FlatTable) -> crate::predicate::Predicate {
        use crate::predicate::CmpOp;
        crate::predicate::Predicate::cmp(joined.schema(), "t2.b", CmpOp::Ge, Value::Int(3)).unwrap()
    }
}
