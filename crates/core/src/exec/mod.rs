//! The oblivious physical operators (paper §4, Figure 3).

pub mod aggregate;
pub mod ct;
pub mod join;
pub mod select;
pub mod sort;

pub use aggregate::{aggregate, group_aggregate, AggFunc, AggState};
pub use join::{hash_join, sort_merge_join, SortMergeVariant};
pub use select::{
    select_continuous, select_hash, select_large, select_naive, select_small, HASH_SLOTS,
};
pub use sort::bitonic_sort;
