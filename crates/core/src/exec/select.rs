//! The oblivious SELECT algorithms (paper §4.1, Figures 3–5).
//!
//! All five produce a flat output table R from a flat input T. The planner
//! supplies `|R|` (the match count) up front, from its preliminary scan —
//! it is part of the leakage contract. Each algorithm's access pattern is
//! a deterministic function of `(|T|, |R|, oblivious-memory budget)` only;
//! trace-equality tests in `tests/` verify this.

use oblidb_crypto::aead::AeadKey;
use oblidb_crypto::SipHash24;
use oblidb_enclave::{EnclaveMemory, EnclaveRng, OmBudget};
use oblidb_oram::{PathOram, PosMapKind};

use crate::error::DbError;
use crate::predicate::Predicate;
use crate::table::FlatTable;
use crate::types::Schema;

/// Slots per hash bucket (paper §4.1: "a fixed-depth list of 5 slots for
/// each position in R", following Azar et al.'s balanced allocations).
pub const HASH_SLOTS: usize = 5;

/// Small (Figure 4A): multiple fast passes over T, buffering matches in
/// oblivious memory; the buffer is flushed to R after each pass. Fast when
/// R fits in a few enclave-fulls. Uses whatever oblivious memory is
/// available; a smaller budget only means more passes.
pub fn select_small<M: EnclaveMemory>(
    host: &mut M,
    om: &OmBudget,
    input: &mut FlatTable,
    pred: &Predicate,
    out_key: AeadKey,
    out_rows: u64,
) -> Result<FlatTable, DbError> {
    let schema = input.schema().clone();
    let row_len = schema.row_len();
    let mut out = FlatTable::create(host, out_key, schema.clone(), out_rows.max(1))?;
    out.set_parallelism(input.parallelism());

    // Buffer capacity: everything the OM budget will give us, at least one
    // row so progress is guaranteed.
    let alloc = om.alloc_up_to((out_rows.max(1) as usize) * row_len);
    let buf_rows = (alloc.bytes() / row_len).max(1) as u64;
    let passes = out_rows.div_ceil(buf_rows).max(1);

    let mut written = 0u64;
    for pass in 0..passes {
        let window_lo = pass * buf_rows;
        let window_hi = (window_lo + buf_rows).min(out_rows);
        let mut buffer: Vec<u8> = Vec::with_capacity((window_hi - window_lo) as usize * row_len);
        let mut seen = 0u64;
        // One full batched pass over T; matches numbered
        // [window_lo, window_hi) go to the enclave buffer.
        input.for_each_row(host, |_, bytes| {
            if Schema::row_used(bytes) && pred.eval(&schema, bytes) {
                if seen >= window_lo && seen < window_hi {
                    buffer.extend_from_slice(bytes);
                }
                seen += 1;
            }
        })?;
        // Flush the buffer to R: the window is contiguous, one crossing.
        out.write_rows(host, written, &buffer)?;
        written += (buffer.len() / row_len) as u64;
    }
    out.set_num_rows(written);
    out.set_insert_cursor(written);
    Ok(out)
}

/// Large (Figure 4B): copy T to R, then one pass over R clearing
/// unselected rows (dummy writes for selected ones). Fast when R contains
/// almost all of T. Uses no oblivious memory.
pub fn select_large<M: EnclaveMemory>(
    host: &mut M,
    input: &mut FlatTable,
    pred: &Predicate,
    out_key: AeadKey,
) -> Result<FlatTable, DbError> {
    let schema = input.schema().clone();
    let mut out = FlatTable::create(host, out_key, schema.clone(), input.capacity())?;
    out.set_parallelism(input.parallelism());
    // Copy pass: data-independent, one chunk per crossing each way.
    let row_len = schema.row_len();
    let chunk = input.io_chunk_rows();
    let cap = input.capacity();
    let mut start = 0u64;
    let mut buf = Vec::with_capacity(chunk * row_len);
    while start < cap {
        let n = chunk.min((cap - start) as usize);
        let bytes = input.read_rows(host, start, n)?;
        out.write_rows(host, start, bytes)?;
        start += n as u64;
    }
    // Clear pass: every block read and rewritten (cleared or dummy),
    // chunk by chunk.
    let dummy = schema.dummy_row();
    let mut kept = 0u64;
    start = 0;
    while start < cap {
        let n = chunk.min((cap - start) as usize);
        buf.clear();
        buf.extend_from_slice(out.read_rows(host, start, n)?);
        for bytes in buf.chunks_exact_mut(row_len) {
            let keep = Schema::row_used(bytes) && pred.eval(&schema, bytes);
            kept += keep as u64;
            // Masked clear: kept and cleared rows take the same stores.
            super::ct::cond_copy_bytes(!keep, bytes, &dummy);
        }
        out.write_rows(host, start, &buf)?;
        start += n as u64;
    }
    out.set_num_rows(kept);
    out.set_insert_cursor(out.capacity());
    Ok(out)
}

/// Continuous (Figure 4C): when the selected rows form one contiguous
/// segment of T, one pass suffices — row `i` of T maps to position
/// `i mod |R|` of R (real write if selected, dummy otherwise). Choosing
/// this algorithm leaks that the result was contiguous (§4.1); it can be
/// disabled. Uses no oblivious memory.
pub fn select_continuous<M: EnclaveMemory>(
    host: &mut M,
    input: &mut FlatTable,
    pred: &Predicate,
    out_key: AeadKey,
    out_rows: u64,
) -> Result<FlatTable, DbError> {
    let schema = input.schema().clone();
    let r = out_rows.max(1);
    let mut out = FlatTable::create(host, out_key, schema.clone(), r)?;
    out.set_parallelism(input.parallelism());
    let mut matched = 0u64;
    let row_len = schema.row_len();
    let chunk = input.io_chunk_rows();
    let cap = input.capacity();
    let mut run_buf = Vec::new();
    let mut start = 0u64;
    while start < cap {
        let n = chunk.min((cap - start) as usize);
        let in_rows = input.read_rows(host, start, n)?;
        // Uniform read-modify-write of R[i mod r], batched per wraparound
        // segment: positions stay contiguous (and distinct) until the next
        // wrap, so each segment is one read crossing and one write
        // crossing. Dummy writes rewrite current contents so earlier real
        // writes survive the wraparound.
        let mut off = 0usize;
        while off < n {
            let pos0 = (start + off as u64) % r;
            let run = (n - off).min((r - pos0) as usize);
            run_buf.clear();
            run_buf.extend_from_slice(out.read_rows(host, pos0, run)?);
            for j in 0..run {
                let bytes = &in_rows[(off + j) * row_len..(off + j + 1) * row_len];
                let selected = Schema::row_used(bytes) && pred.eval(&schema, bytes);
                let take = selected & (matched < out_rows);
                // Masked write-through: real and dummy updates of R run
                // the same stores over the same bytes.
                super::ct::cond_copy_bytes(
                    take,
                    &mut run_buf[j * row_len..(j + 1) * row_len],
                    bytes,
                );
                matched += take as u64;
            }
            out.write_rows(host, pos0, &run_buf)?;
            off += run;
        }
        start += n as u64;
    }
    out.set_num_rows(matched);
    out.set_insert_cursor(out.capacity());
    Ok(out)
}

/// The two per-row bucket positions probed by the Hash algorithm. Public
/// function of the row index only — never of row contents (Figure 5).
fn hash_positions(h1: &SipHash24, h2: &SipHash24, i: u64, buckets: u64) -> (u64, u64) {
    (h1.hash_u64(i) % buckets, h2.hash_u64(i) % buckets)
}

/// Hash (Figure 5): the general-purpose fallback. Row `i` of T hashes (by
/// *index*, not content) to two buckets of R with [`HASH_SLOTS`] slots
/// each; all ten slots are read and rewritten per input row — one of them
/// possibly with the real row. Uses no oblivious memory.
pub fn select_hash<M: EnclaveMemory>(
    host: &mut M,
    input: &mut FlatTable,
    pred: &Predicate,
    out_key: AeadKey,
    out_rows: u64,
) -> Result<FlatTable, DbError> {
    let schema = input.schema().clone();
    let buckets = out_rows.max(1);
    let capacity = buckets * HASH_SLOTS as u64;
    let mut out = FlatTable::create(host, out_key.clone(), schema.clone(), capacity)?;
    out.set_parallelism(input.parallelism());

    // Hash keys derive from the output table key: deterministic per query,
    // unknown to the adversary, and independent of the data.
    let d1 = oblidb_crypto::derive_key(&out_key.0, b"hash-select-1");
    let d2 = oblidb_crypto::derive_key(&out_key.0, b"hash-select-2");
    let h1 = SipHash24::new(
        u64::from_le_bytes(d1[..8].try_into().unwrap()),
        u64::from_le_bytes(d1[8..16].try_into().unwrap()),
    );
    let h2 = SipHash24::new(
        u64::from_le_bytes(d2[..8].try_into().unwrap()),
        u64::from_le_bytes(d2[8..16].try_into().unwrap()),
    );

    let row_len = schema.row_len();
    let chunk = input.io_chunk_rows();
    let cap = input.capacity();
    let mut written = 0u64;
    let mut slot_buf = Vec::new();
    let mut positions = Vec::with_capacity(2 * HASH_SLOTS);
    let mut start = 0u64;
    while start < cap {
        let n = chunk.min((cap - start) as usize);
        let in_rows = input.read_rows(host, start, n)?;
        for (off, bytes) in in_rows.chunks_exact(row_len).enumerate() {
            let i = start + off as u64;
            let selected = Schema::row_used(bytes) && pred.eval(&schema, bytes);
            let (b1, b2) = hash_positions(&h1, &h2, i, buckets);
            // The (public, index-derived) candidate slots: 5 per hash
            // function, deduplicated when both functions pick the same
            // bucket. One gather crossing in, one scatter crossing out —
            // where the per-block path paid ten of each.
            positions.clear();
            for slot in 0..HASH_SLOTS as u64 {
                positions.push(b1 * HASH_SLOTS as u64 + slot);
            }
            if b2 != b1 {
                for slot in 0..HASH_SLOTS as u64 {
                    positions.push(b2 * HASH_SLOTS as u64 + slot);
                }
            }
            slot_buf.clear();
            slot_buf.extend_from_slice(out.read_rows_at(host, &positions)?);
            // Branch-free probe: every slot is rewritten through a masked
            // select, so occupied/free and placed/unplaced slots execute
            // the same instructions over the same bytes.
            let mut placed = !selected;
            for current in slot_buf.chunks_exact_mut(row_len) {
                let take = !placed & !Schema::row_used(current);
                super::ct::cond_copy_bytes(take, current, bytes);
                placed |= take;
            }
            out.write_rows_at(host, &positions, &slot_buf)?;
            if !placed {
                // All candidate slots full — cryptographically unlikely
                // with 5|R| slots and two choices (Azar et al.).
                return Err(DbError::HashSelectOverflow);
            }
            if selected {
                written += 1;
            }
        }
        start += n as u64;
    }
    out.set_num_rows(written);
    out.set_insert_cursor(out.capacity());
    Ok(out)
}

/// Padding-mode selection (paper §2.3): a Small-style multi-pass select
/// whose pass count and output size are fixed by the *padded* bound, not
/// the true match count — so two queries of any selectivity produce
/// identical transcripts. Costs `ceil(pad/buf)` passes over T plus `pad`
/// output writes.
pub fn select_padded<M: EnclaveMemory>(
    host: &mut M,
    om: &OmBudget,
    input: &mut FlatTable,
    pred: &Predicate,
    out_key: AeadKey,
    pad_rows: u64,
) -> Result<FlatTable, DbError> {
    let schema = input.schema().clone();
    let row_len = schema.row_len();
    let pad = pad_rows.max(1);
    let mut out = FlatTable::create(host, out_key, schema.clone(), pad)?;
    out.set_parallelism(input.parallelism());
    let dummy = schema.dummy_row();

    let alloc = om.alloc_up_to(pad as usize * row_len);
    let buf_rows = (alloc.bytes() / row_len).max(1) as u64;
    let passes = pad.div_ceil(buf_rows);

    let mut written = 0u64;
    let mut out_pos = 0u64;
    for pass in 0..passes {
        let window_lo = pass * buf_rows;
        let window_hi = (window_lo + buf_rows).min(pad);
        let mut buffer: Vec<u8> = Vec::with_capacity((window_hi - window_lo) as usize * row_len);
        let mut seen = 0u64;
        input.for_each_row(host, |_, bytes| {
            if Schema::row_used(bytes) && pred.eval(&schema, bytes) {
                if seen >= window_lo && seen < window_hi {
                    buffer.extend_from_slice(bytes);
                }
                seen += 1;
            }
        })?;
        // Flush exactly the window size: real rows then dummies, so the
        // write count is the padded bound whatever matched — one batched
        // crossing per window.
        written += (buffer.len() / row_len) as u64;
        while buffer.len() < (window_hi - window_lo) as usize * row_len {
            buffer.extend_from_slice(&dummy);
        }
        out.write_rows(host, out_pos, &buffer)?;
        out_pos += window_hi - window_lo;
    }
    out.set_num_rows(written);
    out.set_insert_cursor(pad);
    Ok(out)
}

/// Naive (baseline only): a direct ORAM translation — one ORAM operation
/// per input row (real write or dummy), then copy the ORAM out to flat
/// storage. Costs O(N log N) and 4|R| bytes of oblivious memory for the
/// position map; every other algorithm beats it (Figure 3).
pub fn select_naive<M: EnclaveMemory>(
    host: &mut M,
    om: &OmBudget,
    input: &mut FlatTable,
    pred: &Predicate,
    out_key: AeadKey,
    out_rows: u64,
    rng: EnclaveRng,
) -> Result<FlatTable, DbError> {
    let schema = input.schema().clone();
    let row_len = schema.row_len();
    let oram_key = AeadKey(oblidb_crypto::derive_key(&out_key.0, b"naive-oram"));
    let mut oram =
        PathOram::new(host, oram_key, out_rows.max(1), row_len, PosMapKind::Direct, om, rng)?;

    let mut written = 0u64;
    let chunk = input.io_chunk_rows();
    let cap = input.capacity();
    let mut start = 0u64;
    while start < cap {
        let n = chunk.min((cap - start) as usize);
        let data = input.read_rows(host, start, n)?;
        // One ORAM operation per input row; the input side is batched, the
        // ORAM side batches internally (whole path per crossing).
        for bytes in data.chunks_exact(row_len) {
            if Schema::row_used(bytes) && pred.eval(&schema, bytes) && written < out_rows {
                oram.write(host, written, bytes)?;
                written += 1;
            } else {
                oram.dummy_access(host)?;
            }
        }
        start += n as u64;
    }

    // Copy the ORAM contents to the flat output format, flushing output
    // rows in contiguous batched runs.
    let mut out = FlatTable::create(host, out_key, schema, out_rows.max(1))?;
    out.set_parallelism(input.parallelism());
    let mut flush: Vec<u8> = Vec::with_capacity(chunk * row_len);
    let mut flush_start = 0u64;
    for addr in 0..out_rows {
        let bytes = oram.read(host, addr)?;
        flush.extend_from_slice(&bytes);
        if flush.len() >= chunk * row_len {
            out.write_rows(host, flush_start, &flush)?;
            flush_start = addr + 1;
            flush.clear();
        }
    }
    out.write_rows(host, flush_start, &flush)?;
    out.set_num_rows(written);
    out.set_insert_cursor(out_rows);
    oram.free(host)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::SelectAlgo;
    use crate::predicate::CmpOp;
    use crate::types::{Column, DataType, Value};
    use oblidb_enclave::Host;
    use oblidb_enclave::DEFAULT_OM_BYTES;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)])
    }

    fn build(n: i64) -> (Host, FlatTable) {
        let s = schema();
        let mut host = Host::new();
        let rows: Vec<Vec<u8>> =
            (0..n).map(|i| s.encode_row(&[Value::Int(i), Value::Int(i * 10)]).unwrap()).collect();
        let t = FlatTable::from_encoded_rows(&mut host, AeadKey([1u8; 32]), s, &rows, n as u64)
            .unwrap();
        (host, t)
    }

    fn run<M: EnclaveMemory>(
        algo: SelectAlgo,
        host: &mut M,
        t: &mut FlatTable,
        pred: &Predicate,
        out_rows: u64,
    ) -> FlatTable {
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let key = AeadKey([7u8; 32]);
        match algo {
            SelectAlgo::Small => select_small(host, &om, t, pred, key, out_rows).unwrap(),
            SelectAlgo::Large => select_large(host, t, pred, key).unwrap(),
            SelectAlgo::Continuous => select_continuous(host, t, pred, key, out_rows).unwrap(),
            SelectAlgo::Hash => select_hash(host, t, pred, key, out_rows).unwrap(),
            SelectAlgo::Naive => {
                select_naive(host, &om, t, pred, key, out_rows, EnclaveRng::seed_from_u64(3))
                    .unwrap()
            }
            SelectAlgo::Padded => select_padded(host, &om, t, pred, key, out_rows).unwrap(),
        }
    }

    fn ids<M: EnclaveMemory>(host: &mut M, t: &mut FlatTable) -> Vec<i64> {
        let mut out: Vec<i64> =
            t.collect_rows(host).unwrap().iter().map(|r| r[0].as_int().unwrap()).collect();
        out.sort_unstable();
        out
    }

    const ALL: [SelectAlgo; 5] = [
        SelectAlgo::Small,
        SelectAlgo::Large,
        SelectAlgo::Continuous,
        SelectAlgo::Hash,
        SelectAlgo::Naive,
    ];

    #[test]
    fn all_algorithms_agree_on_a_range_predicate() {
        // Contiguous match set so Continuous applies too.
        for algo in ALL {
            let (mut host, mut t) = build(40);
            let p1 = Predicate::cmp(t.schema(), "id", CmpOp::Ge, Value::Int(10)).unwrap();
            let p2 = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(25)).unwrap();
            let pred = Predicate::And(Box::new(p1), Box::new(p2));
            let mut out = run(algo, &mut host, &mut t, &pred, 15);
            assert_eq!(out.num_rows(), 15, "{algo:?}");
            assert_eq!(ids(&mut host, &mut out), (10..25).collect::<Vec<i64>>(), "{algo:?}");
        }
    }

    #[test]
    fn non_contiguous_matches() {
        // id % 2 style predicate via v: multiples of 20 (even ids).
        for algo in [SelectAlgo::Small, SelectAlgo::Large, SelectAlgo::Hash, SelectAlgo::Naive] {
            let (mut host, mut t) = build(30);
            // v in {0,10,...}: pick v >= 150 → ids 15..30, but scattered
            // test uses inequality on id with OR to break continuity.
            let a = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(5)).unwrap();
            let b = Predicate::cmp(t.schema(), "id", CmpOp::Ge, Value::Int(25)).unwrap();
            let pred = Predicate::Or(Box::new(a), Box::new(b));
            let mut out = run(algo, &mut host, &mut t, &pred, 10);
            let expect: Vec<i64> = (0..5).chain(25..30).collect();
            assert_eq!(ids(&mut host, &mut out), expect, "{algo:?}");
        }
    }

    #[test]
    fn empty_result() {
        for algo in ALL {
            let (mut host, mut t) = build(10);
            let pred = Predicate::cmp(t.schema(), "id", CmpOp::Gt, Value::Int(999)).unwrap();
            let mut out = run(algo, &mut host, &mut t, &pred, 0);
            assert_eq!(out.num_rows(), 0, "{algo:?}");
            assert!(ids(&mut host, &mut out).is_empty(), "{algo:?}");
        }
    }

    #[test]
    fn full_table_selected() {
        for algo in ALL {
            let (mut host, mut t) = build(12);
            let mut out = run(algo, &mut host, &mut t, &Predicate::True, 12);
            assert_eq!(ids(&mut host, &mut out), (0..12).collect::<Vec<i64>>(), "{algo:?}");
        }
    }

    #[test]
    fn small_multi_pass_with_tiny_budget() {
        // Force multiple passes by shrinking oblivious memory to ~2 rows.
        let (mut host, mut t) = build(30);
        let om = OmBudget::new(2 * t.row_len());
        let pred = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(9)).unwrap();
        let mut out = select_small(&mut host, &om, &mut t, &pred, AeadKey([7u8; 32]), 9).unwrap();
        assert_eq!(ids(&mut host, &mut out), (0..9).collect::<Vec<i64>>());
    }

    #[test]
    fn trace_depends_only_on_sizes_not_data() {
        // Same |T| and |R|, disjoint match sets → identical traces.
        for algo in [SelectAlgo::Small, SelectAlgo::Large, SelectAlgo::Hash] {
            let preds = [
                Predicate::cmp(&schema(), "id", CmpOp::Lt, Value::Int(8)).unwrap(),
                Predicate::cmp(&schema(), "id", CmpOp::Ge, Value::Int(12)).unwrap(),
            ];
            let mut traces = Vec::new();
            for pred in &preds {
                let (mut host, mut t) = build(20);
                host.start_trace();
                let _ = run(algo, &mut host, &mut t, pred, 8);
                traces.push(host.take_trace());
            }
            assert_eq!(traces[0], traces[1], "{algo:?} leaks through its trace");
        }
    }

    #[test]
    fn continuous_trace_independent_of_segment_position() {
        // Different contiguous segments of equal length → identical traces.
        let mut traces = Vec::new();
        for (lo, hi) in [(0, 5), (12, 17)] {
            let (mut host, mut t) = build(20);
            let a = Predicate::cmp(t.schema(), "id", CmpOp::Ge, Value::Int(lo)).unwrap();
            let b = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(hi)).unwrap();
            let pred = Predicate::And(Box::new(a), Box::new(b));
            host.start_trace();
            let _ = run(SelectAlgo::Continuous, &mut host, &mut t, &pred, 5);
            traces.push(host.take_trace());
        }
        assert_eq!(traces[0], traces[1]);
    }

    #[test]
    fn hash_output_structure_size_is_5r() {
        let (mut host, mut t) = build(20);
        let pred = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(4)).unwrap();
        let out = run(SelectAlgo::Hash, &mut host, &mut t, &pred, 4);
        assert_eq!(out.capacity(), 4 * HASH_SLOTS as u64);
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn output_feeds_into_next_operator() {
        // Chained selection: filter twice, second over the hash-shaped
        // output with its dummy slots.
        let (mut host, mut t) = build(30);
        let p1 = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(20)).unwrap();
        let mut mid = run(SelectAlgo::Hash, &mut host, &mut t, &p1, 20);
        let p2 = Predicate::cmp(mid.schema(), "id", CmpOp::Ge, Value::Int(15)).unwrap();
        let mut out = run(SelectAlgo::Small, &mut host, &mut mid, &p2, 5);
        assert_eq!(ids(&mut host, &mut out), vec![15, 16, 17, 18, 19]);
    }
}
