//! Oblivious sorting (paper §4.3).
//!
//! A bitonic sorting network makes a fixed, data-independent sequence of
//! compare-exchanges, so sorting sealed blocks with it is oblivious: the
//! adversary sees the same block-pair accesses whatever the data. Both
//! sort-merge joins use it:
//!
//! * The **Opaque join** first quicksorts chunks that fit in *oblivious
//!   memory* and then runs the network at chunk granularity.
//! * The **0-OM join** runs the same network with chunks held in ordinary
//!   (non-oblivious) enclave memory — "this has no impact on obliviousness
//!   but speeds up memory access" (§4.3); with `chunk_rows = 1` it
//!   degenerates to the pure element-wise network.
//!
//! Every compare-exchange reads both blocks and rewrites both (fresh
//! encryptions), hiding whether a swap occurred.

use oblidb_enclave::EnclaveMemory;

use crate::error::DbError;
use crate::table::FlatTable;

/// Sorts blocks `[0, n)` of `table` ascending by `key`. `n` must be a
/// power of two (pad with dummy rows keyed `u128::MAX`). `chunk_rows` is
/// the number of rows the enclave may buffer (≥ 1); larger buffers replace
/// network passes with in-enclave sorts of aligned chunks.
pub fn bitonic_sort<M: EnclaveMemory>(
    host: &mut M,
    table: &mut FlatTable,
    n: u64,
    key: impl Fn(&[u8]) -> u128,
    chunk_rows: usize,
) -> Result<(), DbError> {
    bitonic_sort_with(host, table, n, key, chunk_rows, false)
}

/// [`bitonic_sort`] with a choice of in-enclave chunk sort:
///
/// * `oblivious_local = false` — quicksort, as the Opaque join uses for
///   chunks held in *oblivious* memory ("using quicksort to accelerate
///   the join may open timing side channels", §4.3);
/// * `oblivious_local = true` — an in-memory bitonic network, as the 0-OM
///   join uses for chunks in ordinary enclave memory, paying extra CPU to
///   stay data-oblivious even against in-enclave timing.
pub fn bitonic_sort_with<M: EnclaveMemory>(
    host: &mut M,
    table: &mut FlatTable,
    n: u64,
    key: impl Fn(&[u8]) -> u128,
    chunk_rows: usize,
    oblivious_local: bool,
) -> Result<(), DbError> {
    let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Sort);
    assert!(n.is_power_of_two(), "bitonic sort needs a power-of-two span");
    // Largest power of two ≤ chunk_rows, clamped to the span.
    let chunk = chunk_rows.max(1) as u64;
    let m = (1u64 << (63 - chunk.leading_zeros())).min(n);

    // Whole span fits in the enclave buffer: one load-sort-store.
    if m >= n {
        local_sort(host, table, 0, n, true, oblivious_local, &key)?;
        return Ok(());
    }

    // Phase A: sort each aligned m-chunk locally, alternating directions —
    // equivalent to running the network stages k = 2..m.
    for chunk in 0..(n / m) {
        let start = chunk * m;
        let ascending = chunk % 2 == 0;
        local_sort(host, table, start, m, ascending, oblivious_local, &key)?;
    }

    // Stages k = 2m .. n: strided element passes down to stride m, then
    // finish each stage inside aligned m-chunks (strides < m never cross a
    // chunk boundary, and the direction bit (i & k) is constant within
    // one).
    let mut k = 2 * m;
    while k <= n {
        let mut j = k / 2;
        while j >= m {
            element_pass(host, table, n, j, k, &key)?;
            j /= 2;
        }
        if m > 1 {
            for chunk in 0..(n / m) {
                let start = chunk * m;
                let ascending = (start & k) == 0;
                local_merge(host, table, start, m, ascending, &key)?;
            }
        }
        k *= 2;
    }
    Ok(())
}

/// One strided compare-exchange pass over the whole span. Each
/// compare-exchange fetches its (index-determined) block pair in one
/// gather crossing and writes it back in one scatter crossing.
fn element_pass<M: EnclaveMemory>(
    host: &mut M,
    table: &mut FlatTable,
    n: u64,
    j: u64,
    k: u64,
    key: &impl Fn(&[u8]) -> u128,
) -> Result<(), DbError> {
    let row_len = table.row_len();
    let mut pair = Vec::with_capacity(2 * row_len);
    for i in 0..n {
        let l = i ^ j;
        if l <= i {
            continue;
        }
        let ascending = (i & k) == 0;
        pair.clear();
        pair.extend_from_slice(table.read_rows_at(host, &[i, l])?);
        let (a, b) = pair.split_at_mut(row_len);
        let swap = (key(a) > key(b)) == ascending;
        // Both blocks are always rewritten — the adversary cannot tell a
        // swap from a hold — and the swap itself is a branch-free masked
        // select, so hit and miss execute the same instructions.
        super::ct::cond_swap_bytes(swap, a, b);
        table.write_rows_at(host, &[i, l], &pair)?;
    }
    Ok(())
}

/// Sorts rows in enclave memory — quicksort, or a full in-memory bitonic
/// network when in-enclave timing obliviousness is wanted (0-OM join).
fn sort_in_memory(rows: &mut [(u128, Vec<u8>)], oblivious: bool) {
    if !oblivious {
        rows.sort_unstable_by_key(|(k, _)| *k);
        return;
    }
    let n = rows.len();
    debug_assert!(n.is_power_of_two());
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    let ascending = (i & k) == 0;
                    compare_exchange(rows, i, l, ascending);
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Branch-free in-memory compare-exchange of rows `i < l`: key and row
/// bytes swap through masked selects, so the comparison outcome never
/// steers a branch or changes which bytes are touched.
#[inline(always)]
fn compare_exchange(rows: &mut [(u128, Vec<u8>)], i: usize, l: usize, ascending: bool) {
    let (lo, hi) = rows.split_at_mut(l);
    let a = &mut lo[i];
    let b = &mut hi[0];
    let swap = (a.0 > b.0) == ascending;
    super::ct::cond_swap_u128(swap, &mut a.0, &mut b.0);
    super::ct::cond_swap_bytes(swap, &mut a.1, &mut b.1);
}

/// Loads an aligned chunk (batched), fully sorts it in enclave memory,
/// stores it back (batched).
fn local_sort<M: EnclaveMemory>(
    host: &mut M,
    table: &mut FlatTable,
    start: u64,
    len: u64,
    ascending: bool,
    oblivious: bool,
    key: &impl Fn(&[u8]) -> u128,
) -> Result<(), DbError> {
    let mut rows = load_chunk(host, table, start, len, key)?;
    sort_in_memory(&mut rows, oblivious);
    if !ascending {
        rows.reverse();
    }
    store_chunk(host, table, start, &rows)
}

/// Batched load of rows `[start, start + len)` with their sort keys.
fn load_chunk<M: EnclaveMemory>(
    host: &mut M,
    table: &mut FlatTable,
    start: u64,
    len: u64,
    key: &impl Fn(&[u8]) -> u128,
) -> Result<Vec<(u128, Vec<u8>)>, DbError> {
    let row_len = table.row_len();
    let data = table.read_rows(host, start, len as usize)?;
    Ok(data.chunks_exact(row_len).map(|bytes| (key(bytes), bytes.to_vec())).collect())
}

/// Batched store of a sorted chunk back to `[start, start + rows.len())`.
fn store_chunk<M: EnclaveMemory>(
    host: &mut M,
    table: &mut FlatTable,
    start: u64,
    rows: &[(u128, Vec<u8>)],
) -> Result<(), DbError> {
    let mut buf = Vec::with_capacity(rows.len() * table.row_len());
    for (_, bytes) in rows {
        buf.extend_from_slice(bytes);
    }
    table.write_rows(host, start, &buf)
}

/// Loads an aligned chunk and applies the remaining network strides
/// (len/2 … 1) in enclave memory — the in-enclave acceleration of §4.3.
fn local_merge<M: EnclaveMemory>(
    host: &mut M,
    table: &mut FlatTable,
    start: u64,
    len: u64,
    ascending: bool,
    key: &impl Fn(&[u8]) -> u128,
) -> Result<(), DbError> {
    let mut rows = load_chunk(host, table, start, len, key)?;
    let n = len as usize;
    let mut j = n / 2;
    while j >= 1 {
        for i in 0..n {
            let l = i ^ j;
            if l > i {
                compare_exchange(&mut rows, i, l, ascending);
            }
        }
        j /= 2;
    }
    store_chunk(host, table, start, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType, Schema, Value};
    use oblidb_crypto::aead::AeadKey;
    use oblidb_enclave::EnclaveRng;
    use oblidb_enclave::Host;

    fn key_fn(schema: &Schema) -> impl Fn(&[u8]) -> u128 + '_ {
        move |bytes| {
            if !Schema::row_used(bytes) {
                return u128::MAX;
            }
            match schema.decode_col(bytes, 0) {
                Value::Int(v) => crate::key::order_u64_from_i64(v) as u128,
                _ => 0,
            }
        }
    }

    fn build(values: &[i64], capacity: u64) -> (Host, FlatTable) {
        let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
        let mut host = Host::new();
        let rows: Vec<Vec<u8>> =
            values.iter().map(|v| schema.encode_row(&[Value::Int(*v)]).unwrap()).collect();
        let t =
            FlatTable::from_encoded_rows(&mut host, AeadKey([1u8; 32]), schema, &rows, capacity)
                .unwrap();
        (host, t)
    }

    fn sorted_values<M: EnclaveMemory>(host: &mut M, t: &mut FlatTable, n: u64) -> Vec<i64> {
        let mut out = Vec::new();
        for i in 0..n {
            let bytes = t.read_row(host, i).unwrap();
            if Schema::row_used(&bytes) {
                out.push(t.schema().decode_col(&bytes, 0).as_int().unwrap());
            }
        }
        out
    }

    #[test]
    fn sorts_random_data_all_chunk_sizes() {
        let mut rng = EnclaveRng::seed_from_u64(3);
        let values: Vec<i64> = (0..64).map(|_| rng.below(1000) as i64 - 500).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        for chunk in [1usize, 2, 4, 8, 16, 64, 100] {
            let (mut host, mut t) = build(&values, 64);
            let schema = t.schema().clone();
            bitonic_sort(&mut host, &mut t, 64, key_fn(&schema), chunk).unwrap();
            assert_eq!(sorted_values(&mut host, &mut t, 64), expected, "chunk {chunk}");
        }
    }

    #[test]
    fn dummies_sort_to_the_end() {
        let (mut host, mut t) = build(&[5, 3, 9], 8); // 5 dummy blocks
        let schema = t.schema().clone();
        bitonic_sort(&mut host, &mut t, 8, key_fn(&schema), 2).unwrap();
        let mut used_flags = Vec::new();
        for i in 0..8 {
            used_flags.push(Schema::row_used(&t.read_row(&mut host, i).unwrap()));
        }
        assert_eq!(used_flags, vec![true, true, true, false, false, false, false, false]);
        assert_eq!(sorted_values(&mut host, &mut t, 8), vec![3, 5, 9]);
    }

    #[test]
    fn access_pattern_is_data_independent() {
        let a_vals: Vec<i64> = (0..32).collect();
        let b_vals: Vec<i64> = (0..32).rev().collect();
        let mut traces = Vec::new();
        for values in [&a_vals, &b_vals] {
            let (mut host, mut t) = build(values, 32);
            let schema = t.schema().clone();
            host.start_trace();
            bitonic_sort(&mut host, &mut t, 32, key_fn(&schema), 4).unwrap();
            traces.push(host.take_trace());
        }
        assert_eq!(traces[0], traces[1], "sorted vs reverse-sorted input traces differ");
    }

    #[test]
    fn larger_chunks_reduce_accesses() {
        let values: Vec<i64> = (0..64).rev().collect();
        let mut counts = Vec::new();
        for chunk in [1usize, 8, 64] {
            let (mut host, mut t) = build(&values, 64);
            let schema = t.schema().clone();
            host.reset_stats();
            bitonic_sort(&mut host, &mut t, 64, key_fn(&schema), chunk).unwrap();
            counts.push(host.stats().total_accesses());
        }
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] > counts[2], "{counts:?}");
    }

    #[test]
    fn already_sorted_input_stays_sorted() {
        let values: Vec<i64> = (0..16).collect();
        let (mut host, mut t) = build(&values, 16);
        let schema = t.schema().clone();
        bitonic_sort(&mut host, &mut t, 16, key_fn(&schema), 1).unwrap();
        assert_eq!(sorted_values(&mut host, &mut t, 16), values);
    }

    #[test]
    fn duplicate_keys_ok() {
        let values = vec![5i64, 1, 5, 1, 5, 1, 2, 2];
        let (mut host, mut t) = build(&values, 8);
        let schema = t.schema().clone();
        bitonic_sort(&mut host, &mut t, 8, key_fn(&schema), 2).unwrap();
        assert_eq!(sorted_values(&mut host, &mut t, 8), vec![1, 1, 1, 2, 2, 5, 5, 5]);
    }
}
