//! Order-preserving composite index keys.
//!
//! ObliDB indexes a table on one column. The B+ tree key is a `u128`
//! composite of the column value (order-preserving encoding, high bits) and
//! the row id (low bits), so duplicate column values remain distinct index
//! entries and range queries over the column map to contiguous key ranges.

use crate::types::Value;

/// Order-preserving map from `i64` to `u64` (flip the sign bit).
pub fn order_u64_from_i64(v: i64) -> u64 {
    (v as u64) ^ (1u64 << 63)
}

/// Order-preserving map from `f64` to `u64` (IEEE total-order trick:
/// positive floats flip the sign bit, negative floats flip all bits).
pub fn order_u64_from_f64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 0 {
        bits | (1u64 << 63)
    } else {
        !bits
    }
}

/// Order-preserving `u64` for any indexable value. Text columns use their
/// first 8 bytes (ties broken by row id, so correctness is unaffected; only
/// range-scan granularity coarsens for longer shared prefixes).
pub fn order_u64(v: &Value) -> u64 {
    match v {
        Value::Int(i) => order_u64_from_i64(*i),
        Value::Float(f) => order_u64_from_f64(*f),
        Value::Text(s) => {
            let mut buf = [0u8; 8];
            let take = s.len().min(8);
            buf[..take].copy_from_slice(&s.as_bytes()[..take]);
            u64::from_be_bytes(buf)
        }
    }
}

/// Packs (column value, row id) into a composite key.
pub fn composite(v: &Value, row_id: u64) -> u128 {
    ((order_u64(v) as u128) << 64) | row_id as u128
}

/// The smallest composite key for a column value.
pub fn range_lo(v: &Value) -> u128 {
    (order_u64(v) as u128) << 64
}

/// The largest composite key for a column value.
pub fn range_hi(v: &Value) -> u128 {
    ((order_u64(v) as u128) << 64) | u64::MAX as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_order_preserved() {
        let vals = [i64::MIN, -5, -1, 0, 1, 5, i64::MAX];
        for w in vals.windows(2) {
            assert!(order_u64_from_i64(w[0]) < order_u64_from_i64(w[1]));
        }
    }

    #[test]
    fn f64_order_preserved() {
        let vals = [f64::NEG_INFINITY, -10.5, -0.0, 0.0, 1.0e-9, 2.5, f64::INFINITY];
        for w in vals.windows(2) {
            assert!(order_u64_from_f64(w[0]) <= order_u64_from_f64(w[1]), "{} !<= {}", w[0], w[1]);
        }
        assert!(order_u64_from_f64(-1.0) < order_u64_from_f64(1.0));
    }

    #[test]
    fn text_prefix_order() {
        assert!(order_u64(&Value::Text("apple".into())) < order_u64(&Value::Text("banana".into())));
        assert!(order_u64(&Value::Text("a".into())) < order_u64(&Value::Text("ab".into())));
    }

    #[test]
    fn composite_ranges_bracket_rowids() {
        let v = Value::Int(7);
        let lo = range_lo(&v);
        let hi = range_hi(&v);
        for rid in [0u64, 1, 999, u64::MAX] {
            let k = composite(&v, rid);
            assert!(lo <= k && k <= hi);
        }
        assert!(range_hi(&Value::Int(6)) < lo);
        assert!(hi < range_lo(&Value::Int(8)));
    }

    #[test]
    fn duplicates_distinct_by_rowid() {
        let v = Value::Int(7);
        assert_ne!(composite(&v, 1), composite(&v, 2));
    }
}
