//! The ObliDB engine: oblivious query processing for secure databases.
//!
//! This crate implements the paper's core contribution (§3–§5):
//!
//! * **Storage methods** ([`table`]): *flat* tables (sealed blocks, one row
//!   per block, scanned in full for obliviousness) and *indexed* tables (an
//!   oblivious B+ tree inside Path ORAM), or both at once.
//! * **Oblivious operators** ([`exec`]): five SELECT algorithms (Naive,
//!   Small, Large, Continuous, Hash), aggregation and grouped aggregation,
//!   a fused select+project+aggregate operator, and three join algorithms
//!   (oblivious hash join, Opaque sort-merge join, 0-OM bitonic join).
//! * **A query planner** ([`planner`]) that picks operators using only
//!   already-leaked information: input/output sizes, result continuity, and
//!   the oblivious-memory budget.
//! * **A SQL front-end** ([`sql`]) and the [`Database`] facade tying it all
//!   together, with an optional padding mode that hides intermediate result
//!   sizes (§2.3).
//!
//! Leakage contract (paper §2.3): only the sizes of input, intermediate,
//! and result tables, and the physical plan chosen. The enclave
//! access-pattern traces produced under this engine are testable for that
//! property — see the `tests/` directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod db;
pub mod error;
pub mod exec;
pub mod key;
pub mod padding;
pub mod plan;
pub mod planner;
pub mod predicate;
pub mod sql;
pub mod table;
pub mod types;
pub mod wal;

pub use audit::{AuditReport, AuditViolation, TraceAuditor};
pub use db::persist::{
    read_recovery_journal, resolve_recovery_statements, write_recovery_statements, RecoveryPlan,
    RecoveryReport, Reopened, DB_MANIFEST_FILE, RECOVERY_JOURNAL_FILE,
};
pub use db::shared::{Session, SessionStats, SharedDatabase};
pub use db::{
    Database, DbConfig, ExecConfig, PlanCacheStats, PlanInfo, PreparedStatement, QueryOutput,
    StorageMethod,
};
pub use error::DbError;
pub use plan::cost::{CostProfile, CALIBRATION_FILE};
pub use plan::TxnVerb;
pub use plan::{Explain, NodeCost, PlanNode, QueryPlan};
pub use planner::{CostModel, JoinAlgo, SelectAlgo};
pub use predicate::Predicate;
pub use types::{Column, DataType, Row, Schema, Value};
pub use wal::{EpochConfig, WalConfig};
