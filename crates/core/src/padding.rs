//! Padding mode (paper §2.3, §7.1).
//!
//! When intermediate and final result sizes are themselves sensitive,
//! ObliDB can pad every intermediate and final table to a configured bound
//! and disable the query planner (whose choices depend on result sizes).
//! Leakage then reduces to the logical plan and the padded bound.

/// Padding-mode configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaddingConfig {
    /// Every selection output is padded to this many rows.
    pub pad_rows: u64,
    /// Grouped aggregation outputs are padded to this many groups
    /// (the paper pads "to the maximum supported number of groups").
    pub max_groups: u64,
}

impl PaddingConfig {
    /// Pads all outputs to `pad_rows`, groups to the same bound.
    pub fn uniform(pad_rows: u64) -> Self {
        PaddingConfig { pad_rows, max_groups: pad_rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sets_both_bounds() {
        let p = PaddingConfig::uniform(500);
        assert_eq!(p.pad_rows, 500);
        assert_eq!(p.max_groups, 500);
    }
}
