//! The measured cost model behind the planner (ROADMAP: "use
//! `CountingMemory` to build a real cost-based planner").
//!
//! Instead of trusting closed-form formulas, each candidate physical
//! operator is **dry-run** against a scratch [`CountingMemory`]: a
//! payload-free substrate over which the real operator code executes its
//! real access pattern (every select and join operator's pattern is a
//! function of public sizes only — the obliviousness property the test
//! suite asserts), while the substrate counts block reads, block writes
//! and boundary crossings natively, including all batching effects. The
//! counts are then weighed by a per-substrate [`CostProfile`]
//! (disk ≫ cached ≫ RAM), so the same query can legitimately pick a
//! different operator on `DiskMemory` than on `Host`.
//!
//! Exactness: the dry run issues the same `FlatTable`/operator calls the
//! real execution will, so the counted blocks and crossings are *equal*,
//! not approximate — `tests/planner_cost.rs` asserts estimate == actual
//! for every SELECT algorithm. The one operator whose flush sizes depend
//! on the true match count ([`crate::exec::select_small`]) is replayed by
//! a size-parameterized skeleton instead (matches are public: the
//! planner's preliminary scan already leaked them).

use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{CountingMemory, EnclaveMemory, EnclaveRng, HostStats, OmBudget};

use crate::error::DbError;
use crate::exec::{self, SortMergeVariant};
use crate::planner::{JoinAlgo, PlannerConfig, SelectAlgo, SelectStats};
use crate::predicate::Predicate;
use crate::table::FlatTable;
use crate::types::Schema;

use super::{CandidateCost, JoinCandidateCost, NodeCost};

/// Per-substrate operator pricing, in units of one in-RAM block access.
///
/// The counted quantities come from a [`CountingMemory`] dry run; this
/// profile turns them into one comparable scalar. The decisive axis
/// between substrates is the **crossing** weight: per-block sealed
/// transfer costs are nearly identical across `Host`, `DiskMemory` and
/// the cached stacks (`BENCH_substrates.json`: equal reads/writes/bytes,
/// page-cache-speed disk), but each boundary crossing on a disk-backed
/// substrate is a positioned-I/O syscall on top of the OCALL-sized
/// enclave transition, where `Host` pays a function call.
#[derive(Debug, Clone, PartialEq)]
pub struct CostProfile {
    /// Profile name (shown in EXPLAIN output).
    pub name: String,
    /// Cost of reading one sealed block.
    pub read_block: f64,
    /// Cost of writing one sealed block.
    pub write_block: f64,
    /// Fixed cost of one enclave boundary crossing (batched calls pay it
    /// once however many blocks they move).
    pub crossing: f64,
    /// Worker threads available to partitioned sealing (`1` = serial).
    /// Block-transfer weights shrink by an Amdahl factor in [`weigh`]
    /// (crossings stay serial — one boundary transition per batch however
    /// many workers seal its payload).
    ///
    /// [`weigh`]: CostProfile::weigh
    pub threads: usize,
    /// Fraction of per-block cost that parallelizes across workers: the
    /// AEAD seal/open CPU. The residual (copying, allocator, the medium
    /// itself) stays serial.
    pub parallel_block_fraction: f64,
}

/// Default parallelizable share of per-block cost: on the in-memory
/// substrates the AEAD pass dominates batched block transfer, with a
/// serial residual for copying and bookkeeping.
pub const PARALLEL_BLOCK_FRACTION: f64 = 0.6;

impl CostProfile {
    /// Builds a serial profile from explicit weights.
    pub fn new(name: impl Into<String>, read_block: f64, write_block: f64, crossing: f64) -> Self {
        CostProfile {
            name: name.into(),
            read_block,
            write_block,
            crossing,
            threads: 1,
            parallel_block_fraction: PARALLEL_BLOCK_FRACTION,
        }
    }

    /// The same weights, priced for `threads` sealing workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Every quantity costs the same: pure access-count minimization.
    pub fn uniform() -> Self {
        Self::new("uniform", 1.0, 1.0, 1.0)
    }

    /// In-RAM `Host`: a crossing is an OCALL-sized fixed cost, a few
    /// block-transfers' worth (the default profile).
    pub fn host() -> Self {
        Self::new("host", 1.0, 1.0, 4.0)
    }

    /// `DiskMemory`: sequential block transfer runs at page-cache speed
    /// (see `BENCH_substrates.json` — per-block counts and times match
    /// `Host`), but every crossing is a positioned-I/O syscall plus the
    /// enclave transition, and writes carry the journaling/dirty-page
    /// overhead of a durable medium.
    pub fn disk() -> Self {
        Self::new("disk", 1.0, 2.0, 64.0)
    }

    /// `CachedMemory` over `DiskMemory`: hot blocks are served at RAM
    /// speed, so logical accesses price like `Host` with a slightly
    /// dearer crossing (the wrapper's bookkeeping plus occasional
    /// write-back traffic underneath).
    pub fn cached_disk() -> Self {
        Self::new("cached-disk", 1.0, 1.0, 8.0)
    }

    /// The profile conventionally paired with a substrate label as
    /// reported by `oblidb_substrates::AnySubstrate::label()` /
    /// `SubstrateSpec::profile_name()`. Unknown labels get [`CostProfile::host`].
    pub fn named(label: &str) -> Self {
        match label {
            "uniform" => Self::uniform(),
            "disk" | "sharded-disk" => Self::disk(),
            "cached-disk" | "cached-host" => Self::cached_disk(),
            _ => Self::host(),
        }
    }

    /// Seeds a profile from a `BENCH_substrates.json` document (the
    /// artifact `bench/src/bin/substrates.rs` emits): block weights come
    /// from the measured seconds-per-block of the named substrate,
    /// normalized so the `host` rows define 1.0, and the crossing weight
    /// is retained from the label's canonical profile (crossing counts in
    /// the bench are too small — everything is batched — to fit reliably).
    /// Returns `None` when the document has no rows for `label`.
    pub fn from_bench_json(json: &str, label: &str) -> Option<Self> {
        let per_block = |name: &str| -> Option<f64> {
            let mut total_secs = 0.0;
            let mut total_blocks = 0.0;
            for line in json.lines() {
                if !line.contains(&format!("\"substrate\": \"{name}\"")) {
                    continue;
                }
                let secs = json_num(line, "seconds")?;
                let blocks = json_num(line, "reads")? + json_num(line, "writes")?;
                total_secs += secs;
                total_blocks += blocks;
            }
            if total_blocks > 0.0 {
                Some(total_secs / total_blocks)
            } else {
                None
            }
        };
        let own = per_block(label)?;
        let base = per_block("host").unwrap_or(own);
        let rel = if base > 0.0 { (own / base).max(0.1) } else { 1.0 };
        let canonical = Self::named(label);
        Some(CostProfile {
            name: format!("{label} (bench-seeded)"),
            read_block: rel,
            write_block: rel * (canonical.write_block / canonical.read_block),
            crossing: canonical.crossing,
            threads: canonical.threads,
            parallel_block_fraction: canonical.parallel_block_fraction,
        })
    }

    /// Measures a live profile with a micro-probe against `mem`: times
    /// per-block vs batched reads and writes over a scratch region, and
    /// solves for the per-block and per-crossing costs (normalized so one
    /// block read is 1.0). The probe allocates and frees its own region;
    /// run it before `start_trace`, since its accesses are real and would
    /// otherwise land in the transcript. A probe I/O failure (e.g. a full
    /// disk — exactly the degraded state live calibration may meet) is
    /// returned, so callers can fall back to a canonical
    /// [`CostProfile::named`] profile.
    pub fn calibrate<M: EnclaveMemory>(
        name: impl Into<String>,
        mem: &mut M,
    ) -> Result<Self, oblidb_enclave::HostError> {
        const BLOCKS: usize = 256;
        const BLOCK_SIZE: usize = 256;
        const ROUNDS: usize = 8;
        let region = mem.alloc_region(BLOCKS, BLOCK_SIZE)?;
        let zeros = vec![0u8; BLOCKS * BLOCK_SIZE];
        // Free the scratch region on every exit path.
        let result = (|| {
            mem.write_blocks(region, 0, &zeros)?;
            let mut buf = Vec::new();
            let now = std::time::Instant::now;
            // Batched accesses amortize the crossing: per-block slope.
            let start = now();
            for _ in 0..ROUNDS {
                mem.read_blocks(region, 0, BLOCKS, &mut buf)?;
            }
            let batched_read = start.elapsed().as_secs_f64() / (ROUNDS * BLOCKS) as f64;
            let start = now();
            for _ in 0..ROUNDS {
                mem.write_blocks(region, 0, &zeros)?;
            }
            let batched_write = start.elapsed().as_secs_f64() / (ROUNDS * BLOCKS) as f64;
            // Per-block accesses pay one crossing each: slope + crossing.
            let start = now();
            for _ in 0..ROUNDS {
                for i in 0..BLOCKS as u64 {
                    let _ = mem.read(region, i)?;
                }
            }
            let single_read = start.elapsed().as_secs_f64() / (ROUNDS * BLOCKS) as f64;
            Ok((batched_read, batched_write, single_read))
        })();
        let freed = mem.free_region(region);
        let (batched_read, batched_write, single_read) = result?;
        freed?;

        let unit = batched_read.max(1e-12);
        let crossing = ((single_read - batched_read) / unit).max(1.0);
        Ok(CostProfile {
            name: name.into(),
            read_block: 1.0,
            write_block: (batched_write / unit).max(0.1),
            crossing,
            threads: 1,
            parallel_block_fraction: PARALLEL_BLOCK_FRACTION,
        })
    }

    /// Weighs counted accesses into one scalar cost.
    ///
    /// With `threads > 1`, per-block work shrinks by the Amdahl factor
    /// `(1 - p) + p / threads` where `p` is
    /// [`parallel_block_fraction`](CostProfile::parallel_block_fraction);
    /// crossings are never divided — however many workers seal a batch,
    /// the enclave boundary is crossed once, which is exactly why
    /// parallelism pays more on crossing-cheap substrates than on
    /// crossing-dominated ones (EXPLAIN shows the difference).
    pub fn weigh(&self, stats: &HostStats) -> f64 {
        let t = self.threads.max(1) as f64;
        let p = self.parallel_block_fraction.clamp(0.0, 1.0);
        let amdahl = (1.0 - p) + p / t;
        (stats.reads as f64 * self.read_block + stats.writes as f64 * self.write_block) * amdahl
            + stats.crossings as f64 * self.crossing
    }

    /// Serializes the profile as the `key = value` text of an
    /// [`CALIBRATION_FILE`] artifact. Round-trips through
    /// [`CostProfile::from_text`].
    pub fn to_text(&self) -> String {
        format!(
            "# ObliDB planner calibration — per-deploy CostProfile weights.\n\
             # Untrusted advisory data: a tampered file can only skew plan\n\
             # choice, never correctness or obliviousness.\n\
             name = {}\n\
             read_block = {}\n\
             write_block = {}\n\
             crossing = {}\n\
             threads = {}\n\
             parallel_block_fraction = {}\n",
            self.name.replace('\n', " "),
            self.read_block,
            self.write_block,
            self.crossing,
            self.threads,
            self.parallel_block_fraction,
        )
    }

    /// Parses a profile from [`CostProfile::to_text`] output. Returns
    /// `None` on any missing key or non-finite/non-positive weight — the
    /// file lives on untrusted storage, so a mangled artifact must fall
    /// back to canonical weights instead of poisoning the planner with
    /// NaNs.
    pub fn from_text(text: &str) -> Option<Self> {
        let field = |key: &str| -> Option<&str> {
            text.lines().find_map(|line| {
                let (k, v) = line.split_once('=')?;
                (k.trim() == key).then(|| v.trim())
            })
        };
        let num = |key: &str| -> Option<f64> {
            let v: f64 = field(key)?.parse().ok()?;
            (v.is_finite() && v > 0.0).then_some(v)
        };
        Some(CostProfile {
            name: field("name")?.to_string(),
            read_block: num("read_block")?,
            write_block: num("write_block")?,
            crossing: num("crossing")?,
            threads: field("threads")?.parse().ok().filter(|&t: &usize| t >= 1)?,
            parallel_block_fraction: {
                let p: f64 = field("parallel_block_fraction")?.parse().ok()?;
                p.is_finite().then_some(p.clamp(0.0, 1.0))?
            },
        })
    }

    /// Writes the profile as the [`CALIBRATION_FILE`] artifact inside
    /// `dir` (next to the region files), so calibrated planner weights
    /// survive restarts.
    pub fn save_to(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(dir.join(CALIBRATION_FILE), self.to_text())
    }

    /// Loads a previously saved [`CALIBRATION_FILE`] artifact from `dir`.
    /// Returns `None` when the file is absent or fails validation.
    pub fn load_from(dir: &std::path::Path) -> Option<Self> {
        Self::from_text(&std::fs::read_to_string(dir.join(CALIBRATION_FILE)).ok()?)
    }
}

/// File name of the persisted calibration artifact, written next to a
/// disk store's region files by calibration and reloaded by
/// `database_open`.
pub const CALIBRATION_FILE: &str = "oblidb.calibration";

impl Default for CostProfile {
    fn default() -> Self {
        Self::host()
    }
}

/// Extracts `"key": <number>` from one JSON object line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The public shape a SELECT dry run needs: everything the adversary
/// already knows (or will learn) about the stage.
#[derive(Clone)]
pub struct SelectShape {
    /// Input schema (fixes the row/block geometry).
    pub schema: Schema,
    /// Input capacity in blocks (scans cover capacity, not fill).
    pub capacity: u64,
    /// Rows in use (the closed-form threshold gate uses this).
    pub rows: u64,
    /// Match count |R| from the planner's preliminary scan.
    pub matches: u64,
    /// Whether the matches form one contiguous run.
    pub continuous: bool,
    /// Oblivious-memory budget available to the stage.
    pub om_bytes: usize,
    /// The output-region key execution will use. The Hash operator
    /// derives its (index-keyed) bucket functions from it, so estimating
    /// with the same key makes the dry run exact, not just close.
    pub out_key: AeadKey,
}

impl std::fmt::Debug for SelectShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectShape")
            .field("capacity", &self.capacity)
            .field("rows", &self.rows)
            .field("matches", &self.matches)
            .field("continuous", &self.continuous)
            .field("om_bytes", &self.om_bytes)
            .finish_non_exhaustive() // out_key is key material
    }
}

/// Dry-runs one SELECT operator over [`CountingMemory`] and returns the
/// counted accesses. The real operator code runs for every algorithm
/// except `Small`, whose buffer flushes depend on the true match count;
/// its pattern is replayed by a size-parameterized skeleton from the (public) match
/// count instead.
pub fn simulate_select(algo: SelectAlgo, shape: &SelectShape) -> Result<HostStats, DbError> {
    let mut mem = CountingMemory::new();
    let mut input =
        FlatTable::create(&mut mem, AeadKey([0x5A; 32]), shape.schema.clone(), shape.capacity)?;
    mem.reset_stats();
    let om = OmBudget::new(shape.om_bytes);
    // On a payload-free substrate no row ever matches, which is exactly
    // what makes the dry run cheap: every remaining algorithm's access
    // pattern is independent of which rows match.
    let pred = Predicate::True;
    match algo {
        SelectAlgo::Small => small_pattern(&mut mem, &om, &mut input, shape)?,
        SelectAlgo::Large => {
            exec::select_large(&mut mem, &mut input, &pred, shape.out_key.clone())?;
        }
        SelectAlgo::Continuous => {
            exec::select_continuous(
                &mut mem,
                &mut input,
                &pred,
                shape.out_key.clone(),
                shape.matches,
            )?;
        }
        SelectAlgo::Hash => {
            exec::select_hash(&mut mem, &mut input, &pred, shape.out_key.clone(), shape.matches)?;
        }
        SelectAlgo::Naive => {
            exec::select_naive(
                &mut mem,
                &om,
                &mut input,
                &pred,
                shape.out_key.clone(),
                shape.matches,
                EnclaveRng::seed_from_u64(0x0B11_D0DE),
            )?;
        }
        SelectAlgo::Padded => {
            exec::select::select_padded(
                &mut mem,
                &om,
                &mut input,
                &pred,
                shape.out_key.clone(),
                shape.matches,
            )?;
        }
    }
    Ok(mem.stats())
}

/// Replays [`exec::select_small`]'s access pattern from public sizes: the
/// same output allocation, the same full passes over the input, and one
/// window-sized flush per pass (window sizes partition `[0, matches)`, so
/// when the match count is right — it comes from the same preliminary
/// scan execution uses — every flush length equals the real one).
fn small_pattern(
    mem: &mut CountingMemory,
    om: &OmBudget,
    input: &mut FlatTable,
    shape: &SelectShape,
) -> Result<(), DbError> {
    let row_len = shape.schema.row_len();
    let out_rows = shape.matches;
    let mut out =
        FlatTable::create(mem, shape.out_key.clone(), shape.schema.clone(), out_rows.max(1))?;
    let alloc = om.alloc_up_to((out_rows.max(1) as usize) * row_len);
    let buf_rows = ((alloc.bytes() / row_len).max(1)) as u64;
    let passes = out_rows.div_ceil(buf_rows).max(1);
    let mut written = 0u64;
    for pass in 0..passes {
        let window_lo = pass * buf_rows;
        let window_hi = (window_lo + buf_rows).min(out_rows);
        input.for_each_row(mem, |_, _| {})?;
        let flush = vec![0u8; (window_hi - window_lo) as usize * row_len];
        out.write_rows(mem, written, &flush)?;
        written += window_hi - window_lo;
    }
    Ok(())
}

/// The public shape a JOIN dry run needs.
#[derive(Debug, Clone)]
pub struct JoinShape {
    /// Left (primary) input schema.
    pub left_schema: Schema,
    /// Left input capacity in blocks.
    pub left_capacity: u64,
    /// Right (foreign) input schema.
    pub right_schema: Schema,
    /// Right input capacity in blocks.
    pub right_capacity: u64,
    /// Oblivious-memory budget available to the stage.
    pub om_bytes: usize,
    /// Plain enclave scratch rows granted to the 0-OM sort.
    pub zero_om_scratch_rows: usize,
}

/// Dry-runs one JOIN operator over [`CountingMemory`]: the real operator
/// code runs end to end (fill, oblivious sort, merge / build, probe) over
/// dummy tables of the same shape — every access either side makes is a
/// function of the two capacities and the budget alone.
pub fn simulate_join(algo: JoinAlgo, shape: &JoinShape) -> Result<HostStats, DbError> {
    let mut mem = CountingMemory::new();
    let mut t1 = FlatTable::create(
        &mut mem,
        AeadKey([0x31; 32]),
        shape.left_schema.clone(),
        shape.left_capacity,
    )?;
    let mut t2 = FlatTable::create(
        &mut mem,
        AeadKey([0x32; 32]),
        shape.right_schema.clone(),
        shape.right_capacity,
    )?;
    mem.reset_stats();
    let om = OmBudget::new(shape.om_bytes);
    let key = AeadKey([0x77; 32]);
    match algo {
        JoinAlgo::Hash => {
            exec::hash_join(&mut mem, &om, &mut t1, 0, &mut t2, 0, key)?;
        }
        JoinAlgo::Opaque => {
            exec::sort_merge_join(
                &mut mem,
                &om,
                &mut t1,
                0,
                &mut t2,
                0,
                key,
                SortMergeVariant::Opaque,
            )?;
        }
        JoinAlgo::ZeroOm => {
            exec::sort_merge_join(
                &mut mem,
                &om,
                &mut t1,
                0,
                &mut t2,
                0,
                key,
                SortMergeVariant::ZeroOm { scratch_rows: shape.zero_om_scratch_rows },
            )?;
        }
    }
    Ok(mem.stats())
}

/// Cost-based SELECT choice: dry-run every admissible candidate, weigh by
/// `profile`, pick the cheapest (ties break toward the earlier candidate).
///
/// Candidate admission follows §5's structure, not its formulas:
/// `Continuous` requires a contiguous result (and the config switch),
/// `Large` requires a near-total result — below the threshold its
/// `|T|`-sized output structure taxes every downstream operator, which
/// the single-stage dry run cannot see — and `Small`/`Hash` always apply.
/// `Naive` exists for comparison and is never chosen (Figure 3).
pub fn choose_select_costed(
    shape: &SelectShape,
    stats: SelectStats,
    cfg: &PlannerConfig,
    profile: &CostProfile,
) -> Result<(SelectAlgo, Vec<CandidateCost>), DbError> {
    let mut candidates = Vec::new();
    if stats.continuous && cfg.enable_continuous {
        candidates.push(SelectAlgo::Continuous);
    }
    candidates.push(SelectAlgo::Small);
    if shape.rows > 0 && stats.matches as f64 >= cfg.large_threshold * shape.rows as f64 {
        candidates.push(SelectAlgo::Large);
    }
    candidates.push(SelectAlgo::Hash);

    let mut costed = Vec::with_capacity(candidates.len());
    for algo in candidates {
        let counted = simulate_select(algo, shape)?;
        costed.push(CandidateCost { algo, cost: NodeCost::from_stats(&counted, profile) });
    }
    let best = costed
        .iter()
        .min_by(|a, b| a.cost.weighted.total_cmp(&b.cost.weighted))
        .expect("candidate set is never empty")
        .algo;
    Ok((best, costed))
}

/// Cost-based JOIN choice, mirroring [`choose_select_costed`]. A zero
/// oblivious-memory budget admits only the 0-OM join (§4.3).
pub fn choose_join_costed(
    shape: &JoinShape,
    profile: &CostProfile,
) -> Result<(JoinAlgo, Vec<JoinCandidateCost>), DbError> {
    let candidates: &[JoinAlgo] = if shape.om_bytes == 0 {
        &[JoinAlgo::ZeroOm]
    } else {
        &[JoinAlgo::Hash, JoinAlgo::Opaque, JoinAlgo::ZeroOm]
    };
    let mut costed = Vec::with_capacity(candidates.len());
    for &algo in candidates {
        let counted = simulate_join(algo, shape)?;
        costed.push(JoinCandidateCost { algo, cost: NodeCost::from_stats(&counted, profile) });
    }
    let best = costed
        .iter()
        .min_by(|a, b| a.cost.weighted.total_cmp(&b.cost.weighted))
        .expect("candidate set is never empty")
        .algo;
    Ok((best, costed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType};

    fn shape(cap: u64, matches: u64, continuous: bool, om: usize) -> SelectShape {
        SelectShape {
            schema: Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("v", DataType::Int),
            ]),
            capacity: cap,
            rows: cap,
            matches,
            continuous,
            om_bytes: om,
            out_key: AeadKey([9u8; 32]),
        }
    }

    #[test]
    fn simulated_counts_are_deterministic_and_size_shaped() {
        let s = shape(64, 8, false, 1 << 20);
        let a = simulate_select(SelectAlgo::Small, &s).unwrap();
        let b = simulate_select(SelectAlgo::Small, &s).unwrap();
        assert_eq!(a, b);
        // One pass: read the capacity once, write the 8 matches, plus the
        // 8-block output allocation.
        assert_eq!(a.reads, 64);
        assert_eq!(a.writes, 16);
    }

    #[test]
    fn crossing_price_flips_the_choice() {
        // Medium selectivity + tiny OM (8 rows → 32 Small passes): Hash
        // wins on blocks, but needs ~2 crossings per input row. Cheap
        // crossings → Hash; dear crossings → Small.
        let s = shape(512, 256, false, 8 * 17);
        let cfg = PlannerConfig::default();
        let cheap = CostProfile::new("ram", 1.0, 1.0, 1.0);
        let dear = CostProfile::new("disk", 1.0, 2.0, 64.0);
        let (on_ram, _) =
            choose_select_costed(&s, SelectStats { matches: 256, continuous: false }, &cfg, &cheap)
                .unwrap();
        let (on_disk, _) =
            choose_select_costed(&s, SelectStats { matches: 256, continuous: false }, &cfg, &dear)
                .unwrap();
        assert_eq!(on_ram, SelectAlgo::Hash);
        assert_eq!(on_disk, SelectAlgo::Small);
    }

    #[test]
    fn join_costing_covers_all_candidates() {
        let s = JoinShape {
            left_schema: Schema::new(vec![Column::new("k", DataType::Int)]),
            left_capacity: 32,
            right_schema: Schema::new(vec![Column::new("k", DataType::Int)]),
            right_capacity: 48,
            om_bytes: 1 << 16,
            zero_om_scratch_rows: 1,
        };
        let (algo, costed) = choose_join_costed(&s, &CostProfile::host()).unwrap();
        assert_eq!(costed.len(), 3);
        assert!(costed.iter().any(|c| c.algo == algo));
        let zero = JoinShape { om_bytes: 0, ..s };
        let (algo, costed) = choose_join_costed(&zero, &CostProfile::host()).unwrap();
        assert_eq!(algo, JoinAlgo::ZeroOm);
        assert_eq!(costed.len(), 1);
    }

    #[test]
    fn bench_json_seeding_normalizes_to_host() {
        let json = r#"
{"substrate": "host", "workload": "scan", "seconds": 0.001, "reads": 900, "writes": 100, "crossings": 10}
{"substrate": "disk", "workload": "scan", "seconds": 0.002, "reads": 900, "writes": 100, "crossings": 10}
"#;
        let host = CostProfile::from_bench_json(json, "host").unwrap();
        let disk = CostProfile::from_bench_json(json, "disk").unwrap();
        assert!((host.read_block - 1.0).abs() < 1e-9);
        assert!((disk.read_block - 2.0).abs() < 1e-9);
        assert!(CostProfile::from_bench_json(json, "nope").is_none());
    }

    #[test]
    fn thread_count_discounts_block_work_never_crossings() {
        let stats = HostStats {
            reads: 100,
            writes: 100,
            bytes_read: 0,
            bytes_written: 0,
            crossings: 10,
            stall_nanos: 0,
        };
        let serial = CostProfile::host();
        let four = CostProfile::host().with_threads(4);
        let serial_cost = serial.weigh(&stats);
        let four_cost = four.weigh(&stats);
        assert!(four_cost < serial_cost);
        // Amdahl: block work scales by (1-p) + p/4, crossings stay whole.
        let p = serial.parallel_block_fraction;
        let expect = 200.0 * ((1.0 - p) + p / 4.0) + 10.0 * serial.crossing;
        assert!((four_cost - expect).abs() < 1e-9, "{four_cost} vs {expect}");
        // Crossing-only work sees no benefit at all.
        let only_crossings = HostStats { crossings: 7, ..HostStats::default() };
        assert_eq!(serial.weigh(&only_crossings), four.weigh(&only_crossings));
        // Zero threads clamps to serial rather than dividing by zero.
        assert_eq!(CostProfile::host().with_threads(0).weigh(&stats), serial_cost);
    }

    #[test]
    fn calibration_runs_on_counting_memory() {
        let mut mem = CountingMemory::new();
        let p = CostProfile::calibrate("counting", &mut mem).unwrap();
        assert_eq!(p.read_block, 1.0);
        assert!(p.crossing >= 1.0);
        assert!(p.write_block > 0.0);
    }

    #[test]
    fn calibration_text_round_trips() {
        let p = CostProfile {
            name: "probe".into(),
            read_block: 1.25,
            write_block: 2.5,
            crossing: 17.0,
            threads: 4,
            parallel_block_fraction: 0.6,
        };
        assert_eq!(CostProfile::from_text(&p.to_text()), Some(p));
        // Every stock profile survives the trip too.
        for stock in [
            CostProfile::host(),
            CostProfile::disk(),
            CostProfile::cached_disk(),
            CostProfile::uniform(),
        ] {
            assert_eq!(CostProfile::from_text(&stock.to_text()), Some(stock));
        }
    }

    #[test]
    fn calibration_text_rejects_mangled_artifacts() {
        let good = CostProfile::host().to_text();
        // Missing key.
        let missing = good.replace("crossing", "crosing");
        assert_eq!(CostProfile::from_text(&missing), None);
        // Non-finite and non-positive weights must not reach the planner.
        for bad in ["NaN", "inf", "0", "-3.0", "bogus"] {
            let t = good
                .lines()
                .map(|l| {
                    if l.starts_with("read_block") {
                        format!("read_block = {bad}")
                    } else {
                        l.into()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            assert_eq!(CostProfile::from_text(&t), None, "read_block = {bad}");
        }
        // Zero threads would divide block weights into nonsense.
        let zero_threads = good
            .lines()
            .map(|l| if l.starts_with("threads") { "threads = 0".into() } else { l.to_string() })
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(CostProfile::from_text(&zero_threads), None);
        assert_eq!(CostProfile::from_text(""), None);
    }

    #[test]
    fn calibration_save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("oblidb-calib-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = CostProfile::disk().with_threads(3);
        p.save_to(&dir).unwrap();
        assert_eq!(CostProfile::load_from(&dir), Some(p));
        // A corrupt artifact reads as absent, not as garbage weights.
        std::fs::write(dir.join(CALIBRATION_FILE), "read_block = NaN\n").unwrap();
        assert_eq!(CostProfile::load_from(&dir), None);
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(CostProfile::load_from(&dir), None);
    }
}
