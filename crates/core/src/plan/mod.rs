//! The physical-plan IR behind the prepare/explain/execute lifecycle.
//!
//! [`crate::Database::prepare`] compiles a SQL statement into a
//! [`QueryPlan`]: a [`PlanNode`] tree whose operator nodes are annotated
//! with the chosen physical algorithm ([`crate::SelectAlgo`] /
//! [`crate::JoinAlgo`]), padded bounds, the oblivious-memory budget the
//! choice assumed, and — where the input shape is known at prepare time —
//! a [`NodeCost`] estimate counted by a [`cost`] dry run. Execution
//! ([`crate::PreparedStatement::run`]) walks the tree, measures the
//! actual per-node access counts, and writes them back, so a post-run
//! [`Explain`] shows estimated *and* actual costs side by side.
//!
//! The tree is exactly the plan-shaped leakage of paper §2.3: sizes,
//! shapes and operator choices — never payload contents.

pub mod cost;

use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::HostStats;

use crate::exec::AggFunc;
use crate::planner::{JoinAlgo, SelectAlgo};
use crate::predicate::{Bound, Predicate};
use crate::sql;
use crate::types::Value;

use cost::CostProfile;

/// Pre-allocated output-region key material, redacted from Debug output
/// (plans render in logs and EXPLAIN results; keys must not).
#[derive(Clone)]
pub(crate) struct PlanKey(pub(crate) AeadKey);

impl std::fmt::Debug for PlanKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PlanKey(<redacted>)")
    }
}

/// Counted cost of one plan node: blocks and crossings from a
/// [`cost::simulate_select`]-style dry run (estimates) or a measured
/// [`HostStats`] delta (actuals), plus the profile-weighted scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCost {
    /// Sealed blocks read.
    pub reads: u64,
    /// Sealed blocks written.
    pub writes: u64,
    /// Enclave boundary crossings.
    pub crossings: u64,
    /// `reads·read_block + writes·write_block + crossings·crossing` under
    /// the plan's [`CostProfile`].
    pub weighted: f64,
    /// AEAD payload bytes moved across the boundary (read + written).
    /// Zero for dry-run estimates on payload-free scratch memory is
    /// possible only when nothing moved; measured actuals always carry it.
    pub bytes: u64,
    /// Measured wall time in nanoseconds. Always zero for estimates —
    /// only `EXPLAIN ANALYZE` / executed plans fill it in.
    pub nanos: u64,
}

impl NodeCost {
    /// Weighs counted accesses under `profile`.
    pub fn from_stats(stats: &HostStats, profile: &CostProfile) -> Self {
        NodeCost {
            reads: stats.reads,
            writes: stats.writes,
            crossings: stats.crossings,
            weighted: profile.weigh(stats),
            bytes: stats.bytes_read + stats.bytes_written,
            nanos: 0,
        }
    }

    /// Total block accesses (reads + writes).
    pub fn blocks(&self) -> u64 {
        self.reads + self.writes
    }
}

impl std::fmt::Display for NodeCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} writes={} crossings={} weighted={:.1}",
            self.reads, self.writes, self.crossings, self.weighted
        )?;
        if self.bytes > 0 {
            write!(f, " bytes={}", self.bytes)?;
        }
        if self.nanos > 0 {
            write!(f, " time={}", fmt_nanos(self.nanos))?;
        }
        Ok(())
    }
}

/// Adaptive-unit rendering of a nanosecond wall time.
fn fmt_nanos(nanos: u64) -> String {
    let secs = nanos as f64 / 1e9;
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}µs", secs * 1e6)
    }
}

/// One costed SELECT candidate the planner considered.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateCost {
    /// The candidate operator.
    pub algo: SelectAlgo,
    /// Its counted, weighted cost.
    pub cost: NodeCost,
}

/// One costed JOIN candidate the planner considered.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCandidateCost {
    /// The candidate operator.
    pub algo: JoinAlgo,
    /// Its counted, weighted cost.
    pub cost: NodeCost,
}

/// How a base table is reached.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan the flat representation.
    Flat,
    /// Probe the oblivious B+ tree for a key range, capped at `cap`
    /// materialized rows; past the cap a flat scan is cheaper and the
    /// probe aborts back to [`AccessPath::Flat`] (paper §4.1/§5 — both
    /// the cap and the abort are functions of public sizes).
    IndexRange {
        /// Range lower bound on the indexed column.
        lo: Bound,
        /// Range upper bound on the indexed column.
        hi: Bound,
        /// Match-count cap beyond which the probe aborts to a flat scan;
        /// `u64::MAX` when the table has no flat representation.
        cap: u64,
    },
    /// Materialize the full range through the index (indexed-only table,
    /// no usable key range).
    IndexFull,
}

/// Leaf node: one base-table access.
#[derive(Debug, Clone)]
pub struct ScanNode {
    /// Table name.
    pub table: String,
    /// Chosen access path.
    pub access: AccessPath,
    /// Rows in use at prepare time (public).
    pub rows: u64,
    /// Allocated capacity at prepare time (public).
    pub capacity: u64,
    /// Measured materialization cost (index probes; `None` for flat
    /// scans, whose cost is charged to the consuming operator).
    pub actual: Option<NodeCost>,
}

/// How (and when) a filter stage's operator was fixed.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectChoice {
    /// Pinned by `PlannerConfig::force_select`.
    Forced(SelectAlgo),
    /// Padding mode: the Padded operator with this public output bound.
    Padded {
        /// Padded output size in rows (§2.3).
        pad_rows: u64,
    },
    /// Cost-chosen at prepare time, with the candidate table.
    Chosen {
        /// The winning operator.
        algo: SelectAlgo,
        /// Every candidate the planner dry-ran, in admission order.
        candidates: Vec<CandidateCost>,
    },
    /// Deferred to execution: the input is an intermediate (index
    /// materialization or join output) whose shape only exists at run
    /// time. Resolved by the same cost machinery, then written back.
    Deferred,
}

impl SelectChoice {
    /// The pinned operator, when one is already known.
    pub fn algo(&self) -> Option<SelectAlgo> {
        match self {
            SelectChoice::Forced(a) | SelectChoice::Chosen { algo: a, .. } => Some(*a),
            SelectChoice::Padded { .. } => Some(SelectAlgo::Padded),
            SelectChoice::Deferred => None,
        }
    }
}

/// A planned selection stage.
#[derive(Debug, Clone)]
pub struct FilterNode {
    /// Input plan.
    pub input: Box<PlanNode>,
    /// Resolved predicate (column indices, not names).
    pub pred: Predicate,
    /// The operator decision.
    pub choice: SelectChoice,
    /// Match count |R| from the prepare-time preliminary scan (`None`
    /// when deferred or in padding mode).
    pub est_matches: Option<u64>,
    /// Dry-run cost estimate for the chosen operator.
    pub est: Option<NodeCost>,
    /// Measured cost, filled by `run()`.
    pub actual: Option<NodeCost>,
    /// Oblivious-memory budget (bytes) the choice assumed.
    pub om_bytes: usize,
    /// Output-region key, pre-allocated at prepare so the estimate and
    /// the execution share the Hash operator's bucket functions.
    pub(crate) out_key: Option<PlanKey>,
}

/// How (and when) a join stage's operator was fixed.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinChoice {
    /// Pinned by `PlannerConfig::force_join`.
    Forced(JoinAlgo),
    /// Cost-chosen at prepare time from the estimated input shapes.
    Chosen {
        /// The winning operator.
        algo: JoinAlgo,
        /// Every candidate the planner dry-ran.
        candidates: Vec<JoinCandidateCost>,
    },
    /// Deferred to execution (an input shape depends on a runtime index
    /// probe).
    Deferred,
}

impl JoinChoice {
    /// The pinned operator, when one is already known.
    pub fn algo(&self) -> Option<JoinAlgo> {
        match self {
            JoinChoice::Forced(a) | JoinChoice::Chosen { algo: a, .. } => Some(*a),
            JoinChoice::Deferred => None,
        }
    }
}

/// A planned join stage (left = FROM side / primary, right = foreign).
#[derive(Debug, Clone)]
pub struct JoinNode {
    /// Left input plan.
    pub left: Box<PlanNode>,
    /// Right input plan.
    pub right: Box<PlanNode>,
    /// Join column index on the left schema.
    pub left_col: usize,
    /// Join column index on the right schema.
    pub right_col: usize,
    /// The operator decision.
    pub choice: JoinChoice,
    /// Dry-run cost estimate for the chosen operator.
    pub est: Option<NodeCost>,
    /// Measured cost, filled by `run()`.
    pub actual: Option<NodeCost>,
    /// Oblivious-memory budget (bytes) the choice assumed.
    pub om_bytes: usize,
    /// Output schema with table-qualified column names, applied to the
    /// joined table so downstream WHERE / GROUP BY can reference them.
    pub(crate) renamed: crate::types::Schema,
}

/// A fused select + aggregate stage (paper §4.2).
#[derive(Debug, Clone)]
pub struct AggregateNode {
    /// Input plan.
    pub input: Box<PlanNode>,
    /// Aggregates to compute, in projection order.
    pub items: Vec<(AggFunc, Option<String>)>,
    /// Filter fused into the aggregation pass.
    pub pred: Predicate,
    /// Measured cost, filled by `run()`.
    pub actual: Option<NodeCost>,
}

/// A grouped aggregation stage.
#[derive(Debug, Clone)]
pub struct GroupByNode {
    /// Input plan.
    pub input: Box<PlanNode>,
    /// Grouping column index (on the input schema).
    pub group_col: usize,
    /// The single aggregate function.
    pub func: AggFunc,
    /// Aggregated column index, `None` for `COUNT(*)`.
    pub agg_col: Option<usize>,
    /// Filter fused into the grouping pass.
    pub pred: Predicate,
    /// Padded group-count bound when padding mode is on.
    pub pad_groups: Option<u64>,
    /// Measured cost, filled by `run()`.
    pub actual: Option<NodeCost>,
}

/// One node of the physical plan.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Base-table access.
    Scan(ScanNode),
    /// Planned selection.
    Filter(FilterNode),
    /// Planned join.
    Join(JoinNode),
    /// Fused aggregates.
    Aggregate(AggregateNode),
    /// Grouped aggregation.
    GroupBy(GroupByNode),
}

impl PlanNode {
    /// The node's children, outermost first.
    fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::Scan(_) => Vec::new(),
            PlanNode::Filter(f) => vec![&f.input],
            PlanNode::Join(j) => vec![&j.left, &j.right],
            PlanNode::Aggregate(a) => vec![&a.input],
            PlanNode::GroupBy(g) => vec![&g.input],
        }
    }

    /// Sum of the estimated weighted costs of this subtree's costed nodes.
    pub fn estimated_weight(&self) -> f64 {
        let own = match self {
            PlanNode::Filter(f) => f.est.map(|c| c.weighted).unwrap_or(0.0),
            PlanNode::Join(j) => j.est.map(|c| c.weighted).unwrap_or(0.0),
            _ => 0.0,
        };
        own + self.children().iter().map(|c| c.estimated_weight()).sum::<f64>()
    }

    /// Sum of the measured weighted costs of this subtree's nodes.
    pub fn actual_weight(&self) -> f64 {
        let own = match self {
            PlanNode::Scan(s) => s.actual.map(|c| c.weighted).unwrap_or(0.0),
            PlanNode::Filter(f) => f.actual.map(|c| c.weighted).unwrap_or(0.0),
            PlanNode::Join(j) => j.actual.map(|c| c.weighted).unwrap_or(0.0),
            PlanNode::Aggregate(a) => a.actual.map(|c| c.weighted).unwrap_or(0.0),
            PlanNode::GroupBy(g) => g.actual.map(|c| c.weighted).unwrap_or(0.0),
        };
        own + self.children().iter().map(|c| c.actual_weight()).sum::<f64>()
    }

    /// The first filter node in the subtree (pre-order), if any — the
    /// usual subject of planner assertions in tests.
    pub fn find_filter(&self) -> Option<&FilterNode> {
        match self {
            PlanNode::Filter(f) => Some(f),
            _ => self.children().into_iter().find_map(|c| c.find_filter()),
        }
    }
}

/// A compiled SELECT: the operator tree plus the decode-side shape
/// (projection, ORDER BY, LIMIT) that runs inside the enclave.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    /// The operator tree.
    pub root: PlanNode,
    /// The parsed statement (projection / order / limit at decode time).
    pub(crate) stmt: sql::Select,
}

/// What a prepared statement will do when run.
#[derive(Debug, Clone)]
pub enum PlanAction {
    /// `CREATE TABLE`.
    Create(sql::CreateTable),
    /// `INSERT`.
    Insert(sql::Insert),
    /// `UPDATE` with a resolved predicate and assignments.
    Update {
        /// Target table.
        table: String,
        /// `(column index, new value)` pairs.
        assignments: Vec<(usize, Value)>,
        /// Resolved row filter.
        pred: Predicate,
    },
    /// `DELETE` with a resolved predicate.
    Delete {
        /// Target table.
        table: String,
        /// Resolved row filter.
        pred: Predicate,
    },
    /// `SELECT`.
    Select(SelectPlan),
    /// `EXPLAIN SELECT`: render the plan, execute nothing.
    ExplainSelect(SelectPlan),
    /// `EXPLAIN ANALYZE SELECT`: execute the plan with telemetry on, then
    /// render the tree with measured per-node time/crossings/bytes next
    /// to the planner's estimates.
    ExplainAnalyzeSelect(SelectPlan),
    /// `BEGIN` / `COMMIT` / `ROLLBACK`. The engine itself never runs
    /// these — a transaction session intercepts them before planning —
    /// so executing one is a typed error, not a query.
    TxnControl(TxnVerb),
}

/// Which transaction-control statement a [`PlanAction::TxnControl`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnVerb {
    /// `BEGIN [TRANSACTION]`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
}

impl TxnVerb {
    /// The SQL keyword, for error messages.
    pub fn keyword(self) -> &'static str {
        match self {
            TxnVerb::Begin => "BEGIN",
            TxnVerb::Commit => "COMMIT",
            TxnVerb::Rollback => "ROLLBACK",
        }
    }
}

/// A compiled statement: the action, the cost profile its estimates were
/// weighted with, and the catalog version it was planned against.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// What running the plan does.
    pub action: PlanAction,
    /// The profile used to weigh candidate and actual costs.
    pub profile: CostProfile,
    /// Catalog version at prepare time; a mismatch at run time triggers
    /// transparent re-planning (sizes and statistics may have moved).
    pub(crate) version: u64,
}

impl QueryPlan {
    /// The SELECT operator tree, when this plan has one.
    pub fn select_root(&self) -> Option<&PlanNode> {
        match &self.action {
            PlanAction::Select(s)
            | PlanAction::ExplainSelect(s)
            | PlanAction::ExplainAnalyzeSelect(s) => Some(&s.root),
            _ => None,
        }
    }
}

/// A rendered plan: estimated and (post-run) actual costs per node.
#[derive(Debug, Clone)]
pub struct Explain {
    lines: Vec<String>,
}

impl Explain {
    /// Renders `plan` as an indented tree.
    pub fn of(plan: &QueryPlan) -> Self {
        let mut lines = Vec::new();
        match &plan.action {
            PlanAction::Create(c) => lines.push(format!("Create table {}", c.name)),
            PlanAction::Insert(i) => lines.push(format!("Insert into {}", i.table)),
            PlanAction::Update { table, .. } => {
                lines.push(format!("Update {table} (oblivious rewrite pass)"))
            }
            PlanAction::Delete { table, .. } => {
                lines.push(format!("Delete from {table} (oblivious rewrite pass)"))
            }
            PlanAction::TxnControl(verb) => {
                lines.push(format!("{} (transaction control)", verb.keyword()))
            }
            PlanAction::Select(s)
            | PlanAction::ExplainSelect(s)
            | PlanAction::ExplainAnalyzeSelect(s) => {
                // Suppress each cost clause when no node carries it — a
                // plan of uncosted nodes is "not estimated", not free.
                let est = s.root.estimated_weight();
                let act = s.root.actual_weight();
                let mut header = format!("Select  [profile={}]", plan.profile.name);
                if plan.profile.threads > 1 {
                    header.push_str(&format!("  [threads={}]", plan.profile.threads));
                }
                if est > 0.0 {
                    header.push_str(&format!("  est weighted cost {est:.1}"));
                }
                if act > 0.0 {
                    header.push_str(&format!(", actual {act:.1}"));
                }
                lines.push(header);
                render(&s.root, 1, &mut lines);
            }
        }
        Explain { lines }
    }

    /// The rendered lines, one per row of output.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

fn render(node: &PlanNode, depth: usize, out: &mut Vec<String>) {
    let pad = "  ".repeat(depth);
    let push_costs = |out: &mut Vec<String>, est: &Option<NodeCost>, actual: &Option<NodeCost>| {
        if let Some(c) = est {
            out.push(format!("{pad}   est: {c}"));
        }
        if let Some(c) = actual {
            out.push(format!("{pad}   act: {c}"));
        }
    };
    match node {
        PlanNode::Scan(s) => {
            let access = match &s.access {
                AccessPath::Flat => "flat".to_string(),
                AccessPath::IndexRange { cap, .. } => format!("index range, abort cap {cap}"),
                AccessPath::IndexFull => "index full scan".to_string(),
            };
            out.push(format!(
                "{pad}-> Scan {} [{access}] rows={} cap={}",
                s.table, s.rows, s.capacity
            ));
            push_costs(out, &None, &s.actual);
        }
        PlanNode::Filter(f) => {
            let algo = match &f.choice {
                SelectChoice::Forced(a) => format!("{a:?} (forced)"),
                SelectChoice::Padded { pad_rows } => format!("Padded (bound {pad_rows})"),
                SelectChoice::Chosen { algo, .. } => format!("{algo:?}"),
                SelectChoice::Deferred => "deferred to run".to_string(),
            };
            let matches = f.est_matches.map(|m| format!(" est_rows={m}")).unwrap_or_default();
            out.push(format!("{pad}-> Filter [{algo}]{matches} om={}B", f.om_bytes));
            if let SelectChoice::Chosen { candidates, .. } = &f.choice {
                let cells: Vec<String> = candidates
                    .iter()
                    .map(|c| format!("{:?}={:.1}", c.algo, c.cost.weighted))
                    .collect();
                out.push(format!("{pad}   candidates: {}", cells.join(" ")));
            }
            push_costs(out, &f.est, &f.actual);
            render(&f.input, depth + 1, out);
        }
        PlanNode::Join(j) => {
            let algo = match &j.choice {
                JoinChoice::Forced(a) => format!("{a:?} (forced)"),
                JoinChoice::Chosen { algo, .. } => format!("{algo:?}"),
                JoinChoice::Deferred => "deferred to run".to_string(),
            };
            out.push(format!("{pad}-> Join [{algo}] om={}B", j.om_bytes));
            if let JoinChoice::Chosen { candidates, .. } = &j.choice {
                let cells: Vec<String> = candidates
                    .iter()
                    .map(|c| format!("{:?}={:.1}", c.algo, c.cost.weighted))
                    .collect();
                out.push(format!("{pad}   candidates: {}", cells.join(" ")));
            }
            push_costs(out, &j.est, &j.actual);
            render(&j.left, depth + 1, out);
            render(&j.right, depth + 1, out);
        }
        PlanNode::Aggregate(a) => {
            let items: Vec<String> = a
                .items
                .iter()
                .map(|(f, c)| format!("{f:?}({})", c.as_deref().unwrap_or("*")))
                .collect();
            out.push(format!("{pad}-> Aggregate [{}] (fused)", items.join(", ")));
            push_costs(out, &None, &a.actual);
            render(&a.input, depth + 1, out);
        }
        PlanNode::GroupBy(g) => {
            let bound = g.pad_groups.map(|p| format!(" padded_groups={p}")).unwrap_or_default();
            out.push(format!("{pad}-> GroupBy [{:?}]{bound}", g.func));
            push_costs(out, &None, &g.actual);
            render(&g.input, depth + 1, out);
        }
    }
}
