//! The query planner (paper §5).
//!
//! ObliDB chooses among operator implementations using only information the
//! adversary already has (or will get): table sizes, the output size, the
//! result's continuity, and the oblivious-memory budget. The planner's own
//! preliminary scan has a fixed access pattern — read every row once — so
//! the only leakage optimization adds is the final algorithm choice.

use oblidb_enclave::{EnclaveMemory, OmBudget};

use crate::error::DbError;
use crate::predicate::Predicate;
use crate::table::FlatTable;
use crate::types::Schema;

/// The SELECT physical operators (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectAlgo {
    /// Multi-pass, enclave-buffered (small results).
    Small,
    /// Copy-then-clear (results covering almost the whole table).
    Large,
    /// Single-pass wraparound writes (contiguous results). Leaks
    /// continuity; can be disabled.
    Continuous,
    /// Double-hashed bucket writes (the general case).
    Hash,
    /// ORAM-per-row baseline (never chosen; for comparison).
    Naive,
    /// Padding-mode selection: multi-pass with pass count and output size
    /// fixed by the padded bound (§2.3; only used when padding is on).
    Padded,
}

/// The JOIN physical operators (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Block-partitioned oblivious hash join.
    Hash,
    /// Opaque sort-merge join (oblivious-memory quicksort chunks).
    Opaque,
    /// Bitonic sort-merge join using zero oblivious memory.
    ZeroOm,
}

/// What the planner's preliminary scan learns (paper §5: "(1) the number
/// of rows satisfying the predicate and (2) whether those rows are
/// adjacent in the input table").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectStats {
    /// Number of matching rows — becomes |R|, already-leaked output size.
    pub matches: u64,
    /// Whether the matches form one contiguous run of the table.
    pub continuous: bool,
}

/// How the planner prices candidate operators.
#[derive(Debug, Clone, PartialEq)]
pub enum CostModel {
    /// The closed-form access-count formulas (paper §5 as originally
    /// reproduced). Kept for comparison and for the parity tests; the
    /// measured model subsumes it.
    ClosedForm,
    /// Dry-run each candidate against a scratch
    /// [`CountingMemory`](oblidb_enclave::CountingMemory), count blocks
    /// and boundary crossings, and weigh them with the per-substrate
    /// [`CostProfile`](crate::plan::cost::CostProfile) — the
    /// cost-calibrated planner (ROADMAP).
    Measured(crate::plan::cost::CostProfile),
}

impl CostModel {
    /// The profile used for weighting (the closed-form model reports
    /// costs under the default profile for explain purposes).
    pub fn profile(&self) -> crate::plan::cost::CostProfile {
        match self {
            CostModel::ClosedForm => crate::plan::cost::CostProfile::default(),
            CostModel::Measured(p) => p.clone(),
        }
    }
}

/// Planner tunables.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Whether the Continuous algorithm may be chosen (§4.1 allows
    /// disabling it to remove the continuity leak; the paper disables it
    /// when comparing against Opaque).
    pub enable_continuous: bool,
    /// Fraction of the table above which Large is used ("contains almost
    /// every row", §4.1).
    pub large_threshold: f64,
    /// Maximum Small passes before falling back to Hash — a
    /// [`CostModel::ClosedForm`]-only proxy for the pass cost (Small is
    /// ≈ passes·N reads vs Hash's ≈ 21·N accesses, break-even around
    /// 16–20 passes; measured calibration in the fig13 harness). The
    /// measured model prices the passes directly — block counts and
    /// crossing weight — so it deliberately ignores this cap: on a
    /// dear-crossing substrate, 50 cheap sequential passes legitimately
    /// beat ~2·N crossings.
    pub small_max_passes: u64,
    /// Operator overrides ("users can also manually choose to force a
    /// particular operator", §5).
    pub force_select: Option<SelectAlgo>,
    /// Join override.
    pub force_join: Option<JoinAlgo>,
    /// How candidates are priced. Defaults to the measured model under
    /// the (substrate-neutral) host profile, so plan choices — which are
    /// deliberate leakage — stay identical across substrates unless a
    /// per-substrate profile is opted into.
    pub cost_model: CostModel,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            enable_continuous: true,
            large_threshold: 0.9,
            small_max_passes: 16,
            force_select: None,
            force_join: None,
            cost_model: CostModel::Measured(crate::plan::cost::CostProfile::host()),
        }
    }
}

/// The planner's preliminary scan: reads every row once, updating
/// statistics inside the enclave. Fixed access pattern; "often for free"
/// because operators need |R| before allocating output anyway (§5).
pub fn scan_stats<M: EnclaveMemory>(
    host: &mut M,
    input: &mut FlatTable,
    pred: &Predicate,
) -> Result<SelectStats, DbError> {
    let schema = input.schema().clone();
    let mut matches = 0u64;
    let mut runs = 0u32;
    let mut prev = false;
    input.for_each_row(host, |_, bytes| {
        let hit = Schema::row_used(bytes) && pred.eval(&schema, bytes);
        if hit {
            matches += 1;
            if !prev {
                runs += 1;
            }
        }
        prev = hit;
    })?;
    Ok(SelectStats { matches, continuous: runs <= 1 && matches > 0 })
}

/// Chooses the SELECT operator from the stats, sizes, and budget — the
/// decision procedure behind Figure 13.
pub fn choose_select(
    stats: SelectStats,
    table_rows: u64,
    row_len: usize,
    om: &OmBudget,
    cfg: &PlannerConfig,
) -> SelectAlgo {
    if let Some(algo) = cfg.force_select {
        return algo;
    }
    if stats.continuous && cfg.enable_continuous {
        return SelectAlgo::Continuous;
    }
    let buf_rows = (om.available() / row_len.max(1)).max(1) as u64;
    let passes = stats.matches.div_ceil(buf_rows).max(1);
    // Access-count costs (reads + writes) of the two candidates.
    let cost_small = passes * table_rows + stats.matches;
    let cost_large = 4 * table_rows; // copy (r+w) + clear pass (r+w)
    if table_rows > 0 && stats.matches as f64 >= cfg.large_threshold * table_rows as f64 {
        // "Contains almost every row": Large applies; still take Small
        // when the whole result fits in a few enclave-fulls and wins on
        // measured accesses (it also yields a tighter output structure).
        return if cost_small <= cost_large && passes <= cfg.small_max_passes {
            SelectAlgo::Small
        } else {
            SelectAlgo::Large
        };
    }
    // Below the threshold Large's |T|-block output structure penalizes
    // every downstream operator, so the choice is Small vs Hash (§5).
    if passes <= cfg.small_max_passes {
        SelectAlgo::Small
    } else {
        SelectAlgo::Hash
    }
}

/// Cost model for the sort-merge joins: untrusted block accesses of
/// sorting `n` union rows with an enclave chunk of `m` rows, plus the
/// fill and merge passes. Mirrors the structure of `exec::sort`.
fn sort_join_cost(n1: u64, n2: u64, chunk: u64) -> u64 {
    let n = (n1 + n2).max(2).next_power_of_two();
    // Largest power of two ≤ chunk (matches exec::sort's buffer shaping).
    let c = chunk.max(1);
    let m = (1u64 << (63 - c.leading_zeros())).min(n);
    // Phase A (local sorts) reads and writes everything once.
    let mut passes: u64 = 2;
    let mut k = 2 * m;
    while k <= n {
        let mut j = k / 2;
        while j >= m {
            passes += 2; // element pass reads + writes the span
            j /= 2;
        }
        if m > 1 {
            passes += 2; // local merge pass
        }
        k *= 2;
    }
    // Fill (read inputs + write union) and merge (read union + write out).
    (n1 + n2) * 2 + n * passes + n * 2
}

/// Cost model for the hash join. Each probe step costs one T2 read, one
/// (joined-row) output write, and one output-region creation write —
/// hence the weight of 3 on the per-pass term, validated cell-by-cell
/// against the fig14 grid.
fn hash_join_cost(n1: u64, n2: u64, chunk_rows: u64) -> u64 {
    let passes = n1.div_ceil(chunk_rows.max(1));
    n1 + passes * n2 * 3
}

/// Chooses the join algorithm from table sizes and the oblivious-memory
/// budget only (paper §5: "planning for joins requires even less
/// information than selection").
pub fn choose_join(
    n1: u64,
    n2: u64,
    row_len1: usize,
    union_row_len: usize,
    om: &OmBudget,
    cfg: &PlannerConfig,
) -> JoinAlgo {
    if let Some(algo) = cfg.force_join {
        return algo;
    }
    let om_bytes = om.available();
    if om_bytes == 0 {
        return JoinAlgo::ZeroOm;
    }
    let build_rows = (om_bytes / (row_len1 + 32).max(1)) as u64;
    // "If the amount of oblivious memory is large relative to the size of
    // the first table, we always use the hash join."
    if build_rows >= n1 {
        return JoinAlgo::Hash;
    }
    let sort_rows = (om_bytes / union_row_len.max(1)).max(1) as u64;
    let hash_cost = hash_join_cost(n1, n2, build_rows.max(1));
    let opaque_cost = sort_join_cost(n1, n2, sort_rows);
    if hash_cost <= opaque_cost {
        JoinAlgo::Hash
    } else {
        JoinAlgo::Opaque
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::types::{Column, DataType, Value};
    use oblidb_crypto::aead::AeadKey;
    use oblidb_enclave::Host;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int)])
    }

    fn build(n: i64) -> (Host, FlatTable) {
        let s = schema();
        let mut host = Host::new();
        let rows: Vec<Vec<u8>> = (0..n).map(|i| s.encode_row(&[Value::Int(i)]).unwrap()).collect();
        let t = FlatTable::from_encoded_rows(&mut host, AeadKey([1u8; 32]), s, &rows, n as u64)
            .unwrap();
        (host, t)
    }

    #[test]
    fn stats_count_and_continuity() {
        let (mut host, mut t) = build(20);
        let p = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(5)).unwrap();
        let s = scan_stats(&mut host, &mut t, &p).unwrap();
        assert_eq!(s, SelectStats { matches: 5, continuous: true });

        let a = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(3)).unwrap();
        let b = Predicate::cmp(t.schema(), "id", CmpOp::Ge, Value::Int(15)).unwrap();
        let split = Predicate::Or(Box::new(a), Box::new(b));
        let s = scan_stats(&mut host, &mut t, &split).unwrap();
        assert_eq!(s, SelectStats { matches: 8, continuous: false });

        let none = Predicate::cmp(t.schema(), "id", CmpOp::Gt, Value::Int(99)).unwrap();
        let s = scan_stats(&mut host, &mut t, &none).unwrap();
        assert_eq!(s, SelectStats { matches: 0, continuous: false });
    }

    #[test]
    fn stats_scan_has_fixed_pattern() {
        let (mut host, mut t) = build(10);
        let p1 = Predicate::True;
        let p2 = Predicate::cmp(t.schema(), "id", CmpOp::Eq, Value::Int(3)).unwrap();
        host.start_trace();
        scan_stats(&mut host, &mut t, &p1).unwrap();
        let a = host.take_trace();
        host.start_trace();
        scan_stats(&mut host, &mut t, &p2).unwrap();
        let b = host.take_trace();
        assert_eq!(a, b);
    }

    #[test]
    fn continuous_preferred_when_enabled() {
        let om = OmBudget::new(1 << 20);
        let cfg = PlannerConfig::default();
        let stats = SelectStats { matches: 50, continuous: true };
        assert_eq!(choose_select(stats, 1000, 64, &om, &cfg), SelectAlgo::Continuous);
        let cfg_off = PlannerConfig { enable_continuous: false, ..cfg };
        assert_eq!(choose_select(stats, 1000, 64, &om, &cfg_off), SelectAlgo::Small);
    }

    #[test]
    fn large_for_near_total_selection() {
        // Tiny OM: Small would need ~60 passes, so Large wins.
        let om = OmBudget::new(16 * 64);
        let cfg = PlannerConfig::default();
        let stats = SelectStats { matches: 950, continuous: false };
        assert_eq!(choose_select(stats, 1000, 64, &om, &cfg), SelectAlgo::Large);
        // Plentiful OM: the whole result fits in one enclave buffer and
        // Small beats Large on measured accesses (fig13 at small scale).
        let om = OmBudget::new(1 << 20);
        assert_eq!(choose_select(stats, 1000, 64, &om, &cfg), SelectAlgo::Small);
    }

    #[test]
    fn small_for_small_results_hash_for_medium() {
        // OM fits 16 rows; 5% → few passes → Small; 50% → many → Hash.
        let om = OmBudget::new(16 * 64);
        let cfg = PlannerConfig::default();
        let small = SelectStats { matches: 50, continuous: false };
        assert_eq!(choose_select(small, 1000, 64, &om, &cfg), SelectAlgo::Small);
        let medium = SelectStats { matches: 500, continuous: false };
        assert_eq!(choose_select(medium, 1000, 64, &om, &cfg), SelectAlgo::Hash);
    }

    #[test]
    fn force_overrides() {
        let om = OmBudget::new(1 << 20);
        let cfg = PlannerConfig {
            force_select: Some(SelectAlgo::Naive),
            force_join: Some(JoinAlgo::ZeroOm),
            ..PlannerConfig::default()
        };
        let stats = SelectStats { matches: 1, continuous: true };
        assert_eq!(choose_select(stats, 10, 8, &om, &cfg), SelectAlgo::Naive);
        assert_eq!(choose_join(10, 10, 8, 32, &om, &cfg), JoinAlgo::ZeroOm);
    }

    #[test]
    fn join_hash_when_t1_fits() {
        let om = OmBudget::new(1 << 20);
        let cfg = PlannerConfig::default();
        assert_eq!(choose_join(100, 100_000, 64, 128, &om, &cfg), JoinAlgo::Hash);
    }

    #[test]
    fn join_opaque_when_om_is_tiny() {
        // With almost no oblivious memory the hash join degenerates to
        // hundreds of passes over T2 and the sort-merge join wins. (In our
        // substrate random and sequential block accesses cost the same, so
        // the crossover sits at a smaller budget than on the paper's SGX
        // testbed — see EXPERIMENTS.md.)
        let om = OmBudget::new(20 * 96);
        let cfg = PlannerConfig::default();
        assert_eq!(choose_join(10_000, 25_000, 64, 96, &om, &cfg), JoinAlgo::Opaque);
    }

    #[test]
    fn join_hash_when_t2_tiny() {
        let om = OmBudget::new(500 * 96);
        let cfg = PlannerConfig::default();
        assert_eq!(choose_join(10_000, 100, 64, 96, &om, &cfg), JoinAlgo::Hash);
    }

    #[test]
    fn join_zero_om_when_no_budget() {
        let om = OmBudget::new(0);
        let cfg = PlannerConfig::default();
        assert_eq!(choose_join(1000, 1000, 64, 96, &om, &cfg), JoinAlgo::ZeroOm);
    }
}
