//! Selection predicates: arbitrary logical combinations of equality and
//! range comparisons (paper §4: "selection with conditions composed of
//! arbitrary logical combinations of equality or range queries").
//!
//! Predicates are evaluated entirely inside the enclave on decrypted rows;
//! their parameters never influence the memory access pattern — the
//! operators guarantee that.

use crate::types::{Schema, Value};
use std::cmp::Ordering;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// A selection predicate over one table's rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (no WHERE clause).
    True,
    /// `column <op> literal`.
    Cmp {
        /// Column index in the schema.
        col: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// Logical AND.
    And(Box<Predicate>, Box<Predicate>),
    /// Logical OR.
    Or(Box<Predicate>, Box<Predicate>),
    /// Logical NOT.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience: `column <op> value` by name.
    pub fn cmp(
        schema: &Schema,
        col: &str,
        op: CmpOp,
        value: Value,
    ) -> Result<Self, crate::DbError> {
        Ok(Predicate::Cmp { col: schema.col(col)?, op, value })
    }

    /// Evaluates against an *encoded* row (decodes only referenced columns).
    pub fn eval(&self, schema: &Schema, row: &[u8]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { col, op, value } => {
                let actual = schema.decode_col(row, *col);
                op.matches(actual.cmp_total(value))
            }
            Predicate::And(a, b) => a.eval(schema, row) && b.eval(schema, row),
            Predicate::Or(a, b) => a.eval(schema, row) || b.eval(schema, row),
            Predicate::Not(p) => !p.eval(schema, row),
        }
    }

    /// If this predicate constrains exactly one column to a closed range
    /// usable by an index, returns `(col, lo, hi)` (inclusive bounds).
    ///
    /// Handles `col = v`, `col >/>=/</<= v`, and conjunctions of bounds on
    /// the same column. Anything else returns `None` and falls back to a
    /// scan.
    pub fn index_range(&self) -> Option<(usize, Bound, Bound)> {
        match self {
            Predicate::Cmp { col, op, value } => {
                let (lo, hi) = match op {
                    CmpOp::Eq => (Bound::Inclusive(value.clone()), Bound::Inclusive(value.clone())),
                    CmpOp::Lt => (Bound::Unbounded, Bound::Exclusive(value.clone())),
                    CmpOp::Le => (Bound::Unbounded, Bound::Inclusive(value.clone())),
                    CmpOp::Gt => (Bound::Exclusive(value.clone()), Bound::Unbounded),
                    CmpOp::Ge => (Bound::Inclusive(value.clone()), Bound::Unbounded),
                    CmpOp::Ne => return None,
                };
                Some((*col, lo, hi))
            }
            Predicate::And(a, b) => {
                let (ca, loa, hia) = a.index_range()?;
                let (cb, lob, hib) = b.index_range()?;
                if ca != cb {
                    return None;
                }
                Some((ca, Bound::tighter_lo(loa, lob), Bound::tighter_hi(hia, hib)))
            }
            _ => None,
        }
    }
}

/// A range bound for index scans.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// No bound on this side.
    Unbounded,
    /// Inclusive bound.
    Inclusive(Value),
    /// Exclusive bound.
    Exclusive(Value),
}

impl Bound {
    fn tighter_lo(a: Bound, b: Bound) -> Bound {
        match (&a, &b) {
            (Bound::Unbounded, _) => b,
            (_, Bound::Unbounded) => a,
            (
                Bound::Inclusive(x) | Bound::Exclusive(x),
                Bound::Inclusive(y) | Bound::Exclusive(y),
            ) => match x.cmp_total(y) {
                Ordering::Greater => a,
                Ordering::Less => b,
                Ordering::Equal => {
                    if matches!(a, Bound::Exclusive(_)) {
                        a
                    } else {
                        b
                    }
                }
            },
        }
    }

    fn tighter_hi(a: Bound, b: Bound) -> Bound {
        match (&a, &b) {
            (Bound::Unbounded, _) => b,
            (_, Bound::Unbounded) => a,
            (
                Bound::Inclusive(x) | Bound::Exclusive(x),
                Bound::Inclusive(y) | Bound::Exclusive(y),
            ) => match x.cmp_total(y) {
                Ordering::Less => a,
                Ordering::Greater => b,
                Ordering::Equal => {
                    if matches!(a, Bound::Exclusive(_)) {
                        a
                    } else {
                        b
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("name", DataType::Text(8))])
    }

    fn row(id: i64, name: &str) -> Vec<u8> {
        schema().encode_row(&[Value::Int(id), Value::Text(name.into())]).unwrap()
    }

    #[test]
    fn comparison_operators() {
        let s = schema();
        let r = row(5, "eve");
        for (op, expect) in [
            (CmpOp::Eq, true),
            (CmpOp::Ne, false),
            (CmpOp::Lt, false),
            (CmpOp::Le, true),
            (CmpOp::Gt, false),
            (CmpOp::Ge, true),
        ] {
            let p = Predicate::cmp(&s, "id", op, Value::Int(5)).unwrap();
            assert_eq!(p.eval(&s, &r), expect, "{op:?}");
        }
    }

    #[test]
    fn logical_combinations() {
        let s = schema();
        let r = row(5, "eve");
        let p_id = Predicate::cmp(&s, "id", CmpOp::Gt, Value::Int(3)).unwrap();
        let p_name = Predicate::cmp(&s, "name", CmpOp::Eq, Value::Text("eve".into())).unwrap();
        assert!(Predicate::And(Box::new(p_id.clone()), Box::new(p_name.clone())).eval(&s, &r));
        let p_other = Predicate::cmp(&s, "id", CmpOp::Lt, Value::Int(0)).unwrap();
        assert!(Predicate::Or(Box::new(p_other.clone()), Box::new(p_name)).eval(&s, &r));
        assert!(Predicate::Not(Box::new(p_other)).eval(&s, &r));
        assert!(Predicate::True.eval(&s, &r));
    }

    #[test]
    fn text_comparison() {
        let s = schema();
        let p = Predicate::cmp(&s, "name", CmpOp::Gt, Value::Text("bob".into())).unwrap();
        assert!(p.eval(&s, &row(1, "eve")));
        assert!(!p.eval(&s, &row(1, "alice")));
    }

    #[test]
    fn index_range_from_equality() {
        let s = schema();
        let p = Predicate::cmp(&s, "id", CmpOp::Eq, Value::Int(9)).unwrap();
        let (col, lo, hi) = p.index_range().unwrap();
        assert_eq!(col, 0);
        assert_eq!(lo, Bound::Inclusive(Value::Int(9)));
        assert_eq!(hi, Bound::Inclusive(Value::Int(9)));
    }

    #[test]
    fn index_range_from_conjunction() {
        let s = schema();
        let a = Predicate::cmp(&s, "id", CmpOp::Gt, Value::Int(3)).unwrap();
        let b = Predicate::cmp(&s, "id", CmpOp::Le, Value::Int(9)).unwrap();
        let p = Predicate::And(Box::new(a), Box::new(b));
        let (col, lo, hi) = p.index_range().unwrap();
        assert_eq!(col, 0);
        assert_eq!(lo, Bound::Exclusive(Value::Int(3)));
        assert_eq!(hi, Bound::Inclusive(Value::Int(9)));
    }

    #[test]
    fn index_range_rejects_mixed_columns_and_or() {
        let s = schema();
        let a = Predicate::cmp(&s, "id", CmpOp::Gt, Value::Int(3)).unwrap();
        let b = Predicate::cmp(&s, "name", CmpOp::Eq, Value::Text("x".into())).unwrap();
        assert!(Predicate::And(Box::new(a.clone()), Box::new(b.clone())).index_range().is_none());
        assert!(Predicate::Or(Box::new(a), Box::new(b)).index_range().is_none());
    }

    #[test]
    fn tighter_bounds_chosen() {
        let s = schema();
        let a = Predicate::cmp(&s, "id", CmpOp::Ge, Value::Int(3)).unwrap();
        let b = Predicate::cmp(&s, "id", CmpOp::Gt, Value::Int(5)).unwrap();
        let (_, lo, _) = Predicate::And(Box::new(a), Box::new(b)).index_range().unwrap();
        assert_eq!(lo, Bound::Exclusive(Value::Int(5)));
    }

    #[test]
    fn dummy_rows_never_needed() {
        // Operators check the used flag before predicates; but eval on a
        // dummy row must not panic.
        let s = schema();
        let p = Predicate::cmp(&s, "id", CmpOp::Eq, Value::Int(0)).unwrap();
        let _ = p.eval(&s, &s.dummy_row());
    }
}
