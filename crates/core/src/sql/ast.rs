//! SQL abstract syntax.

use crate::db::StorageMethod;
use crate::exec::AggFunc;
use crate::types::{DataType, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE ...`
    Create(CreateTable),
    /// `INSERT INTO ...`
    Insert(Insert),
    /// `SELECT ...`
    Select(Select),
    /// `UPDATE ...`
    Update(Update),
    /// `DELETE FROM ...`
    Delete(Delete),
    /// `EXPLAIN SELECT ...` — compile and cost the plan, execute nothing;
    /// the result set is the rendered plan, one line per row.
    Explain(Select),
    /// `EXPLAIN ANALYZE SELECT ...` — compile, **execute**, and render the
    /// plan with measured per-node wall time, crossings, and AEAD bytes
    /// alongside the planner's estimates; the result set is the annotated
    /// plan, one line per row.
    ExplainAnalyze(Select),
    /// `BEGIN [TRANSACTION]` — open a multi-statement transaction.
    /// Transaction control is interpreted by a transaction session
    /// (`oblidb::txn`); a bare engine rejects it with a typed error.
    Begin,
    /// `COMMIT` — apply the buffered transaction atomically.
    Commit,
    /// `ROLLBACK` — discard the buffered transaction.
    Rollback,
}

/// One column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

/// `CREATE TABLE name (cols) [STORAGE = FLAT|INDEXED|BOTH] [INDEX ON col]
/// [CAPACITY n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
    /// Storage method (defaults to flat).
    pub storage: StorageMethod,
    /// Indexed column, required for INDEXED/BOTH storage.
    pub index_on: Option<String>,
    /// Initial row capacity (defaults to [`crate::db::DEFAULT_CAPACITY`]).
    pub capacity: Option<u64>,
}

/// `INSERT INTO name VALUES (...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Table name.
    pub table: String,
    /// Row literals.
    pub values: Vec<Value>,
}

/// A projected item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// Bare column reference.
    Column(String),
    /// `AGG(col)` or `COUNT(*)`.
    Aggregate {
        /// Aggregate function.
        func: AggFunc,
        /// Column, or `None` for `COUNT(*)`.
        col: Option<String>,
    },
}

/// The projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`.
    Star,
    /// Explicit items.
    Items(Vec<SelectItem>),
}

/// `JOIN table ON left = right`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinClause {
    /// The second table.
    pub table: String,
    /// Join column on the first (FROM) table.
    pub left_col: String,
    /// Join column on the joined table.
    pub right_col: String,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projection list.
    pub projection: Projection,
    /// FROM table.
    pub table: String,
    /// Optional join.
    pub join: Option<JoinClause>,
    /// Optional WHERE predicate (name-resolved later against the schema).
    pub where_clause: Option<ast_pred::PredExpr>,
    /// Optional GROUP BY column.
    pub group_by: Option<String>,
    /// Optional ORDER BY (column, descending?). Applied to the decoded
    /// result inside the enclave — it never touches untrusted memory, so
    /// it adds no leakage.
    pub order_by: Option<(String, bool)>,
    /// Optional LIMIT, applied after ORDER BY at decode time.
    pub limit: Option<u64>,
}

/// One `SET col = value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Target column.
    pub col: String,
    /// New value.
    pub value: Value,
}

/// An UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Table name.
    pub table: String,
    /// Assignments.
    pub sets: Vec<Assignment>,
    /// Optional WHERE predicate.
    pub where_clause: Option<ast_pred::PredExpr>,
}

/// A DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Table name.
    pub table: String,
    /// Optional WHERE predicate.
    pub where_clause: Option<ast_pred::PredExpr>,
}

/// Unresolved predicate expressions (column names instead of indices).
pub mod ast_pred {
    use crate::predicate::CmpOp;
    use crate::types::Value;

    /// A predicate over column *names*; resolved against a schema at
    /// execution time.
    #[derive(Debug, Clone, PartialEq)]
    pub enum PredExpr {
        /// `col <op> literal`.
        Cmp {
            /// Column name (optionally `table.col`).
            col: String,
            /// Operator.
            op: CmpOp,
            /// Literal.
            value: Value,
        },
        /// Conjunction.
        And(Box<PredExpr>, Box<PredExpr>),
        /// Disjunction.
        Or(Box<PredExpr>, Box<PredExpr>),
        /// Negation.
        Not(Box<PredExpr>),
    }

    impl PredExpr {
        /// Resolves column names to indices against `schema`.
        pub fn resolve(
            &self,
            schema: &crate::types::Schema,
        ) -> Result<crate::predicate::Predicate, crate::error::DbError> {
            use crate::predicate::Predicate;
            Ok(match self {
                PredExpr::Cmp { col, op, value } => {
                    Predicate::Cmp { col: schema.col(col)?, op: *op, value: value.clone() }
                }
                PredExpr::And(a, b) => {
                    Predicate::And(Box::new(a.resolve(schema)?), Box::new(b.resolve(schema)?))
                }
                PredExpr::Or(a, b) => {
                    Predicate::Or(Box::new(a.resolve(schema)?), Box::new(b.resolve(schema)?))
                }
                PredExpr::Not(p) => Predicate::Not(Box::new(p.resolve(schema)?)),
            })
        }
    }
}
