//! SQL tokenizer.

use crate::error::DbError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords compare case-insensitively
    /// via [`Token::is_kw`]).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// Punctuation / operator.
    Sym(&'static str),
}

impl Token {
    /// Case-insensitive keyword test.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, DbError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '*' | ';' => {
                tokens.push(Token::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    _ => ";",
                }));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Sym("="));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Sym("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Sym("<>"));
                    i += 2;
                } else {
                    tokens.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Sym(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Sym("<>"));
                    i += 2;
                } else {
                    return Err(DbError::Sql(format!("unexpected character '!' at {i}")));
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some(b'\'') => break,
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                        None => return Err(DbError::Sql("unterminated string".into())),
                    }
                }
                tokens.push(Token::Str(s));
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if !bytes.get(i).is_some_and(|b| b.is_ascii_digit()) {
                        return Err(DbError::Sql(format!("stray '-' at {start}")));
                    }
                }
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !is_float))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                // Exponent suffix (`1e-7`, `2.5E10`): present so the
                // shortest-roundtrip float rendering used by WAL state
                // dumps re-parses to the identical value.
                if bytes.get(i).is_some_and(|b| *b == b'e' || *b == b'E') {
                    let mut j = i + 1;
                    if bytes.get(j).is_some_and(|b| *b == b'+' || *b == b'-') {
                        j += 1;
                    }
                    if bytes.get(j).is_some_and(u8::is_ascii_digit) {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| DbError::Sql(format!("bad float literal {text}")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| DbError::Sql(format!("bad int literal {text}")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => return Err(DbError::Sql(format!("unexpected character '{other}' at {i}"))),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let toks = tokenize("SELECT * FROM t WHERE id = 3").unwrap();
        assert_eq!(toks.len(), 8);
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Sym("*"));
        assert_eq!(toks[7], Token::Int(3));
    }

    #[test]
    fn operators() {
        let toks = tokenize("a <= 1 b >= 2 c <> 3 d != 4 e < 5 f > 6").unwrap();
        let syms: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Sym(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["<=", ">=", "<>", "<>", "<", ">"]);
    }

    #[test]
    fn string_with_escape() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn numbers() {
        let toks = tokenize("42 -7 3.5 -0.25").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(42), Token::Int(-7), Token::Float(3.5), Token::Float(-0.25)]
        );
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("1e-7 2.5E10 -3e2 1e+3").unwrap();
        assert_eq!(
            toks,
            vec![Token::Float(1e-7), Token::Float(2.5e10), Token::Float(-3e2), Token::Float(1e3)]
        );
        // A bare `e` after digits with no exponent stays an identifier
        // boundary, as before.
        let toks = tokenize("1 e").unwrap();
        assert_eq!(toks, vec![Token::Int(1), Token::Ident("e".into())]);
    }

    #[test]
    fn dotted_identifiers() {
        let toks = tokenize("t1.pageURL").unwrap();
        assert_eq!(toks, vec![Token::Ident("t1.pageURL".into())]);
    }

    #[test]
    fn unterminated_string_fails() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn date_like_string() {
        let toks = tokenize("WHERE visitDate > '1980-04-01'").unwrap();
        assert_eq!(toks[3], Token::Str("1980-04-01".into()));
    }
}
