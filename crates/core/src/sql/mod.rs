//! A small SQL front-end for ObliDB.
//!
//! Covers the subset the paper's engine supports: CREATE TABLE (with a
//! storage-method clause), INSERT, SELECT with WHERE / JOIN ... ON /
//! GROUP BY and the five aggregates, UPDATE, and DELETE. Parsing happens
//! inside the enclave; query parameters never leave it.

mod ast;
mod lexer;
mod parser;

pub use ast::{
    Assignment, ColumnDef, CreateTable, Delete, Insert, JoinClause, Projection, Select, SelectItem,
    Statement, Update,
};
pub use lexer::{tokenize, Token};
pub use parser::parse;
