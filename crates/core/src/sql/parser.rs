//! Recursive-descent SQL parser.

use crate::db::StorageMethod;
use crate::error::DbError;
use crate::exec::AggFunc;
use crate::predicate::CmpOp;
use crate::types::{DataType, Value};

use super::ast::ast_pred::PredExpr;
use super::ast::{
    Assignment, ColumnDef, CreateTable, Delete, Insert, JoinClause, Projection, Select, SelectItem,
    Statement, Update,
};
use super::lexer::{tokenize, Token};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, DbError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DbError::Sql("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Sql(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), DbError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(DbError::Sql(format!("expected '{sym}', found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(DbError::Sql(format!("expected identifier, found {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value, DbError> {
        match self.next()? {
            Token::Int(v) => Ok(Value::Int(v)),
            Token::Float(v) => Ok(Value::Float(v)),
            Token::Str(s) => Ok(Value::Text(s)),
            other => Err(DbError::Sql(format!("expected literal, found {other:?}"))),
        }
    }

    // ---- statements -----------------------------------------------------

    fn statement(&mut self) -> Result<Statement, DbError> {
        let stmt = if self.eat_kw("create") {
            Statement::Create(self.create_table()?)
        } else if self.eat_kw("insert") {
            Statement::Insert(self.insert()?)
        } else if self.eat_kw("select") {
            Statement::Select(self.select()?)
        } else if self.eat_kw("update") {
            Statement::Update(self.update()?)
        } else if self.eat_kw("delete") {
            Statement::Delete(self.delete()?)
        } else if self.eat_kw("explain") {
            if self.eat_kw("analyze") {
                self.expect_kw("select")?;
                Statement::ExplainAnalyze(self.select()?)
            } else {
                self.expect_kw("select")?;
                Statement::Explain(self.select()?)
            }
        } else if self.eat_kw("begin") {
            // Optional noise words, as in the common dialects.
            let _ = self.eat_kw("transaction") || self.eat_kw("work");
            Statement::Begin
        } else if self.eat_kw("commit") {
            let _ = self.eat_kw("transaction") || self.eat_kw("work");
            Statement::Commit
        } else if self.eat_kw("rollback") {
            let _ = self.eat_kw("transaction") || self.eat_kw("work");
            Statement::Rollback
        } else {
            return Err(DbError::Sql(format!("unknown statement start: {:?}", self.peek())));
        };
        self.eat_sym(";");
        if self.pos != self.tokens.len() {
            return Err(DbError::Sql(format!("trailing tokens from {:?}", self.peek())));
        }
        Ok(stmt)
    }

    fn dtype(&mut self) -> Result<DataType, DbError> {
        let name = self.ident()?;
        match name.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" => Ok(DataType::Int),
            "float" | "double" | "real" => Ok(DataType::Float),
            "char" | "varchar" | "text" => {
                self.expect_sym("(")?;
                let n = match self.next()? {
                    Token::Int(v) if v > 0 => v as usize,
                    other => return Err(DbError::Sql(format!("expected width, found {other:?}"))),
                };
                self.expect_sym(")")?;
                Ok(DataType::Text(n))
            }
            other => Err(DbError::Sql(format!("unknown type {other}"))),
        }
    }

    fn create_table(&mut self) -> Result<CreateTable, DbError> {
        self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let dtype = self.dtype()?;
            columns.push(ColumnDef { name: col_name, dtype });
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;

        let mut storage = StorageMethod::Flat;
        let mut index_on = None;
        let mut capacity = None;
        loop {
            if self.eat_kw("storage") {
                self.expect_sym("=")?;
                let method = self.ident()?;
                storage = match method.to_ascii_lowercase().as_str() {
                    "flat" => StorageMethod::Flat,
                    "indexed" => StorageMethod::Indexed,
                    "both" => StorageMethod::Both,
                    other => return Err(DbError::Sql(format!("unknown storage {other}"))),
                };
            } else if self.eat_kw("index") {
                self.expect_kw("on")?;
                index_on = Some(self.ident()?);
            } else if self.eat_kw("capacity") {
                capacity = Some(match self.next()? {
                    Token::Int(v) if v > 0 => v as u64,
                    other => {
                        return Err(DbError::Sql(format!("expected capacity, found {other:?}")))
                    }
                });
            } else {
                break;
            }
        }
        Ok(CreateTable { name, columns, storage, index_on, capacity })
    }

    fn insert(&mut self) -> Result<Insert, DbError> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        self.expect_kw("values")?;
        self.expect_sym("(")?;
        let mut values = Vec::new();
        loop {
            values.push(self.literal()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Insert { table, values })
    }

    fn agg_func(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "avg" => Some(AggFunc::Avg),
            _ => None,
        }
    }

    fn select(&mut self) -> Result<Select, DbError> {
        let projection = if self.eat_sym("*") {
            Projection::Star
        } else {
            let mut items = Vec::new();
            loop {
                let name = self.ident()?;
                if let Some(func) = Self::agg_func(&name) {
                    if self.eat_sym("(") {
                        let col = if self.eat_sym("*") { None } else { Some(self.ident()?) };
                        self.expect_sym(")")?;
                        items.push(SelectItem::Aggregate { func, col });
                    } else {
                        items.push(SelectItem::Column(name));
                    }
                } else {
                    items.push(SelectItem::Column(name));
                }
                if !self.eat_sym(",") {
                    break;
                }
            }
            Projection::Items(items)
        };

        self.expect_kw("from")?;
        let table = self.ident()?;

        let join = if self.eat_kw("join") {
            let join_table = self.ident()?;
            self.expect_kw("on")?;
            let a = self.ident()?;
            self.expect_sym("=")?;
            let b = self.ident()?;
            // Attribute the sides by prefix when qualified; otherwise take
            // them in order (FROM-side first).
            let strip = |s: &str| s.rsplit('.').next().unwrap_or(s).to_string();
            let (left_col, right_col) = if b.starts_with(&format!("{table}."))
                || a.starts_with(&format!("{join_table}."))
            {
                (strip(&b), strip(&a))
            } else {
                (strip(&a), strip(&b))
            };
            Some(JoinClause { table: join_table, left_col, right_col })
        } else {
            None
        };

        let where_clause = if self.eat_kw("where") { Some(self.pred_or()?) } else { None };
        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            Some(self.ident()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            let col = self.ident()?;
            let desc = if self.eat_kw("desc") {
                true
            } else {
                self.eat_kw("asc");
                false
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("limit") {
            match self.next()? {
                Token::Int(v) if v >= 0 => Some(v as u64),
                other => return Err(DbError::Sql(format!("expected limit, found {other:?}"))),
            }
        } else {
            None
        };

        Ok(Select { projection, table, join, where_clause, group_by, order_by, limit })
    }

    fn update(&mut self) -> Result<Update, DbError> {
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            let value = self.literal()?;
            sets.push(Assignment { col, value });
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.pred_or()?) } else { None };
        Ok(Update { table, sets, where_clause })
    }

    fn delete(&mut self) -> Result<Delete, DbError> {
        self.expect_kw("from")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("where") { Some(self.pred_or()?) } else { None };
        Ok(Delete { table, where_clause })
    }

    // ---- predicates (OR < AND < NOT < atom) ------------------------------

    fn pred_or(&mut self) -> Result<PredExpr, DbError> {
        let mut left = self.pred_and()?;
        while self.eat_kw("or") {
            let right = self.pred_and()?;
            left = PredExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> Result<PredExpr, DbError> {
        let mut left = self.pred_not()?;
        while self.eat_kw("and") {
            let right = self.pred_not()?;
            left = PredExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_not(&mut self) -> Result<PredExpr, DbError> {
        if self.eat_kw("not") {
            Ok(PredExpr::Not(Box::new(self.pred_not()?)))
        } else {
            self.pred_atom()
        }
    }

    fn pred_atom(&mut self) -> Result<PredExpr, DbError> {
        if self.eat_sym("(") {
            let inner = self.pred_or()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        let col = self.ident()?;
        let op = match self.next()? {
            Token::Sym("=") => CmpOp::Eq,
            Token::Sym("<>") => CmpOp::Ne,
            Token::Sym("<") => CmpOp::Lt,
            Token::Sym("<=") => CmpOp::Le,
            Token::Sym(">") => CmpOp::Gt,
            Token::Sym(">=") => CmpOp::Ge,
            other => return Err(DbError::Sql(format!("expected comparison, found {other:?}"))),
        };
        let value = self.literal()?;
        Ok(PredExpr::Cmp { col, op, value })
    }
}

/// Parses one SQL statement.
pub fn parse(sql: &str) -> Result<Statement, DbError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    p.statement()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_with_storage_and_index() {
        let stmt = parse(
            "CREATE TABLE users (id INT, name CHAR(16), score FLOAT) \
             STORAGE = BOTH INDEX ON id CAPACITY 5000",
        )
        .unwrap();
        let Statement::Create(c) = stmt else { panic!() };
        assert_eq!(c.name, "users");
        assert_eq!(c.columns.len(), 3);
        assert_eq!(c.columns[1].dtype, DataType::Text(16));
        assert_eq!(c.storage, StorageMethod::Both);
        assert_eq!(c.index_on.as_deref(), Some("id"));
        assert_eq!(c.capacity, Some(5000));
    }

    #[test]
    fn insert_values() {
        let stmt = parse("INSERT INTO t VALUES (1, 'bob', 2.5)").unwrap();
        let Statement::Insert(i) = stmt else { panic!() };
        assert_eq!(i.table, "t");
        assert_eq!(i.values, vec![Value::Int(1), Value::Text("bob".into()), Value::Float(2.5)]);
    }

    #[test]
    fn select_star_where() {
        let stmt =
            parse("SELECT * FROM Checkins WHERE uid = 3172 AND date > '2018-01-01'").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.table, "Checkins");
        assert!(matches!(s.projection, Projection::Star));
        assert!(matches!(s.where_clause, Some(PredExpr::And(_, _))));
    }

    #[test]
    fn select_aggregates_group_by() {
        let stmt = parse("SELECT grp, SUM(v), COUNT(*) FROM t WHERE v > 0 GROUP BY grp").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let Projection::Items(items) = &s.projection else { panic!() };
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], SelectItem::Column("grp".into()));
        assert_eq!(items[1], SelectItem::Aggregate { func: AggFunc::Sum, col: Some("v".into()) });
        assert_eq!(items[2], SelectItem::Aggregate { func: AggFunc::Count, col: None });
        assert_eq!(s.group_by.as_deref(), Some("grp"));
    }

    #[test]
    fn select_join() {
        let stmt =
            parse("SELECT * FROM R JOIN UV ON R.pageURL = UV.destURL WHERE UV.adRevenue > 0.5")
                .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let j = s.join.unwrap();
        assert_eq!(j.table, "UV");
        assert_eq!(j.left_col, "pageURL");
        assert_eq!(j.right_col, "destURL");
    }

    #[test]
    fn join_with_reversed_on_order() {
        let stmt = parse("SELECT * FROM R JOIN UV ON UV.destURL = R.pageURL").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let j = s.join.unwrap();
        assert_eq!(j.left_col, "pageURL");
        assert_eq!(j.right_col, "destURL");
    }

    #[test]
    fn update_and_delete() {
        let stmt = parse("UPDATE t SET a = 1, b = 'x' WHERE id <> 9").unwrap();
        let Statement::Update(u) = stmt else { panic!() };
        assert_eq!(u.sets.len(), 2);
        assert!(u.where_clause.is_some());

        let stmt = parse("DELETE FROM t WHERE id >= 100").unwrap();
        let Statement::Delete(d) = stmt else { panic!() };
        assert_eq!(d.table, "t");
    }

    #[test]
    fn predicate_precedence() {
        let stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        // AND binds tighter: Or(a=1, And(b=2, c=3)).
        let Some(PredExpr::Or(l, r)) = s.where_clause else { panic!() };
        assert!(matches!(*l, PredExpr::Cmp { .. }));
        assert!(matches!(*r, PredExpr::And(_, _)));
    }

    #[test]
    fn parenthesized_predicates() {
        let stmt = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND NOT c = 3").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let Some(PredExpr::And(l, r)) = s.where_clause else { panic!() };
        assert!(matches!(*l, PredExpr::Or(_, _)));
        assert!(matches!(*r, PredExpr::Not(_)));
    }

    #[test]
    fn order_by_and_limit() {
        let stmt = parse("SELECT * FROM t WHERE a > 0 ORDER BY a DESC LIMIT 10").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.order_by, Some(("a".into(), true)));
        assert_eq!(s.limit, Some(10));

        let stmt = parse("SELECT * FROM t ORDER BY b").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.order_by, Some(("b".into(), false)));
        assert_eq!(s.limit, None);

        assert!(parse("SELECT * FROM t LIMIT x").is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("CREATE TABLE t (x BLOB)").is_err());
        assert!(parse("INSERT INTO t VALUES (1,)").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra garbage ( (").is_err());
    }
}
