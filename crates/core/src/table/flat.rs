//! The flat storage method (paper §3.1).
//!
//! Rows live in adjacent sealed blocks, one record per block (footnote 2),
//! with no built-in obliviousness — so every mutation is a full scan where
//! each block is read and re-written (dummy writes for unaffected blocks),
//! and read operators are built from full scans by the algorithms in
//! [`crate::exec`]. The only exception is the administrator-selectable
//! constant-time "fast insert" (§3.1), which appends at a cursor and leaks
//! nothing beyond the table size, which grows observably anyway.

use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveMemory, ThreadPool};
use oblidb_storage::{batch_chunk_blocks, SealedRegion};

use crate::error::DbError;
use crate::predicate::Predicate;
use crate::types::{Row, Schema, Value};

/// A flat table: `capacity` sealed row-blocks, `num_rows` of them in use.
///
/// Both numbers are public (the adversary sees the allocation and watches
/// it fill); *which* blocks hold real rows is hidden.
pub struct FlatTable {
    schema: Schema,
    store: SealedRegion,
    num_rows: u64,
    insert_cursor: u64,
}

impl FlatTable {
    /// Allocates an empty table of `capacity` rows.
    pub fn create<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        schema: Schema,
        capacity: u64,
    ) -> Result<Self, DbError> {
        let row_len = schema.row_len();
        let store = SealedRegion::create(host, key, capacity.max(1) as usize, row_len)?;
        Ok(FlatTable { schema, store, num_rows: 0, insert_cursor: 0 })
    }

    /// Bulk-creates a table from encoded rows (pre-deployment load).
    pub fn from_encoded_rows<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        schema: Schema,
        rows: &[Vec<u8>],
        capacity: u64,
    ) -> Result<Self, DbError> {
        assert!(rows.len() as u64 <= capacity.max(1));
        let mut t = Self::create(host, key, schema, capacity)?;
        // Batched bulk load: one crossing per chunk of contiguous rows.
        let row_len = t.row_len();
        let chunk = t.io_chunk_rows();
        let mut buf = Vec::with_capacity(chunk * row_len);
        for group in rows.chunks(chunk) {
            buf.clear();
            for row in group {
                buf.extend_from_slice(row);
            }
            t.write_rows(host, t.insert_cursor, &buf)?;
            t.insert_cursor += group.len() as u64;
        }
        t.num_rows = rows.len() as u64;
        Ok(t)
    }

    /// Re-attaches to a persisted table: a [`SealedRegion`] recovered from
    /// its sealed manifest plus the (public) row counters the database
    /// manifest carries.
    pub fn reattach(
        store: SealedRegion,
        schema: Schema,
        num_rows: u64,
        insert_cursor: u64,
    ) -> Self {
        FlatTable { schema, store, num_rows, insert_cursor }
    }

    /// A **read-only** sibling handle over the same sealed region (see
    /// [`SealedRegion::snapshot_handle`]): snapshot read sessions scan the
    /// table concurrently while the database layer's latch excludes
    /// writers. Writing through the snapshot is a logic error and is
    /// caught as tamper detection on whichever handle went stale.
    pub fn snapshot_handle(&self) -> FlatTable {
        FlatTable {
            schema: self.schema.clone(),
            store: self.store.snapshot_handle(),
            num_rows: self.num_rows,
            insert_cursor: self.insert_cursor,
        }
    }

    /// Seals this table's trusted storage state (per-block revisions,
    /// nonce counter) for the database manifest.
    pub fn seal_manifest(&mut self) -> Vec<u8> {
        self.store.seal_manifest()
    }

    /// The fast-insert cursor (public; persisted so a reopened table
    /// appends where the old one would have).
    pub fn insert_cursor(&self) -> u64 {
        self.insert_cursor
    }

    /// The backing region's AEAD key, for embedding in the sealed
    /// database manifest.
    pub(crate) fn region_key(&self) -> AeadKey {
        self.store.key()
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Allocated blocks (public).
    pub fn capacity(&self) -> u64 {
        self.store.len()
    }

    /// Rows in use (public).
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Encoded row length.
    pub fn row_len(&self) -> usize {
        self.schema.row_len()
    }

    /// The untrusted region backing this table.
    pub fn region_id(&self) -> oblidb_enclave::RegionId {
        self.store.region_id()
    }

    /// Reads block `i`, returning the decrypted row bytes.
    pub fn read_row<M: EnclaveMemory>(&mut self, host: &mut M, i: u64) -> Result<Vec<u8>, DbError> {
        Ok(self.store.read(host, i)?.to_vec())
    }

    /// Writes block `i`.
    pub fn write_row<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        i: u64,
        bytes: &[u8],
    ) -> Result<(), DbError> {
        self.store.write(host, i, bytes)?;
        Ok(())
    }

    /// The table's batched-scan chunk size in rows — a public function of
    /// the row width only (see `oblidb_storage::batch_chunk_blocks`).
    pub fn io_chunk_rows(&self) -> usize {
        batch_chunk_blocks(self.row_len())
    }

    /// Sets the worker pool batched row I/O seals and opens with (see
    /// `SealedRegion::set_parallelism`): the memory-access pattern is
    /// untouched, only the AEAD work inside each batch is partitioned.
    /// Operators copy this pool onto the intermediate tables they create.
    pub fn set_parallelism(&mut self, pool: ThreadPool) {
        self.store.set_parallelism(pool);
    }

    /// The worker pool batched row I/O runs under.
    pub fn parallelism(&self) -> ThreadPool {
        self.store.parallelism()
    }

    /// Reads `count` consecutive row blocks starting at `start` in one
    /// boundary crossing per [`FlatTable::io_chunk_rows`]-sized run,
    /// returning their concatenated decrypted bytes. The slice borrows
    /// the table's scratch; copy out what must survive the next storage
    /// call.
    pub fn read_rows<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        start: u64,
        count: usize,
    ) -> Result<&[u8], DbError> {
        Ok(self.store.read_batch(host, start, count)?)
    }

    /// Writes a whole number of encoded rows to consecutive blocks
    /// starting at `start`, in one boundary crossing per
    /// [`FlatTable::io_chunk_rows`]-sized run.
    pub fn write_rows<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        start: u64,
        rows: &[u8],
    ) -> Result<(), DbError> {
        self.store.write_batch(host, start, rows)?;
        Ok(())
    }

    /// Streams every block (used or not) front to back in batched chunks —
    /// one crossing per [`FlatTable::io_chunk_rows`] run — calling
    /// `f(block index, row bytes)` for each. The access pattern is a
    /// function of the capacity alone; this is the batched form of the
    /// read-only capacity loop every scan operator is built from.
    pub fn for_each_row<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        mut f: impl FnMut(u64, &[u8]),
    ) -> Result<(), DbError> {
        let row_len = self.row_len();
        let chunk = self.io_chunk_rows();
        let cap = self.capacity();
        let mut start = 0u64;
        while start < cap {
            let n = chunk.min((cap - start) as usize);
            let data = self.store.read_batch(host, start, n)?;
            for (off, bytes) in data.chunks_exact(row_len).enumerate() {
                f(start + off as u64, bytes);
            }
            start += n as u64;
        }
        Ok(())
    }

    /// Gather read: the row blocks at `indices`, in order, one crossing.
    pub fn read_rows_at<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        indices: &[u64],
    ) -> Result<&[u8], DbError> {
        Ok(self.store.read_batch_at(host, indices)?)
    }

    /// Scatter write: encoded row `i` goes to block `indices[i]`, one
    /// crossing.
    pub fn write_rows_at<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        indices: &[u64],
        rows: &[u8],
    ) -> Result<(), DbError> {
        self.store.write_batch_at(host, indices, rows)?;
        Ok(())
    }

    /// Sets the logical row count (used by operators that fill an output
    /// table they allocated).
    pub fn set_num_rows(&mut self, n: u64) {
        self.num_rows = n;
    }

    /// Advances the fast-insert cursor (operators that fill blocks
    /// sequentially keep it consistent).
    pub fn set_insert_cursor(&mut self, c: u64) {
        self.insert_cursor = c;
    }

    /// Replaces the schema with one of identical layout (used to attach
    /// table-qualified column names to join outputs).
    pub fn rename_columns(&mut self, schema: Schema) {
        assert_eq!(schema.row_len(), self.schema.row_len(), "layout must not change");
        self.schema = schema;
    }

    /// Oblivious insert (paper §3.1): one pass over the whole table; the
    /// first unused block gets the real write, every other block gets a
    /// dummy re-encryption. Leaks only the table size.
    pub fn insert_oblivious<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        values: &[Value],
    ) -> Result<(), DbError> {
        let encoded = self.schema.encode_row(values)?;
        let mut placed = false;
        // Chunked pass: read a run of blocks in one crossing, splice the
        // row into the first unused slot, rewrite the whole run (fresh
        // encryptions make the untouched rows dummy writes).
        self.rewrite_scan(host, |row| {
            if !placed && !Schema::row_used(row) {
                row.copy_from_slice(&encoded);
                placed = true;
            }
        })?;
        if !placed {
            return Err(DbError::TableFull("flat table".into()));
        }
        self.num_rows += 1;
        self.insert_cursor = self.insert_cursor.max(self.num_rows);
        Ok(())
    }

    /// One full batched read-modify-rewrite pass: every block is read and
    /// rewritten in [`FlatTable::io_chunk_rows`]-sized runs (one crossing
    /// per direction per run), with `f` applied to each row in place. The
    /// access pattern is a function of the capacity alone.
    fn rewrite_scan<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        mut f: impl FnMut(&mut [u8]),
    ) -> Result<(), DbError> {
        let row_len = self.row_len();
        let chunk = self.io_chunk_rows();
        let cap = self.capacity();
        let mut buf = Vec::with_capacity(chunk * row_len);
        let mut start = 0u64;
        while start < cap {
            let n = chunk.min((cap - start) as usize);
            buf.clear();
            buf.extend_from_slice(self.read_rows(host, start, n)?);
            for row in buf.chunks_exact_mut(row_len) {
                f(row);
            }
            self.write_rows(host, start, &buf)?;
            start += n as u64;
        }
        Ok(())
    }

    /// Constant-time insert (paper §3.1): writes directly at the cursor.
    /// Safe for tables with few deletions; leaks only the insertion count,
    /// which the adversary learns from table growth anyway.
    pub fn insert_fast<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        values: &[Value],
    ) -> Result<(), DbError> {
        let encoded = self.schema.encode_row(values)?;
        if self.insert_cursor >= self.capacity() {
            return Err(DbError::TableFull("flat table".into()));
        }
        self.store.write(host, self.insert_cursor, &encoded)?;
        self.insert_cursor += 1;
        self.num_rows += 1;
        Ok(())
    }

    /// Oblivious UPDATE (paper §3.1): one pass; matching rows are
    /// rewritten with the assignments applied, others get dummy writes.
    /// Returns the number of rows changed.
    pub fn update_where<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        pred: &Predicate,
        assignments: &[(usize, Value)],
    ) -> Result<u64, DbError> {
        let mut changed = 0;
        let schema = self.schema.clone();
        let mut err = None;
        self.rewrite_scan(host, |bytes| {
            if Schema::row_used(bytes) && pred.eval(&schema, bytes) {
                let mut row = schema.decode_row(bytes);
                for (col, v) in assignments {
                    row[*col] = v.clone();
                }
                match schema.encode_row(&row) {
                    Ok(encoded) => {
                        bytes.copy_from_slice(&encoded);
                        changed += 1;
                    }
                    Err(e) => err = Some(e),
                }
            }
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        Ok(changed)
    }

    /// Oblivious DELETE (paper §3.1): one pass; matching rows are marked
    /// unused and overwritten with dummy data, others get dummy writes.
    pub fn delete_where<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        pred: &Predicate,
    ) -> Result<u64, DbError> {
        let dummy = self.schema.dummy_row();
        let schema = self.schema.clone();
        let mut removed = 0;
        self.rewrite_scan(host, |bytes| {
            if Schema::row_used(bytes) && pred.eval(&schema, bytes) {
                bytes.copy_from_slice(&dummy);
                removed += 1;
            }
        })?;
        self.num_rows -= removed;
        Ok(removed)
    }

    /// Copies this table into a larger allocation (paper §3: capacity "can
    /// be increased later by copying to a new, larger table").
    pub fn grow<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        key: AeadKey,
        new_capacity: u64,
    ) -> Result<(), DbError> {
        assert!(new_capacity >= self.capacity());
        let mut bigger = SealedRegion::create(host, key, new_capacity as usize, self.row_len())?;
        // Chunked copy: one read crossing and one write crossing per run.
        let chunk = self.io_chunk_rows();
        let cap = self.capacity();
        let mut start = 0u64;
        while start < cap {
            let n = chunk.min((cap - start) as usize);
            let bytes = self.store.read_batch(host, start, n)?;
            bigger.write_batch(host, start, bytes)?;
            start += n as u64;
        }
        let old = std::mem::replace(&mut self.store, bigger);
        old.free(host)?;
        Ok(())
    }

    /// Decodes every used row (full scan — the only oblivious way out).
    pub fn collect_rows<M: EnclaveMemory>(&mut self, host: &mut M) -> Result<Vec<Row>, DbError> {
        let mut out = Vec::with_capacity(self.num_rows as usize);
        let row_len = self.row_len();
        let chunk = self.io_chunk_rows();
        let cap = self.capacity();
        let mut start = 0u64;
        while start < cap {
            let n = chunk.min((cap - start) as usize);
            let data = self.store.read_batch(host, start, n)?;
            for bytes in data.chunks_exact(row_len) {
                if Schema::row_used(bytes) {
                    out.push(self.schema.decode_row(bytes));
                }
            }
            start += n as u64;
        }
        Ok(out)
    }

    /// Releases untrusted memory.
    pub fn free<M: EnclaveMemory>(self, host: &mut M) -> Result<(), DbError> {
        self.store.free(host)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::types::{Column, DataType};
    use oblidb_enclave::AccessKind;
    use oblidb_enclave::Host;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)])
    }

    fn setup(capacity: u64) -> (Host, FlatTable) {
        let mut host = Host::new();
        let t = FlatTable::create(&mut host, AeadKey([1u8; 32]), schema(), capacity).unwrap();
        (host, t)
    }

    fn vrow(id: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(id), Value::Int(v)]
    }

    #[test]
    fn oblivious_insert_and_collect() {
        let (mut host, mut t) = setup(8);
        t.insert_oblivious(&mut host, &vrow(1, 10)).unwrap();
        t.insert_oblivious(&mut host, &vrow(2, 20)).unwrap();
        assert_eq!(t.num_rows(), 2);
        let rows = t.collect_rows(&mut host).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Int(1));
    }

    #[test]
    fn oblivious_insert_touches_every_block_uniformly() {
        let (mut host, mut t) = setup(8);
        host.start_trace();
        t.insert_oblivious(&mut host, &vrow(1, 10)).unwrap();
        let trace_a = host.take_trace();
        host.start_trace();
        t.insert_oblivious(&mut host, &vrow(999, -5)).unwrap();
        let trace_b = host.take_trace();
        // Identical access pattern no matter the values or fill level.
        assert_eq!(trace_a, trace_b);
        // Pattern is one batched read run then one batched write run over
        // all blocks (capacity 8 fits a single chunk), in index order.
        assert_eq!(trace_a.len(), 16);
        let (reads, writes) = trace_a.0.split_at(8);
        for (i, (r, w)) in reads.iter().zip(writes).enumerate() {
            assert_eq!(r.kind, AccessKind::Read);
            assert_eq!(w.kind, AccessKind::Write);
            assert_eq!(r.index, i as u64);
            assert_eq!(w.index, i as u64);
        }
    }

    #[test]
    fn oblivious_scans_batch_crossings() {
        let (mut host, mut t) = setup(100);
        host.reset_stats();
        t.insert_oblivious(&mut host, &vrow(1, 10)).unwrap();
        let s = host.stats();
        assert_eq!(s.total_accesses(), 200, "every block read and rewritten");
        assert_eq!(s.crossings, 2, "one batched crossing per direction");
    }

    #[test]
    fn fast_insert_is_constant_time() {
        let (mut host, mut t) = setup(8);
        host.start_trace();
        t.insert_fast(&mut host, &vrow(1, 1)).unwrap();
        assert_eq!(host.take_trace().len(), 1);
        t.insert_fast(&mut host, &vrow(2, 2)).unwrap();
        assert_eq!(t.collect_rows(&mut host).unwrap().len(), 2);
    }

    #[test]
    fn table_full_detected() {
        let (mut host, mut t) = setup(2);
        t.insert_fast(&mut host, &vrow(1, 1)).unwrap();
        t.insert_fast(&mut host, &vrow(2, 2)).unwrap();
        assert!(matches!(t.insert_fast(&mut host, &vrow(3, 3)), Err(DbError::TableFull(_))));
        assert!(matches!(t.insert_oblivious(&mut host, &vrow(3, 3)), Err(DbError::TableFull(_))));
    }

    #[test]
    fn update_where_applies_assignments() {
        let (mut host, mut t) = setup(4);
        for i in 0..4 {
            t.insert_fast(&mut host, &vrow(i, i * 10)).unwrap();
        }
        let pred = Predicate::cmp(t.schema(), "id", CmpOp::Ge, Value::Int(2)).unwrap();
        let changed = t.update_where(&mut host, &pred, &[(1, Value::Int(0))]).unwrap();
        assert_eq!(changed, 2);
        let rows = t.collect_rows(&mut host).unwrap();
        assert_eq!(rows[2][1], Value::Int(0));
        assert_eq!(rows[1][1], Value::Int(10));
    }

    #[test]
    fn update_trace_is_data_independent() {
        let (mut host, mut t) = setup(6);
        for i in 0..6 {
            t.insert_fast(&mut host, &vrow(i, i)).unwrap();
        }
        let p_none = Predicate::cmp(t.schema(), "id", CmpOp::Gt, Value::Int(100)).unwrap();
        let p_all = Predicate::True;
        host.start_trace();
        t.update_where(&mut host, &p_none, &[(1, Value::Int(7))]).unwrap();
        let a = host.take_trace();
        host.start_trace();
        t.update_where(&mut host, &p_all, &[(1, Value::Int(7))]).unwrap();
        let b = host.take_trace();
        assert_eq!(a, b);
    }

    #[test]
    fn delete_where_marks_unused() {
        let (mut host, mut t) = setup(5);
        for i in 0..5 {
            t.insert_fast(&mut host, &vrow(i, i)).unwrap();
        }
        let pred = Predicate::cmp(t.schema(), "id", CmpOp::Lt, Value::Int(2)).unwrap();
        assert_eq!(t.delete_where(&mut host, &pred).unwrap(), 2);
        assert_eq!(t.num_rows(), 3);
        let rows = t.collect_rows(&mut host).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r[0].as_int().unwrap() >= 2));
    }

    #[test]
    fn delete_trace_is_data_independent() {
        let (mut host, mut t) = setup(5);
        for i in 0..5 {
            t.insert_fast(&mut host, &vrow(i, i)).unwrap();
        }
        let p1 = Predicate::cmp(t.schema(), "id", CmpOp::Eq, Value::Int(0)).unwrap();
        let p2 = Predicate::cmp(t.schema(), "id", CmpOp::Eq, Value::Int(4)).unwrap();
        host.start_trace();
        t.delete_where(&mut host, &p1).unwrap();
        let a = host.take_trace();
        host.start_trace();
        t.delete_where(&mut host, &p2).unwrap();
        let b = host.take_trace();
        assert_eq!(a, b);
    }

    #[test]
    fn oblivious_insert_reuses_deleted_slots() {
        let (mut host, mut t) = setup(2);
        t.insert_fast(&mut host, &vrow(1, 1)).unwrap();
        t.insert_fast(&mut host, &vrow(2, 2)).unwrap();
        let pred = Predicate::cmp(t.schema(), "id", CmpOp::Eq, Value::Int(1)).unwrap();
        t.delete_where(&mut host, &pred).unwrap();
        t.insert_oblivious(&mut host, &vrow(3, 3)).unwrap();
        let mut ids: Vec<i64> =
            t.collect_rows(&mut host).unwrap().iter().map(|r| r[0].as_int().unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn grow_preserves_rows() {
        let (mut host, mut t) = setup(2);
        t.insert_fast(&mut host, &vrow(1, 1)).unwrap();
        t.insert_fast(&mut host, &vrow(2, 2)).unwrap();
        t.grow(&mut host, AeadKey([2u8; 32]), 10).unwrap();
        assert_eq!(t.capacity(), 10);
        t.insert_fast(&mut host, &vrow(3, 3)).unwrap();
        assert_eq!(t.collect_rows(&mut host).unwrap().len(), 3);
    }

    #[test]
    fn bulk_load_roundtrip() {
        let mut host = Host::new();
        let s = schema();
        let rows: Vec<Vec<u8>> =
            (0..5i64).map(|i| s.encode_row(&vrow(i, i * 2)).unwrap()).collect();
        let mut t =
            FlatTable::from_encoded_rows(&mut host, AeadKey([1u8; 32]), s, &rows, 10).unwrap();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.capacity(), 10);
        assert_eq!(t.collect_rows(&mut host).unwrap().len(), 5);
    }
}
