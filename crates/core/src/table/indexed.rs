//! The indexed storage method (paper §3.2): an oblivious B+ tree keyed on
//! one column, storing full rows in its leaves.
//!
//! Index keys are composites of the (order-preserving encoded) column value
//! and the row id, so duplicate column values coexist and a column range
//! `[lo, hi]` maps to the contiguous key range
//! `[composite(lo, 0), composite(hi, MAX)]`.

use oblidb_btree::{ObTree, ObTreeError};
use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveMemory, EnclaveRng, OmBudget};
use oblidb_oram::PosMapKind;

use crate::error::DbError;
use crate::key;
use crate::predicate::{Bound, Predicate};
use crate::table::FlatTable;
use crate::types::{Schema, Value};

/// Default internal-node fanout for table indexes.
pub const DEFAULT_FANOUT: usize = 8;

/// An indexed table.
pub struct IndexedTable {
    schema: Schema,
    tree: ObTree,
    key_col: usize,
    next_rowid: u64,
}

/// Converts column-range bounds into a composite key range.
fn key_range(lo: &Bound, hi: &Bound) -> (u128, u128) {
    let k_lo = match lo {
        Bound::Unbounded => 0,
        Bound::Inclusive(v) => key::range_lo(v),
        Bound::Exclusive(v) => key::range_hi(v).saturating_add(1),
    };
    let k_hi = match hi {
        Bound::Unbounded => u128::MAX,
        Bound::Inclusive(v) => key::range_hi(v),
        Bound::Exclusive(v) => key::range_lo(v).saturating_sub(1),
    };
    (k_lo, k_hi)
}

/// The oblivious B+ tree keeps its routing state (node kinds, child
/// pointers, key separators) in block payloads, so it cannot run over a
/// payload-free substrate like `CountingMemory` — reads would parse
/// zeroed nodes. Flat tables and raw ORAM cost-model fine; indexed
/// storage needs a payload-retaining memory.
fn require_payloads<M: EnclaveMemory>(host: &M) -> Result<(), DbError> {
    if host.retains_payloads() {
        Ok(())
    } else {
        Err(DbError::Unsupported(
            "indexed storage requires a payload-retaining EnclaveMemory \
             (B+ tree routing state lives in block payloads)"
                .into(),
        ))
    }
}

impl IndexedTable {
    /// Creates an empty indexed table. The index ORAM's position map is
    /// charged to `om` (8 bytes per node, paper §3.3).
    pub fn create<M: EnclaveMemory>(
        host: &mut M,
        tree_key: AeadKey,
        schema: Schema,
        key_col: usize,
        max_records: u64,
        om: &OmBudget,
        rng: EnclaveRng,
    ) -> Result<Self, DbError> {
        require_payloads(host)?;
        let payload_len = schema.row_len();
        let tree = ObTree::new(
            host,
            tree_key,
            max_records,
            payload_len,
            DEFAULT_FANOUT,
            PosMapKind::Direct,
            om,
            rng,
        )?;
        Ok(IndexedTable { schema, tree, key_col, next_rowid: 1 })
    }

    /// Bulk-loads from encoded rows (pre-deployment load).
    pub fn from_encoded_rows<M: EnclaveMemory>(
        host: &mut M,
        tree_key: AeadKey,
        schema: Schema,
        key_col: usize,
        rows: &[Vec<u8>],
        max_records: u64,
        om: &OmBudget,
        rng: EnclaveRng,
    ) -> Result<Self, DbError> {
        let mut items: Vec<(u128, Vec<u8>)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let v = schema.decode_col(r, key_col);
                (key::composite(&v, 1 + i as u64), r.clone())
            })
            .collect();
        items.sort_by_key(|(k, _)| *k);
        require_payloads(host)?;
        let payload_len = schema.row_len();
        let tree = ObTree::bulk_load(
            host,
            tree_key,
            &items,
            max_records,
            payload_len,
            DEFAULT_FANOUT,
            PosMapKind::Direct,
            om,
            rng,
        )?;
        Ok(IndexedTable { schema, tree, key_col, next_rowid: 1 + rows.len() as u64 })
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The indexed column.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Row count (public).
    pub fn num_rows(&self) -> u64 {
        self.tree.len()
    }

    /// Index height (public; determines padded op costs).
    pub fn height(&self) -> u32 {
        self.tree.height()
    }

    /// Direct access to the underlying tree (benchmarks, stats).
    pub fn tree_mut(&mut self) -> &mut ObTree {
        &mut self.tree
    }

    /// Inserts a row; every insert costs the same padded number of ORAM
    /// accesses (paper §3.2).
    pub fn insert<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        values: &[Value],
    ) -> Result<u64, DbError> {
        let encoded = self.schema.encode_row(values)?;
        let rowid = self.next_rowid;
        self.next_rowid += 1;
        let k = key::composite(&values[self.key_col], rowid);
        match self.tree.insert(host, k, &encoded) {
            Ok(_) => Ok(rowid),
            Err(ObTreeError::CapacityExceeded) => Err(DbError::TableFull("index".into())),
            Err(e) => Err(e.into()),
        }
    }

    /// Materializes the rows whose indexed column lies in `[lo, hi]` as a
    /// flat intermediate table T′ (paper §4.1, Selection over Indexes).
    /// Leaks the scanned segment size — counted as an intermediate table
    /// size.
    pub fn range_to_flat<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        out_key: AeadKey,
        lo: &Bound,
        hi: &Bound,
    ) -> Result<FlatTable, DbError> {
        Ok(self
            .range_to_flat_capped(host, out_key, lo, hi, u64::MAX)?
            .expect("uncapped walk completes"))
    }

    /// Like [`IndexedTable::range_to_flat`], but aborts (returning `None`)
    /// once more than `cap` rows are found. The planner probes `Both`
    /// tables this way: small ranges come out of the index at index cost;
    /// large ones fall back to the flat scan, having leaked only that the
    /// range exceeded a public, size-derived threshold.
    pub fn range_to_flat_capped<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        out_key: AeadKey,
        lo: &Bound,
        hi: &Bound,
        cap: u64,
    ) -> Result<Option<FlatTable>, DbError> {
        let (k_lo, k_hi) = key_range(lo, hi);
        let Some(hits) = self.tree.range_leaky_capped(host, k_lo, k_hi, cap)? else {
            return Ok(None);
        };
        let rows: Vec<Vec<u8>> = hits.into_iter().map(|(_, r)| r).collect();
        let n = rows.len() as u64;
        let mut out =
            FlatTable::from_encoded_rows(host, out_key, self.schema.clone(), &rows, n.max(1))?;
        out.set_num_rows(n);
        Ok(Some(out))
    }

    /// Deletes rows matching `pred`, using the index range when the
    /// predicate allows it and a full chain scan otherwise. Returns the
    /// count (leaked as a result size).
    pub fn delete_where<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        pred: &Predicate,
    ) -> Result<u64, DbError> {
        let victims = self.matching_keys(host, pred)?;
        let n = victims.len() as u64;
        for k in victims {
            self.tree.delete(host, k)?;
        }
        Ok(n)
    }

    /// Updates rows matching `pred`. Key-column changes are delete+insert
    /// (the composite key moves); other columns update in place.
    pub fn update_where<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        pred: &Predicate,
        assignments: &[(usize, Value)],
    ) -> Result<u64, DbError> {
        let key_changes = assignments.iter().any(|(c, _)| *c == self.key_col);
        let victims = self.matching_rows(host, pred)?;
        let n = victims.len() as u64;
        for (k, bytes) in victims {
            let mut row = self.schema.decode_row(&bytes);
            for (col, v) in assignments {
                row[*col] = v.clone();
            }
            let encoded = self.schema.encode_row(&row)?;
            if key_changes {
                self.tree.delete(host, k)?;
                let rowid = (k & u64::MAX as u128) as u64;
                let nk = key::composite(&row[self.key_col], rowid);
                self.tree.insert(host, nk, &encoded)?;
            } else {
                self.tree.update(host, k, &encoded)?;
            }
        }
        Ok(n)
    }

    fn matching_keys<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        pred: &Predicate,
    ) -> Result<Vec<u128>, DbError> {
        Ok(self.matching_rows(host, pred)?.into_iter().map(|(k, _)| k).collect())
    }

    fn matching_rows<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        pred: &Predicate,
    ) -> Result<Vec<(u128, Vec<u8>)>, DbError> {
        let (k_lo, k_hi) = match pred.index_range() {
            Some((col, lo, hi)) if col == self.key_col => key_range(&lo, &hi),
            _ => (0, u128::MAX),
        };
        let hits = self.tree.range_leaky(host, k_lo, k_hi)?;
        Ok(hits.into_iter().filter(|(_, bytes)| pred.eval(&self.schema, bytes)).collect())
    }

    /// Scans the physical index structure linearly "as if flat"
    /// (paper §3.2), feeding every slot — record or dummy — to `f` in a
    /// data-independent order.
    pub fn scan_structure<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        f: impl FnMut(Option<(u128, &[u8])>),
    ) -> Result<(), DbError> {
        self.tree.scan_structure(host, f)?;
        Ok(())
    }

    /// Releases untrusted memory.
    pub fn free<M: EnclaveMemory>(self, host: &mut M) -> Result<(), DbError> {
        self.tree.free(host)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::types::{Column, DataType};
    use oblidb_enclave::Host;
    use oblidb_enclave::DEFAULT_OM_BYTES;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)])
    }

    fn setup(cap: u64) -> (Host, OmBudget, IndexedTable) {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let t = IndexedTable::create(
            &mut host,
            AeadKey([4u8; 32]),
            schema(),
            0,
            cap,
            &om,
            EnclaveRng::seed_from_u64(11),
        )
        .unwrap();
        (host, om, t)
    }

    fn vrow(id: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(id), Value::Int(v)]
    }

    #[test]
    fn insert_and_point_range() {
        let (mut host, _om, mut t) = setup(100);
        for i in 0..50 {
            t.insert(&mut host, &vrow(i, i * 2)).unwrap();
        }
        assert_eq!(t.num_rows(), 50);
        let mut flat = t
            .range_to_flat(
                &mut host,
                AeadKey([9u8; 32]),
                &Bound::Inclusive(Value::Int(7)),
                &Bound::Inclusive(Value::Int(7)),
            )
            .unwrap();
        let rows = flat.collect_rows(&mut host).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Int(14));
    }

    #[test]
    fn range_with_duplicates() {
        let (mut host, _om, mut t) = setup(100);
        for i in 0..10 {
            t.insert(&mut host, &vrow(5, i)).unwrap();
            t.insert(&mut host, &vrow(6, 100 + i)).unwrap();
        }
        let mut flat = t
            .range_to_flat(
                &mut host,
                AeadKey([9u8; 32]),
                &Bound::Inclusive(Value::Int(5)),
                &Bound::Inclusive(Value::Int(5)),
            )
            .unwrap();
        assert_eq!(flat.collect_rows(&mut host).unwrap().len(), 10);
    }

    #[test]
    fn open_and_exclusive_bounds() {
        let (mut host, _om, mut t) = setup(100);
        for i in 0..20 {
            t.insert(&mut host, &vrow(i, i)).unwrap();
        }
        let mut flat = t
            .range_to_flat(
                &mut host,
                AeadKey([9u8; 32]),
                &Bound::Exclusive(Value::Int(3)),
                &Bound::Exclusive(Value::Int(7)),
            )
            .unwrap();
        let ids: Vec<i64> =
            flat.collect_rows(&mut host).unwrap().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![4, 5, 6]);
        let mut all = t
            .range_to_flat(&mut host, AeadKey([8u8; 32]), &Bound::Unbounded, &Bound::Unbounded)
            .unwrap();
        assert_eq!(all.collect_rows(&mut host).unwrap().len(), 20);
    }

    #[test]
    fn delete_where_uses_index_range() {
        let (mut host, _om, mut t) = setup(100);
        for i in 0..30 {
            t.insert(&mut host, &vrow(i, i)).unwrap();
        }
        let pred = Predicate::cmp(&schema(), "id", CmpOp::Lt, Value::Int(10)).unwrap();
        assert_eq!(t.delete_where(&mut host, &pred).unwrap(), 10);
        assert_eq!(t.num_rows(), 20);
    }

    #[test]
    fn delete_where_nonkey_falls_back_to_scan() {
        let (mut host, _om, mut t) = setup(100);
        for i in 0..30 {
            t.insert(&mut host, &vrow(i, i % 3)).unwrap();
        }
        let pred = Predicate::cmp(&schema(), "v", CmpOp::Eq, Value::Int(0)).unwrap();
        assert_eq!(t.delete_where(&mut host, &pred).unwrap(), 10);
    }

    #[test]
    fn update_where_in_place() {
        let (mut host, _om, mut t) = setup(50);
        for i in 0..10 {
            t.insert(&mut host, &vrow(i, 0)).unwrap();
        }
        let pred = Predicate::cmp(&schema(), "id", CmpOp::Ge, Value::Int(5)).unwrap();
        assert_eq!(t.update_where(&mut host, &pred, &[(1, Value::Int(7))]).unwrap(), 5);
        let mut flat = t
            .range_to_flat(&mut host, AeadKey([9u8; 32]), &Bound::Unbounded, &Bound::Unbounded)
            .unwrap();
        let rows = flat.collect_rows(&mut host).unwrap();
        assert_eq!(rows.iter().filter(|r| r[1] == Value::Int(7)).count(), 5);
    }

    #[test]
    fn update_where_key_column_moves_entry() {
        let (mut host, _om, mut t) = setup(50);
        for i in 0..5 {
            t.insert(&mut host, &vrow(i, i)).unwrap();
        }
        let pred = Predicate::cmp(&schema(), "id", CmpOp::Eq, Value::Int(2)).unwrap();
        assert_eq!(t.update_where(&mut host, &pred, &[(0, Value::Int(100))]).unwrap(), 1);
        assert_eq!(t.num_rows(), 5);
        let mut hits = t
            .range_to_flat(
                &mut host,
                AeadKey([9u8; 32]),
                &Bound::Inclusive(Value::Int(100)),
                &Bound::Inclusive(Value::Int(100)),
            )
            .unwrap();
        assert_eq!(hits.collect_rows(&mut host).unwrap().len(), 1);
        let mut gone = t
            .range_to_flat(
                &mut host,
                AeadKey([8u8; 32]),
                &Bound::Inclusive(Value::Int(2)),
                &Bound::Inclusive(Value::Int(2)),
            )
            .unwrap();
        assert_eq!(gone.collect_rows(&mut host).unwrap().len(), 0);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let s = schema();
        let rows: Vec<Vec<u8>> = (0..40i64).map(|i| s.encode_row(&vrow(i, i)).unwrap()).collect();
        let mut t = IndexedTable::from_encoded_rows(
            &mut host,
            AeadKey([4u8; 32]),
            s,
            0,
            &rows,
            100,
            &om,
            EnclaveRng::seed_from_u64(2),
        )
        .unwrap();
        assert_eq!(t.num_rows(), 40);
        // Mutations after bulk load keep working, with fresh row ids.
        t.insert(&mut host, &vrow(100, 1)).unwrap();
        let pred = Predicate::cmp(t.schema(), "id", CmpOp::Eq, Value::Int(100)).unwrap();
        assert_eq!(t.delete_where(&mut host, &pred).unwrap(), 1);
    }

    #[test]
    fn structure_scan_sees_all_rows() {
        let (mut host, _om, mut t) = setup(20);
        for i in 0..20 {
            t.insert(&mut host, &vrow(i, i)).unwrap();
        }
        let mut count = 0;
        t.scan_structure(&mut host, |slot| {
            if slot.is_some() {
                count += 1;
            }
        })
        .unwrap();
        assert_eq!(count, 20);
    }
}
