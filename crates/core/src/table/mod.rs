//! Storage methods (paper §3): flat, indexed, or both.

mod flat;
mod indexed;

pub use flat::FlatTable;
pub use indexed::IndexedTable;

/// A named table with one or both storage methods attached.
///
/// Administrators choose the representation per table based on the expected
/// workload (paper §3.3); `Both` pays insert/update/delete on each method
/// but lets the planner use the better one per query (Figure 12).
pub enum TableStorage {
    /// Contiguous sealed blocks, scanned in full by every operator.
    Flat(FlatTable),
    /// Oblivious B+ tree in Path ORAM.
    Indexed(IndexedTable),
    /// Both representations, kept in sync.
    Both {
        /// The flat copy.
        flat: FlatTable,
        /// The indexed copy.
        indexed: IndexedTable,
    },
}

impl TableStorage {
    /// The flat representation, if present.
    pub fn flat_mut(&mut self) -> Option<&mut FlatTable> {
        match self {
            TableStorage::Flat(f) | TableStorage::Both { flat: f, .. } => Some(f),
            TableStorage::Indexed(_) => None,
        }
    }

    /// The indexed representation, if present.
    pub fn indexed_mut(&mut self) -> Option<&mut IndexedTable> {
        match self {
            TableStorage::Indexed(i) | TableStorage::Both { indexed: i, .. } => Some(i),
            TableStorage::Flat(_) => None,
        }
    }

    /// Logical row count (public).
    pub fn num_rows(&self) -> u64 {
        match self {
            TableStorage::Flat(f) => f.num_rows(),
            TableStorage::Indexed(i) => i.num_rows(),
            TableStorage::Both { flat, .. } => flat.num_rows(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &crate::types::Schema {
        match self {
            TableStorage::Flat(f) => f.schema(),
            TableStorage::Indexed(i) => i.schema(),
            TableStorage::Both { flat, .. } => flat.schema(),
        }
    }
}
