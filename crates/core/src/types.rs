//! Schemas, values, and the fixed-length row codec.
//!
//! ObliDB assumes fixed-length records (paper §3): every row of a table
//! serializes to exactly `schema.row_len()` bytes — a `used` flag followed
//! by fixed-width column encodings. Fixed length is what makes dummy rows
//! indistinguishable from real ones once encrypted.

use crate::error::DbError;

/// Column data types. All encodings are fixed width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer (8 bytes).
    Int,
    /// 64-bit IEEE float (8 bytes).
    Float,
    /// UTF-8 text, zero-padded to exactly `n` bytes.
    Text(usize),
}

impl DataType {
    /// Encoded width in bytes.
    pub fn width(&self) -> usize {
        match self {
            DataType::Int | DataType::Float => 8,
            DataType::Text(n) => *n,
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
}

impl Value {
    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if this is a [`Value::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The text payload, if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Total order used by predicates and sorts. Cross-type comparisons
    /// order by type tag (they cannot arise from well-typed queries).
    pub fn cmp_total(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Text(a), Text(b)) => a.cmp(b),
            (Int(_), _) | (Float(_), Text(_)) => Ordering::Less,
            (Text(_), _) => Ordering::Greater,
        }
    }
}

/// A decoded row.
pub type Row = Vec<Value>;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column { name: name.into(), dtype }
    }
}

/// An ordered list of columns; owns the row codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// The columns in storage order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Bytes per encoded row: 1 flag byte + fixed column widths
    /// (paper §3: "a boolean flag with each record indicating whether it is
    /// in use").
    pub fn row_len(&self) -> usize {
        1 + self.columns.iter().map(|c| c.dtype.width()).sum::<usize>()
    }

    /// Index of a column by name.
    ///
    /// Resolution order: exact match; then, for qualified lookups like
    /// `t.col` against bare column names, the bare suffix; then a unique
    /// qualified column ending in `.name` (for bare lookups against join
    /// outputs whose columns are table-prefixed).
    pub fn col(&self, name: &str) -> Result<usize, DbError> {
        if let Some(i) = self.columns.iter().position(|c| c.name == name) {
            return Ok(i);
        }
        if let Some((_, bare)) = name.rsplit_once('.') {
            if let Some(i) = self.columns.iter().position(|c| c.name == bare) {
                return Ok(i);
            }
        }
        let suffix = format!(".{name}");
        let mut hits = self.columns.iter().enumerate().filter(|(_, c)| c.name.ends_with(&suffix));
        match (hits.next(), hits.next()) {
            (Some((i, _)), None) => Ok(i),
            _ => Err(DbError::NoSuchColumn(name.to_string())),
        }
    }

    /// Byte offset of column `idx` within an encoded row.
    pub fn col_offset(&self, idx: usize) -> usize {
        1 + self.columns[..idx].iter().map(|c| c.dtype.width()).sum::<usize>()
    }

    /// Encodes `values` as a used row.
    pub fn encode_row(&self, values: &[Value]) -> Result<Vec<u8>, DbError> {
        if values.len() != self.columns.len() {
            return Err(DbError::TypeMismatch(format!(
                "expected {} values, got {}",
                self.columns.len(),
                values.len()
            )));
        }
        let mut out = vec![0u8; self.row_len()];
        out[0] = 1;
        let mut off = 1;
        for (col, val) in self.columns.iter().zip(values) {
            match (col.dtype, val) {
                (DataType::Int, Value::Int(v)) => {
                    out[off..off + 8].copy_from_slice(&v.to_le_bytes());
                }
                (DataType::Float, Value::Float(v)) => {
                    out[off..off + 8].copy_from_slice(&v.to_le_bytes());
                }
                (DataType::Float, Value::Int(v)) => {
                    out[off..off + 8].copy_from_slice(&(*v as f64).to_le_bytes());
                }
                (DataType::Text(n), Value::Text(s)) => {
                    let bytes = s.as_bytes();
                    if bytes.len() > n {
                        return Err(DbError::TypeMismatch(format!(
                            "string of {} bytes exceeds CHAR({n}) column {}",
                            bytes.len(),
                            col.name
                        )));
                    }
                    out[off..off + bytes.len()].copy_from_slice(bytes);
                }
                (dt, v) => {
                    return Err(DbError::TypeMismatch(format!(
                        "column {} is {dt:?}, value {v:?}",
                        col.name
                    )));
                }
            }
            off += col.dtype.width();
        }
        Ok(out)
    }

    /// Whether an encoded row is in use (dummy rows decode to `false`).
    pub fn row_used(bytes: &[u8]) -> bool {
        bytes[0] == 1
    }

    /// Decodes one column from an encoded row.
    pub fn decode_col(&self, bytes: &[u8], idx: usize) -> Value {
        let off = self.col_offset(idx);
        match self.columns[idx].dtype {
            DataType::Int => {
                Value::Int(i64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()))
            }
            DataType::Float => {
                Value::Float(f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()))
            }
            DataType::Text(n) => {
                let raw = &bytes[off..off + n];
                let end = raw.iter().position(|&b| b == 0).unwrap_or(n);
                Value::Text(String::from_utf8_lossy(&raw[..end]).into_owned())
            }
        }
    }

    /// Decodes a full row.
    pub fn decode_row(&self, bytes: &[u8]) -> Row {
        (0..self.columns.len()).map(|i| self.decode_col(bytes, i)).collect()
    }

    /// A dummy (unused) row of the right length.
    pub fn dummy_row(&self) -> Vec<u8> {
        vec![0u8; self.row_len()]
    }

    /// Concatenates two schemas (for join outputs), prefixing column names
    /// to keep them unique.
    pub fn join(&self, left_name: &str, right: &Schema, right_name: &str) -> Schema {
        let mut columns = Vec::with_capacity(self.columns.len() + right.columns.len());
        for c in &self.columns {
            columns.push(Column::new(format!("{left_name}.{}", c.name), c.dtype));
        }
        for c in &right.columns {
            columns.push(Column::new(format!("{right_name}.{}", c.name), c.dtype));
        }
        Schema::new(columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("score", DataType::Float),
            Column::new("name", DataType::Text(12)),
        ])
    }

    #[test]
    fn row_len_includes_flag() {
        assert_eq!(schema().row_len(), 1 + 8 + 8 + 12);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = schema();
        let row = vec![Value::Int(-42), Value::Float(2.5), Value::Text("bob".into())];
        let bytes = s.encode_row(&row).unwrap();
        assert!(Schema::row_used(&bytes));
        assert_eq!(s.decode_row(&bytes), row);
    }

    #[test]
    fn dummy_rows_are_unused() {
        let s = schema();
        assert!(!Schema::row_used(&s.dummy_row()));
    }

    #[test]
    fn int_coerces_to_float_column() {
        let s = schema();
        let bytes = s.encode_row(&[Value::Int(1), Value::Int(3), Value::Text("x".into())]).unwrap();
        assert_eq!(s.decode_col(&bytes, 1), Value::Float(3.0));
    }

    #[test]
    fn oversized_text_rejected() {
        let s = schema();
        let long = "a".repeat(13);
        assert!(matches!(
            s.encode_row(&[Value::Int(1), Value::Float(0.0), Value::Text(long)]),
            Err(DbError::TypeMismatch(_))
        ));
    }

    #[test]
    fn wrong_arity_rejected() {
        let s = schema();
        assert!(s.encode_row(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn wrong_type_rejected() {
        let s = schema();
        assert!(s
            .encode_row(&[Value::Text("x".into()), Value::Float(0.0), Value::Text("y".into())])
            .is_err());
    }

    #[test]
    fn col_lookup_and_offsets() {
        let s = schema();
        assert_eq!(s.col("score").unwrap(), 1);
        assert_eq!(s.col_offset(0), 1);
        assert_eq!(s.col_offset(1), 9);
        assert_eq!(s.col_offset(2), 17);
        assert!(s.col("missing").is_err());
    }

    #[test]
    fn join_schema_prefixes_names() {
        let s = schema();
        let joined = s.join("a", &s, "b");
        assert_eq!(joined.columns.len(), 6);
        assert_eq!(joined.columns[0].name, "a.id");
        assert_eq!(joined.columns[3].name, "b.id");
    }

    #[test]
    fn value_total_order() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).cmp_total(&Value::Int(2)), Less);
        assert_eq!(Value::Float(2.0).cmp_total(&Value::Int(2)), Equal);
        assert_eq!(Value::Text("b".into()).cmp_total(&Value::Text("a".into())), Greater);
    }

    #[test]
    fn text_with_interior_content_roundtrip() {
        let s = Schema::new(vec![Column::new("t", DataType::Text(8))]);
        let bytes = s.encode_row(&[Value::Text("ab cd".into())]).unwrap();
        assert_eq!(s.decode_col(&bytes, 0), Value::Text("ab cd".into()));
    }
}
