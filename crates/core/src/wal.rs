//! Write-ahead logging (paper §3).
//!
//! The paper notes that "a standard write-ahead log could be generically
//! added to the system. Appends to such a log would not leak any
//! additional information or affect obliviousness, as the only change
//! would be to make a write to an encrypted log file before each
//! insert/update/delete operation."
//!
//! This module is that log: an append-only sealed region of fixed-size
//! records, written *before* each mutation statement executes. The
//! adversary sees exactly one additional block write per mutation — the
//! mutation count, which table growth reveals anyway. Replaying the log
//! into a fresh engine reproduces the database state (durability's redo
//! half; full transactions remain out of scope, as in the paper).

use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::EnclaveMemory;
use oblidb_storage::SealedRegion;

use crate::error::DbError;

/// Default WAL record size: fits any reasonably sized statement.
pub const DEFAULT_WAL_BLOCK: usize = 512;

/// WAL configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Bytes per log record (statements longer than `block_bytes - 3`
    /// bytes are rejected).
    pub block_bytes: usize,
    /// Initial capacity in records; the log grows by doubling.
    pub capacity: u64,
    /// Flush each appended record to the durable medium
    /// (`sync_region`) before its statement executes — the write-*ahead*
    /// property that makes post-checkpoint statements recoverable after a
    /// crash. On by default; in-memory substrates pay nothing for it.
    pub durable_appends: bool,
    /// Drop the log prefix at each [`persist`](crate::Database::persist_to)
    /// checkpoint: the checkpoint re-seeds a fresh region with a compacted
    /// state dump and retires the old one, so the log stays proportional
    /// to live state instead of statement history. Off by default —
    /// recovery semantics are identical either way, only log size differs.
    pub truncate_at_checkpoint: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            block_bytes: DEFAULT_WAL_BLOCK,
            capacity: 256,
            durable_appends: true,
            truncate_at_checkpoint: false,
        }
    }
}

/// Epoch scheduler configuration (Obladi-style group commit): how long
/// commits may pool in one epoch before the group fsync closes it, and
/// how many statements force an early close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochConfig {
    /// Epoch window in milliseconds. Every commit that lands inside one
    /// window shares a single `sync_region` fsync.
    pub duration_ms: u64,
    /// Close the epoch early once this many statements are pending, so a
    /// write burst cannot grow an epoch without bound.
    pub max_statements: usize,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig { duration_ms: 5, max_statements: 64 }
    }
}

/// Record kind: a standalone statement, committed the instant it is
/// durable (the pre-epoch discipline, and still what replay/restore use).
pub(crate) const REC_STATEMENT: u8 = 1;
/// Record kind: a statement belonging to the currently open epoch —
/// invisible to recovery until an epoch-commit marker follows it.
pub(crate) const REC_EPOCH_PENDING: u8 = 2;
/// Record kind: epoch-commit marker (empty payload). Everything pending
/// before it becomes durable as one atomic group.
pub(crate) const REC_EPOCH_COMMIT: u8 = 3;

/// The encrypted, integrity-protected, append-only log.
pub struct Wal {
    store: SealedRegion,
    len: u64,
    block_bytes: usize,
    grow_key: AeadKey,
    /// Whether appends flush through to the durable medium before their
    /// statement executes. A property of the *log*, persisted with it —
    /// not of whoever happens to reopen the store.
    durable: bool,
    /// Records dropped by truncating checkpoints before this region began;
    /// `base_lsn + len` is the monotonic log sequence number across
    /// truncations.
    base_lsn: u64,
    /// Statements appended as [`REC_EPOCH_PENDING`] since the last
    /// epoch-commit marker — what the next marker will make durable.
    epoch_pending: u64,
}

impl Wal {
    /// Creates an empty log.
    pub fn create<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        config: WalConfig,
    ) -> Result<Self, DbError> {
        assert!(config.block_bytes > 3, "block must fit the length+kind header");
        let store = SealedRegion::create(
            host,
            key.clone(),
            config.capacity.max(1) as usize,
            config.block_bytes,
        )?;
        Ok(Wal {
            store,
            len: 0,
            block_bytes: config.block_bytes,
            grow_key: key,
            durable: config.durable_appends,
            base_lsn: 0,
            epoch_pending: 0,
        })
    }

    /// Re-attaches to a persisted log from its sealed region manifest plus
    /// the (public) record count, record size, and base LSN the database
    /// manifest carries.
    pub fn reattach(
        store: SealedRegion,
        key: AeadKey,
        len: u64,
        block_bytes: usize,
        durable: bool,
        base_lsn: u64,
    ) -> Self {
        // A persisted log never ends mid-epoch ([`crate::Database::persist_to`]
        // closes the epoch first), so pending restarts at zero.
        Wal { store, len, block_bytes, grow_key: key, durable, base_lsn, epoch_pending: 0 }
    }

    /// Records dropped before this region by truncating checkpoints.
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// Marks `lsn` records as having been compacted away before this
    /// region — set once when a truncating checkpoint seeds a fresh log.
    pub(crate) fn set_base_lsn(&mut self, lsn: u64) {
        self.base_lsn = lsn;
    }

    /// The monotonic log sequence number: records ever appended across
    /// all truncations, i.e. where the next record will land.
    pub fn checkpoint_lsn(&self) -> u64 {
        self.base_lsn + self.len
    }

    /// Statements pending in the currently open epoch (zero when the log
    /// is at an epoch boundary).
    pub fn epoch_pending(&self) -> u64 {
        self.epoch_pending
    }

    /// Whether appended records must reach the durable medium before
    /// their statement executes.
    pub fn durable_appends(&self) -> bool {
        self.durable
    }

    /// Overrides the durable-append policy (a caller reopening with an
    /// explicit [`WalConfig`] wins over the persisted flag).
    pub fn set_durable_appends(&mut self, durable: bool) {
        self.durable = durable;
    }

    /// The untrusted region backing the log — the target of the
    /// durable-append `sync_region` call.
    pub fn region_id(&self) -> oblidb_enclave::RegionId {
        self.store.region_id()
    }

    /// Bytes per log record.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// The log's AEAD key, for embedding in the sealed database manifest.
    pub(crate) fn key(&self) -> AeadKey {
        self.grow_key.clone()
    }

    /// Seals the log's trusted state (revisions + nonce counter) for the
    /// database manifest.
    pub fn seal_manifest(&mut self) -> Vec<u8> {
        self.store.seal_manifest()
    }

    /// Records appended so far (public: one observable write each).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one statement as immediately committed (kind
    /// [`REC_STATEMENT`]), before its mutation executes. Exactly one
    /// sealed write — no data-dependent access pattern.
    pub fn append<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        statement: &str,
    ) -> Result<(), DbError> {
        self.append_record(host, REC_STATEMENT, statement.as_bytes())?;
        // A durable standalone statement commits everything logged before
        // it (the fold flushes pending first to preserve statement order),
        // so the epoch restarts empty.
        self.epoch_pending = 0;
        Ok(())
    }

    /// Appends one statement into the currently open epoch (kind
    /// [`REC_EPOCH_PENDING`]). Invisible to recovery until
    /// [`Wal::append_epoch_commit`] seals the group.
    pub fn append_pending<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        statement: &str,
    ) -> Result<(), DbError> {
        self.append_record(host, REC_EPOCH_PENDING, statement.as_bytes())?;
        self.epoch_pending += 1;
        Ok(())
    }

    /// Appends an epoch-commit marker, making every pending statement in
    /// the open epoch durable as one group, and returns how many it
    /// sealed. No-op (no write) when the epoch is empty.
    pub fn append_epoch_commit<M: EnclaveMemory>(&mut self, host: &mut M) -> Result<u64, DbError> {
        if self.epoch_pending == 0 {
            return Ok(0);
        }
        self.append_record(host, REC_EPOCH_COMMIT, &[])?;
        Ok(std::mem::take(&mut self.epoch_pending))
    }

    fn append_record<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        kind: u8,
        bytes: &[u8],
    ) -> Result<(), DbError> {
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::WalAppend);
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::WalAppends, 1);
        // The record header stores the payload length as u16, so that
        // bounds oversized blocks too.
        let max = (self.block_bytes - 3).min(u16::MAX as usize);
        if bytes.len() > max {
            return Err(DbError::Unsupported(format!(
                "statement of {} bytes exceeds the WAL record size {max}",
                bytes.len(),
            )));
        }
        if self.len >= self.store.len() {
            let new_cap = (self.store.len() * 2).max(8);
            self.store.grow(host, new_cap as usize)?;
            // Growth writes are driven by the public record count only.
            let _ = self.grow_key;
        }
        let mut record = vec![0u8; self.block_bytes];
        record[..2].copy_from_slice(&(bytes.len() as u16).to_le_bytes());
        record[2] = kind;
        record[3..3 + bytes.len()].copy_from_slice(bytes);
        self.store.write(host, self.len, &record)?;
        self.len += 1;
        Ok(())
    }

    /// Decrypts and returns every *committed* statement, oldest first —
    /// standalone records plus every epoch sealed by a commit marker;
    /// statements of a still-open epoch are excluded, exactly as recovery
    /// would exclude them. Streams the log in batched chunks, one crossing
    /// per chunk instead of one per record.
    pub fn records<M: EnclaveMemory>(&mut self, host: &mut M) -> Result<Vec<String>, DbError> {
        let mut raw = Vec::with_capacity(self.len as usize);
        let mut scan = oblidb_storage::SealedScan::over(
            0..self.len,
            oblidb_storage::batch_chunk_blocks(self.block_bytes),
        );
        while let Some((_, payloads)) = scan.next_chunk(host, &mut self.store)? {
            for bytes in payloads.chunks_exact(self.block_bytes) {
                raw.push(decode_record(bytes)?);
            }
        }
        fold_committed(raw)
    }

    /// Releases untrusted memory.
    pub fn free<M: EnclaveMemory>(self, host: &mut M) -> Result<(), DbError> {
        self.store.free(host)?;
        Ok(())
    }

    /// Probes whether slot `index` of a persisted WAL region holds a
    /// record, by the same revision-2 criterion as
    /// [`Wal::recover_records`] — the O(1) clean-vs-crashed check a
    /// reopen needs, without decoding the whole log.
    pub fn probe_record<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        region: oblidb_enclave::RegionId,
        block_bytes: usize,
        index: u64,
    ) -> Result<bool, DbError> {
        let capacity = host.region_len(region)?;
        if index >= capacity {
            return Ok(false);
        }
        let mut probe =
            SealedRegion::attach(region, key, block_bytes, vec![2; capacity as usize], 0);
        match probe.read(host, index) {
            Ok(_) => Ok(true),
            Err(oblidb_storage::StorageError::TamperDetected { .. }) => Ok(false),
            Err(oblidb_storage::StorageError::Host(oblidb_enclave::HostError::EmptyBlock(..))) => {
                Ok(false)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Scans a persisted WAL region for every durable record **without
    /// trusting any in-enclave length counter** — crash recovery's entry
    /// point, when the only surviving trusted state is the log's key.
    ///
    /// Soundness: a WAL slot is written exactly twice under append-only
    /// discipline — once by zero-fill at create/grow (revision 1), once by
    /// its append (revision 2) — so "holds a record" is equivalent to
    /// "authenticates at revision 2". The scan reads slots front to back
    /// expecting revision 2 and stops at the first slot that does not
    /// authenticate (still zero-filled, or unwritten past a crash). The
    /// AAD binds index and revision, so the adversary can neither reorder
    /// records nor splice in foreign ones; what he *can* do is truncate
    /// the tail, which is indistinguishable from a crash before those
    /// appends — the bound every sealed log has without a hardware
    /// monotonic counter.
    pub fn recover_records<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        region: oblidb_enclave::RegionId,
        block_bytes: usize,
    ) -> Result<Vec<String>, DbError> {
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::WalRecovery);
        let capacity = host.region_len(region)?;
        // The probe never writes, so its nonce counter is irrelevant.
        let mut probe =
            SealedRegion::attach(region, key, block_bytes, vec![2; capacity as usize], 0);
        let mut raw = Vec::new();
        for i in 0..capacity {
            match probe.read(host, i) {
                Ok(bytes) => raw.push(decode_record(bytes)?),
                // First non-record slot (zero-filled, empty, or torn):
                // the durable log ends here.
                Err(oblidb_storage::StorageError::TamperDetected { .. }) => break,
                Err(oblidb_storage::StorageError::Host(oblidb_enclave::HostError::EmptyBlock(
                    ..,
                ))) => break,
                Err(e) => return Err(e.into()),
            }
        }
        oblidb_telemetry::counter_add(
            oblidb_telemetry::Counter::WalRecoveredRecords,
            raw.len() as u64,
        );
        fold_committed(raw)
    }
}

/// Decodes one fixed-size WAL record into its kind and statement text.
fn decode_record(bytes: &[u8]) -> Result<(u8, String), DbError> {
    let n = u16::from_le_bytes(bytes[..2].try_into().expect("header")) as usize;
    if n > bytes.len() - 3 {
        return Err(DbError::Unsupported("corrupt WAL record".into()));
    }
    let kind = bytes[2];
    if !matches!(kind, REC_STATEMENT | REC_EPOCH_PENDING | REC_EPOCH_COMMIT) {
        return Err(DbError::Unsupported(format!("unknown WAL record kind {kind}")));
    }
    std::str::from_utf8(&bytes[3..3 + n])
        .map(|s| (kind, s.to_string()))
        .map_err(|_| DbError::Unsupported("corrupt WAL record".into()))
}

/// Folds a raw record sequence down to the committed statement history:
/// whole epochs or none. Pending statements become visible when their
/// epoch-commit marker follows; a standalone statement first flushes any
/// open epoch before itself (order-preserving — standalone records only
/// interleave with pending ones on the durable/group boundary, where the
/// standalone record's own fsync made the earlier pending records durable
/// too). A trailing open epoch — the crash-mid-epoch case — is dropped.
fn fold_committed(raw: Vec<(u8, String)>) -> Result<Vec<String>, DbError> {
    let mut out = Vec::with_capacity(raw.len());
    let mut pending = Vec::new();
    for (kind, stmt) in raw {
        match kind {
            REC_STATEMENT => {
                out.append(&mut pending);
                out.push(stmt);
            }
            REC_EPOCH_PENDING => pending.push(stmt),
            REC_EPOCH_COMMIT => out.append(&mut pending),
            _ => unreachable!("decode_record validated the kind"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_enclave::Host;

    fn setup() -> (Host, Wal) {
        let mut host = Host::new();
        let wal = Wal::create(
            &mut host,
            AeadKey([3u8; 32]),
            WalConfig { block_bytes: 64, capacity: 2, ..WalConfig::default() },
        )
        .unwrap();
        (host, wal)
    }

    #[test]
    fn append_and_read_back() {
        let (mut host, mut wal) = setup();
        wal.append(&mut host, "INSERT INTO t VALUES (1)").unwrap();
        wal.append(&mut host, "DELETE FROM t WHERE x = 2").unwrap();
        assert_eq!(wal.len(), 2);
        assert_eq!(
            wal.records(&mut host).unwrap(),
            vec!["INSERT INTO t VALUES (1)", "DELETE FROM t WHERE x = 2"]
        );
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (mut host, mut wal) = setup();
        for i in 0..20 {
            wal.append(&mut host, &format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        assert_eq!(wal.records(&mut host).unwrap().len(), 20);
    }

    #[test]
    fn oversized_statement_rejected() {
        let (mut host, mut wal) = setup();
        let long = format!("INSERT INTO t VALUES ('{}')", "x".repeat(100));
        assert!(matches!(wal.append(&mut host, &long), Err(DbError::Unsupported(_))));
        assert!(wal.is_empty());
    }

    #[test]
    fn append_is_one_observable_write() {
        let (mut host, mut wal) = setup();
        host.start_trace();
        wal.append(&mut host, "short").unwrap();
        let t = host.take_trace();
        assert_eq!(t.len(), 1, "append must be exactly one block write");
        // Two appends of different statements look identical.
        host.start_trace();
        wal.append(&mut host, "a completely different stmt").unwrap();
        let t2 = host.take_trace();
        assert_eq!(t.0[0].kind, t2.0[0].kind);
    }

    #[test]
    fn open_epoch_is_invisible_until_committed() {
        let (mut host, mut wal) = setup();
        wal.append_pending(&mut host, "INSERT INTO t VALUES (1)").unwrap();
        wal.append_pending(&mut host, "INSERT INTO t VALUES (2)").unwrap();
        assert_eq!(wal.epoch_pending(), 2);
        // Open epoch: nothing committed yet.
        assert!(wal.records(&mut host).unwrap().is_empty());
        assert_eq!(wal.append_epoch_commit(&mut host).unwrap(), 2);
        assert_eq!(wal.epoch_pending(), 0);
        assert_eq!(
            wal.records(&mut host).unwrap(),
            vec!["INSERT INTO t VALUES (1)", "INSERT INTO t VALUES (2)"]
        );
        // An empty epoch writes nothing.
        assert_eq!(wal.append_epoch_commit(&mut host).unwrap(), 0);
        assert_eq!(wal.len(), 3);
    }

    #[test]
    fn trailing_open_epoch_dropped_whole() {
        let (mut host, mut wal) = setup();
        wal.append_pending(&mut host, "a").unwrap();
        wal.append_epoch_commit(&mut host).unwrap();
        wal.append_pending(&mut host, "b").unwrap();
        wal.append_pending(&mut host, "c").unwrap();
        // Crash before the second epoch's marker: recovery sees only the
        // first epoch — whole epochs or none.
        let region = wal.region_id();
        let recovered = Wal::recover_records(&mut host, AeadKey([3u8; 32]), region, 64).unwrap();
        assert_eq!(recovered, vec!["a"]);
    }

    #[test]
    fn standalone_statement_flushes_open_epoch() {
        let (mut host, mut wal) = setup();
        wal.append_pending(&mut host, "a").unwrap();
        wal.append(&mut host, "b").unwrap();
        assert_eq!(wal.epoch_pending(), 0);
        // The standalone append's fsync covers the pending record too, so
        // both commit, in order.
        assert_eq!(wal.records(&mut host).unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn lsn_tracks_base_and_len() {
        let (mut host, mut wal) = setup();
        assert_eq!(wal.checkpoint_lsn(), 0);
        wal.append(&mut host, "x").unwrap();
        wal.set_base_lsn(10);
        assert_eq!(wal.base_lsn(), 10);
        assert_eq!(wal.checkpoint_lsn(), 11);
    }

    #[test]
    fn tampered_log_detected() {
        let (mut host, mut wal) = setup();
        wal.append(&mut host, "INSERT INTO t VALUES (9)").unwrap();
        let region = {
            // The WAL's region is the only one in this host.
            oblidb_enclave::RegionId(0)
        };
        host.adversary_corrupt(region, 0, |b| b[20] ^= 1);
        assert!(matches!(wal.records(&mut host), Err(DbError::Storage(_))));
    }
}
