//! Property-based testing of the oblivious operators: under arbitrary
//! data and predicates, every algorithm must agree with a plain reference
//! implementation, and equal-leakage runs must produce equal traces.
//!
//! The case generator is a seeded [`EnclaveRng`] loop (the workspace is
//! dependency-free, so no proptest); failures print the offending case.

use oblidb_core::exec::{self, AggFunc, SortMergeVariant};
use oblidb_core::planner::SelectAlgo;
use oblidb_core::predicate::{CmpOp, Predicate};
use oblidb_core::table::FlatTable;
use oblidb_core::types::{Column, DataType, Schema, Value};
use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveRng, Host, OmBudget, DEFAULT_OM_BYTES};

const CASES: usize = 40;

fn schema() -> Schema {
    Schema::new(vec![Column::new("a", DataType::Int), Column::new("b", DataType::Int)])
}

fn build(host: &mut Host, rows: &[(i64, i64)]) -> FlatTable {
    let s = schema();
    let encoded: Vec<Vec<u8>> = rows
        .iter()
        .map(|(a, b)| s.encode_row(&[Value::Int(*a), Value::Int(*b)]).unwrap())
        .collect();
    FlatTable::from_encoded_rows(host, AeadKey([1u8; 32]), s, &encoded, rows.len().max(1) as u64)
        .unwrap()
}

#[derive(Debug, Clone)]
struct PredSpec {
    col: usize,
    op: CmpOp,
    value: i64,
}

fn rand_rows(rng: &mut EnclaveRng, min: usize, max: usize) -> Vec<(i64, i64)> {
    let n = min + rng.below((max - min) as u64) as usize;
    (0..n).map(|_| (rng.int_in(-20, 20), rng.int_in(-20, 20))).collect()
}

fn rand_pred(rng: &mut EnclaveRng) -> PredSpec {
    let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
    PredSpec {
        col: rng.below(2) as usize,
        op: ops[rng.below(ops.len() as u64) as usize],
        value: rng.int_in(-20, 20),
    }
}

fn to_pred(spec: &PredSpec) -> Predicate {
    Predicate::Cmp { col: spec.col, op: spec.op, value: Value::Int(spec.value) }
}

fn reference_filter(rows: &[(i64, i64)], spec: &PredSpec) -> Vec<(i64, i64)> {
    use std::cmp::Ordering::*;
    let mut out: Vec<(i64, i64)> = rows
        .iter()
        .filter(|(a, b)| {
            let v = if spec.col == 0 { *a } else { *b };
            let ord = v.cmp(&spec.value);
            match spec.op {
                CmpOp::Eq => ord == Equal,
                CmpOp::Ne => ord != Equal,
                CmpOp::Lt => ord == Less,
                CmpOp::Le => ord != Greater,
                CmpOp::Gt => ord == Greater,
                CmpOp::Ge => ord != Less,
            }
        })
        .copied()
        .collect();
    out.sort_unstable();
    out
}

fn collect_pairs(host: &mut Host, t: &mut FlatTable) -> Vec<(i64, i64)> {
    let mut out: Vec<(i64, i64)> = t
        .collect_rows(host)
        .unwrap()
        .iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    out.sort_unstable();
    out
}

/// Every select algorithm returns exactly the reference filter result.
#[test]
fn select_algorithms_match_reference() {
    let mut rng = EnclaveRng::seed_from_u64(0x5E1EC7);
    for case in 0..CASES {
        let rows = rand_rows(&mut rng, 1, 60);
        let spec = rand_pred(&mut rng);
        let expected = reference_filter(&rows, &spec);
        for algo in [SelectAlgo::Small, SelectAlgo::Large, SelectAlgo::Hash, SelectAlgo::Naive] {
            let mut host = Host::new();
            let om = OmBudget::new(DEFAULT_OM_BYTES);
            let mut t = build(&mut host, &rows);
            let pred = to_pred(&spec);
            let out_rows = expected.len() as u64;
            let key = AeadKey([9u8; 32]);
            let mut out = match algo {
                SelectAlgo::Small => {
                    exec::select_small(&mut host, &om, &mut t, &pred, key, out_rows).unwrap()
                }
                SelectAlgo::Large => exec::select_large(&mut host, &mut t, &pred, key).unwrap(),
                SelectAlgo::Hash => {
                    exec::select_hash(&mut host, &mut t, &pred, key, out_rows).unwrap()
                }
                SelectAlgo::Naive => exec::select_naive(
                    &mut host,
                    &om,
                    &mut t,
                    &pred,
                    key,
                    out_rows,
                    EnclaveRng::seed_from_u64(7),
                )
                .unwrap(),
                _ => unreachable!(),
            };
            assert_eq!(
                collect_pairs(&mut host, &mut out),
                expected,
                "case {case}: {algo:?} on {rows:?} with {spec:?}"
            );
        }
    }
}

/// The padded select returns the reference result for any pad ≥ |R|.
#[test]
fn padded_select_matches_reference() {
    let mut rng = EnclaveRng::seed_from_u64(0x9AD);
    for case in 0..CASES {
        let rows = rand_rows(&mut rng, 1, 50);
        let spec = rand_pred(&mut rng);
        let extra = rng.below(20);
        let expected = reference_filter(&rows, &spec);
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let mut t = build(&mut host, &rows);
        let pad = expected.len() as u64 + extra;
        let mut out = exec::select::select_padded(
            &mut host,
            &om,
            &mut t,
            &to_pred(&spec),
            AeadKey([9u8; 32]),
            pad,
        )
        .unwrap();
        assert!(out.capacity() >= pad.max(1), "case {case}");
        assert_eq!(
            collect_pairs(&mut host, &mut out),
            expected,
            "case {case}: {rows:?} with {spec:?} pad {pad}"
        );
    }
}

/// Aggregates agree with a plain fold, for any predicate.
#[test]
fn aggregates_match_reference() {
    let mut rng = EnclaveRng::seed_from_u64(0xA66);
    for case in 0..CASES {
        let rows = rand_rows(&mut rng, 1, 60);
        let spec = rand_pred(&mut rng);
        let matching = reference_filter(&rows, &spec);
        let mut host = Host::new();
        let mut t = build(&mut host, &rows);
        let pred = to_pred(&spec);

        let count = exec::aggregate(&mut host, &mut t, AggFunc::Count, None, &pred).unwrap();
        assert_eq!(count, Value::Int(matching.len() as i64), "case {case}");

        let sum = exec::aggregate(&mut host, &mut t, AggFunc::Sum, Some(1), &pred).unwrap();
        assert_eq!(sum, Value::Int(matching.iter().map(|(_, b)| b).sum::<i64>()), "case {case}");

        if !matching.is_empty() {
            let min = exec::aggregate(&mut host, &mut t, AggFunc::Min, Some(0), &pred).unwrap();
            assert_eq!(
                min,
                Value::Int(matching.iter().map(|(a, _)| *a).min().unwrap()),
                "case {case}"
            );
        }
    }
}

/// All three joins agree with a nested-loop reference on arbitrary
/// (possibly non-FK) key distributions — T1 keys are deduplicated to
/// preserve the FK precondition of the sort-merge variants.
#[test]
fn joins_match_reference() {
    let mut rng = EnclaveRng::seed_from_u64(0x101);
    for case in 0..CASES {
        let t1_keys: std::collections::BTreeSet<i64> = {
            let n = 1 + rng.below(11) as usize;
            (0..n).map(|_| rng.int_in(-10, 10)).collect()
        };
        let t2: Vec<(i64, i64)> = {
            let n = rng.below(30) as usize;
            (0..n).map(|_| (rng.int_in(-10, 10), rng.int_in(0, 100))).collect()
        };
        let t1: Vec<(i64, i64)> = t1_keys.iter().map(|k| (*k, k * 2)).collect();
        let mut expected = Vec::new();
        for (k1, v1) in &t1 {
            for (k2, v2) in &t2 {
                if k1 == k2 {
                    expected.push((*k1, *v1, *k2, *v2));
                }
            }
        }
        expected.sort_unstable();

        for variant in [
            None,
            Some(SortMergeVariant::Opaque),
            Some(SortMergeVariant::ZeroOm { scratch_rows: 2 }),
        ] {
            let mut host = Host::new();
            let om = OmBudget::new(4096);
            let mut left = build(&mut host, &t1);
            let mut right = build(&mut host, &t2);
            let key = AeadKey([9u8; 32]);
            let mut out = match variant {
                None => exec::hash_join(&mut host, &om, &mut left, 0, &mut right, 0, key).unwrap(),
                Some(v) => {
                    exec::sort_merge_join(&mut host, &om, &mut left, 0, &mut right, 0, key, v)
                        .unwrap()
                }
            };
            let mut got: Vec<(i64, i64, i64, i64)> = out
                .collect_rows(&mut host)
                .unwrap()
                .iter()
                .map(|r| {
                    (
                        r[0].as_int().unwrap(),
                        r[1].as_int().unwrap(),
                        r[2].as_int().unwrap(),
                        r[3].as_int().unwrap(),
                    )
                })
                .collect();
            got.sort_unstable();
            assert_eq!(got, expected, "case {case}: {variant:?}");
        }
    }
}

/// Bitonic sort equals std sort for any data and chunk size.
#[test]
fn bitonic_matches_std_sort() {
    let mut rng = EnclaveRng::seed_from_u64(0xB170);
    for case in 0..CASES {
        let values: Vec<i64> = {
            let n = 1 + rng.below(63) as usize;
            (0..n).map(|_| rng.int_in(-1000, 1000)).collect()
        };
        let chunk = 1 + rng.below(69) as usize;
        let mut host = Host::new();
        let rows: Vec<(i64, i64)> = values.iter().map(|v| (*v, 0)).collect();
        let mut t = build(&mut host, &rows);
        let n = (values.len() as u64).max(2).next_power_of_two();
        t.grow(&mut host, AeadKey([2u8; 32]), n).unwrap();
        let s = t.schema().clone();
        exec::bitonic_sort(
            &mut host,
            &mut t,
            n,
            move |bytes| {
                if !Schema::row_used(bytes) {
                    return u128::MAX;
                }
                match s.decode_col(bytes, 0) {
                    Value::Int(v) => oblidb_core::key::order_u64_from_i64(v) as u128,
                    _ => 0,
                }
            },
            chunk,
        )
        .unwrap();

        let mut got = Vec::new();
        for i in 0..n {
            let bytes = t.read_row(&mut host, i).unwrap();
            if Schema::row_used(&bytes) {
                got.push(t.schema().decode_col(&bytes, 0).as_int().unwrap());
            }
        }
        let mut expected = values.clone();
        expected.sort_unstable();
        assert_eq!(got, expected, "case {case}: chunk {chunk}");
    }
}

/// Trace-equality, property-tested: two datasets with the same size and
/// match count produce identical adversary transcripts under every
/// deterministic select algorithm.
#[test]
fn equal_leakage_implies_equal_traces() {
    for n in (4usize..32).step_by(3) {
        for k in 1usize..4 {
            for shift in 0usize..2 {
                let k = k.min(n);
                // Dataset A: first k rows match (value 1); dataset B: last k.
                let data_a: Vec<(i64, i64)> =
                    (0..n).map(|i| (i as i64, i64::from(i < k))).collect();
                let data_b: Vec<(i64, i64)> =
                    (0..n).map(|i| (i as i64 + shift as i64, i64::from(i >= n - k))).collect();
                for algo in [SelectAlgo::Small, SelectAlgo::Large, SelectAlgo::Hash] {
                    let mut traces = Vec::new();
                    for data in [&data_a, &data_b] {
                        let mut host = Host::new();
                        let om = OmBudget::new(DEFAULT_OM_BYTES);
                        let mut t = build(&mut host, data);
                        let pred = Predicate::Cmp { col: 1, op: CmpOp::Eq, value: Value::Int(1) };
                        host.start_trace();
                        let key = AeadKey([9u8; 32]);
                        match algo {
                            SelectAlgo::Small => {
                                exec::select_small(&mut host, &om, &mut t, &pred, key, k as u64)
                                    .unwrap();
                            }
                            SelectAlgo::Large => {
                                exec::select_large(&mut host, &mut t, &pred, key).unwrap();
                            }
                            SelectAlgo::Hash => {
                                exec::select_hash(&mut host, &mut t, &pred, key, k as u64).unwrap();
                            }
                            _ => unreachable!(),
                        }
                        traces.push(host.take_trace());
                    }
                    assert_eq!(traces[0], traces[1], "n={n} k={k} shift={shift} {algo:?}");
                }
            }
        }
    }
}
