//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! Every block ObliDB writes outside the enclave is sealed with this AEAD;
//! the associated data binds the ciphertext to its (table, block index,
//! revision) identity so the untrusted OS can neither tamper with, shuffle,
//! nor replay blocks without detection (paper §3).

use crate::chacha::ChaCha20;
use crate::poly1305::{tags_equal, Poly1305};

/// Byte length of the authentication tag.
pub const TAG_LEN: usize = 16;
/// Byte length of the nonce.
pub const NONCE_LEN: usize = 12;

/// A 256-bit AEAD key.
#[derive(Clone, Copy)]
pub struct AeadKey(pub [u8; 32]);

/// A 96-bit nonce. Must never repeat for the same key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nonce(pub [u8; NONCE_LEN]);

impl Nonce {
    /// Builds a nonce from a 32-bit epoch and 64-bit counter.
    ///
    /// The sealed-storage layer uses (epoch = region id, counter = a
    /// monotonically increasing write counter), which guarantees uniqueness.
    pub fn from_parts(epoch: u32, counter: u64) -> Self {
        let mut n = [0u8; NONCE_LEN];
        n[..4].copy_from_slice(&epoch.to_le_bytes());
        n[4..].copy_from_slice(&counter.to_le_bytes());
        Nonce(n)
    }
}

/// Error returned when decryption fails authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeadError;

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AEAD authentication failed")
    }
}

impl std::error::Error for AeadError {}

fn poly_key(key: &AeadKey, nonce: &Nonce) -> [u8; 32] {
    let cipher = ChaCha20::new(&key.0, &nonce.0);
    let mut block = [0u8; 64];
    cipher.block(0, &mut block);
    block[..32].try_into().unwrap()
}

fn compute_tag(otk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(otk);
    mac.update(aad);
    let aad_pad = (16 - aad.len() % 16) % 16;
    mac.update(&[0u8; 16][..aad_pad]);
    mac.update(ciphertext);
    let ct_pad = (16 - ciphertext.len() % 16) % 16;
    mac.update(&[0u8; 16][..ct_pad]);
    let mut lens = [0u8; 16];
    lens[..8].copy_from_slice(&(aad.len() as u64).to_le_bytes());
    lens[8..].copy_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    mac.update(&lens);
    mac.finish()
}

/// Encrypts `plaintext` in place and returns the authentication tag.
pub fn seal(key: &AeadKey, nonce: &Nonce, aad: &[u8], plaintext: &mut [u8]) -> [u8; TAG_LEN] {
    let otk = poly_key(key, nonce);
    let cipher = ChaCha20::new(&key.0, &nonce.0);
    cipher.apply_keystream(1, plaintext);
    compute_tag(&otk, aad, plaintext)
}

/// Verifies the tag and decrypts `ciphertext` in place.
///
/// On failure the buffer is left in its (still encrypted) input state and
/// `Err(AeadError)` is returned.
pub fn open(
    key: &AeadKey,
    nonce: &Nonce,
    aad: &[u8],
    ciphertext: &mut [u8],
    tag: &[u8; TAG_LEN],
) -> Result<(), AeadError> {
    let otk = poly_key(key, nonce);
    let expected = compute_tag(&otk, aad, ciphertext);
    if !tags_equal(&expected, tag) {
        return Err(AeadError);
    }
    let cipher = ChaCha20::new(&key.0, &nonce.0);
    cipher.apply_keystream(1, ciphertext);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.8.2 AEAD test vector (tag check).
    #[test]
    fn rfc8439_aead_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        let nonce = Nonce([0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47]);
        let aad: [u8; 12] =
            [0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7];
        let mut plaintext = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let tag = seal(&AeadKey(key), &nonce, &aad, &mut plaintext);
        let expected_tag: [u8; 16] = [
            0x1a, 0xe1, 0x0b, 0x59, 0x4f, 0x09, 0xe2, 0x6a, 0x7e, 0x90, 0x2e, 0xcb, 0xd0, 0x60,
            0x06, 0x91,
        ];
        assert_eq!(tag, expected_tag);
        // First ciphertext bytes from the RFC.
        assert_eq!(
            &plaintext[..16],
            &[
                0xd3, 0x1a, 0x8d, 0x34, 0x64, 0x8e, 0x60, 0xdb, 0x7b, 0x86, 0xaf, 0xbc, 0x53, 0xef,
                0x7e, 0xc2
            ]
        );
    }

    #[test]
    fn roundtrip() {
        let key = AeadKey([5u8; 32]);
        let nonce = Nonce::from_parts(1, 99);
        let aad = b"table:0,block:7,rev:3";
        let mut data = b"the quick brown fox".to_vec();
        let tag = seal(&key, &nonce, aad, &mut data);
        open(&key, &nonce, aad, &mut data, &tag).unwrap();
        assert_eq!(&data, b"the quick brown fox");
    }

    #[test]
    fn tamper_ciphertext_detected() {
        let key = AeadKey([5u8; 32]);
        let nonce = Nonce::from_parts(0, 0);
        let mut data = vec![1u8; 64];
        let tag = seal(&key, &nonce, b"", &mut data);
        data[10] ^= 1;
        assert_eq!(open(&key, &nonce, b"", &mut data, &tag), Err(AeadError));
    }

    #[test]
    fn tamper_aad_detected() {
        let key = AeadKey([5u8; 32]);
        let nonce = Nonce::from_parts(0, 0);
        let mut data = vec![1u8; 64];
        let tag = seal(&key, &nonce, b"rev:1", &mut data);
        assert_eq!(open(&key, &nonce, b"rev:2", &mut data, &tag), Err(AeadError));
    }

    #[test]
    fn wrong_key_detected() {
        let nonce = Nonce::from_parts(0, 0);
        let mut data = vec![9u8; 32];
        let tag = seal(&AeadKey([1u8; 32]), &nonce, b"", &mut data);
        assert_eq!(open(&AeadKey([2u8; 32]), &nonce, b"", &mut data, &tag), Err(AeadError));
    }

    #[test]
    fn wrong_nonce_detected() {
        let key = AeadKey([1u8; 32]);
        let mut data = vec![9u8; 32];
        let tag = seal(&key, &Nonce::from_parts(0, 1), b"", &mut data);
        assert_eq!(open(&key, &Nonce::from_parts(0, 2), b"", &mut data, &tag), Err(AeadError));
    }

    #[test]
    fn nonce_from_parts_is_injective_on_counter() {
        assert_ne!(Nonce::from_parts(3, 1), Nonce::from_parts(3, 2));
        assert_ne!(Nonce::from_parts(3, 1), Nonce::from_parts(4, 1));
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let key = AeadKey([8u8; 32]);
        let nonce = Nonce::from_parts(0, 7);
        let mut data = Vec::new();
        let tag = seal(&key, &nonce, b"aad", &mut data);
        open(&key, &nonce, b"aad", &mut data, &tag).unwrap();
    }
}
