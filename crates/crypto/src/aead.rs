//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! Every block ObliDB writes outside the enclave is sealed with this AEAD;
//! the associated data binds the ciphertext to its (table, block index,
//! revision) identity so the untrusted OS can neither tamper with, shuffle,
//! nor replay blocks without detection (paper §3).
//!
//! [`seal`]/[`open`] handle one block. [`seal_batch`]/[`open_batch`] are
//! the fused fast path the sealed-storage layer drives: one batch parses
//! the key schedule once, derives every block's Poly1305 one-time key in
//! multi-lane SIMD passes, and streams each payload through
//! [`ChaCha20::apply_keystream_multi`]. Tags and ciphertext are
//! byte-identical to the per-block functions — batching is purely a
//! speed decision — and a failed batch open still attributes the exact
//! offending block index.

use crate::chacha::{ChaCha20, BLOCK_LEN, MAX_LANES};
use crate::poly1305::{tags_equal, Poly1305};

/// Byte length of the authentication tag.
pub const TAG_LEN: usize = 16;
/// Byte length of the nonce.
pub const NONCE_LEN: usize = 12;

/// A 256-bit AEAD key. Zeroized on drop; clone explicitly when a copy
/// must outlive the original.
#[derive(Clone)]
pub struct AeadKey(pub [u8; 32]);

impl AeadKey {
    /// Overwrites the key bytes (also performed automatically on drop).
    pub fn zeroize(&mut self) {
        self.0.fill(0);
        core::hint::black_box(&self.0);
    }
}

impl Drop for AeadKey {
    /// Best-effort zeroization; the `black_box` barrier keeps the dead
    /// store from being optimized away.
    fn drop(&mut self) {
        self.zeroize();
    }
}

/// A 96-bit nonce. Must never repeat for the same key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nonce(pub [u8; NONCE_LEN]);

impl Nonce {
    /// Builds a nonce from a 32-bit epoch and 64-bit counter.
    ///
    /// The sealed-storage layer uses (epoch = region id, counter = a
    /// monotonically increasing write counter), which guarantees uniqueness.
    pub fn from_parts(epoch: u32, counter: u64) -> Self {
        let mut n = [0u8; NONCE_LEN];
        n[..4].copy_from_slice(&epoch.to_le_bytes());
        n[4..].copy_from_slice(&counter.to_le_bytes());
        Nonce(n)
    }
}

/// Error returned when decryption fails authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeadError;

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AEAD authentication failed")
    }
}

impl std::error::Error for AeadError {}

/// Error returned when a batch open fails authentication: `index` is the
/// position (in batch order) of the **first** block whose tag did not
/// verify. No block in the batch has been decrypted when this is
/// returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAeadError {
    /// Batch-order index of the first failing block.
    pub index: usize,
}

impl std::fmt::Display for BatchAeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AEAD authentication failed for batch block {}", self.index)
    }
}

impl std::error::Error for BatchAeadError {}

fn poly_key(key: &AeadKey, nonce: &Nonce) -> [u8; 32] {
    let cipher = ChaCha20::new(&key.0, &nonce.0);
    let mut block = [0u8; 64];
    cipher.block(0, &mut block);
    block[..32].try_into().unwrap()
}

/// Derives the Poly1305 one-time key for every nonce in one multi-lane
/// sweep: lane `i` is ChaCha20 block 0 under `(key, nonces[i])`, of which
/// the first 32 bytes are the one-time key (RFC 8439 §2.6).
fn poly_keys_batch(cipher: &ChaCha20, nonces: &[Nonce]) -> Vec<[u8; 32]> {
    let counters = [0u32; MAX_LANES];
    let mut lanes = [[0u32; 3]; MAX_LANES];
    let mut stream = [0u8; MAX_LANES * BLOCK_LEN];
    let mut otks = Vec::with_capacity(nonces.len());
    for group in nonces.chunks(MAX_LANES) {
        for (lane, nonce) in lanes.iter_mut().zip(group.iter()) {
            for (w, word) in lane.iter_mut().enumerate() {
                *word = u32::from_le_bytes(nonce.0[4 * w..4 * w + 4].try_into().unwrap());
            }
        }
        let n = group.len();
        crate::simd::keystream_blocks(
            cipher.key_words(),
            &counters[..n],
            &lanes[..n],
            &mut stream[..n * BLOCK_LEN],
        );
        for lane in 0..n {
            otks.push(stream[lane * BLOCK_LEN..lane * BLOCK_LEN + 32].try_into().unwrap());
        }
    }
    otks
}

/// Parses a nonce into the three little-endian state words ChaCha20 uses.
fn nonce_words(nonce: &Nonce) -> [u32; 3] {
    core::array::from_fn(|w| u32::from_le_bytes(nonce.0[4 * w..4 * w + 4].try_into().unwrap()))
}

fn compute_tag(otk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(otk);
    mac.update(aad);
    let aad_pad = (16 - aad.len() % 16) % 16;
    mac.update(&[0u8; 16][..aad_pad]);
    mac.update(ciphertext);
    let ct_pad = (16 - ciphertext.len() % 16) % 16;
    mac.update(&[0u8; 16][..ct_pad]);
    let mut lens = [0u8; 16];
    lens[..8].copy_from_slice(&(aad.len() as u64).to_le_bytes());
    lens[8..].copy_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    mac.update(&lens);
    mac.finish()
}

/// Encrypts `plaintext` in place and returns the authentication tag.
pub fn seal(key: &AeadKey, nonce: &Nonce, aad: &[u8], plaintext: &mut [u8]) -> [u8; TAG_LEN] {
    let otk = poly_key(key, nonce);
    let cipher = ChaCha20::new(&key.0, &nonce.0);
    cipher.apply_keystream_multi(1, plaintext);
    compute_tag(&otk, aad, plaintext)
}

/// Seals a batch of blocks in place, writing one tag per block into
/// `tags`. Equivalent to calling [`seal`] once per block — identical
/// ciphertext and tags — but the ChaCha20 key schedule is parsed once,
/// one-time keys are derived in multi-lane SIMD sweeps, and each payload
/// is streamed through the multi-block keystream path.
///
/// All four slices must have equal length; blocks may have differing
/// sizes (the sealed-storage layer always passes equal-sized runs).
pub fn seal_batch(
    key: &AeadKey,
    nonces: &[Nonce],
    aads: &[&[u8]],
    blocks: &mut [&mut [u8]],
    tags: &mut [[u8; TAG_LEN]],
) {
    let count = nonces.len();
    assert!(
        aads.len() == count && blocks.len() == count && tags.len() == count,
        "seal_batch slice lengths must match"
    );
    if count == 0 {
        return;
    }
    let schedule = ChaCha20::new(&key.0, &nonces[0].0);
    let otks = poly_keys_batch(&schedule, nonces);
    for i in 0..count {
        let cipher = ChaCha20::from_words(*schedule.key_words(), nonce_words(&nonces[i]));
        cipher.apply_keystream_multi(1, blocks[i]);
        tags[i] = compute_tag(&otks[i], aads[i], blocks[i]);
    }
}

/// Verifies and decrypts a batch of blocks in place.
///
/// Every tag is checked **before** any block is decrypted; on failure the
/// whole batch is left ciphertext and the error carries the index of the
/// first failing block (exact tamper attribution, no bisection needed —
/// each block keeps its own tag). Equivalent to per-block [`open`] calls
/// byte for byte.
pub fn open_batch(
    key: &AeadKey,
    nonces: &[Nonce],
    aads: &[&[u8]],
    blocks: &mut [&mut [u8]],
    tags: &[[u8; TAG_LEN]],
) -> Result<(), BatchAeadError> {
    let count = nonces.len();
    assert!(
        aads.len() == count && blocks.len() == count && tags.len() == count,
        "open_batch slice lengths must match"
    );
    if count == 0 {
        return Ok(());
    }
    let schedule = ChaCha20::new(&key.0, &nonces[0].0);
    let otks = poly_keys_batch(&schedule, nonces);
    for i in 0..count {
        let expected = compute_tag(&otks[i], aads[i], blocks[i]);
        if !tags_equal(&expected, &tags[i]) {
            return Err(BatchAeadError { index: i });
        }
    }
    for i in 0..count {
        let cipher = ChaCha20::from_words(*schedule.key_words(), nonce_words(&nonces[i]));
        cipher.apply_keystream_multi(1, blocks[i]);
    }
    Ok(())
}

/// Verifies the tag and decrypts `ciphertext` in place.
///
/// On failure the buffer is left in its (still encrypted) input state and
/// `Err(AeadError)` is returned.
pub fn open(
    key: &AeadKey,
    nonce: &Nonce,
    aad: &[u8],
    ciphertext: &mut [u8],
    tag: &[u8; TAG_LEN],
) -> Result<(), AeadError> {
    let otk = poly_key(key, nonce);
    let expected = compute_tag(&otk, aad, ciphertext);
    if !tags_equal(&expected, tag) {
        return Err(AeadError);
    }
    let cipher = ChaCha20::new(&key.0, &nonce.0);
    cipher.apply_keystream_multi(1, ciphertext);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.8.2 AEAD test vector (tag check).
    #[test]
    fn rfc8439_aead_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        let nonce = Nonce([0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47]);
        let aad: [u8; 12] =
            [0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7];
        let mut plaintext = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let tag = seal(&AeadKey(key), &nonce, &aad, &mut plaintext);
        let expected_tag: [u8; 16] = [
            0x1a, 0xe1, 0x0b, 0x59, 0x4f, 0x09, 0xe2, 0x6a, 0x7e, 0x90, 0x2e, 0xcb, 0xd0, 0x60,
            0x06, 0x91,
        ];
        assert_eq!(tag, expected_tag);
        // First ciphertext bytes from the RFC.
        assert_eq!(
            &plaintext[..16],
            &[
                0xd3, 0x1a, 0x8d, 0x34, 0x64, 0x8e, 0x60, 0xdb, 0x7b, 0x86, 0xaf, 0xbc, 0x53, 0xef,
                0x7e, 0xc2
            ]
        );
    }

    #[test]
    fn roundtrip() {
        let key = AeadKey([5u8; 32]);
        let nonce = Nonce::from_parts(1, 99);
        let aad = b"table:0,block:7,rev:3";
        let mut data = b"the quick brown fox".to_vec();
        let tag = seal(&key, &nonce, aad, &mut data);
        open(&key, &nonce, aad, &mut data, &tag).unwrap();
        assert_eq!(&data, b"the quick brown fox");
    }

    #[test]
    fn tamper_ciphertext_detected() {
        let key = AeadKey([5u8; 32]);
        let nonce = Nonce::from_parts(0, 0);
        let mut data = vec![1u8; 64];
        let tag = seal(&key, &nonce, b"", &mut data);
        data[10] ^= 1;
        assert_eq!(open(&key, &nonce, b"", &mut data, &tag), Err(AeadError));
    }

    #[test]
    fn tamper_aad_detected() {
        let key = AeadKey([5u8; 32]);
        let nonce = Nonce::from_parts(0, 0);
        let mut data = vec![1u8; 64];
        let tag = seal(&key, &nonce, b"rev:1", &mut data);
        assert_eq!(open(&key, &nonce, b"rev:2", &mut data, &tag), Err(AeadError));
    }

    #[test]
    fn wrong_key_detected() {
        let nonce = Nonce::from_parts(0, 0);
        let mut data = vec![9u8; 32];
        let tag = seal(&AeadKey([1u8; 32]), &nonce, b"", &mut data);
        assert_eq!(open(&AeadKey([2u8; 32]), &nonce, b"", &mut data, &tag), Err(AeadError));
    }

    #[test]
    fn wrong_nonce_detected() {
        let key = AeadKey([1u8; 32]);
        let mut data = vec![9u8; 32];
        let tag = seal(&key, &Nonce::from_parts(0, 1), b"", &mut data);
        assert_eq!(open(&key, &Nonce::from_parts(0, 2), b"", &mut data, &tag), Err(AeadError));
    }

    #[test]
    fn nonce_from_parts_is_injective_on_counter() {
        assert_ne!(Nonce::from_parts(3, 1), Nonce::from_parts(3, 2));
        assert_ne!(Nonce::from_parts(3, 1), Nonce::from_parts(4, 1));
    }

    #[test]
    fn batch_matches_per_block_seal_and_open() {
        let key = AeadKey([0x33u8; 32]);
        for count in [0usize, 1, 2, 5, 9] {
            let nonces: Vec<Nonce> = (0..count).map(|i| Nonce::from_parts(7, i as u64)).collect();
            let aad_bufs: Vec<Vec<u8>> = (0..count).map(|i| vec![i as u8; i % 5]).collect();
            let aads: Vec<&[u8]> = aad_bufs.iter().map(|a| a.as_slice()).collect();
            let mut serial: Vec<Vec<u8>> =
                (0..count).map(|i| vec![(i * 3) as u8; 100 + i]).collect();
            let mut batch = serial.clone();

            let serial_tags: Vec<[u8; TAG_LEN]> =
                (0..count).map(|i| seal(&key, &nonces[i], aads[i], &mut serial[i])).collect();
            let mut batch_tags = vec![[0u8; TAG_LEN]; count];
            {
                let mut views: Vec<&mut [u8]> =
                    batch.iter_mut().map(|b| b.as_mut_slice()).collect();
                seal_batch(&key, &nonces, &aads, &mut views, &mut batch_tags);
            }
            assert_eq!(serial, batch, "{count} blocks: ciphertext");
            assert_eq!(serial_tags, batch_tags, "{count} blocks: tags");

            let mut views: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            open_batch(&key, &nonces, &aads, &mut views, &batch_tags).unwrap();
            for (i, plain) in batch.iter().enumerate() {
                assert_eq!(plain, &vec![(i * 3) as u8; 100 + i]);
            }
        }
    }

    #[test]
    fn batch_open_reports_first_failing_index_and_decrypts_nothing() {
        let key = AeadKey([0x44u8; 32]);
        let count = 6usize;
        let nonces: Vec<Nonce> = (0..count).map(|i| Nonce::from_parts(1, i as u64)).collect();
        let aads: Vec<&[u8]> = vec![b"aad"; count];
        let mut blocks: Vec<Vec<u8>> = (0..count).map(|i| vec![i as u8; 64]).collect();
        let mut tags = vec![[0u8; TAG_LEN]; count];
        {
            let mut views: Vec<&mut [u8]> = blocks.iter_mut().map(|b| b.as_mut_slice()).collect();
            seal_batch(&key, &nonces, &aads, &mut views, &mut tags);
        }
        let sealed = blocks.clone();
        blocks[3][10] ^= 1;
        blocks[5][0] ^= 1;
        let mut views: Vec<&mut [u8]> = blocks.iter_mut().map(|b| b.as_mut_slice()).collect();
        let err = open_batch(&key, &nonces, &aads, &mut views, &tags).unwrap_err();
        assert_eq!(err.index, 3, "first failing block wins");
        // Nothing was decrypted: untampered blocks are still ciphertext.
        assert_eq!(blocks[0], sealed[0]);
        assert_eq!(blocks[4], sealed[4]);
    }

    #[test]
    fn aead_key_zeroize_clears_bytes() {
        let mut key = AeadKey([0xAB; 32]);
        key.zeroize();
        assert_eq!(key.0, [0u8; 32]);
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let key = AeadKey([8u8; 32]);
        let nonce = Nonce::from_parts(0, 7);
        let mut data = Vec::new();
        let tag = seal(&key, &nonce, b"aad", &mut data);
        open(&key, &nonce, b"aad", &mut data, &tag).unwrap();
    }
}
