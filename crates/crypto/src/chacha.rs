//! ChaCha20 stream cipher (RFC 8439).
//!
//! The cipher state is sixteen 32-bit words: four constants, eight key
//! words, a 32-bit block counter, and a 96-bit nonce. Each 64-byte keystream
//! block is produced by 20 rounds (10 "double rounds") of quarter-round
//! mixing followed by a feed-forward addition of the initial state.
//!
//! [`ChaCha20::block`] / [`ChaCha20::apply_keystream`] are the portable
//! scalar reference. [`ChaCha20::blocks4`] and
//! [`ChaCha20::apply_keystream_multi`] produce the same bytes but run
//! several blocks per round pass through the runtime-dispatched SIMD
//! kernels in [`crate::simd`] when the CPU has them.

use crate::simd;

/// Byte length of one keystream block.
pub const BLOCK_LEN: usize = 64;

/// Largest number of keystream lanes generated per dispatch (the AVX2
/// kernel width).
pub(crate) const MAX_LANES: usize = 8;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha20 cipher instance bound to a key and nonce.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

/// Scalar ChaCha20 block function over raw state words. This is the
/// reference core: the SIMD kernels must match it byte for byte, and it
/// serves as their fallback for tail lanes and non-x86_64 targets.
pub(crate) fn scalar_block(
    key: &[u32; 8],
    counter: u32,
    nonce: &[u32; 3],
    out: &mut [u8; BLOCK_LEN],
) {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter;
    state[13..16].copy_from_slice(nonce);
    let initial = state;

    for _ in 0..10 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
}

/// XORs `src` into `dst` in `u64`-wide strides (plus a byte tail).
pub(crate) fn xor_bytes(dst: &mut [u8], src: &[u8]) {
    debug_assert!(src.len() >= dst.len());
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let v = u64::from_ne_bytes(dc[..8].try_into().unwrap())
            ^ u64::from_ne_bytes(sc[..8].try_into().unwrap());
        dc.copy_from_slice(&v.to_ne_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher from a 256-bit key and a 96-bit nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, w) in k.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
        }
        let mut n = [0u32; 3];
        for (i, w) in n.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
        }
        Self { key: k, nonce: n }
    }

    /// Creates a cipher directly from parsed key/nonce words (used by the
    /// batch AEAD path, which parses each once per batch).
    pub(crate) fn from_words(key: [u32; 8], nonce: [u32; 3]) -> Self {
        Self { key, nonce }
    }

    /// The cipher's key words (for batch key-schedule reuse).
    pub(crate) fn key_words(&self) -> &[u32; 8] {
        &self.key
    }

    /// Produces the 64-byte keystream block for the given counter value.
    pub fn block(&self, counter: u32, out: &mut [u8; BLOCK_LEN]) {
        scalar_block(&self.key, counter, &self.nonce, out);
    }

    /// Produces four consecutive keystream blocks (counters `counter`,
    /// `counter+1`, ..., wrapping) in one pass — a single round pass over
    /// four lanes on SSE2/AVX2 hardware, scalar otherwise. Byte-identical
    /// to four [`Self::block`] calls.
    pub fn blocks4(&self, counter: u32, out: &mut [u8; 4 * BLOCK_LEN]) {
        let counters: [u32; 4] = core::array::from_fn(|i| counter.wrapping_add(i as u32));
        let nonces = [self.nonce; 4];
        simd::keystream_blocks(&self.key, &counters, &nonces, out);
    }

    /// XORs the keystream (starting at block `counter`) into `data` in place.
    ///
    /// Encryption and decryption are the same operation. This is the
    /// portable scalar reference path; [`Self::apply_keystream_multi`]
    /// produces identical bytes via the SIMD kernels.
    pub fn apply_keystream(&self, counter: u32, data: &mut [u8]) {
        let mut block = [0u8; BLOCK_LEN];
        let mut ctr = counter;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            self.block(ctr, &mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }

    /// XORs the keystream into `data` in place, generating up to
    /// `MAX_LANES` (8) blocks per round pass through the active SIMD
    /// backend. Byte-identical to [`Self::apply_keystream`] for every
    /// length and starting counter (including counter wraparound).
    pub fn apply_keystream_multi(&self, counter: u32, data: &mut [u8]) {
        let mut ks = [0u8; MAX_LANES * BLOCK_LEN];
        let mut counters = [0u32; MAX_LANES];
        let nonces = [self.nonce; MAX_LANES];
        let mut ctr = counter;
        let mut at = 0usize;
        while at < data.len() {
            let remaining = data.len() - at;
            let lanes = remaining.div_ceil(BLOCK_LEN).min(MAX_LANES);
            for (i, c) in counters[..lanes].iter_mut().enumerate() {
                *c = ctr.wrapping_add(i as u32);
            }
            simd::keystream_blocks(
                &self.key,
                &counters[..lanes],
                &nonces[..lanes],
                &mut ks[..lanes * BLOCK_LEN],
            );
            let take = remaining.min(lanes * BLOCK_LEN);
            xor_bytes(&mut data[at..at + take], &ks[..take]);
            at += take;
            ctr = ctr.wrapping_add(lanes as u32);
        }
    }
}

impl Drop for ChaCha20 {
    /// Best-effort zeroization of the key schedule; the `black_box`
    /// barrier keeps the dead stores from being optimized away.
    fn drop(&mut self) {
        self.key = [0; 8];
        self.nonce = [0; 3];
        core::hint::black_box(&self.key);
        core::hint::black_box(&self.nonce);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.1.1 quarter-round test vector.
    #[test]
    fn quarter_round_vector() {
        let mut st = [0u32; 16];
        st[0] = 0x1111_1111;
        st[1] = 0x0102_0304;
        st[2] = 0x9b8d_6f43;
        st[3] = 0x0123_4567;
        quarter_round(&mut st, 0, 1, 2, 3);
        assert_eq!(st[0], 0xea2a_92f4);
        assert_eq!(st[1], 0xcb1c_f8ce);
        assert_eq!(st[2], 0x4581_472e);
        assert_eq!(st[3], 0x5881_c4bb);
    }

    /// RFC 8439 §2.3.2 block-function test vector.
    #[test]
    fn block_function_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00];
        let cipher = ChaCha20::new(&key, &nonce);
        let mut out = [0u8; BLOCK_LEN];
        cipher.block(1, &mut out);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn keystream_roundtrip() {
        let key = [0x42u8; 32];
        let nonce = [7u8; 12];
        let cipher = ChaCha20::new(&key, &nonce);
        let mut data = (0u8..=200).collect::<Vec<u8>>();
        let original = data.clone();
        cipher.apply_keystream(1, &mut data);
        assert_ne!(data, original);
        cipher.apply_keystream(1, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_counters_give_different_streams() {
        let cipher = ChaCha20::new(&[1u8; 32], &[2u8; 12]);
        let mut a = [0u8; BLOCK_LEN];
        let mut b = [0u8; BLOCK_LEN];
        cipher.block(0, &mut a);
        cipher.block(1, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let a_cipher = ChaCha20::new(&[1u8; 32], &[0u8; 12]);
        let b_cipher = ChaCha20::new(&[1u8; 32], &[1u8; 12]);
        let mut a = [0u8; BLOCK_LEN];
        let mut b = [0u8; BLOCK_LEN];
        a_cipher.block(0, &mut a);
        b_cipher.block(0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn blocks4_matches_four_scalar_blocks() {
        let cipher = ChaCha20::new(&[0xA5u8; 32], &[0x5Au8; 12]);
        for start in [0u32, 1, 1000, u32::MAX - 1] {
            let mut quad = [0u8; 4 * BLOCK_LEN];
            cipher.blocks4(start, &mut quad);
            for i in 0..4 {
                let mut one = [0u8; BLOCK_LEN];
                cipher.block(start.wrapping_add(i as u32), &mut one);
                assert_eq!(&quad[i * BLOCK_LEN..(i + 1) * BLOCK_LEN], &one, "lane {i} @ {start}");
            }
        }
    }

    #[test]
    fn multi_keystream_matches_scalar_keystream() {
        let cipher = ChaCha20::new(&[0x17u8; 32], &[0xEEu8; 12]);
        for len in [0usize, 1, 63, 64, 65, 255, 256, 257, 511, 512, 513, 1024, 1025] {
            for start in [0u32, 1, u32::MAX - 3] {
                let mut scalar: Vec<u8> = (0..len).map(|i| i as u8).collect();
                let mut multi = scalar.clone();
                cipher.apply_keystream(start, &mut scalar);
                cipher.apply_keystream_multi(start, &mut multi);
                assert_eq!(scalar, multi, "len {len} start {start}");
            }
        }
    }

    #[test]
    fn partial_block_matches_prefix_of_full_block() {
        let cipher = ChaCha20::new(&[9u8; 32], &[3u8; 12]);
        let mut long = vec![0u8; 100];
        let mut short = vec![0u8; 10];
        cipher.apply_keystream(5, &mut long);
        cipher.apply_keystream(5, &mut short);
        assert_eq!(&long[..10], &short[..]);
    }
}
