//! ChaCha20 stream cipher (RFC 8439).
//!
//! The cipher state is sixteen 32-bit words: four constants, eight key
//! words, a 32-bit block counter, and a 96-bit nonce. Each 64-byte keystream
//! block is produced by 20 rounds (10 "double rounds") of quarter-round
//! mixing followed by a feed-forward addition of the initial state.

/// Byte length of one keystream block.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha20 cipher instance bound to a key and nonce.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher from a 256-bit key and a 96-bit nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, w) in k.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
        }
        let mut n = [0u32; 3];
        for (i, w) in n.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
        }
        Self { key: k, nonce: n }
    }

    /// Produces the 64-byte keystream block for the given counter value.
    pub fn block(&self, counter: u32, out: &mut [u8; BLOCK_LEN]) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);
        let initial = state;

        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
    }

    /// XORs the keystream (starting at block `counter`) into `data` in place.
    ///
    /// Encryption and decryption are the same operation.
    pub fn apply_keystream(&self, counter: u32, data: &mut [u8]) {
        let mut block = [0u8; BLOCK_LEN];
        let mut ctr = counter;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            self.block(ctr, &mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.1.1 quarter-round test vector.
    #[test]
    fn quarter_round_vector() {
        let mut st = [0u32; 16];
        st[0] = 0x1111_1111;
        st[1] = 0x0102_0304;
        st[2] = 0x9b8d_6f43;
        st[3] = 0x0123_4567;
        quarter_round(&mut st, 0, 1, 2, 3);
        assert_eq!(st[0], 0xea2a_92f4);
        assert_eq!(st[1], 0xcb1c_f8ce);
        assert_eq!(st[2], 0x4581_472e);
        assert_eq!(st[3], 0x5881_c4bb);
    }

    /// RFC 8439 §2.3.2 block-function test vector.
    #[test]
    fn block_function_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00];
        let cipher = ChaCha20::new(&key, &nonce);
        let mut out = [0u8; BLOCK_LEN];
        cipher.block(1, &mut out);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn keystream_roundtrip() {
        let key = [0x42u8; 32];
        let nonce = [7u8; 12];
        let cipher = ChaCha20::new(&key, &nonce);
        let mut data = (0u8..=200).collect::<Vec<u8>>();
        let original = data.clone();
        cipher.apply_keystream(1, &mut data);
        assert_ne!(data, original);
        cipher.apply_keystream(1, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_counters_give_different_streams() {
        let cipher = ChaCha20::new(&[1u8; 32], &[2u8; 12]);
        let mut a = [0u8; BLOCK_LEN];
        let mut b = [0u8; BLOCK_LEN];
        cipher.block(0, &mut a);
        cipher.block(1, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let a_cipher = ChaCha20::new(&[1u8; 32], &[0u8; 12]);
        let b_cipher = ChaCha20::new(&[1u8; 32], &[1u8; 12]);
        let mut a = [0u8; BLOCK_LEN];
        let mut b = [0u8; BLOCK_LEN];
        a_cipher.block(0, &mut a);
        b_cipher.block(0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn partial_block_matches_prefix_of_full_block() {
        let cipher = ChaCha20::new(&[9u8; 32], &[3u8; 12]);
        let mut long = vec![0u8; 100];
        let mut short = vec![0u8; 10];
        cipher.apply_keystream(5, &mut long);
        cipher.apply_keystream(5, &mut short);
        assert_eq!(&long[..10], &short[..]);
    }
}
