//! HMAC-SHA-256 (RFC 2104 / RFC 4231), used for key derivation.

use crate::sha256::{sha256, Sha256};

/// Computes `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finish();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_tc1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&mac), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    /// RFC 4231 test case 2.
    #[test]
    fn rfc4231_tc2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&mac), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    /// RFC 4231 test case 3: 0xaa * 20 key, 0xdd * 50 data.
    #[test]
    fn rfc4231_tc3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(hex(&mac), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn long_key_is_hashed() {
        let key = [0xaau8; 131];
        // Keys longer than the block size must be pre-hashed; verify this
        // differs from using the raw truncation.
        let mac_long = hmac_sha256(&key, b"msg");
        let mac_trunc = hmac_sha256(&key[..64], b"msg");
        assert_ne!(mac_long, mac_trunc);
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
