//! From-scratch cryptographic primitives for ObliDB.
//!
//! The paper's implementation uses the Intel SGX SDK for encryption, MACs,
//! and hashing. This offline reproduction provides the same capabilities:
//!
//! * [`chacha::ChaCha20`] — the RFC 8439 stream cipher.
//! * [`poly1305::Poly1305`] — the RFC 8439 one-time authenticator.
//! * [`aead`] — ChaCha20-Poly1305 authenticated encryption with associated
//!   data, used to seal every block that leaves the enclave.
//! * [`mod@sha256`] / [`hmac`] — hashing and keyed MACs for key derivation.
//! * [`siphash`] — SipHash-2-4, the keyed PRF used by the oblivious Hash
//!   SELECT operator's double hashing (paper §4.1) and by grouped
//!   aggregation bucketing.
//! * [`simd`] — runtime-dispatched SSE2/AVX2 multi-block ChaCha20 kernels
//!   (scalar fallback everywhere else), feeding [`chacha::ChaCha20::blocks4`],
//!   [`chacha::ChaCha20::apply_keystream_multi`], and the fused
//!   [`aead::seal_batch`] / [`aead::open_batch`] pipeline.
//!
//! All primitives are validated against published test vectors in the unit
//! tests and by property-based round-trip/tamper tests; every SIMD path is
//! property-tested byte-identical to the scalar reference.

// `unsafe` is denied crate-wide; the only exemption is the `simd` module,
// whose `core::arch` intrinsic calls are feature-gated and checked at
// runtime.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha;
pub mod hmac;
pub mod poly1305;
pub mod sha256;
#[allow(unsafe_code)]
pub mod simd;
pub mod siphash;

pub use aead::{
    open, open_batch, seal, seal_batch, AeadError, AeadKey, BatchAeadError, Nonce, TAG_LEN,
};
pub use hmac::hmac_sha256;
pub use sha256::sha256;
pub use siphash::SipHash24;

/// Derives a subkey from a master key and a domain-separation label.
///
/// ObliDB derives one key per table region from the enclave master key so a
/// sealed block from one table can never authenticate in another.
pub fn derive_key(master: &[u8; 32], label: &[u8]) -> [u8; 32] {
    hmac_sha256(master, label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_keys_differ_by_label() {
        let master = [7u8; 32];
        let a = derive_key(&master, b"table:0");
        let b = derive_key(&master, b"table:1");
        assert_ne!(a, b);
    }

    #[test]
    fn derived_keys_differ_by_master() {
        let a = derive_key(&[1u8; 32], b"x");
        let b = derive_key(&[2u8; 32], b"x");
        assert_ne!(a, b);
    }

    #[test]
    fn derivation_is_deterministic() {
        let master = [9u8; 32];
        assert_eq!(derive_key(&master, b"t"), derive_key(&master, b"t"));
    }
}
