//! Poly1305 one-time authenticator (RFC 8439).
//!
//! This is a 32-bit limb implementation in the style of poly1305-donna-32:
//! the accumulator and clamped `r` are held in five 26-bit limbs and
//! multiplication/reduction is performed modulo 2^130 - 5 with 64-bit
//! intermediates.
//!
//! The bulk path ([`Poly1305::update_blocks`]) folds two message blocks
//! per step in Horner form — `h ← (h + m0)·r² + m1·r` — so one carry
//! chain covers 32 message bytes instead of 16. The final tag is
//! bit-identical to the per-block path because [`Poly1305::finish`]
//! performs the canonical reduction either way.

/// Byte length of a Poly1305 tag.
pub const TAG_LEN: usize = 16;

/// Multiplies two partially-reduced limb vectors modulo 2^130 - 5,
/// returning limbs carried back below ~2^26. Inputs may be up to a few
/// bits above 26 per limb; all intermediates fit in `u64`.
fn mul_limbs(a: &[u32; 5], b: &[u32; 5]) -> [u32; 5] {
    let a0 = a[0] as u64;
    let a1 = a[1] as u64;
    let a2 = a[2] as u64;
    let a3 = a[3] as u64;
    let a4 = a[4] as u64;
    let b0 = b[0] as u64;
    let b1 = b[1] as u64;
    let b2 = b[2] as u64;
    let b3 = b[3] as u64;
    let b4 = b[4] as u64;
    let s1 = b1 * 5;
    let s2 = b2 * 5;
    let s3 = b3 * 5;
    let s4 = b4 * 5;

    let d0 = a0 * b0 + a1 * s4 + a2 * s3 + a3 * s2 + a4 * s1;
    let d1 = a0 * b1 + a1 * b0 + a2 * s4 + a3 * s3 + a4 * s2;
    let d2 = a0 * b2 + a1 * b1 + a2 * b0 + a3 * s4 + a4 * s3;
    let d3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + a4 * s4;
    let d4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;
    carry_reduce(d0, d1, d2, d3, d4)
}

/// Partial carry propagation shared by every multiply path: brings the
/// five 64-bit accumulators back to limbs below ~2^26 (the top limb may
/// exceed it by a few bits, which the next multiply absorbs).
#[inline(always)]
fn carry_reduce(mut d0: u64, mut d1: u64, mut d2: u64, mut d3: u64, mut d4: u64) -> [u32; 5] {
    let mut c;
    c = d0 >> 26;
    let h0 = (d0 & 0x03ff_ffff) as u32;
    d1 += c;
    c = d1 >> 26;
    let h1 = (d1 & 0x03ff_ffff) as u32;
    d2 += c;
    c = d2 >> 26;
    let h2 = (d2 & 0x03ff_ffff) as u32;
    d3 += c;
    c = d3 >> 26;
    let h3 = (d3 & 0x03ff_ffff) as u32;
    d4 += c;
    c = d4 >> 26;
    let h4 = (d4 & 0x03ff_ffff) as u32;
    d0 = (h0 as u64) + c * 5;
    c = d0 >> 26;
    let h0 = (d0 & 0x03ff_ffff) as u32;
    let h1 = h1 + c as u32;
    [h0, h1, h2, h3, h4]
}

/// Splits a 16-byte block into five 26-bit limbs, OR-ing `hibit`
/// (the 2^128 marker for full blocks) into the top limb.
#[inline(always)]
fn block_limbs(block: &[u8], hibit: u32) -> [u32; 5] {
    let t0 = u32::from_le_bytes(block[0..4].try_into().unwrap());
    let t1 = u32::from_le_bytes(block[4..8].try_into().unwrap());
    let t2 = u32::from_le_bytes(block[8..12].try_into().unwrap());
    let t3 = u32::from_le_bytes(block[12..16].try_into().unwrap());
    [
        t0 & 0x03ff_ffff,
        ((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff,
        ((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff,
        ((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff,
        (t3 >> 8) | hibit,
    ]
}

/// Incremental Poly1305 state.
pub struct Poly1305 {
    r: [u32; 5],
    /// r² mod 2^130-5, precomputed for the two-blocks-per-step path.
    rr: [u32; 5],
    h: [u32; 5],
    pad: [u32; 4],
    leftover: usize,
    buffer: [u8; 16],
}

impl Poly1305 {
    /// Initializes the authenticator with a 32-byte one-time key `(r, s)`.
    pub fn new(key: &[u8; 32]) -> Self {
        let t0 = u32::from_le_bytes(key[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(key[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(key[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(key[12..16].try_into().unwrap());

        // Clamp r per the spec and split into 26-bit limbs.
        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff,
            (t3 >> 8) & 0x000f_ffff,
        ];
        let rr = mul_limbs(&r, &r);

        let pad = [
            u32::from_le_bytes(key[16..20].try_into().unwrap()),
            u32::from_le_bytes(key[20..24].try_into().unwrap()),
            u32::from_le_bytes(key[24..28].try_into().unwrap()),
            u32::from_le_bytes(key[28..32].try_into().unwrap()),
        ];

        Self { r, rr, h: [0; 5], pad, leftover: 0, buffer: [0; 16] }
    }

    fn process_block(&mut self, block: &[u8; 16], hibit: u32) {
        // h = (h + m) * r  (mod 2^130 - 5)
        let m = block_limbs(block, hibit);
        let t = [
            self.h[0] + m[0],
            self.h[1] + m[1],
            self.h[2] + m[2],
            self.h[3] + m[3],
            self.h[4] + m[4],
        ];
        self.h = mul_limbs(&t, &self.r);
    }

    /// Folds two full message blocks at once: `h = (h + m0)·r² + m1·r`.
    ///
    /// One carry chain per 32 message bytes instead of one per 16. The
    /// accumulated value is mathematically identical to two
    /// `process_block` calls, so `finish` yields the same tag.
    #[inline(always)]
    fn process_pair(&mut self, pair: &[u8]) {
        let m0 = block_limbs(&pair[..16], 1 << 24);
        let m1 = block_limbs(&pair[16..32], 1 << 24);
        let t0 = (self.h[0] + m0[0]) as u64;
        let t1 = (self.h[1] + m0[1]) as u64;
        let t2 = (self.h[2] + m0[2]) as u64;
        let t3 = (self.h[3] + m0[3]) as u64;
        let t4 = (self.h[4] + m0[4]) as u64;
        let u0 = m1[0] as u64;
        let u1 = m1[1] as u64;
        let u2 = m1[2] as u64;
        let u3 = m1[3] as u64;
        let u4 = m1[4] as u64;

        let q0 = self.rr[0] as u64;
        let q1 = self.rr[1] as u64;
        let q2 = self.rr[2] as u64;
        let q3 = self.rr[3] as u64;
        let q4 = self.rr[4] as u64;
        let qs1 = q1 * 5;
        let qs2 = q2 * 5;
        let qs3 = q3 * 5;
        let qs4 = q4 * 5;
        let r0 = self.r[0] as u64;
        let r1 = self.r[1] as u64;
        let r2 = self.r[2] as u64;
        let r3 = self.r[3] as u64;
        let r4 = self.r[4] as u64;
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;

        // (h + m0)·r² + m1·r, fused into one set of accumulators. Worst
        // case per accumulator is ~2^59.6 — comfortably inside u64.
        let d0 = t0 * q0
            + t1 * qs4
            + t2 * qs3
            + t3 * qs2
            + t4 * qs1
            + u0 * r0
            + u1 * s4
            + u2 * s3
            + u3 * s2
            + u4 * s1;
        let d1 = t0 * q1
            + t1 * q0
            + t2 * qs4
            + t3 * qs3
            + t4 * qs2
            + u0 * r1
            + u1 * r0
            + u2 * s4
            + u3 * s3
            + u4 * s2;
        let d2 = t0 * q2
            + t1 * q1
            + t2 * q0
            + t3 * qs4
            + t4 * qs3
            + u0 * r2
            + u1 * r1
            + u2 * r0
            + u3 * s4
            + u4 * s3;
        let d3 = t0 * q3
            + t1 * q2
            + t2 * q1
            + t3 * q0
            + t4 * qs4
            + u0 * r3
            + u1 * r2
            + u2 * r1
            + u3 * r0
            + u4 * s4;
        let d4 = t0 * q4
            + t1 * q3
            + t2 * q2
            + t3 * q1
            + t4 * q0
            + u0 * r4
            + u1 * r3
            + u2 * r2
            + u3 * r1
            + u4 * r0;
        self.h = carry_reduce(d0, d1, d2, d3, d4);
    }

    /// Absorbs whole 16-byte message blocks through the two-blocks-per-
    /// step Horner path. `blocks.len()` must be a multiple of 16; if a
    /// partial block is currently buffered this degrades to [`Self::update`]
    /// (the result is identical either way).
    pub fn update_blocks(&mut self, blocks: &[u8]) {
        assert_eq!(blocks.len() % 16, 0, "update_blocks requires whole 16-byte blocks");
        if self.leftover > 0 {
            self.update(blocks);
            return;
        }
        let mut pairs = blocks.chunks_exact(32);
        for pair in &mut pairs {
            self.process_pair(pair);
        }
        let rem = pairs.remainder();
        if !rem.is_empty() {
            self.process_block(rem.try_into().unwrap(), 1 << 24);
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.leftover > 0 {
            let want = (16 - self.leftover).min(data.len());
            self.buffer[self.leftover..self.leftover + want].copy_from_slice(&data[..want]);
            self.leftover += want;
            data = &data[want..];
            if self.leftover < 16 {
                return;
            }
            let block = self.buffer;
            self.process_block(&block, 1 << 24);
            self.leftover = 0;
        }
        let full = data.len() & !15;
        if full > 0 {
            let (blocks, rest) = data.split_at(full);
            self.update_blocks(blocks);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.leftover = data.len();
        }
    }

    /// Finishes and returns the 16-byte tag.
    pub fn finish(mut self) -> [u8; TAG_LEN] {
        if self.leftover > 0 {
            let mut block = [0u8; 16];
            block[..self.leftover].copy_from_slice(&self.buffer[..self.leftover]);
            block[self.leftover] = 1;
            self.process_block(&block, 0);
        }

        // Full carry propagation.
        let mut h0 = self.h[0];
        let mut h1 = self.h[1];
        let mut h2 = self.h[2];
        let mut h3 = self.h[3];
        let mut h4 = self.h[4];

        let mut c;
        c = h1 >> 26;
        h1 &= 0x03ff_ffff;
        h2 += c;
        c = h2 >> 26;
        h2 &= 0x03ff_ffff;
        h3 += c;
        c = h3 >> 26;
        h3 &= 0x03ff_ffff;
        h4 += c;
        c = h4 >> 26;
        h4 &= 0x03ff_ffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += c;

        // Compute h + -p to check whether h >= p.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= 0x03ff_ffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= 0x03ff_ffff;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= 0x03ff_ffff;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= 0x03ff_ffff;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        // Select h if h < p, else g.
        let mask = (g4 >> 31).wrapping_sub(1);
        g0 &= mask;
        g1 &= mask;
        g2 &= mask;
        g3 &= mask;
        let g4m = g4 & mask;
        let inv = !mask;
        h0 = (h0 & inv) | g0;
        h1 = (h1 & inv) | g1;
        h2 = (h2 & inv) | g2;
        h3 = (h3 & inv) | g3;
        h4 = (h4 & inv) | g4m;

        // Serialize to four 32-bit words.
        let w0 = h0 | (h1 << 26);
        let w1 = (h1 >> 6) | (h2 << 20);
        let w2 = (h2 >> 12) | (h3 << 14);
        let w3 = (h3 >> 18) | (h4 << 8);

        // Add s (the pad) with carry.
        let mut tag = [0u8; TAG_LEN];
        let mut f: u64;
        f = w0 as u64 + self.pad[0] as u64;
        tag[0..4].copy_from_slice(&(f as u32).to_le_bytes());
        f = w1 as u64 + self.pad[1] as u64 + (f >> 32);
        tag[4..8].copy_from_slice(&(f as u32).to_le_bytes());
        f = w2 as u64 + self.pad[2] as u64 + (f >> 32);
        tag[8..12].copy_from_slice(&(f as u32).to_le_bytes());
        f = w3 as u64 + self.pad[3] as u64 + (f >> 32);
        tag[12..16].copy_from_slice(&(f as u32).to_le_bytes());
        tag
    }

    /// One-shot tag computation.
    pub fn tag(key: &[u8; 32], data: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Self::new(key);
        p.update(data);
        p.finish()
    }
}

impl Drop for Poly1305 {
    /// Best-effort zeroization of the one-time key and accumulator; the
    /// `black_box` barrier keeps the dead stores from being optimized
    /// away.
    fn drop(&mut self) {
        self.r = [0; 5];
        self.rr = [0; 5];
        self.h = [0; 5];
        self.pad = [0; 4];
        self.buffer = [0; 16];
        core::hint::black_box(&self.r);
        core::hint::black_box(&self.rr);
        core::hint::black_box(&self.h);
        core::hint::black_box(&self.pad);
        core::hint::black_box(&self.buffer);
    }
}

/// Constant-time tag comparison.
pub fn tags_equal(a: &[u8; TAG_LEN], b: &[u8; TAG_LEN]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_vector() {
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let msg = b"Cryptographic Forum Research Group";
        let tag = Poly1305::tag(&key, msg);
        let expected: [u8; 16] = [
            0xa8, 0x06, 0x1d, 0xc1, 0x30, 0x51, 0x36, 0xc6, 0xc2, 0x2b, 0x8b, 0xaf, 0x0c, 0x01,
            0x27, 0xa9,
        ];
        assert_eq!(tag, expected);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [0x11u8; 32];
        let msg: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        let oneshot = Poly1305::tag(&key, &msg);
        for split in [0usize, 1, 15, 16, 17, 31, 500, 999, 1000] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finish(), oneshot, "split at {split}");
        }
    }

    /// The pairwise Horner path must produce the exact tag of the
    /// per-block path for every block count and phase.
    #[test]
    fn update_blocks_matches_per_block_reference() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 7 + 1) as u8);
        let msg: Vec<u8> = (0u8..=255).cycle().take(16 * 9).collect();
        for blocks in 0..=9usize {
            let len = blocks * 16;
            // Reference: strictly one block at a time.
            let mut reference = Poly1305::new(&key);
            for b in msg[..len].chunks_exact(16) {
                reference.update(&b[..8]);
                reference.update(&b[8..]);
            }
            let mut fast = Poly1305::new(&key);
            fast.update_blocks(&msg[..len]);
            assert_eq!(fast.finish(), reference.finish(), "{blocks} blocks");
        }
        // With a buffered partial block it degrades gracefully.
        let mut fast = Poly1305::new(&key);
        fast.update(&msg[..5]);
        fast.update_blocks(&msg[5..5 + 64]);
        let mut reference = Poly1305::new(&key);
        reference.update(&msg[..5 + 64]);
        assert_eq!(fast.finish(), reference.finish());
    }

    #[test]
    fn different_messages_different_tags() {
        let key = [3u8; 32];
        assert_ne!(Poly1305::tag(&key, b"hello"), Poly1305::tag(&key, b"hellp"));
    }

    #[test]
    fn tags_equal_is_exact() {
        let a = [1u8; 16];
        let mut b = a;
        assert!(tags_equal(&a, &b));
        b[15] ^= 0x80;
        assert!(!tags_equal(&a, &b));
    }

    #[test]
    fn empty_message_has_tag_s() {
        // With r = 0 the accumulator stays 0 and the tag is exactly s.
        let mut key = [0u8; 32];
        key[16..32].copy_from_slice(&[0xAB; 16]);
        let tag = Poly1305::tag(&key, b"anything");
        assert_eq!(tag, [0xAB; 16]);
    }
}
