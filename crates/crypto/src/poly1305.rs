//! Poly1305 one-time authenticator (RFC 8439).
//!
//! This is a 32-bit limb implementation in the style of poly1305-donna-32:
//! the accumulator and clamped `r` are held in five 26-bit limbs and
//! multiplication/reduction is performed modulo 2^130 - 5 with 64-bit
//! intermediates.

/// Byte length of a Poly1305 tag.
pub const TAG_LEN: usize = 16;

/// Incremental Poly1305 state.
pub struct Poly1305 {
    r: [u32; 5],
    h: [u32; 5],
    pad: [u32; 4],
    leftover: usize,
    buffer: [u8; 16],
}

impl Poly1305 {
    /// Initializes the authenticator with a 32-byte one-time key `(r, s)`.
    pub fn new(key: &[u8; 32]) -> Self {
        let t0 = u32::from_le_bytes(key[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(key[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(key[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(key[12..16].try_into().unwrap());

        // Clamp r per the spec and split into 26-bit limbs.
        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff,
            (t3 >> 8) & 0x000f_ffff,
        ];

        let pad = [
            u32::from_le_bytes(key[16..20].try_into().unwrap()),
            u32::from_le_bytes(key[20..24].try_into().unwrap()),
            u32::from_le_bytes(key[24..28].try_into().unwrap()),
            u32::from_le_bytes(key[28..32].try_into().unwrap()),
        ];

        Self { r, h: [0; 5], pad, leftover: 0, buffer: [0; 16] }
    }

    fn process_block(&mut self, block: &[u8; 16], hibit: u32) {
        let r0 = self.r[0] as u64;
        let r1 = self.r[1] as u64;
        let r2 = self.r[2] as u64;
        let r3 = self.r[3] as u64;
        let r4 = self.r[4] as u64;

        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;

        let t0 = u32::from_le_bytes(block[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(block[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(block[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(block[12..16].try_into().unwrap());

        // h += message block (with the 2^128 bit for full blocks)
        let h0 = (self.h[0] + (t0 & 0x03ff_ffff)) as u64;
        let h1 = (self.h[1] + (((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff)) as u64;
        let h2 = (self.h[2] + (((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff)) as u64;
        let h3 = (self.h[3] + (((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff)) as u64;
        let h4 = (self.h[4] + ((t3 >> 8) | hibit)) as u64;

        // h *= r (mod 2^130 - 5)
        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Partial carry propagation.
        let mut c;
        let mut d0 = d0;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;

        c = d0 >> 26;
        let h0 = (d0 & 0x03ff_ffff) as u32;
        d1 += c;
        c = d1 >> 26;
        let h1 = (d1 & 0x03ff_ffff) as u32;
        d2 += c;
        c = d2 >> 26;
        let h2 = (d2 & 0x03ff_ffff) as u32;
        d3 += c;
        c = d3 >> 26;
        let h3 = (d3 & 0x03ff_ffff) as u32;
        d4 += c;
        c = d4 >> 26;
        let h4 = (d4 & 0x03ff_ffff) as u32;
        d0 = (h0 as u64) + c * 5;
        c = d0 >> 26;
        let h0 = (d0 & 0x03ff_ffff) as u32;
        let h1 = h1 + c as u32;

        self.h = [h0, h1, h2, h3, h4];
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.leftover > 0 {
            let want = (16 - self.leftover).min(data.len());
            self.buffer[self.leftover..self.leftover + want].copy_from_slice(&data[..want]);
            self.leftover += want;
            data = &data[want..];
            if self.leftover < 16 {
                return;
            }
            let block = self.buffer;
            self.process_block(&block, 1 << 24);
            self.leftover = 0;
        }
        while data.len() >= 16 {
            let block: [u8; 16] = data[..16].try_into().unwrap();
            self.process_block(&block, 1 << 24);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.leftover = data.len();
        }
    }

    /// Finishes and returns the 16-byte tag.
    pub fn finish(mut self) -> [u8; TAG_LEN] {
        if self.leftover > 0 {
            let mut block = [0u8; 16];
            block[..self.leftover].copy_from_slice(&self.buffer[..self.leftover]);
            block[self.leftover] = 1;
            self.process_block(&block, 0);
        }

        // Full carry propagation.
        let mut h0 = self.h[0];
        let mut h1 = self.h[1];
        let mut h2 = self.h[2];
        let mut h3 = self.h[3];
        let mut h4 = self.h[4];

        let mut c;
        c = h1 >> 26;
        h1 &= 0x03ff_ffff;
        h2 += c;
        c = h2 >> 26;
        h2 &= 0x03ff_ffff;
        h3 += c;
        c = h3 >> 26;
        h3 &= 0x03ff_ffff;
        h4 += c;
        c = h4 >> 26;
        h4 &= 0x03ff_ffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += c;

        // Compute h + -p to check whether h >= p.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= 0x03ff_ffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= 0x03ff_ffff;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= 0x03ff_ffff;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= 0x03ff_ffff;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        // Select h if h < p, else g.
        let mask = (g4 >> 31).wrapping_sub(1);
        g0 &= mask;
        g1 &= mask;
        g2 &= mask;
        g3 &= mask;
        let g4m = g4 & mask;
        let inv = !mask;
        h0 = (h0 & inv) | g0;
        h1 = (h1 & inv) | g1;
        h2 = (h2 & inv) | g2;
        h3 = (h3 & inv) | g3;
        h4 = (h4 & inv) | g4m;

        // Serialize to four 32-bit words.
        let w0 = h0 | (h1 << 26);
        let w1 = (h1 >> 6) | (h2 << 20);
        let w2 = (h2 >> 12) | (h3 << 14);
        let w3 = (h3 >> 18) | (h4 << 8);

        // Add s (the pad) with carry.
        let mut tag = [0u8; TAG_LEN];
        let mut f: u64;
        f = w0 as u64 + self.pad[0] as u64;
        tag[0..4].copy_from_slice(&(f as u32).to_le_bytes());
        f = w1 as u64 + self.pad[1] as u64 + (f >> 32);
        tag[4..8].copy_from_slice(&(f as u32).to_le_bytes());
        f = w2 as u64 + self.pad[2] as u64 + (f >> 32);
        tag[8..12].copy_from_slice(&(f as u32).to_le_bytes());
        f = w3 as u64 + self.pad[3] as u64 + (f >> 32);
        tag[12..16].copy_from_slice(&(f as u32).to_le_bytes());
        tag
    }

    /// One-shot tag computation.
    pub fn tag(key: &[u8; 32], data: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Self::new(key);
        p.update(data);
        p.finish()
    }
}

/// Constant-time tag comparison.
pub fn tags_equal(a: &[u8; TAG_LEN], b: &[u8; TAG_LEN]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_vector() {
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let msg = b"Cryptographic Forum Research Group";
        let tag = Poly1305::tag(&key, msg);
        let expected: [u8; 16] = [
            0xa8, 0x06, 0x1d, 0xc1, 0x30, 0x51, 0x36, 0xc6, 0xc2, 0x2b, 0x8b, 0xaf, 0x0c, 0x01,
            0x27, 0xa9,
        ];
        assert_eq!(tag, expected);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [0x11u8; 32];
        let msg: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        let oneshot = Poly1305::tag(&key, &msg);
        for split in [0usize, 1, 15, 16, 17, 31, 500, 999, 1000] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finish(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn different_messages_different_tags() {
        let key = [3u8; 32];
        assert_ne!(Poly1305::tag(&key, b"hello"), Poly1305::tag(&key, b"hellp"));
    }

    #[test]
    fn tags_equal_is_exact() {
        let a = [1u8; 16];
        let mut b = a;
        assert!(tags_equal(&a, &b));
        b[15] ^= 0x80;
        assert!(!tags_equal(&a, &b));
    }

    #[test]
    fn empty_message_has_tag_s() {
        // With r = 0 the accumulator stays 0 and the tag is exactly s.
        let mut key = [0u8; 32];
        key[16..32].copy_from_slice(&[0xAB; 16]);
        let tag = Poly1305::tag(&key, b"anything");
        assert_eq!(tag, [0xAB; 16]);
    }
}
