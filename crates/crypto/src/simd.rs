//! Runtime-dispatched SIMD backends for multi-block ChaCha20.
//!
//! The scalar ChaCha20 core ([`crate::chacha`]) processes one 64-byte
//! keystream block per round pass. The kernels here run the identical
//! round function over **lanes** of independent blocks held column-wise in
//! vector registers — 4 lanes in SSE2 `__m128i`, 8 lanes in AVX2
//! `__m256i` — so one pass of 20 rounds yields 4 or 8 blocks. Each lane
//! carries its own counter *and* nonce words, which lets the AEAD layer
//! derive the Poly1305 one-time keys for several sealed blocks in a
//! single pass ([`crate::aead::seal_batch`]).
//!
//! # Dispatch
//!
//! The backend is chosen once per process from CPU feature detection
//! (`is_x86_feature_detected!`), clamped by the `OBLIDB_SIMD` environment
//! variable (`scalar` | `sse2` | `avx2` | `auto`), and can be overridden
//! in-process via [`force`] (used by the equivalence tests and the crypto
//! bench to measure both paths in one run). On non-x86_64 targets every
//! entry point falls back to the scalar core. **Every backend produces
//! byte-identical keystream** — the property tests in
//! `tests/simd_equivalence.rs` assert it — so dispatch can never change
//! sealed bytes, tags, or traces, only wall-clock time.
//!
//! This is the one module in the crate allowed to use `unsafe` (the
//! `core::arch` intrinsics); the kernels are gated behind
//! `#[target_feature]` and only ever invoked after the matching
//! `is_x86_feature_detected!` check.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A ChaCha20 keystream backend, ordered by capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Backend {
    /// Portable scalar core (one block per round pass).
    Scalar,
    /// SSE2 4-lane kernel (four blocks per round pass).
    Sse2,
    /// AVX2 8-lane kernel (eight blocks per round pass).
    Avx2,
}

impl Backend {
    /// The backend's stable label (recorded in `BENCH_crypto.json`).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }
}

/// In-process override: 0 = auto (use [`detected`]), else backend + 1.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The best backend this CPU supports, clamped by `OBLIDB_SIMD`
/// (computed once per process).
pub fn detected() -> Backend {
    static DETECTED: OnceLock<Backend> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let hw = hardware_best();
        match std::env::var("OBLIDB_SIMD").as_deref() {
            Ok("scalar") => Backend::Scalar,
            Ok("sse2") => hw.min(Backend::Sse2),
            // Requesting more than the CPU has clamps down, never up.
            Ok("avx2") | Ok("auto") | Ok(_) | Err(_) => hw,
        }
    })
}

#[cfg(target_arch = "x86_64")]
fn hardware_best() -> Backend {
    if is_x86_feature_detected!("avx2") {
        Backend::Avx2
    } else if is_x86_feature_detected!("sse2") {
        Backend::Sse2
    } else {
        Backend::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn hardware_best() -> Backend {
    Backend::Scalar
}

/// The backend the next keystream call will use: the [`force`] override
/// when set, otherwise [`detected`].
pub fn active() -> Backend {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => Backend::Sse2.min(hardware_best()),
        3 => Backend::Avx2.min(hardware_best()),
        _ => detected(),
    }
}

/// Overrides the backend for this process (`None` restores automatic
/// detection). Forcing a backend the CPU lacks clamps to the best
/// available. Since every backend is byte-identical, flipping this
/// mid-run is always safe; it exists so the bench and the equivalence
/// suite can measure/compare both paths in one process.
pub fn force(backend: Option<Backend>) {
    let v = match backend {
        None => 0,
        Some(Backend::Scalar) => 1,
        Some(Backend::Sse2) => 2,
        Some(Backend::Avx2) => 3,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Fills `out` (`64 * counters.len()` bytes) with one keystream block per
/// lane: lane `i` is the ChaCha20 block for `(key, counters[i],
/// nonces[i])`. Lanes are independent — different counters under one
/// nonce (bulk keystream) or different nonces at counter 0 (batched
/// Poly1305 key derivation) are both one call.
pub(crate) fn keystream_blocks(
    key: &[u32; 8],
    counters: &[u32],
    nonces: &[[u32; 3]],
    out: &mut [u8],
) {
    let n = counters.len();
    debug_assert_eq!(nonces.len(), n);
    debug_assert_eq!(out.len(), 64 * n);
    let mut at = 0usize;
    #[cfg(target_arch = "x86_64")]
    {
        let backend = active();
        if backend >= Backend::Avx2 {
            while n - at >= 8 {
                // SAFETY: `active()` returns Avx2 only after
                // `is_x86_feature_detected!("avx2")` succeeded.
                unsafe {
                    x86::blocks8_avx2(
                        key,
                        &counters[at..at + 8],
                        &nonces[at..at + 8],
                        &mut out[at * 64..(at + 8) * 64],
                    );
                }
                at += 8;
            }
        }
        if backend >= Backend::Sse2 {
            while n - at >= 4 {
                // SAFETY: Sse2 (or better) implies the sse2 feature check
                // succeeded.
                unsafe {
                    x86::blocks4_sse2(
                        key,
                        &counters[at..at + 4],
                        &nonces[at..at + 4],
                        &mut out[at * 64..(at + 4) * 64],
                    );
                }
                at += 4;
            }
        }
    }
    for i in at..n {
        crate::chacha::scalar_block(
            key,
            counters[i],
            &nonces[i],
            (&mut out[i * 64..(i + 1) * 64]).try_into().expect("64-byte lane"),
        );
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    //! The SSE2 / AVX2 lane kernels. Layout is column-wise: vector `w`
    //! holds state word `w` of every lane, so the scalar quarter-round
    //! maps 1:1 onto vector adds/xors/rotates.

    use core::arch::x86_64::*;

    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    /// 32-bit lane rotate: SSE2 has no rotate instruction, so shift+or.
    macro_rules! rotl128 {
        ($x:expr, $n:literal, $inv:literal) => {
            _mm_or_si128(_mm_slli_epi32::<$n>($x), _mm_srli_epi32::<$inv>($x))
        };
    }
    macro_rules! rotl256 {
        ($x:expr, $n:literal, $inv:literal) => {
            _mm256_or_si256(_mm256_slli_epi32::<$n>($x), _mm256_srli_epi32::<$inv>($x))
        };
    }

    macro_rules! quarter128 {
        ($v:expr, $a:literal, $b:literal, $c:literal, $d:literal) => {
            $v[$a] = _mm_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl128!(_mm_xor_si128($v[$d], $v[$a]), 16, 16);
            $v[$c] = _mm_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl128!(_mm_xor_si128($v[$b], $v[$c]), 12, 20);
            $v[$a] = _mm_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl128!(_mm_xor_si128($v[$d], $v[$a]), 8, 24);
            $v[$c] = _mm_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl128!(_mm_xor_si128($v[$b], $v[$c]), 7, 25);
        };
    }
    macro_rules! quarter256 {
        ($v:expr, $a:literal, $b:literal, $c:literal, $d:literal) => {
            $v[$a] = _mm256_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl256!(_mm256_xor_si256($v[$d], $v[$a]), 16, 16);
            $v[$c] = _mm256_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl256!(_mm256_xor_si256($v[$b], $v[$c]), 12, 20);
            $v[$a] = _mm256_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl256!(_mm256_xor_si256($v[$d], $v[$a]), 8, 24);
            $v[$c] = _mm256_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl256!(_mm256_xor_si256($v[$b], $v[$c]), 7, 25);
        };
    }

    /// Four keystream blocks per round pass (SSE2).
    ///
    /// # Safety
    /// Requires SSE2 (caller checks via `is_x86_feature_detected!`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn blocks4_sse2(
        key: &[u32; 8],
        counters: &[u32],
        nonces: &[[u32; 3]],
        out: &mut [u8],
    ) {
        debug_assert!(counters.len() >= 4 && nonces.len() >= 4 && out.len() >= 256);
        let mut v = [_mm_setzero_si128(); 16];
        for w in 0..4 {
            v[w] = _mm_set1_epi32(SIGMA[w] as i32);
        }
        for w in 0..8 {
            v[4 + w] = _mm_set1_epi32(key[w] as i32);
        }
        v[12] = _mm_set_epi32(
            counters[3] as i32,
            counters[2] as i32,
            counters[1] as i32,
            counters[0] as i32,
        );
        for w in 0..3 {
            v[13 + w] = _mm_set_epi32(
                nonces[3][w] as i32,
                nonces[2][w] as i32,
                nonces[1][w] as i32,
                nonces[0][w] as i32,
            );
        }
        let initial = v;
        for _ in 0..10 {
            quarter128!(v, 0, 4, 8, 12);
            quarter128!(v, 1, 5, 9, 13);
            quarter128!(v, 2, 6, 10, 14);
            quarter128!(v, 3, 7, 11, 15);
            quarter128!(v, 0, 5, 10, 15);
            quarter128!(v, 1, 6, 11, 12);
            quarter128!(v, 2, 7, 8, 13);
            quarter128!(v, 3, 4, 9, 14);
        }
        let mut ws = [[0u32; 4]; 16];
        for w in 0..16 {
            let fed = _mm_add_epi32(v[w], initial[w]);
            _mm_storeu_si128(ws[w].as_mut_ptr() as *mut __m128i, fed);
        }
        for lane in 0..4 {
            for w in 0..16 {
                let at = lane * 64 + w * 4;
                out[at..at + 4].copy_from_slice(&ws[w][lane].to_le_bytes());
            }
        }
    }

    /// Eight keystream blocks per round pass (AVX2).
    ///
    /// # Safety
    /// Requires AVX2 (caller checks via `is_x86_feature_detected!`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn blocks8_avx2(
        key: &[u32; 8],
        counters: &[u32],
        nonces: &[[u32; 3]],
        out: &mut [u8],
    ) {
        debug_assert!(counters.len() >= 8 && nonces.len() >= 8 && out.len() >= 512);
        let mut v = [_mm256_setzero_si256(); 16];
        for w in 0..4 {
            v[w] = _mm256_set1_epi32(SIGMA[w] as i32);
        }
        for w in 0..8 {
            v[4 + w] = _mm256_set1_epi32(key[w] as i32);
        }
        v[12] = _mm256_set_epi32(
            counters[7] as i32,
            counters[6] as i32,
            counters[5] as i32,
            counters[4] as i32,
            counters[3] as i32,
            counters[2] as i32,
            counters[1] as i32,
            counters[0] as i32,
        );
        for w in 0..3 {
            v[13 + w] = _mm256_set_epi32(
                nonces[7][w] as i32,
                nonces[6][w] as i32,
                nonces[5][w] as i32,
                nonces[4][w] as i32,
                nonces[3][w] as i32,
                nonces[2][w] as i32,
                nonces[1][w] as i32,
                nonces[0][w] as i32,
            );
        }
        let initial = v;
        for _ in 0..10 {
            quarter256!(v, 0, 4, 8, 12);
            quarter256!(v, 1, 5, 9, 13);
            quarter256!(v, 2, 6, 10, 14);
            quarter256!(v, 3, 7, 11, 15);
            quarter256!(v, 0, 5, 10, 15);
            quarter256!(v, 1, 6, 11, 12);
            quarter256!(v, 2, 7, 8, 13);
            quarter256!(v, 3, 4, 9, 14);
        }
        let mut ws = [[0u32; 8]; 16];
        for w in 0..16 {
            let fed = _mm256_add_epi32(v[w], initial[w]);
            _mm256_storeu_si256(ws[w].as_mut_ptr() as *mut __m256i, fed);
        }
        for lane in 0..8 {
            for w in 0..16 {
                let at = lane * 64 + w * 4;
                out[at..at + 4].copy_from_slice(&ws[w][lane].to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [`force`] is process-global; tests that flip it must not overlap.
    fn force_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn forced_backend_clamps_to_hardware() {
        let _guard = force_lock();
        force(Some(Backend::Avx2));
        assert!(active() <= super::hardware_best());
        force(Some(Backend::Scalar));
        assert_eq!(active(), Backend::Scalar);
        force(None);
        assert_eq!(active(), detected());
    }

    #[test]
    fn every_backend_matches_scalar_block() {
        let _guard = force_lock();
        let key = [0x0101_0203u32; 8];
        let nonces: Vec<[u32; 3]> = (0..9u32).map(|i| [i, i * 7, i * 13]).collect();
        let counters: Vec<u32> = (0..9u32).map(|i| (u32::MAX - 4).wrapping_add(i)).collect();
        let mut expected = vec![0u8; 64 * 9];
        for i in 0..9 {
            crate::chacha::scalar_block(
                &key,
                counters[i],
                &nonces[i],
                (&mut expected[i * 64..(i + 1) * 64]).try_into().unwrap(),
            );
        }
        for backend in [Backend::Scalar, Backend::Sse2, Backend::Avx2] {
            force(Some(backend));
            let mut out = vec![0u8; 64 * 9];
            keystream_blocks(&key, &counters, &nonces, &mut out);
            assert_eq!(out, expected, "{backend:?}");
        }
        force(None);
    }
}
