//! SipHash-2-4, a fast keyed PRF (Aumasson & Bernstein).
//!
//! ObliDB's Hash SELECT operator hashes the *index* of each row (never its
//! contents) with two independently keyed hash functions (paper §4.1,
//! "double hashing"). SipHash-2-4 is the PRF used for both; the unit tests
//! cross-check against the standard library's reference implementation.

/// A keyed SipHash-2-4 instance.
#[derive(Clone, Copy, Debug)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

impl SipHash24 {
    /// Creates a PRF from a 128-bit key given as two words.
    pub fn new(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    /// Hashes an arbitrary byte string.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v = [
            self.k0 ^ 0x736f_6d65_7073_6575,
            self.k1 ^ 0x646f_7261_6e64_6f6d,
            self.k0 ^ 0x6c79_6765_6e65_7261,
            self.k1 ^ 0x7465_6462_7974_6573,
        ];

        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().unwrap());
            v[3] ^= m;
            sipround(&mut v);
            sipround(&mut v);
            v[0] ^= m;
        }

        let rem = chunks.remainder();
        let mut last = (data.len() as u64) << 56;
        for (i, &b) in rem.iter().enumerate() {
            last |= (b as u64) << (8 * i);
        }
        v[3] ^= last;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= last;

        v[2] ^= 0xff;
        sipround(&mut v);
        sipround(&mut v);
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^ v[1] ^ v[2] ^ v[3]
    }

    /// Hashes a `u64` (the row index in ObliDB's hash select).
    pub fn hash_u64(&self, x: u64) -> u64 {
        self.hash(&x.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    /// Cross-check against the standard library's SipHash-2-4 reference.
    #[test]
    #[allow(deprecated)]
    fn matches_std_reference() {
        let keys = [(0u64, 0u64), (1, 2), (0xdead_beef, 0xcafe_babe), (u64::MAX, 42)];
        let messages: Vec<Vec<u8>> =
            (0..32usize).map(|n| (0..n).map(|i| (i * 7 + 3) as u8).collect()).collect();
        for &(k0, k1) in &keys {
            let ours = SipHash24::new(k0, k1);
            for msg in &messages {
                let mut std_hasher = std::hash::SipHasher::new_with_keys(k0, k1);
                std_hasher.write(msg);
                assert_eq!(
                    ours.hash(msg),
                    std_hasher.finish(),
                    "key ({k0},{k1}) len {}",
                    msg.len()
                );
            }
        }
    }

    #[test]
    fn distinct_keys_distinct_outputs() {
        let a = SipHash24::new(1, 1);
        let b = SipHash24::new(1, 2);
        assert_ne!(a.hash_u64(12345), b.hash_u64(12345));
    }

    #[test]
    fn deterministic() {
        let h = SipHash24::new(9, 9);
        assert_eq!(h.hash_u64(7), h.hash_u64(7));
    }

    #[test]
    fn reasonable_distribution_over_buckets() {
        // Sanity: hashing 0..10_000 into 64 buckets should not leave any
        // bucket empty or let one bucket dominate.
        let h = SipHash24::new(0x1234, 0x5678);
        let mut counts = [0usize; 64];
        for i in 0..10_000u64 {
            counts[(h.hash_u64(i) % 64) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min > 80, "min bucket {min}");
        assert!(max < 280, "max bucket {max}");
    }
}
