//! Property-based tests for the crypto substrate: round-trips for all
//! sizes, and tamper detection for *any* single-bit corruption anywhere in
//! a sealed block.

use oblidb_crypto::aead::{open, seal, AeadKey, Nonce};
use oblidb_crypto::{hmac_sha256, sha256};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aead_roundtrip_any_payload(
        key in any::<[u8; 32]>(),
        epoch in any::<u32>(),
        counter in any::<u64>(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let key = AeadKey(key);
        let nonce = Nonce::from_parts(epoch, counter);
        let mut buf = payload.clone();
        let tag = seal(&key, &nonce, &aad, &mut buf);
        if !payload.is_empty() {
            prop_assert_ne!(&buf, &payload, "ciphertext must differ from plaintext");
        }
        open(&key, &nonce, &aad, &mut buf, &tag).unwrap();
        prop_assert_eq!(buf, payload);
    }

    #[test]
    fn any_bit_flip_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let key = AeadKey([9u8; 32]);
        let nonce = Nonce::from_parts(1, 2);
        let mut buf = payload.clone();
        let tag = seal(&key, &nonce, b"aad", &mut buf);
        let idx = flip_byte.index(buf.len());
        buf[idx] ^= 1 << flip_bit;
        prop_assert!(open(&key, &nonce, b"aad", &mut buf, &tag).is_err());
    }

    #[test]
    fn any_tag_flip_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        flip_byte in 0usize..16,
        flip_bit in 0u8..8,
    ) {
        let key = AeadKey([9u8; 32]);
        let nonce = Nonce::from_parts(1, 2);
        let mut buf = payload;
        let mut tag = seal(&key, &nonce, b"", &mut buf);
        tag[flip_byte] ^= 1 << flip_bit;
        prop_assert!(open(&key, &nonce, b"", &mut buf, &tag).is_err());
    }

    #[test]
    fn nonces_never_produce_equal_ciphertexts(
        payload in proptest::collection::vec(any::<u8>(), 16..64),
        c1 in any::<u64>(),
        c2 in any::<u64>(),
    ) {
        prop_assume!(c1 != c2);
        let key = AeadKey([5u8; 32]);
        let mut a = payload.clone();
        let mut b = payload;
        seal(&key, &Nonce::from_parts(0, c1), b"", &mut a);
        seal(&key, &Nonce::from_parts(0, c2), b"", &mut b);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        split in any::<prop::sample::Index>(),
    ) {
        let s = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut h = oblidb_crypto::sha256::Sha256::new();
        h.update(&data[..s]);
        h.update(&data[s..]);
        prop_assert_eq!(h.finish(), sha256(&data));
    }

    #[test]
    fn hmac_distinguishes_keys_and_messages(
        k1 in proptest::collection::vec(any::<u8>(), 1..64),
        k2 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }
}
