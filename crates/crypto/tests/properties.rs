//! Property-based tests for the crypto substrate: round-trips for all
//! sizes, and tamper detection for *any* single-bit corruption anywhere in
//! a sealed block.
//!
//! Cases are generated from a seeded [`EnclaveRng`] (the workspace is
//! dependency-free, so no proptest).

use oblidb_crypto::aead::{open, seal, AeadKey, Nonce};
use oblidb_crypto::{hmac_sha256, sha256};
use oblidb_enclave::EnclaveRng;

fn rand_vec(rng: &mut EnclaveRng, min: usize, max: usize) -> Vec<u8> {
    let n = min as u64 + rng.below((max - min) as u64);
    rng.random_bytes(n as usize)
}

#[test]
fn aead_roundtrip_any_payload() {
    let mut rng = EnclaveRng::seed_from_u64(0xAEAD);
    for case in 0..64 {
        let mut key_bytes = [0u8; 32];
        rng.fill(&mut key_bytes);
        let key = AeadKey(key_bytes);
        let nonce = Nonce::from_parts(rng.next_u64() as u32, rng.next_u64());
        let aad = rand_vec(&mut rng, 0, 64);
        let payload = rand_vec(&mut rng, 0, 512);

        let mut buf = payload.clone();
        let tag = seal(&key, &nonce, &aad, &mut buf);
        if !payload.is_empty() {
            assert_ne!(&buf, &payload, "case {case}: ciphertext must differ from plaintext");
        }
        open(&key, &nonce, &aad, &mut buf, &tag).unwrap();
        assert_eq!(buf, payload, "case {case}");
    }
}

#[test]
fn any_bit_flip_is_detected() {
    let mut rng = EnclaveRng::seed_from_u64(0xF11);
    for case in 0..64 {
        let payload = rand_vec(&mut rng, 1, 128);
        let idx = rng.below(payload.len() as u64) as usize;
        let flip_bit = rng.below(8) as u8;

        let key = AeadKey([9u8; 32]);
        let nonce = Nonce::from_parts(1, 2);
        let mut buf = payload.clone();
        let tag = seal(&key, &nonce, b"aad", &mut buf);
        buf[idx] ^= 1 << flip_bit;
        assert!(
            open(&key, &nonce, b"aad", &mut buf, &tag).is_err(),
            "case {case}: byte {idx} bit {flip_bit}"
        );
    }
}

#[test]
fn any_tag_flip_is_detected() {
    let mut rng = EnclaveRng::seed_from_u64(0x7A6);
    for case in 0..64 {
        let payload = rand_vec(&mut rng, 0, 64);
        let flip_byte = rng.below(16) as usize;
        let flip_bit = rng.below(8) as u8;

        let key = AeadKey([9u8; 32]);
        let nonce = Nonce::from_parts(1, 2);
        let mut buf = payload;
        let mut tag = seal(&key, &nonce, b"", &mut buf);
        tag[flip_byte] ^= 1 << flip_bit;
        assert!(
            open(&key, &nonce, b"", &mut buf, &tag).is_err(),
            "case {case}: tag byte {flip_byte} bit {flip_bit}"
        );
    }
}

#[test]
fn nonces_never_produce_equal_ciphertexts() {
    let mut rng = EnclaveRng::seed_from_u64(0x40);
    for case in 0..64 {
        let payload = rand_vec(&mut rng, 16, 64);
        let c1 = rng.next_u64();
        let c2 = rng.next_u64();
        if c1 == c2 {
            continue;
        }
        let key = AeadKey([5u8; 32]);
        let mut a = payload.clone();
        let mut b = payload;
        seal(&key, &Nonce::from_parts(0, c1), b"", &mut a);
        seal(&key, &Nonce::from_parts(0, c2), b"", &mut b);
        assert_ne!(a, b, "case {case}");
    }
}

#[test]
fn sha256_incremental_equals_oneshot() {
    let mut rng = EnclaveRng::seed_from_u64(0x5A);
    for case in 0..64 {
        let data = rand_vec(&mut rng, 0, 300);
        let s = if data.is_empty() { 0 } else { rng.below(data.len() as u64) as usize };
        let mut h = oblidb_crypto::sha256::Sha256::new();
        h.update(&data[..s]);
        h.update(&data[s..]);
        assert_eq!(h.finish(), sha256(&data), "case {case}: split {s} of {}", data.len());
    }
}

#[test]
fn hmac_distinguishes_keys_and_messages() {
    let mut rng = EnclaveRng::seed_from_u64(0x34);
    for case in 0..64 {
        let k1 = rand_vec(&mut rng, 1, 64);
        let k2 = rand_vec(&mut rng, 1, 64);
        let msg = rand_vec(&mut rng, 0, 64);
        if k1 == k2 {
            continue;
        }
        assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg), "case {case}");
    }
}
