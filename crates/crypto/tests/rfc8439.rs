//! RFC 8439 test vectors beyond the in-crate unit anchors (§2.1.1
//! quarter round, §2.3.2 block, §2.5.2 Poly1305, §2.8.2 AEAD), each run
//! under **every** SIMD backend — the official bytes, not just
//! self-consistency, pin the vector kernels.

use oblidb_crypto::chacha::ChaCha20;
use oblidb_crypto::poly1305::Poly1305;
use oblidb_crypto::simd::{self, Backend};

const BACKENDS: [Backend; 3] = [Backend::Scalar, Backend::Sse2, Backend::Avx2];

/// See `simd_equivalence.rs` — [`simd::force`] is process-global.
fn forced<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    simd::force(Some(backend));
    let out = f();
    simd::force(None);
    out
}

fn unhex(s: &str) -> Vec<u8> {
    let clean: String = s.chars().filter(|c| c.is_ascii_hexdigit()).collect();
    clean
        .as_bytes()
        .chunks(2)
        .map(|p| u8::from_str_radix(std::str::from_utf8(p).unwrap(), 16).unwrap())
        .collect()
}

fn rfc_key() -> [u8; 32] {
    let mut k = [0u8; 32];
    for (i, b) in k.iter_mut().enumerate() {
        *b = i as u8;
    }
    k
}

/// RFC 8439 Appendix A.1, test vector #1: all-zero key and nonce,
/// counter 0 — the canonical first keystream block.
#[test]
fn a1_vector1_zero_key_keystream() {
    let expected = unhex(
        "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
         da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586",
    );
    let cipher = ChaCha20::new(&[0u8; 32], &[0u8; 12]);
    for backend in BACKENDS {
        let mut ks = vec![0u8; 64];
        forced(backend, || cipher.apply_keystream_multi(0, &mut ks));
        assert_eq!(ks, expected, "{backend:?}");
    }
}

/// RFC 8439 §2.4.2: the full "sunscreen" encryption vector (key 00..1f,
/// nonce 00 00 00 00 00 00 00 4a 00 00 00 00, counter 1).
#[test]
fn s242_sunscreen_encryption() {
    let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
    let expected = unhex(
        "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
         f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
         07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
         5af90bbf74a35be6b40b8eedf2785e42874d",
    );
    let nonce = {
        let mut n = [0u8; 12];
        n[7] = 0x4a;
        n
    };
    let cipher = ChaCha20::new(&rfc_key(), &nonce);
    for backend in BACKENDS {
        let mut buf = plaintext.to_vec();
        forced(backend, || cipher.apply_keystream_multi(1, &mut buf));
        assert_eq!(buf, expected, "{backend:?} encrypt");
        // Symmetric: applying the keystream again restores the plaintext.
        forced(backend, || cipher.apply_keystream_multi(1, &mut buf));
        assert_eq!(buf, plaintext, "{backend:?} decrypt");
    }
}

/// RFC 8439 §2.6.2: Poly1305 one-time-key generation — the first 32
/// keystream bytes at counter 0 under the section's key and nonce.
#[test]
fn s262_poly1305_key_generation() {
    let mut key = [0u8; 32];
    for (i, b) in key.iter_mut().enumerate() {
        *b = 0x80 + i as u8;
    }
    let nonce = [0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07];
    let expected = unhex("8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646");
    let cipher = ChaCha20::new(&key, &nonce);
    for backend in BACKENDS {
        let mut ks = vec![0u8; 32];
        forced(backend, || cipher.apply_keystream_multi(0, &mut ks));
        assert_eq!(ks, expected, "{backend:?}");
    }
}

/// RFC 8439 Appendix A.3, test vector #1: an all-zero key (r = 0, s = 0)
/// tags any message — here 64 zero bytes — as all zeros. Exercises the
/// degenerate case of the pairwise-Horner accumulation.
#[test]
fn a3_vector1_zero_key_tag() {
    for chunks in [vec![64usize], vec![16, 48], vec![32, 32], vec![1, 63]] {
        let mut mac = Poly1305::new(&[0u8; 32]);
        let zeros = [0u8; 64];
        let mut off = 0;
        for c in chunks.iter() {
            mac.update(&zeros[off..off + c]);
            off += c;
        }
        assert_eq!(mac.finish(), [0u8; 16], "chunks {chunks:?}");
    }
}
