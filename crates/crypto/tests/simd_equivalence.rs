//! SIMD/scalar equivalence: every [`oblidb_crypto::simd::Backend`] must
//! produce byte-identical keystream, ciphertext, and tags — across
//! lengths, buffer alignments, batch sizes, and AAD shapes. Dispatch is a
//! pure speed decision; these tests are what makes that claim load-bearing
//! (sealed regions written by an AVX2 host must open on a scalar one).
//!
//! Cases are generated from a seeded [`EnclaveRng`] (the workspace is
//! dependency-free, so no proptest).

use oblidb_crypto::chacha::ChaCha20;
use oblidb_crypto::simd::{self, Backend};
use oblidb_crypto::{open, open_batch, seal, seal_batch, AeadKey, Nonce, TAG_LEN};
use oblidb_enclave::EnclaveRng;

const BACKENDS: [Backend; 3] = [Backend::Scalar, Backend::Sse2, Backend::Avx2];

/// [`simd::force`] is process-global; tests that flip it must not overlap
/// (and must restore auto dispatch when done).
fn forced<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    simd::force(Some(backend));
    let out = f();
    simd::force(None);
    out
}

#[test]
fn keystream_matches_scalar_at_every_length_and_alignment() {
    let mut rng = EnclaveRng::seed_from_u64(0x51_4D);
    let key: [u8; 32] = rng.random_bytes(32).try_into().unwrap();
    let nonce: [u8; 12] = rng.random_bytes(12).try_into().unwrap();
    let cipher = ChaCha20::new(&key, &nonce);

    // Lengths crossing every lane boundary (1/4/8 blocks), plus buffer
    // offsets 0..8 so the SIMD stores hit unaligned destinations.
    let lengths = [0usize, 1, 63, 64, 65, 127, 128, 255, 256, 257, 511, 512, 513, 1024, 1025, 4096];
    for len in lengths {
        for align in [0usize, 1, 3, 7] {
            let base = rng.random_bytes(len + align);
            let mut expected = base[align..].to_vec();
            forced(Backend::Scalar, || cipher.apply_keystream_multi(1, &mut expected));
            for backend in BACKENDS {
                let mut buf = base.clone();
                forced(backend, || cipher.apply_keystream_multi(1, &mut buf[align..]));
                assert_eq!(buf[align..], expected[..], "{backend:?} len {len} align {align}");
                assert_eq!(buf[..align], base[..align], "{backend:?} must not touch the prefix");
            }
        }
    }
}

#[test]
fn blocks4_matches_scalar_on_every_backend() {
    let cipher = ChaCha20::new(&[7u8; 32], &[3u8; 12]);
    for start in [0u32, 1, 999, u32::MAX - 1] {
        let mut expected = [0u8; 256];
        forced(Backend::Scalar, || cipher.blocks4(start, &mut expected));
        for backend in BACKENDS {
            let mut out = [0u8; 256];
            forced(backend, || cipher.blocks4(start, &mut out));
            assert_eq!(out, expected, "{backend:?} start {start}");
        }
    }
}

#[test]
fn seal_and_open_agree_across_backends() {
    let mut rng = EnclaveRng::seed_from_u64(0x5EA1);
    for case in 0..24 {
        let key = AeadKey(rng.random_bytes(32).try_into().unwrap());
        let nonce = Nonce::from_parts(rng.next_u64() as u32, rng.next_u64());
        let aad_len = rng.below(64) as usize;
        let aad = rng.random_bytes(aad_len);
        let payload_len = rng.below(1500) as usize;
        let payload = rng.random_bytes(payload_len);

        let mut expected_ct = payload.clone();
        let expected_tag = forced(Backend::Scalar, || seal(&key, &nonce, &aad, &mut expected_ct));
        for backend in BACKENDS {
            // Sealing under `backend` must yield scalar's exact bytes...
            let mut ct = payload.clone();
            let tag = forced(backend, || seal(&key, &nonce, &aad, &mut ct));
            assert_eq!(ct, expected_ct, "case {case} {backend:?} ciphertext");
            assert_eq!(tag, expected_tag, "case {case} {backend:?} tag");
            // ...and scalar-sealed bytes must open under `backend`.
            let mut back = expected_ct.clone();
            forced(backend, || open(&key, &nonce, &aad, &mut back, &expected_tag)).unwrap();
            assert_eq!(back, payload, "case {case} {backend:?} roundtrip");
        }
    }
}

#[test]
fn batch_seal_matches_scalar_per_block_at_every_batch_size() {
    let mut rng = EnclaveRng::seed_from_u64(0xBA7C);
    for batch in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 64] {
        let key = AeadKey(rng.random_bytes(32).try_into().unwrap());
        let nonces: Vec<Nonce> =
            (0..batch).map(|i| Nonce::from_parts(11, (i * 3) as u64)).collect();
        // AAD shapes: empty, short, and block-boundary lengths interleaved.
        let aads: Vec<Vec<u8>> =
            (0..batch).map(|i| rng.random_bytes([0, 5, 16, 17, 32][i % 5])).collect();
        let aad_refs: Vec<&[u8]> = aads.iter().map(|a| a.as_slice()).collect();
        // Equal-sized runs are the storage layer's shape; unequal blocks
        // exercise the general API.
        let block_len = |i: usize| if batch % 2 == 0 { 256 } else { 64 + i * 17 };
        let payloads: Vec<Vec<u8>> = (0..batch).map(|i| rng.random_bytes(block_len(i))).collect();

        // Reference: scalar, one block at a time through the single AEAD.
        let mut expected: Vec<Vec<u8>> = payloads.clone();
        let mut expected_tags = Vec::new();
        forced(Backend::Scalar, || {
            for i in 0..batch {
                expected_tags.push(seal(&key, &nonces[i], aad_refs[i], &mut expected[i]));
            }
        });

        for backend in BACKENDS {
            let mut bufs: Vec<Vec<u8>> = payloads.clone();
            let mut tags = vec![[0u8; TAG_LEN]; batch];
            forced(backend, || {
                let mut blocks: Vec<&mut [u8]> =
                    bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
                seal_batch(&key, &nonces, &aad_refs, &mut blocks, &mut tags);
            });
            assert_eq!(bufs, expected, "batch {batch} {backend:?} ciphertexts");
            assert_eq!(tags, expected_tags, "batch {batch} {backend:?} tags");

            // The batch must open under every *other* backend too.
            let open_with = BACKENDS[(batch + 1) % BACKENDS.len()];
            let mut back = bufs.clone();
            forced(open_with, || {
                let mut blocks: Vec<&mut [u8]> =
                    back.iter_mut().map(|b| b.as_mut_slice()).collect();
                open_batch(&key, &nonces, &aad_refs, &mut blocks, &tags).unwrap();
            });
            assert_eq!(back, payloads, "batch {batch} {backend:?} -> {open_with:?} roundtrip");
        }
    }
}

#[test]
fn batch_tamper_attribution_is_backend_independent() {
    let mut rng = EnclaveRng::seed_from_u64(0x7A3B);
    let key = AeadKey([0x11u8; 32]);
    let batch = 9usize;
    let nonces: Vec<Nonce> = (0..batch).map(|i| Nonce::from_parts(2, i as u64)).collect();
    let aads: Vec<Vec<u8>> = (0..batch).map(|i| vec![i as u8; 16]).collect();
    let aad_refs: Vec<&[u8]> = aads.iter().map(|a| a.as_slice()).collect();
    let payloads: Vec<Vec<u8>> = (0..batch).map(|_| rng.random_bytes(200)).collect();

    let mut sealed: Vec<Vec<u8>> = payloads.clone();
    let mut tags = vec![[0u8; TAG_LEN]; batch];
    {
        let mut blocks: Vec<&mut [u8]> = sealed.iter_mut().map(|b| b.as_mut_slice()).collect();
        seal_batch(&key, &nonces, &aad_refs, &mut blocks, &mut tags);
    }

    for victim in [0usize, 4, 8] {
        for backend in BACKENDS {
            let mut bufs = sealed.clone();
            bufs[victim][100] ^= 1;
            let err = forced(backend, || {
                let mut blocks: Vec<&mut [u8]> =
                    bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
                open_batch(&key, &nonces, &aad_refs, &mut blocks, &tags).unwrap_err()
            });
            assert_eq!(err.index, victim, "{backend:?}");
            // Verify-before-decrypt: no block was touched on failure.
            assert_eq!(bufs, {
                let mut t = sealed.clone();
                t[victim][100] ^= 1;
                t
            });
        }
    }
}
