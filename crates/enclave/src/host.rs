//! The untrusted host: block-granular memory regions with access tracing.

use std::fmt;

/// Identifies one untrusted memory region (e.g. one table file, one ORAM
/// bucket tree). Region identity is public information — the paper does not
/// hide *which table* a query touches, only which blocks within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// The direction of a boundary crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The enclave read a block from untrusted memory.
    Read,
    /// The enclave wrote a block to untrusted memory.
    Write,
}

/// One observable memory access: what the OS-level adversary sees.
///
/// Note what is *absent*: the adversary never sees plaintext contents (blocks
/// are sealed by the storage layer before they reach the host), only the
/// (region, block index, direction) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessEvent {
    /// Which region was touched.
    pub region: RegionId,
    /// Which block within the region.
    pub index: u64,
    /// Read or write.
    pub kind: AccessKind,
}

/// A recorded sequence of accesses — the adversary's transcript
/// (`TRACE(D, Q)` in the paper's Appendix A).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace(pub Vec<AccessEvent>);

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The events restricted to one region (useful for per-table assertions).
    pub fn for_region(&self, region: RegionId) -> Vec<AccessEvent> {
        self.0.iter().copied().filter(|e| e.region == region).collect()
    }
}

/// Aggregate access statistics (always maintained; cheap).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Total block reads.
    pub reads: u64,
    /// Total block writes.
    pub writes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Enclave boundary transitions. A per-block read or write costs one;
    /// a batched call transfers any number of blocks in one. On real SGX
    /// each transition is an OCALL-sized fixed cost, so
    /// `crossings << reads + writes` is what batching buys.
    pub crossings: u64,
    /// Nanoseconds the enclave spent *stalled* on crossings — the sum of
    /// the configured [`CrossingCost::stall_nanos`] over every transition
    /// paid. Spin-priced crossings show up only in `crossings`; this field
    /// makes the wait-time component of stall-priced substrates (disk,
    /// stall-calibrated hosts) visible in reports.
    pub stall_nanos: u64,
}

impl HostStats {
    /// Total block accesses (reads + writes). Block counts — not boundary
    /// transitions; see [`HostStats::crossings`] for those.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Wraps these counters in a named [`StatsReport`] for uniform
    /// rendering across substrates (bench tables, JSON rows).
    pub fn report(self, name: impl Into<String>) -> StatsReport {
        StatsReport { name: name.into(), stats: self }
    }
}

impl std::ops::AddAssign for HostStats {
    fn add_assign(&mut self, rhs: HostStats) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.bytes_read += rhs.bytes_read;
        self.bytes_written += rhs.bytes_written;
        self.crossings += rhs.crossings;
        self.stall_nanos += rhs.stall_nanos;
    }
}

impl std::ops::Add for HostStats {
    type Output = HostStats;

    fn add(mut self, rhs: HostStats) -> HostStats {
        self += rhs;
        self
    }
}

impl std::ops::Sub for HostStats {
    type Output = HostStats;

    /// Counter delta (saturating, so a reset between snapshots cannot
    /// underflow): the access cost of the work between two
    /// [`EnclaveMemory::stats`](crate::EnclaveMemory::stats) snapshots —
    /// how the planner attributes measured cost to individual plan nodes.
    fn sub(self, rhs: HostStats) -> HostStats {
        HostStats {
            reads: self.reads.saturating_sub(rhs.reads),
            writes: self.writes.saturating_sub(rhs.writes),
            bytes_read: self.bytes_read.saturating_sub(rhs.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(rhs.bytes_written),
            crossings: self.crossings.saturating_sub(rhs.crossings),
            stall_nanos: self.stall_nanos.saturating_sub(rhs.stall_nanos),
        }
    }
}

impl std::iter::Sum for HostStats {
    fn sum<I: Iterator<Item = HostStats>>(iter: I) -> HostStats {
        iter.fold(HostStats::default(), |acc, s| acc + s)
    }
}

/// Named access counters for one substrate: the uniform currency every
/// stats-reporting surface (bench tables, `BENCH_*.json` rows, test
/// diagnostics) uses, so per-substrate numbers always carry the same
/// fields in the same order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReport {
    /// Which substrate/configuration the counters describe.
    pub name: String,
    /// The counters themselves.
    pub stats: HostStats,
}

impl StatsReport {
    /// Column headers matching [`StatsReport::cells`].
    pub const HEADERS: [&'static str; 7] =
        ["substrate", "reads", "writes", "bytes_read", "bytes_written", "crossings", "stall_ns"];

    /// The row cells, in [`StatsReport::HEADERS`] order.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.name.clone(),
            self.stats.reads.to_string(),
            self.stats.writes.to_string(),
            self.stats.bytes_read.to_string(),
            self.stats.bytes_written.to_string(),
            self.stats.crossings.to_string(),
            self.stats.stall_nanos.to_string(),
        ]
    }
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: reads={} writes={} bytes_read={} bytes_written={} crossings={} stall_ns={}",
            self.name,
            self.stats.reads,
            self.stats.writes,
            self.stats.bytes_read,
            self.stats.bytes_written,
            self.stats.crossings,
            self.stats.stall_nanos
        )
    }
}

/// Which region-lifecycle or data operation an I/O failure interrupted.
///
/// Carried inside [`HostError::Io`] so a disk-full allocation reads
/// differently from a permission failure during sync — the context the
/// `Database` layer needs to report (and callers need to react to)
/// without re-deriving it from a bare [`std::io::ErrorKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Allocating a region (creating/sizing its backing file).
    Alloc,
    /// Growing a region.
    Grow,
    /// Freeing a region (deleting its backing file).
    Free,
    /// Reading blocks.
    Read,
    /// Writing blocks.
    Write,
    /// Flushing to the durable medium.
    Sync,
    /// Re-attaching to persisted state (reopen).
    Attach,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoOp::Alloc => "alloc",
            IoOp::Grow => "grow",
            IoOp::Free => "free",
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Sync => "sync",
            IoOp::Attach => "attach",
        };
        f.write_str(s)
    }
}

/// Errors from host memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostError {
    /// The region id was never allocated or was freed.
    UnknownRegion(RegionId),
    /// The block index exceeds the region length.
    OutOfBounds {
        /// Offending region.
        region: RegionId,
        /// Offending index.
        index: u64,
        /// Region length in blocks.
        len: u64,
    },
    /// The block was never written.
    EmptyBlock(RegionId, u64),
    /// A write's length differs from the region's block size.
    BlockSizeMismatch {
        /// Offending region.
        region: RegionId,
        /// Expected sealed-block size.
        expected: usize,
        /// Provided buffer size.
        got: usize,
    },
    /// The substrate's backing medium failed (disk-backed substrates;
    /// in-memory substrates never produce it). Carries the
    /// [`std::io::ErrorKind`] plus the failing operation and region (when
    /// one was involved — allocation failures may precede a region id), so
    /// disk-full vs. permission failures stay distinguishable at the
    /// `Database` API while the error stays `Copy + Eq` like every other
    /// variant.
    Io {
        /// What the OS reported.
        kind: std::io::ErrorKind,
        /// The region the operation targeted, when it had one.
        region: Option<RegionId>,
        /// Which operation failed.
        op: IoOp,
    },
}

impl HostError {
    /// Builds an [`HostError::Io`] from an [`std::io::Error`] with its
    /// operation context. The one constructor every substrate uses, so
    /// the context fields cannot drift.
    pub fn io(e: &std::io::Error, region: Option<RegionId>, op: IoOp) -> Self {
        HostError::Io { kind: e.kind(), region, op }
    }
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::UnknownRegion(r) => write!(f, "unknown region {r:?}"),
            HostError::OutOfBounds { region, index, len } => {
                write!(f, "index {index} out of bounds for region {region:?} (len {len})")
            }
            HostError::EmptyBlock(r, i) => write!(f, "block {i} in region {r:?} never written"),
            HostError::BlockSizeMismatch { region, expected, got } => write!(
                f,
                "block size mismatch in region {region:?}: expected {expected}, got {got}"
            ),
            HostError::Io { kind, region: Some(r), op } => {
                write!(f, "backing-store I/O failure during {op} of region {r:?}: {kind}")
            }
            HostError::Io { kind, region: None, op } => {
                write!(f, "backing-store I/O failure during {op}: {kind}")
            }
        }
    }
}

impl std::error::Error for HostError {}

/// Number of whole blocks in a batch buffer, or the mismatch error.
/// Shared by every batched entry point — trait defaults, native
/// implementations, and out-of-crate substrates — so the validation (and
/// the exact error shape) cannot drift.
pub fn batch_count(
    region: RegionId,
    block_size: usize,
    data_len: usize,
) -> Result<usize, HostError> {
    if block_size == 0 || data_len % block_size != 0 {
        return Err(HostError::BlockSizeMismatch { region, expected: block_size, got: data_len });
    }
    Ok(data_len / block_size)
}

struct Region {
    block_size: usize,
    blocks: Vec<Option<Box<[u8]>>>,
}

/// Simulated price of one enclave boundary transition.
///
/// Two components, because they behave differently under parallel
/// execution: `spins` burns the worker's core (transition compute — it
/// does **not** overlap across workers), while `stall_nanos` blocks the
/// worker without consuming CPU (the enclave thread waiting for the
/// untrusted host to service the exit — stalls from different workers
/// **do** overlap, which is exactly the regime where worker-per-shard
/// parallelism pays).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrossingCost {
    /// CPU-burning spin iterations per crossing (~8k cycles on real SGX).
    pub spins: u32,
    /// Worker stall per crossing, in nanoseconds (OCALL service time, EPC
    /// paging). Realized stalls are floored by OS timer resolution.
    pub stall_nanos: u64,
}

impl CrossingCost {
    /// Burns/waits the configured price. Counters are the caller's job.
    pub fn pay(self) {
        for _ in 0..self.spins {
            std::hint::spin_loop();
        }
        if self.stall_nanos > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(self.stall_nanos));
        }
    }
}

/// The untrusted world: all memory outside the enclave.
///
/// Single-threaded by design, matching the paper's single-node engine; the
/// benchmark harness gives each experiment its own `Host`, and the parallel
/// execution mode gives each worker its own `Host` shard.
#[derive(Default)]
pub struct Host {
    regions: Vec<Option<Region>>,
    trace: Option<Vec<AccessEvent>>,
    stats: HostStats,
    crossing: CrossingCost,
}

impl Host {
    /// Creates an empty untrusted memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a simulated per-crossing cost: every boundary transition
    /// (per-block call or batched call, either direction) additionally
    /// executes `spins` spin-loop iterations.
    ///
    /// On real SGX an enclave transition costs ~8,000+ cycles regardless
    /// of payload size — the fixed cost that makes batching matter and
    /// that an in-process simulator otherwise prices at zero. Default 0,
    /// so unit tests and traces are unaffected; the benchmark harness
    /// opts in to measure the amortization honestly.
    pub fn set_crossing_cost(&mut self, spins: u32) {
        self.crossing.spins = spins;
    }

    /// Sets the stall component of the crossing price (see
    /// [`CrossingCost::stall_nanos`]): the worker blocks that long per
    /// transition instead of burning CPU. Default 0.
    pub fn set_crossing_stall(&mut self, nanos: u64) {
        self.crossing.stall_nanos = nanos;
    }

    /// Pays for one boundary transition.
    fn cross(stats: &mut HostStats, cost: CrossingCost) {
        stats.crossings += 1;
        stats.stall_nanos += cost.stall_nanos;
        cost.pay();
    }

    /// Allocates a region of `blocks` blocks, each `block_size` bytes.
    ///
    /// Allocation size is public (the paper leaks data-structure sizes).
    /// In-RAM allocation cannot meaningfully fail, so this always returns
    /// `Ok`; the `Result` is the trait-wide contract that lets disk-backed
    /// substrates surface ENOSPC instead of panicking.
    pub fn alloc_region(
        &mut self,
        blocks: usize,
        block_size: usize,
    ) -> Result<RegionId, HostError> {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Some(Region { block_size, blocks: vec![None; blocks] }));
        Ok(id)
    }

    /// Frees a region (e.g. an intermediate table that was consumed).
    /// Always `Ok` in RAM; disk-backed substrates may fail to unlink.
    pub fn free_region(&mut self, region: RegionId) -> Result<(), HostError> {
        if let Some(slot) = self.regions.get_mut(region.0 as usize) {
            *slot = None;
        }
        Ok(())
    }

    /// Grows a region to `new_blocks` blocks (used when a table is copied to
    /// a larger allocation; growth is public information).
    pub fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError> {
        let r = self.region_mut(region)?;
        if new_blocks > r.blocks.len() {
            r.blocks.resize(new_blocks, None);
        }
        Ok(())
    }

    fn region(&self, region: RegionId) -> Result<&Region, HostError> {
        self.regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))
    }

    fn region_mut(&mut self, region: RegionId) -> Result<&mut Region, HostError> {
        self.regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))
    }

    /// Number of blocks in a region.
    pub fn region_len(&self, region: RegionId) -> Result<u64, HostError> {
        Ok(self.region(region)?.blocks.len() as u64)
    }

    /// The sealed-block size of a region.
    pub fn region_block_size(&self, region: RegionId) -> Result<usize, HostError> {
        Ok(self.region(region)?.block_size)
    }

    fn record(&mut self, region: RegionId, index: u64, kind: AccessKind) {
        if let Some(t) = &mut self.trace {
            t.push(AccessEvent { region, index, kind });
        }
    }

    /// Reads a sealed block. Observable by the adversary.
    pub fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError> {
        // Record before borrow of region data; stats unconditionally.
        self.record(region, index, AccessKind::Read);
        let r = self
            .regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))?;
        let len = r.blocks.len() as u64;
        let block = r
            .blocks
            .get(index as usize)
            .ok_or(HostError::OutOfBounds { region, index, len })?
            .as_deref()
            .ok_or(HostError::EmptyBlock(region, index))?;
        Self::cross(&mut self.stats, self.crossing);
        self.stats.reads += 1;
        self.stats.bytes_read += block.len() as u64;
        // Reborrow immutably for the return value.
        let r = self.regions[region.0 as usize].as_ref().unwrap();
        Ok(r.blocks[index as usize].as_deref().unwrap())
    }

    /// Writes a sealed block. Observable by the adversary.
    pub fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError> {
        self.record(region, index, AccessKind::Write);
        let r = self
            .regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))?;
        if data.len() != r.block_size {
            return Err(HostError::BlockSizeMismatch {
                region,
                expected: r.block_size,
                got: data.len(),
            });
        }
        let len = r.blocks.len() as u64;
        let slot = r.blocks.get_mut(index as usize).ok_or(HostError::OutOfBounds {
            region,
            index,
            len,
        })?;
        match slot {
            Some(existing) => existing.copy_from_slice(data),
            None => *slot = Some(data.to_vec().into_boxed_slice()),
        }
        Self::cross(&mut self.stats, self.crossing);
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Reads `count` consecutive sealed blocks starting at `start` into
    /// `out` (cleared first), in **one** boundary crossing. The adversary
    /// still observes every block index (one trace event per block); only
    /// the transition cost is amortized.
    pub fn read_blocks(
        &mut self,
        region: RegionId,
        start: u64,
        count: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        self.read_gather(region, start..start + count as u64, out)
    }

    /// Gather read: the sealed blocks at `indices` (in order), one crossing.
    pub fn read_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        self.read_gather(region, indices.iter().copied(), out)
    }

    fn read_gather(
        &mut self,
        region: RegionId,
        indices: impl Iterator<Item = u64>,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        out.clear();
        let mut crossed = false;
        // Split borrows: trace/stats mutate while region data is read.
        let cost = self.crossing;
        let Host { regions, trace, stats, .. } = self;
        let r = regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))?;
        let len = r.blocks.len() as u64;
        for index in indices {
            if let Some(t) = trace {
                t.push(AccessEvent { region, index, kind: AccessKind::Read });
            }
            let block = r
                .blocks
                .get(index as usize)
                .ok_or(HostError::OutOfBounds { region, index, len })?
                .as_deref()
                .ok_or(HostError::EmptyBlock(region, index))?;
            if !crossed {
                // Counted only once a block validates, exactly like the
                // per-block path (failed accesses leave counters alone).
                Self::cross(stats, cost);
                crossed = true;
            }
            out.extend_from_slice(block);
            stats.reads += 1;
            stats.bytes_read += block.len() as u64;
        }
        Ok(())
    }

    /// Writes `data` (a whole number of sealed blocks) to consecutive
    /// indices starting at `start`, in one boundary crossing.
    pub fn write_blocks(
        &mut self,
        region: RegionId,
        start: u64,
        data: &[u8],
    ) -> Result<(), HostError> {
        let block_size = self.region_block_size(region)?;
        let count = batch_count(region, block_size, data.len())?;
        self.write_scatter(region, start..start + count as u64, data)
    }

    /// Scatter write: one sealed block per index in `indices`, one crossing.
    pub fn write_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        data: &[u8],
    ) -> Result<(), HostError> {
        let block_size = self.region_block_size(region)?;
        let count = batch_count(region, block_size, data.len())?;
        if count != indices.len() {
            return Err(HostError::BlockSizeMismatch {
                region,
                expected: indices.len() * block_size,
                got: data.len(),
            });
        }
        self.write_scatter(region, indices.iter().copied(), data)
    }

    fn write_scatter(
        &mut self,
        region: RegionId,
        indices: impl Iterator<Item = u64>,
        data: &[u8],
    ) -> Result<(), HostError> {
        let mut crossed = false;
        let cost = self.crossing;
        let Host { regions, trace, stats, .. } = self;
        let r = regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))?;
        let len = r.blocks.len() as u64;
        for (index, chunk) in indices.zip(data.chunks_exact(r.block_size)) {
            if let Some(t) = trace {
                t.push(AccessEvent { region, index, kind: AccessKind::Write });
            }
            let slot = r.blocks.get_mut(index as usize).ok_or(HostError::OutOfBounds {
                region,
                index,
                len,
            })?;
            match slot {
                Some(existing) => existing.copy_from_slice(chunk),
                None => *slot = Some(chunk.to_vec().into_boxed_slice()),
            }
            if !crossed {
                Self::cross(stats, cost);
                crossed = true;
            }
            stats.writes += 1;
            stats.bytes_written += chunk.len() as u64;
        }
        Ok(())
    }

    /// ADVERSARY API: overwrite raw bytes without going through the enclave.
    ///
    /// Used by integrity tests to model OS tampering. Does not appear in the
    /// trace (the adversary does not observe itself).
    pub fn adversary_corrupt(&mut self, region: RegionId, index: u64, f: impl FnOnce(&mut [u8])) {
        if let Some(Some(r)) = self.regions.get_mut(region.0 as usize) {
            if let Some(Some(block)) = r.blocks.get_mut(index as usize) {
                f(block);
            }
        }
    }

    /// ADVERSARY API: swap two sealed blocks (models shuffling attacks).
    pub fn adversary_swap(&mut self, region: RegionId, a: u64, b: u64) {
        if let Some(Some(r)) = self.regions.get_mut(region.0 as usize) {
            r.blocks.swap(a as usize, b as usize);
        }
    }

    /// ADVERSARY API: snapshot a sealed block for a later replay/rollback.
    pub fn adversary_snapshot(&self, region: RegionId, index: u64) -> Option<Box<[u8]>> {
        self.regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .and_then(|r| r.blocks.get(index as usize))
            .and_then(|b| b.clone())
    }

    /// ADVERSARY API: restore a previously-snapshotted block (rollback).
    pub fn adversary_restore(&mut self, region: RegionId, index: u64, snapshot: Box<[u8]>) {
        if let Some(Some(r)) = self.regions.get_mut(region.0 as usize) {
            if let Some(slot) = r.blocks.get_mut(index as usize) {
                *slot = Some(snapshot);
            }
        }
    }

    /// Starts recording accesses (clearing any previous recording).
    pub fn start_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Stops recording and returns the transcript.
    pub fn take_trace(&mut self) -> Trace {
        Trace(self.trace.take().unwrap_or_default())
    }

    /// Whether a trace is being recorded.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Aggregate statistics since the last [`Host::reset_stats`].
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// Zeroes the aggregate counters.
    ///
    /// The simulated crossing cost ([`Host::set_crossing_cost`]) is
    /// *configuration*, not a counter: it survives resets, so a benchmark
    /// can price the boundary once and reset between measurements without
    /// silently reverting to free crossings.
    pub fn reset_stats(&mut self) {
        self.stats = HostStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut h = Host::new();
        let r = h.alloc_region(4, 8).unwrap();
        h.write(r, 2, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(h.read(r, 2).unwrap(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn read_unwritten_block_fails() {
        let mut h = Host::new();
        let r = h.alloc_region(4, 8).unwrap();
        assert_eq!(h.read(r, 0), Err(HostError::EmptyBlock(r, 0)));
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut h = Host::new();
        let r = h.alloc_region(4, 8).unwrap();
        assert!(matches!(h.write(r, 9, &[0; 8]), Err(HostError::OutOfBounds { .. })));
    }

    #[test]
    fn block_size_enforced() {
        let mut h = Host::new();
        let r = h.alloc_region(4, 8).unwrap();
        assert!(matches!(
            h.write(r, 0, &[0; 7]),
            Err(HostError::BlockSizeMismatch { expected: 8, got: 7, .. })
        ));
    }

    #[test]
    fn freed_region_unusable() {
        let mut h = Host::new();
        let r = h.alloc_region(4, 8).unwrap();
        h.free_region(r).unwrap();
        assert_eq!(h.read(r, 0), Err(HostError::UnknownRegion(r)));
    }

    #[test]
    fn trace_records_order_and_kind() {
        let mut h = Host::new();
        let r = h.alloc_region(4, 8).unwrap();
        h.start_trace();
        h.write(r, 1, &[0; 8]).unwrap();
        h.read(r, 1).unwrap();
        h.write(r, 3, &[0; 8]).unwrap();
        let t = h.take_trace();
        assert_eq!(
            t.0,
            vec![
                AccessEvent { region: r, index: 1, kind: AccessKind::Write },
                AccessEvent { region: r, index: 1, kind: AccessKind::Read },
                AccessEvent { region: r, index: 3, kind: AccessKind::Write },
            ]
        );
    }

    #[test]
    fn failed_reads_still_traced() {
        // An adversary observes the *attempt*; the trace must include it.
        let mut h = Host::new();
        let r = h.alloc_region(2, 8).unwrap();
        h.start_trace();
        let _ = h.read(r, 0);
        let t = h.take_trace();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Host::new();
        let r = h.alloc_region(4, 16).unwrap();
        h.write(r, 0, &[0; 16]).unwrap();
        h.write(r, 1, &[0; 16]).unwrap();
        h.read(r, 0).unwrap();
        let s = h.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 32);
        assert_eq!(s.bytes_read, 16);
        assert_eq!(s.total_accesses(), 3);
    }

    #[test]
    fn grow_region_preserves_content() {
        let mut h = Host::new();
        let r = h.alloc_region(2, 4).unwrap();
        h.write(r, 1, &[9; 4]).unwrap();
        h.grow_region(r, 10).unwrap();
        assert_eq!(h.region_len(r).unwrap(), 10);
        assert_eq!(h.read(r, 1).unwrap(), &[9; 4]);
    }

    #[test]
    fn adversary_apis_do_not_trace() {
        let mut h = Host::new();
        let r = h.alloc_region(2, 4).unwrap();
        h.write(r, 0, &[1; 4]).unwrap();
        h.write(r, 1, &[2; 4]).unwrap();
        h.start_trace();
        h.adversary_corrupt(r, 0, |b| b[0] ^= 0xFF);
        h.adversary_swap(r, 0, 1);
        let snap = h.adversary_snapshot(r, 0).unwrap();
        h.adversary_restore(r, 0, snap);
        assert!(h.take_trace().is_empty());
    }

    #[test]
    fn reset_stats_preserves_crossing_cost() {
        let mut h = Host::new();
        h.set_crossing_cost(3);
        let r = h.alloc_region(1, 4).unwrap();
        h.write(r, 0, &[0; 4]).unwrap();
        h.reset_stats();
        assert_eq!(h.stats(), HostStats::default());
        // The configured cost is still in force: this write spins again
        // (observable only as the config field; assert via another write
        // still counting exactly one crossing).
        h.write(r, 0, &[1; 4]).unwrap();
        assert_eq!(h.stats().crossings, 1);
        assert_eq!(h.crossing.spins, 3, "reset must not clear the crossing cost");
    }

    #[test]
    fn stats_arithmetic_and_report() {
        let a = HostStats {
            reads: 1,
            writes: 2,
            bytes_read: 3,
            bytes_written: 4,
            crossings: 5,
            stall_nanos: 6,
        };
        let b = HostStats {
            reads: 10,
            writes: 20,
            bytes_read: 30,
            bytes_written: 40,
            crossings: 50,
            stall_nanos: 60,
        };
        let sum: HostStats = [a, b].into_iter().sum();
        assert_eq!(sum, a + b);
        assert_eq!(sum.reads, 11);
        assert_eq!(sum.crossings, 55);
        assert_eq!(sum.stall_nanos, 66);
        let report = sum.report("disk");
        assert_eq!(report.cells().len(), StatsReport::HEADERS.len());
        assert!(report.to_string().starts_with("disk: reads=11"));
        assert!(report.to_string().ends_with("stall_ns=66"));
    }

    #[test]
    fn trace_for_region_filters() {
        let mut h = Host::new();
        let a = h.alloc_region(2, 4).unwrap();
        let b = h.alloc_region(2, 4).unwrap();
        h.start_trace();
        h.write(a, 0, &[0; 4]).unwrap();
        h.write(b, 0, &[0; 4]).unwrap();
        h.write(a, 1, &[0; 4]).unwrap();
        let t = h.take_trace();
        assert_eq!(t.for_region(a).len(), 2);
        assert_eq!(t.for_region(b).len(), 1);
    }
}
