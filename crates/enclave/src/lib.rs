//! Simulated enclave boundary for ObliDB.
//!
//! The paper runs on Intel SGX: a trusted enclave with a small protected
//! memory plus a large *untrusted* memory managed by a potentially malicious
//! OS. The OS cannot read enclave registers or protected pages, but it
//! observes **which untrusted addresses the enclave touches** — the access
//! pattern — and that leaks data unless the engine is oblivious.
//!
//! This crate models exactly that boundary:
//!
//! * [`EnclaveMemory`] is the abstract block-store seam every engine layer
//!   is written against: alloc/free/grow/read/write plus stats and traces.
//!   Implementors decide where blocks actually live.
//! * [`Host`] is the default untrusted world: a set of block-granular
//!   memory regions. Every read/write crosses the boundary and can be
//!   recorded in an [`AccessEvent`] trace — the simulation analogue of the
//!   adversary's view in the paper's Appendix A security theorem. Tests
//!   assert *trace equality* across runs with different data to verify
//!   obliviousness.
//! * [`CountingMemory`] is a payload-free implementor: it tracks region
//!   shapes, counters and traces but stores no data — a fast cost model
//!   for capacity planning (oblivious access patterns are
//!   payload-independent, so its counts equal [`Host`]'s).
//! * [`OmBudget`] accounts for the limited *oblivious memory* available
//!   inside the enclave (20 MB in the paper's evaluation). Position maps and
//!   operator buffers must fit in it; operators degrade gracefully (more
//!   passes, smaller chunks) when it shrinks — reproduced in Figure 8.
//! * [`EnclaveRng`] is the in-enclave randomness source (leaf assignment,
//!   nonces). It is deterministic under a seed so experiments reproduce.
//! * [`ThreadPool`] is the scoped worker pool behind worker-per-shard
//!   parallel execution: each worker drives its own partition's accesses
//!   exactly as the serial loop would, so per-partition traces are
//!   unchanged and obliviousness is preserved by construction. Its
//!   [`ThreadPool::scoped`] mode accepts dynamically submitted jobs
//!   (session-per-connection serving) bounded at the same worker count.
//! * [`SharedMemory`] / [`SessionMemory`] let many concurrent sessions
//!   share one substrate: per-session stats/traces identical to the
//!   single-owner contract, crossing stalls paid outside the store lock
//!   so they overlap across sessions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod host;
mod memory;
mod om;
mod pool;
mod rng;
mod shared;

pub use host::{
    batch_count, AccessEvent, AccessKind, CrossingCost, Host, HostError, HostStats, IoOp, RegionId,
    StatsReport, Trace,
};
pub use memory::{CountingMemory, EnclaveMemory};
pub use om::{OmAllocation, OmBudget, OmError};
pub use pool::{TaskScope, ThreadPool};
pub use rng::EnclaveRng;
pub use shared::{SessionMemory, SharedMemory};

/// Default oblivious-memory budget used across the evaluation (paper §2.2:
/// "we evaluate using 20MB or less in all our experiments").
pub const DEFAULT_OM_BYTES: usize = 20 * 1024 * 1024;
