//! The block-store seam every layer of the engine is written against.
//!
//! ObliDB's trusted code never cares *where* untrusted blocks live — only
//! that each boundary crossing is observable. [`EnclaveMemory`] captures
//! exactly the surface the engine needs (allocate / free / grow / read /
//! write / stats / trace), so the same operators run unchanged over the
//! in-memory [`Host`], the payload-free [`CountingMemory`] cost model, and
//! — in later iterations — disk-backed or sharded backends.

use crate::host::{
    batch_count, AccessEvent, AccessKind, Host, HostError, HostStats, RegionId, Trace,
};

/// Abstract untrusted block memory, as seen from inside the enclave.
///
/// Everything the engine does to the outside world goes through this trait;
/// region identity, block indices and access direction are public (the
/// adversary's view), payload bytes are sealed before they arrive here.
///
/// Implementors: [`Host`] (stores sealed payloads, the default substrate)
/// and [`CountingMemory`] (drops payloads, counts accesses — a fast cost
/// model). Code generic over `M: EnclaveMemory` must keep its *access
/// pattern* independent of payload contents; that is the obliviousness
/// property the test suite asserts via trace equality.
pub trait EnclaveMemory {
    /// Allocates a region of `blocks` blocks, each `block_size` bytes.
    ///
    /// Allocation size is public (the paper leaks data-structure sizes).
    /// Allocation is **fallible**: a disk-backed substrate that cannot
    /// create or size the backing file (ENOSPC, lost permissions) surfaces
    /// [`HostError::Io`] with [`IoOp::Alloc`](crate::IoOp) context instead
    /// of panicking; in-memory substrates always return `Ok`.
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> Result<RegionId, HostError>;

    /// Frees a region (e.g. an intermediate table that was consumed).
    /// Fallible for the same reason as [`EnclaveMemory::alloc_region`]
    /// (deleting a region file can fail); freeing an unknown region is a
    /// no-op, as before.
    fn free_region(&mut self, region: RegionId) -> Result<(), HostError>;

    /// Grows a region to `new_blocks` blocks (growth is public).
    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError>;

    /// Number of blocks in a region.
    fn region_len(&self, region: RegionId) -> Result<u64, HostError>;

    /// The sealed-block size of a region.
    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError>;

    /// Reads a sealed block. Observable by the adversary.
    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError>;

    /// Writes a sealed block. Observable by the adversary.
    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError>;

    /// Reads `count` consecutive sealed blocks starting at `start` into
    /// `out` (cleared first). The adversary observes every block index
    /// either way; batching only amortizes the per-crossing cost, so
    /// [`HostStats::crossings`](crate::HostStats) is the one counter where
    /// substrates with native support differ from this per-block fallback.
    fn read_blocks(
        &mut self,
        region: RegionId,
        start: u64,
        count: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        out.clear();
        for i in 0..count as u64 {
            let block = self.read(region, start + i)?;
            out.extend_from_slice(block);
        }
        Ok(())
    }

    /// Gather read: the sealed blocks at `indices`, in order, into `out`
    /// (cleared first). Used for non-contiguous batches such as an ORAM
    /// root-to-leaf path. Same fallback semantics as
    /// [`EnclaveMemory::read_blocks`].
    fn read_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        out.clear();
        for &index in indices {
            let block = self.read(region, index)?;
            out.extend_from_slice(block);
        }
        Ok(())
    }

    /// Writes `data` — a whole number of sealed blocks — to consecutive
    /// indices starting at `start`. Fallback: one `write` per block.
    fn write_blocks(&mut self, region: RegionId, start: u64, data: &[u8]) -> Result<(), HostError> {
        let block_size = self.region_block_size(region)?;
        batch_count(region, block_size, data.len())?;
        for (i, chunk) in data.chunks_exact(block_size).enumerate() {
            self.write(region, start + i as u64, chunk)?;
        }
        Ok(())
    }

    /// Scatter write: one sealed block from `data` per index in `indices`,
    /// in order. Fallback: one `write` per block.
    fn write_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        data: &[u8],
    ) -> Result<(), HostError> {
        let block_size = self.region_block_size(region)?;
        if batch_count(region, block_size, data.len())? != indices.len() {
            return Err(HostError::BlockSizeMismatch {
                region,
                expected: indices.len() * block_size,
                got: data.len(),
            });
        }
        for (&index, chunk) in indices.iter().zip(data.chunks_exact(block_size)) {
            self.write(region, index, chunk)?;
        }
        Ok(())
    }

    /// Starts recording accesses (clearing any previous recording).
    fn start_trace(&mut self);

    /// Stops recording and returns the transcript.
    fn take_trace(&mut self) -> Trace;

    /// Whether a trace is being recorded.
    fn tracing(&self) -> bool;

    /// Aggregate statistics since the last [`EnclaveMemory::reset_stats`].
    fn stats(&self) -> HostStats;

    /// Zeroes the aggregate counters.
    fn reset_stats(&mut self);

    /// Whether reads return the payload bytes that were written.
    ///
    /// `true` for real substrates. [`CountingMemory`] returns `false`: it
    /// discards payloads, so the sealed-storage layer skips decryption and
    /// synthesizes zeroed plaintext instead of failing authentication.
    /// Oblivious code paths have payload-independent access patterns, so
    /// access counts and trace shapes are preserved.
    fn retains_payloads(&self) -> bool {
        true
    }

    /// Flushes any buffered state down to the substrate's durable medium.
    ///
    /// Durable substrates (disk-backed files) fsync; caching substrates
    /// write back dirty blocks to their inner store and then sync it;
    /// purely in-memory substrates ([`Host`], [`CountingMemory`]) have
    /// nothing to flush and keep this default no-op. Called from WAL
    /// checkpoint paths, so a checkpoint means the same thing on every
    /// substrate. Flush writes are driven by which blocks are dirty —
    /// state the adversary already observed being written — so syncing
    /// adds no new leakage.
    fn sync(&mut self) -> Result<(), HostError> {
        Ok(())
    }

    /// Flushes one region's buffered state down to the durable medium.
    ///
    /// The write-ahead-log append path uses this: a log record must be
    /// durable *before* its mutation executes, without paying a full-store
    /// flush per statement. Disk substrates fsync just that region's file;
    /// caching substrates write back just that region's dirty blocks. The
    /// default falls back to a full [`EnclaveMemory::sync`], which is
    /// always correct (it flushes a superset).
    fn sync_region(&mut self, region: RegionId) -> Result<(), HostError> {
        let _ = region;
        self.sync()
    }
}

impl EnclaveMemory for Host {
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> Result<RegionId, HostError> {
        Host::alloc_region(self, blocks, block_size)
    }

    fn free_region(&mut self, region: RegionId) -> Result<(), HostError> {
        Host::free_region(self, region)
    }

    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError> {
        Host::grow_region(self, region, new_blocks)
    }

    fn region_len(&self, region: RegionId) -> Result<u64, HostError> {
        Host::region_len(self, region)
    }

    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError> {
        Host::region_block_size(self, region)
    }

    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError> {
        Host::read(self, region, index)
    }

    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError> {
        Host::write(self, region, index, data)
    }

    fn read_blocks(
        &mut self,
        region: RegionId,
        start: u64,
        count: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        Host::read_blocks(self, region, start, count, out)
    }

    fn read_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        Host::read_blocks_at(self, region, indices, out)
    }

    fn write_blocks(&mut self, region: RegionId, start: u64, data: &[u8]) -> Result<(), HostError> {
        Host::write_blocks(self, region, start, data)
    }

    fn write_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        data: &[u8],
    ) -> Result<(), HostError> {
        Host::write_blocks_at(self, region, indices, data)
    }

    fn start_trace(&mut self) {
        Host::start_trace(self)
    }

    fn take_trace(&mut self) -> Trace {
        Host::take_trace(self)
    }

    fn tracing(&self) -> bool {
        Host::tracing(self)
    }

    fn stats(&self) -> HostStats {
        Host::stats(self)
    }

    fn reset_stats(&mut self) {
        Host::reset_stats(self)
    }
}

struct CountingRegion {
    block_size: usize,
    blocks: u64,
    /// One bit per block: whether it was ever written. Keeps the
    /// [`HostError::EmptyBlock`] contract identical to [`Host`] without
    /// storing payloads.
    written: Vec<u64>,
}

impl CountingRegion {
    fn new(blocks: u64, block_size: usize) -> Self {
        CountingRegion { block_size, blocks, written: vec![0; blocks.div_ceil(64) as usize] }
    }

    fn is_written(&self, index: u64) -> bool {
        self.written[(index / 64) as usize] & (1 << (index % 64)) != 0
    }

    fn mark_written(&mut self, index: u64) {
        self.written[(index / 64) as usize] |= 1 << (index % 64);
    }
}

/// A payload-free [`EnclaveMemory`]: tracks region shapes, access counts
/// and (optionally) the full trace, but never copies a payload byte.
///
/// Reads return a zeroed scratch slice of the region's block size; writes
/// are bounds- and size-checked, then dropped (only a written bit per
/// block is kept, so unwritten reads fail with the same
/// [`HostError::EmptyBlock`] as [`Host`]). For structures whose access
/// pattern is independent of substrate payloads — flat tables, scan
/// operators, direct-posmap ORAM — driving them over `CountingMemory`
/// yields exactly the trace and counters a [`Host`] run would produce,
/// at a fraction of the cost. Recursive-posmap ORAM stores its leaf
/// assignments *in* payloads, so there only aggregate access counts
/// match (paths differ event-by-event). Use it for cost-model tests and
/// capacity planning, never for data correctness.
///
/// Scope: flat tables, raw ORAM and scan operators cost-model exactly;
/// structures that route through payload contents (the oblivious B+
/// tree, so `Indexed`/`Both` storage) refuse payload-free substrates
/// with a typed error.
#[derive(Default)]
pub struct CountingMemory {
    regions: Vec<Option<CountingRegion>>,
    trace: Option<Vec<AccessEvent>>,
    stats: HostStats,
    scratch: Vec<u8>,
}

impl CountingMemory {
    /// Creates an empty counting memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn region(&self, region: RegionId) -> Result<&CountingRegion, HostError> {
        self.regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))
    }

    fn record(&mut self, region: RegionId, index: u64, kind: AccessKind) {
        if let Some(t) = &mut self.trace {
            t.push(AccessEvent { region, index, kind });
        }
    }

    /// Native batched gather: identical accounting to [`Host::read_blocks`]
    /// (per-block trace events and counters, one crossing), zeroed payload.
    fn read_gather(
        &mut self,
        region: RegionId,
        indices: impl Iterator<Item = u64>,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        out.clear();
        let mut crossed = false;
        let CountingMemory { regions, trace, stats, .. } = self;
        let r = regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))?;
        for index in indices {
            if let Some(t) = trace {
                t.push(AccessEvent { region, index, kind: AccessKind::Read });
            }
            if index >= r.blocks {
                return Err(HostError::OutOfBounds { region, index, len: r.blocks });
            }
            if !r.is_written(index) {
                return Err(HostError::EmptyBlock(region, index));
            }
            if !crossed {
                // Counted only once a block validates — per-block parity.
                stats.crossings += 1;
                crossed = true;
            }
            out.resize(out.len() + r.block_size, 0);
            stats.reads += 1;
            stats.bytes_read += r.block_size as u64;
        }
        Ok(())
    }

    fn write_scatter(
        &mut self,
        region: RegionId,
        indices: impl Iterator<Item = u64>,
        data: &[u8],
    ) -> Result<(), HostError> {
        let mut crossed = false;
        let CountingMemory { regions, trace, stats, .. } = self;
        let r = regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))?;
        for (index, chunk) in indices.zip(data.chunks_exact(r.block_size)) {
            if let Some(t) = trace {
                t.push(AccessEvent { region, index, kind: AccessKind::Write });
            }
            if index >= r.blocks {
                return Err(HostError::OutOfBounds { region, index, len: r.blocks });
            }
            if !crossed {
                stats.crossings += 1;
                crossed = true;
            }
            r.mark_written(index);
            stats.writes += 1;
            stats.bytes_written += chunk.len() as u64;
        }
        Ok(())
    }
}

impl EnclaveMemory for CountingMemory {
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> Result<RegionId, HostError> {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Some(CountingRegion::new(blocks as u64, block_size)));
        Ok(id)
    }

    fn free_region(&mut self, region: RegionId) -> Result<(), HostError> {
        if let Some(slot) = self.regions.get_mut(region.0 as usize) {
            *slot = None;
        }
        Ok(())
    }

    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError> {
        let r = self
            .regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))?;
        r.blocks = r.blocks.max(new_blocks as u64);
        r.written.resize(r.blocks.div_ceil(64) as usize, 0);
        Ok(())
    }

    fn region_len(&self, region: RegionId) -> Result<u64, HostError> {
        Ok(self.region(region)?.blocks)
    }

    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError> {
        Ok(self.region(region)?.block_size)
    }

    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError> {
        self.record(region, index, AccessKind::Read);
        let r = self
            .regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))?;
        if index >= r.blocks {
            return Err(HostError::OutOfBounds { region, index, len: r.blocks });
        }
        if !r.is_written(index) {
            // Same contract as `Host`: the attempt is traced (above), but
            // the read fails and the success counters stay untouched.
            return Err(HostError::EmptyBlock(region, index));
        }
        let block_size = r.block_size;
        self.stats.crossings += 1;
        self.stats.reads += 1;
        self.stats.bytes_read += block_size as u64;
        // The scratch is only ever zeroed; resize covers changing sizes.
        self.scratch.resize(block_size, 0);
        Ok(&self.scratch[..block_size])
    }

    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError> {
        self.record(region, index, AccessKind::Write);
        let r = self
            .regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))?;
        if data.len() != r.block_size {
            return Err(HostError::BlockSizeMismatch {
                region,
                expected: r.block_size,
                got: data.len(),
            });
        }
        if index >= r.blocks {
            return Err(HostError::OutOfBounds { region, index, len: r.blocks });
        }
        r.mark_written(index);
        self.stats.crossings += 1;
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn read_blocks(
        &mut self,
        region: RegionId,
        start: u64,
        count: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        self.read_gather(region, start..start + count as u64, out)
    }

    fn read_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        self.read_gather(region, indices.iter().copied(), out)
    }

    fn write_blocks(&mut self, region: RegionId, start: u64, data: &[u8]) -> Result<(), HostError> {
        let block_size = self.region(region)?.block_size;
        let count = batch_count(region, block_size, data.len())?;
        self.write_scatter(region, start..start + count as u64, data)
    }

    fn write_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        data: &[u8],
    ) -> Result<(), HostError> {
        let block_size = self.region(region)?.block_size;
        let count = batch_count(region, block_size, data.len())?;
        if count != indices.len() {
            return Err(HostError::BlockSizeMismatch {
                region,
                expected: indices.len() * block_size,
                got: data.len(),
            });
        }
        self.write_scatter(region, indices.iter().copied(), data)
    }

    fn start_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    fn take_trace(&mut self) -> Trace {
        Trace(self.trace.take().unwrap_or_default())
    }

    fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    fn stats(&self) -> HostStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = HostStats::default();
    }

    fn retains_payloads(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_memory_counts_without_storing() {
        let mut m = CountingMemory::new();
        let r = EnclaveMemory::alloc_region(&mut m, 4, 8).unwrap();
        m.write(r, 1, &[7u8; 8]).unwrap();
        assert_eq!(m.read(r, 1).unwrap(), &[0u8; 8], "payloads are dropped");
        let s = m.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!((s.bytes_read, s.bytes_written), (8, 8));
    }

    #[test]
    fn counting_memory_traces_like_host() {
        let mut h = Host::new();
        let mut m = CountingMemory::new();
        let rh = EnclaveMemory::alloc_region(&mut h, 4, 8).unwrap();
        let rm = EnclaveMemory::alloc_region(&mut m, 4, 8).unwrap();
        EnclaveMemory::start_trace(&mut h);
        m.start_trace();
        for i in 0..4 {
            EnclaveMemory::write(&mut h, rh, i, &[1u8; 8]).unwrap();
            m.write(rm, i, &[1u8; 8]).unwrap();
            EnclaveMemory::read(&mut h, rh, i).unwrap();
            m.read(rm, i).unwrap();
        }
        assert_eq!(EnclaveMemory::take_trace(&mut h), m.take_trace());
    }

    #[test]
    fn counting_memory_checks_bounds_and_sizes() {
        let mut m = CountingMemory::new();
        let r = EnclaveMemory::alloc_region(&mut m, 2, 8).unwrap();
        assert!(matches!(m.write(r, 5, &[0u8; 8]), Err(HostError::OutOfBounds { .. })));
        assert!(matches!(m.write(r, 0, &[0u8; 7]), Err(HostError::BlockSizeMismatch { .. })));
        assert_eq!(m.read(r, 1), Err(HostError::EmptyBlock(r, 1)), "unwritten reads fail as Host");
        m.free_region(r).unwrap();
        assert_eq!(m.read(r, 0), Err(HostError::UnknownRegion(r)));
    }

    #[test]
    fn counting_memory_grow_extends_bounds() {
        let mut m = CountingMemory::new();
        let r = EnclaveMemory::alloc_region(&mut m, 2, 4).unwrap();
        EnclaveMemory::grow_region(&mut m, r, 10).unwrap();
        assert_eq!(EnclaveMemory::region_len(&m, r).unwrap(), 10);
        m.write(r, 9, &[0u8; 4]).unwrap();
    }

    #[test]
    fn host_retains_payloads_counting_does_not() {
        assert!(EnclaveMemory::retains_payloads(&Host::new()));
        assert!(!CountingMemory::new().retains_payloads());
    }

    #[test]
    fn batched_io_is_one_crossing_on_both_substrates() {
        fn drive<M: EnclaveMemory>(m: &mut M) -> (Trace, crate::HostStats) {
            let r = m.alloc_region(8, 4).unwrap();
            m.start_trace();
            m.reset_stats();
            let data: Vec<u8> = (0..24).collect();
            m.write_blocks(r, 1, &data).unwrap();
            let mut out = Vec::new();
            m.read_blocks(r, 1, 6, &mut out).unwrap();
            assert_eq!(out.len(), 24);
            m.write_blocks_at(r, &[7, 2, 0], &data[..12]).unwrap();
            m.read_blocks_at(r, &[0, 7], &mut out).unwrap();
            assert_eq!(out.len(), 8);
            (m.take_trace(), m.stats())
        }
        let (trace_h, stats_h) = drive(&mut Host::new());
        let (trace_c, stats_c) = drive(&mut CountingMemory::new());
        assert_eq!(trace_h, trace_c, "batched traces must be identical across substrates");
        assert_eq!(stats_h, stats_c);
        assert_eq!(stats_h.crossings, 4, "one crossing per batched call");
        assert_eq!(stats_h.reads, 8);
        assert_eq!(stats_h.writes, 9);
        // Per-block events are still all recorded for the adversary.
        assert_eq!(trace_h.len(), 17);
    }

    #[test]
    fn batched_matches_per_block_loop_except_crossings() {
        let mut a = Host::new();
        let mut b = Host::new();
        let ra = EnclaveMemory::alloc_region(&mut a, 4, 2).unwrap();
        let rb = EnclaveMemory::alloc_region(&mut b, 4, 2).unwrap();
        let data = [1u8, 2, 3, 4, 5, 6];
        EnclaveMemory::write_blocks(&mut a, ra, 0, &data).unwrap();
        for (i, chunk) in data.chunks(2).enumerate() {
            EnclaveMemory::write(&mut b, rb, i as u64, chunk).unwrap();
        }
        let mut out = Vec::new();
        EnclaveMemory::read_blocks(&mut a, ra, 0, 3, &mut out).unwrap();
        let mut per_block = Vec::new();
        for i in 0..3 {
            per_block.extend_from_slice(EnclaveMemory::read(&mut b, rb, i).unwrap());
        }
        assert_eq!(out, per_block, "batched read returns the same bytes");
        let (sa, sb) = (EnclaveMemory::stats(&a), EnclaveMemory::stats(&b));
        assert_eq!((sa.reads, sa.writes, sa.bytes_read), (sb.reads, sb.writes, sb.bytes_read));
        assert_eq!(sa.crossings, 2);
        assert_eq!(sb.crossings, 6);
    }

    #[test]
    fn batched_errors_match_per_block_contract() {
        let mut m = CountingMemory::new();
        let r = EnclaveMemory::alloc_region(&mut m, 4, 2).unwrap();
        let mut out = Vec::new();
        // Unwritten block inside the batch: same EmptyBlock as per-block.
        m.write_blocks(r, 0, &[0u8; 4]).unwrap();
        assert_eq!(m.read_blocks(r, 0, 4, &mut out), Err(HostError::EmptyBlock(r, 2)));
        // Out of bounds inside the batch.
        assert!(matches!(
            m.write_blocks(r, 3, &[0u8; 4]),
            Err(HostError::OutOfBounds { index: 4, .. })
        ));
        // Ragged buffers are rejected up front.
        assert!(matches!(
            m.write_blocks(r, 0, &[0u8; 3]),
            Err(HostError::BlockSizeMismatch { .. })
        ));
        assert!(matches!(
            m.write_blocks_at(r, &[0, 1], &[0u8; 2]),
            Err(HostError::BlockSizeMismatch { .. })
        ));
    }
}
