//! The block-store seam every layer of the engine is written against.
//!
//! ObliDB's trusted code never cares *where* untrusted blocks live — only
//! that each boundary crossing is observable. [`EnclaveMemory`] captures
//! exactly the surface the engine needs (allocate / free / grow / read /
//! write / stats / trace), so the same operators run unchanged over the
//! in-memory [`Host`], the payload-free [`CountingMemory`] cost model, and
//! — in later iterations — disk-backed or sharded backends.

use crate::host::{AccessEvent, AccessKind, Host, HostError, HostStats, RegionId, Trace};

/// Abstract untrusted block memory, as seen from inside the enclave.
///
/// Everything the engine does to the outside world goes through this trait;
/// region identity, block indices and access direction are public (the
/// adversary's view), payload bytes are sealed before they arrive here.
///
/// Implementors: [`Host`] (stores sealed payloads, the default substrate)
/// and [`CountingMemory`] (drops payloads, counts accesses — a fast cost
/// model). Code generic over `M: EnclaveMemory` must keep its *access
/// pattern* independent of payload contents; that is the obliviousness
/// property the test suite asserts via trace equality.
pub trait EnclaveMemory {
    /// Allocates a region of `blocks` blocks, each `block_size` bytes.
    ///
    /// Allocation size is public (the paper leaks data-structure sizes).
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> RegionId;

    /// Frees a region (e.g. an intermediate table that was consumed).
    fn free_region(&mut self, region: RegionId);

    /// Grows a region to `new_blocks` blocks (growth is public).
    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError>;

    /// Number of blocks in a region.
    fn region_len(&self, region: RegionId) -> Result<u64, HostError>;

    /// The sealed-block size of a region.
    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError>;

    /// Reads a sealed block. Observable by the adversary.
    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError>;

    /// Writes a sealed block. Observable by the adversary.
    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError>;

    /// Starts recording accesses (clearing any previous recording).
    fn start_trace(&mut self);

    /// Stops recording and returns the transcript.
    fn take_trace(&mut self) -> Trace;

    /// Whether a trace is being recorded.
    fn tracing(&self) -> bool;

    /// Aggregate statistics since the last [`EnclaveMemory::reset_stats`].
    fn stats(&self) -> HostStats;

    /// Zeroes the aggregate counters.
    fn reset_stats(&mut self);

    /// Whether reads return the payload bytes that were written.
    ///
    /// `true` for real substrates. [`CountingMemory`] returns `false`: it
    /// discards payloads, so the sealed-storage layer skips decryption and
    /// synthesizes zeroed plaintext instead of failing authentication.
    /// Oblivious code paths have payload-independent access patterns, so
    /// access counts and trace shapes are preserved.
    fn retains_payloads(&self) -> bool {
        true
    }
}

impl EnclaveMemory for Host {
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> RegionId {
        Host::alloc_region(self, blocks, block_size)
    }

    fn free_region(&mut self, region: RegionId) {
        Host::free_region(self, region)
    }

    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError> {
        Host::grow_region(self, region, new_blocks)
    }

    fn region_len(&self, region: RegionId) -> Result<u64, HostError> {
        Host::region_len(self, region)
    }

    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError> {
        Host::region_block_size(self, region)
    }

    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError> {
        Host::read(self, region, index)
    }

    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError> {
        Host::write(self, region, index, data)
    }

    fn start_trace(&mut self) {
        Host::start_trace(self)
    }

    fn take_trace(&mut self) -> Trace {
        Host::take_trace(self)
    }

    fn tracing(&self) -> bool {
        Host::tracing(self)
    }

    fn stats(&self) -> HostStats {
        Host::stats(self)
    }

    fn reset_stats(&mut self) {
        Host::reset_stats(self)
    }
}

struct CountingRegion {
    block_size: usize,
    blocks: u64,
    /// One bit per block: whether it was ever written. Keeps the
    /// [`HostError::EmptyBlock`] contract identical to [`Host`] without
    /// storing payloads.
    written: Vec<u64>,
}

impl CountingRegion {
    fn new(blocks: u64, block_size: usize) -> Self {
        CountingRegion { block_size, blocks, written: vec![0; blocks.div_ceil(64) as usize] }
    }

    fn is_written(&self, index: u64) -> bool {
        self.written[(index / 64) as usize] & (1 << (index % 64)) != 0
    }

    fn mark_written(&mut self, index: u64) {
        self.written[(index / 64) as usize] |= 1 << (index % 64);
    }
}

/// A payload-free [`EnclaveMemory`]: tracks region shapes, access counts
/// and (optionally) the full trace, but never copies a payload byte.
///
/// Reads return a zeroed scratch slice of the region's block size; writes
/// are bounds- and size-checked, then dropped (only a written bit per
/// block is kept, so unwritten reads fail with the same
/// [`HostError::EmptyBlock`] as [`Host`]). For structures whose access
/// pattern is independent of substrate payloads — flat tables, scan
/// operators, direct-posmap ORAM — driving them over `CountingMemory`
/// yields exactly the trace and counters a [`Host`] run would produce,
/// at a fraction of the cost. Recursive-posmap ORAM stores its leaf
/// assignments *in* payloads, so there only aggregate access counts
/// match (paths differ event-by-event). Use it for cost-model tests and
/// capacity planning, never for data correctness.
///
/// Scope: flat tables, raw ORAM and scan operators cost-model exactly;
/// structures that route through payload contents (the oblivious B+
/// tree, so `Indexed`/`Both` storage) refuse payload-free substrates
/// with a typed error.
#[derive(Default)]
pub struct CountingMemory {
    regions: Vec<Option<CountingRegion>>,
    trace: Option<Vec<AccessEvent>>,
    stats: HostStats,
    scratch: Vec<u8>,
}

impl CountingMemory {
    /// Creates an empty counting memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn region(&self, region: RegionId) -> Result<&CountingRegion, HostError> {
        self.regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))
    }

    fn record(&mut self, region: RegionId, index: u64, kind: AccessKind) {
        if let Some(t) = &mut self.trace {
            t.push(AccessEvent { region, index, kind });
        }
    }
}

impl EnclaveMemory for CountingMemory {
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Some(CountingRegion::new(blocks as u64, block_size)));
        id
    }

    fn free_region(&mut self, region: RegionId) {
        if let Some(slot) = self.regions.get_mut(region.0 as usize) {
            *slot = None;
        }
    }

    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError> {
        let r = self
            .regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))?;
        r.blocks = r.blocks.max(new_blocks as u64);
        r.written.resize(r.blocks.div_ceil(64) as usize, 0);
        Ok(())
    }

    fn region_len(&self, region: RegionId) -> Result<u64, HostError> {
        Ok(self.region(region)?.blocks)
    }

    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError> {
        Ok(self.region(region)?.block_size)
    }

    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError> {
        self.record(region, index, AccessKind::Read);
        let r = self
            .regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))?;
        if index >= r.blocks {
            return Err(HostError::OutOfBounds { region, index, len: r.blocks });
        }
        if !r.is_written(index) {
            // Same contract as `Host`: the attempt is traced (above), but
            // the read fails and the success counters stay untouched.
            return Err(HostError::EmptyBlock(region, index));
        }
        let block_size = r.block_size;
        self.stats.reads += 1;
        self.stats.bytes_read += block_size as u64;
        // The scratch is only ever zeroed; resize covers changing sizes.
        self.scratch.resize(block_size, 0);
        Ok(&self.scratch[..block_size])
    }

    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError> {
        self.record(region, index, AccessKind::Write);
        let r = self
            .regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))?;
        if data.len() != r.block_size {
            return Err(HostError::BlockSizeMismatch {
                region,
                expected: r.block_size,
                got: data.len(),
            });
        }
        if index >= r.blocks {
            return Err(HostError::OutOfBounds { region, index, len: r.blocks });
        }
        r.mark_written(index);
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn start_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    fn take_trace(&mut self) -> Trace {
        Trace(self.trace.take().unwrap_or_default())
    }

    fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    fn stats(&self) -> HostStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = HostStats::default();
    }

    fn retains_payloads(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_memory_counts_without_storing() {
        let mut m = CountingMemory::new();
        let r = EnclaveMemory::alloc_region(&mut m, 4, 8);
        m.write(r, 1, &[7u8; 8]).unwrap();
        assert_eq!(m.read(r, 1).unwrap(), &[0u8; 8], "payloads are dropped");
        let s = m.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!((s.bytes_read, s.bytes_written), (8, 8));
    }

    #[test]
    fn counting_memory_traces_like_host() {
        let mut h = Host::new();
        let mut m = CountingMemory::new();
        let rh = EnclaveMemory::alloc_region(&mut h, 4, 8);
        let rm = EnclaveMemory::alloc_region(&mut m, 4, 8);
        EnclaveMemory::start_trace(&mut h);
        m.start_trace();
        for i in 0..4 {
            EnclaveMemory::write(&mut h, rh, i, &[1u8; 8]).unwrap();
            m.write(rm, i, &[1u8; 8]).unwrap();
            EnclaveMemory::read(&mut h, rh, i).unwrap();
            m.read(rm, i).unwrap();
        }
        assert_eq!(EnclaveMemory::take_trace(&mut h), m.take_trace());
    }

    #[test]
    fn counting_memory_checks_bounds_and_sizes() {
        let mut m = CountingMemory::new();
        let r = EnclaveMemory::alloc_region(&mut m, 2, 8);
        assert!(matches!(m.write(r, 5, &[0u8; 8]), Err(HostError::OutOfBounds { .. })));
        assert!(matches!(m.write(r, 0, &[0u8; 7]), Err(HostError::BlockSizeMismatch { .. })));
        assert_eq!(m.read(r, 1), Err(HostError::EmptyBlock(r, 1)), "unwritten reads fail as Host");
        m.free_region(r);
        assert_eq!(m.read(r, 0), Err(HostError::UnknownRegion(r)));
    }

    #[test]
    fn counting_memory_grow_extends_bounds() {
        let mut m = CountingMemory::new();
        let r = EnclaveMemory::alloc_region(&mut m, 2, 4);
        EnclaveMemory::grow_region(&mut m, r, 10).unwrap();
        assert_eq!(EnclaveMemory::region_len(&m, r).unwrap(), 10);
        m.write(r, 9, &[0u8; 4]).unwrap();
    }

    #[test]
    fn host_retains_payloads_counting_does_not() {
        assert!(EnclaveMemory::retains_payloads(&Host::new()));
        assert!(!CountingMemory::new().retains_payloads());
    }
}
