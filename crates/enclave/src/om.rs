//! Oblivious-memory budget accounting.
//!
//! The paper assumes "a limited amount of oblivious memory is available to
//! the enclave and protected from access pattern leaks" (§2.2). Data
//! structures that must live there — ORAM position maps, the Small-select
//! buffer, group-by hash tables, hash-join build tables, sort chunks —
//! allocate against this budget. When the budget shrinks, operators make
//! more passes rather than failing (Figure 8 measures exactly that), so
//! most allocation sites ask for *whatever is available* via
//! [`OmBudget::available`] and clamp their buffer sizes.
//!
//! The pool is shared through an `Arc` with atomic accounting, so a budget
//! (and everything holding one, e.g. a `Database`) is `Send + Sync` —
//! required by the concurrent serving front-end, where snapshot sessions
//! run on their own threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Error: an allocation would exceed the oblivious-memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmError {
    /// Bytes requested.
    pub requested: usize,
    /// Bytes currently free.
    pub available: usize,
}

impl std::fmt::Display for OmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oblivious memory exhausted: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OmError {}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    used: AtomicUsize,
}

/// A shared handle to the enclave's oblivious-memory pool.
#[derive(Debug, Clone)]
pub struct OmBudget {
    inner: Arc<Inner>,
}

impl OmBudget {
    /// Creates a pool of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self { inner: Arc::new(Inner { capacity, used: AtomicUsize::new(0) }) }
    }

    /// Total pool size in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Acquire)
    }

    /// Bytes currently free.
    pub fn available(&self) -> usize {
        self.inner.capacity - self.used()
    }

    /// An **independent** pool with the same capacity and the same bytes
    /// currently marked used, but its own accounting.
    ///
    /// Snapshot read sessions fork the engine's budget this way: the fork
    /// sees the same availability the owning engine would (so planning
    /// decisions match the single-owner path), but releases inside the
    /// fork never underflow the original pool.
    pub fn snapshot(&self) -> Self {
        Self {
            inner: Arc::new(Inner {
                capacity: self.inner.capacity,
                used: AtomicUsize::new(self.used()),
            }),
        }
    }

    /// Reserves `bytes`; the reservation is released when the returned guard
    /// drops.
    pub fn try_alloc(&self, bytes: usize) -> Result<OmAllocation, OmError> {
        let mut used = self.inner.used.load(Ordering::Acquire);
        loop {
            let available = self.inner.capacity - used;
            if bytes > available {
                return Err(OmError { requested: bytes, available });
            }
            match self.inner.used.compare_exchange_weak(
                used,
                used + bytes,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(OmAllocation { budget: Arc::clone(&self.inner), bytes }),
                Err(actual) => used = actual,
            }
        }
    }

    /// Reserves `min(bytes, available)` and reports how much was granted.
    ///
    /// This is the degrade-gracefully path: e.g. the Small select buffer
    /// takes whatever is left and makes more passes.
    pub fn alloc_up_to(&self, bytes: usize) -> OmAllocation {
        let mut used = self.inner.used.load(Ordering::Acquire);
        loop {
            let granted = bytes.min(self.inner.capacity - used);
            match self.inner.used.compare_exchange_weak(
                used,
                used + granted,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return OmAllocation { budget: Arc::clone(&self.inner), bytes: granted },
                Err(actual) => used = actual,
            }
        }
    }
}

/// RAII guard for an oblivious-memory reservation.
#[derive(Debug)]
pub struct OmAllocation {
    budget: Arc<Inner>,
    bytes: usize,
}

impl OmAllocation {
    /// Bytes actually reserved.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for OmAllocation {
    fn drop(&mut self) {
        self.budget.used.fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_release() {
        let om = OmBudget::new(100);
        assert_eq!(om.available(), 100);
        {
            let a = om.try_alloc(60).unwrap();
            assert_eq!(a.bytes(), 60);
            assert_eq!(om.available(), 40);
            let _b = om.try_alloc(40).unwrap();
            assert_eq!(om.available(), 0);
        }
        assert_eq!(om.available(), 100);
    }

    #[test]
    fn over_allocation_rejected() {
        let om = OmBudget::new(100);
        let _a = om.try_alloc(80).unwrap();
        let err = om.try_alloc(21).unwrap_err();
        assert_eq!(err, OmError { requested: 21, available: 20 });
    }

    #[test]
    fn alloc_up_to_clamps() {
        let om = OmBudget::new(100);
        let _a = om.try_alloc(90).unwrap();
        let b = om.alloc_up_to(50);
        assert_eq!(b.bytes(), 10);
        assert_eq!(om.available(), 0);
    }

    #[test]
    fn clones_share_pool() {
        let om = OmBudget::new(100);
        let om2 = om.clone();
        let _a = om.try_alloc(70).unwrap();
        assert_eq!(om2.available(), 30);
    }

    #[test]
    fn zero_budget_grants_nothing() {
        let om = OmBudget::new(0);
        assert!(om.try_alloc(1).is_err());
        assert_eq!(om.alloc_up_to(10).bytes(), 0);
    }

    #[test]
    fn snapshot_is_independent() {
        let om = OmBudget::new(100);
        let held = om.try_alloc(30).unwrap();
        let snap = om.snapshot();
        assert_eq!(snap.capacity(), 100);
        assert_eq!(snap.available(), 70);
        // Releases inside the snapshot don't touch the original.
        let g = snap.try_alloc(70).unwrap();
        drop(g);
        assert_eq!(snap.available(), 70);
        assert_eq!(om.available(), 70);
        drop(held);
        assert_eq!(om.available(), 100);
        assert_eq!(snap.available(), 70);
    }

    #[test]
    fn concurrent_allocs_never_oversubscribe() {
        let om = OmBudget::new(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let om = om.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        if let Ok(g) = om.try_alloc(7) {
                            assert!(om.used() <= om.capacity());
                            drop(g);
                        }
                        let g = om.alloc_up_to(11);
                        assert!(om.used() <= om.capacity());
                        drop(g);
                    }
                });
            }
        });
        assert_eq!(om.used(), 0);
    }
}
