//! Oblivious-memory budget accounting.
//!
//! The paper assumes "a limited amount of oblivious memory is available to
//! the enclave and protected from access pattern leaks" (§2.2). Data
//! structures that must live there — ORAM position maps, the Small-select
//! buffer, group-by hash tables, hash-join build tables, sort chunks —
//! allocate against this budget. When the budget shrinks, operators make
//! more passes rather than failing (Figure 8 measures exactly that), so
//! most allocation sites ask for *whatever is available* via
//! [`OmBudget::available`] and clamp their buffer sizes.

use std::cell::Cell;
use std::rc::Rc;

/// Error: an allocation would exceed the oblivious-memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmError {
    /// Bytes requested.
    pub requested: usize,
    /// Bytes currently free.
    pub available: usize,
}

impl std::fmt::Display for OmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oblivious memory exhausted: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OmError {}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    used: Cell<usize>,
}

/// A shared handle to the enclave's oblivious-memory pool.
#[derive(Debug, Clone)]
pub struct OmBudget {
    inner: Rc<Inner>,
}

impl OmBudget {
    /// Creates a pool of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self { inner: Rc::new(Inner { capacity, used: Cell::new(0) }) }
    }

    /// Total pool size in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.inner.used.get()
    }

    /// Bytes currently free.
    pub fn available(&self) -> usize {
        self.inner.capacity - self.inner.used.get()
    }

    /// Reserves `bytes`; the reservation is released when the returned guard
    /// drops.
    pub fn try_alloc(&self, bytes: usize) -> Result<OmAllocation, OmError> {
        let available = self.available();
        if bytes > available {
            return Err(OmError { requested: bytes, available });
        }
        self.inner.used.set(self.inner.used.get() + bytes);
        Ok(OmAllocation { budget: Rc::clone(&self.inner), bytes })
    }

    /// Reserves `min(bytes, available)` and reports how much was granted.
    ///
    /// This is the degrade-gracefully path: e.g. the Small select buffer
    /// takes whatever is left and makes more passes.
    pub fn alloc_up_to(&self, bytes: usize) -> OmAllocation {
        let granted = bytes.min(self.available());
        self.inner.used.set(self.inner.used.get() + granted);
        OmAllocation { budget: Rc::clone(&self.inner), bytes: granted }
    }
}

/// RAII guard for an oblivious-memory reservation.
#[derive(Debug)]
pub struct OmAllocation {
    budget: Rc<Inner>,
    bytes: usize,
}

impl OmAllocation {
    /// Bytes actually reserved.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for OmAllocation {
    fn drop(&mut self) {
        self.budget.used.set(self.budget.used.get() - self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_release() {
        let om = OmBudget::new(100);
        assert_eq!(om.available(), 100);
        {
            let a = om.try_alloc(60).unwrap();
            assert_eq!(a.bytes(), 60);
            assert_eq!(om.available(), 40);
            let _b = om.try_alloc(40).unwrap();
            assert_eq!(om.available(), 0);
        }
        assert_eq!(om.available(), 100);
    }

    #[test]
    fn over_allocation_rejected() {
        let om = OmBudget::new(100);
        let _a = om.try_alloc(80).unwrap();
        let err = om.try_alloc(21).unwrap_err();
        assert_eq!(err, OmError { requested: 21, available: 20 });
    }

    #[test]
    fn alloc_up_to_clamps() {
        let om = OmBudget::new(100);
        let _a = om.try_alloc(90).unwrap();
        let b = om.alloc_up_to(50);
        assert_eq!(b.bytes(), 10);
        assert_eq!(om.available(), 0);
    }

    #[test]
    fn clones_share_pool() {
        let om = OmBudget::new(100);
        let om2 = om.clone();
        let _a = om.try_alloc(70).unwrap();
        assert_eq!(om2.available(), 30);
    }

    #[test]
    fn zero_budget_grants_nothing() {
        let om = OmBudget::new(0);
        assert!(om.try_alloc(1).is_err());
        assert_eq!(om.alloc_up_to(10).bytes(), 0);
    }
}
