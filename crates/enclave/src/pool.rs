//! A minimal scoped thread pool for worker-per-shard execution.
//!
//! The workspace is zero-dep by design, so this is not rayon: a
//! [`ThreadPool`] is just a worker count. Each parallel region spawns at
//! most that many scoped threads (`std::thread::scope`), hands each one a
//! statically-partitioned contiguous chunk of the work, joins them all,
//! and propagates the first worker panic to the caller. There is no work
//! stealing and no task queue — ObliDB's parallel units (shards of a
//! sharded substrate, disjoint block ranges of a sealed batch,
//! independent compare-exchange rounds of a bitonic pass) are uniform by
//! construction, so static assignment is already balanced.
//!
//! Obliviousness is unaffected: a worker drives exactly the accesses the
//! serial loop would have issued for its partition, so each partition's
//! trace is unchanged — only the interleaving *across* partitions differs,
//! which the enclave boundary already leaks (the adversary sees every
//! access either way). `tests/parallel_conformance.rs` asserts this.

use std::any::Any;
use std::thread::ScopedJoinHandle;

/// A fixed-width scoped thread pool. `Copy`, stateless between runs: the
/// worker threads live only for the duration of one [`ThreadPool::run`].
///
/// `threads == 1` is the serial pool: work runs inline on the caller's
/// thread with no spawning, so a serial pool is always safe (and is the
/// default everywhere — parallelism is opt-in via `ExecConfig` /
/// `OBLIDB_THREADS`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::serial()
    }
}

impl ThreadPool {
    /// The inline pool: everything runs on the caller's thread.
    pub fn serial() -> Self {
        ThreadPool { threads: 1 }
    }

    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ThreadPool { threads: threads.max(1) }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether [`ThreadPool::run`] would actually spawn threads.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Runs every job, one scoped thread per job, and returns their
    /// results in job order.
    ///
    /// Callers partition their work into at most [`ThreadPool::threads`]
    /// jobs (one per worker); this method spawns whatever it is given. On
    /// a serial pool (or a single job) the jobs run inline, in order, with
    /// no threads spawned. If a worker panics, every other worker is still
    /// joined first, then the **first** panic (in job order) resumes on
    /// the caller's thread — a panicking parallel region behaves like the
    /// serial loop hitting the same panic, not like a detached thread.
    pub fn run<R, F>(&self, jobs: Vec<F>) -> Vec<R>
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::PoolJobs, jobs.len() as u64);
        if self.is_serial() || jobs.len() <= 1 {
            return jobs
                .into_iter()
                .map(|job| {
                    let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Worker);
                    job()
                })
                .collect();
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|job| {
                    s.spawn(move || {
                        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Worker);
                        job()
                    })
                })
                .collect();
            join_all(handles)
        })
    }

    /// Runs `f(index, &mut items[index])` for every item, partitioning the
    /// slice into at most [`ThreadPool::threads`] contiguous chunks with
    /// one worker per chunk. Results come back in item order.
    ///
    /// This is the worker-per-shard primitive: hand it
    /// `ShardedMemory::shards` and each worker gets exclusive `&mut`
    /// access to its shards — no locks, no sharing, stats aggregate after
    /// the join. Panic propagation as in [`ThreadPool::run`].
    pub fn for_each_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        if self.is_serial() || n <= 1 {
            let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Worker);
            oblidb_telemetry::counter_add(oblidb_telemetry::Counter::PoolJobs, n as u64);
            return items.iter_mut().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let chunk = n.div_ceil(self.threads);
        let f = &f;
        let jobs: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, part)| {
                move || {
                    part.iter_mut()
                        .enumerate()
                        .map(|(j, item)| f(c * chunk + j, item))
                        .collect::<Vec<R>>()
                }
            })
            .collect();
        self.run(jobs).into_iter().flatten().collect()
    }

    /// Splits `0..len` into at most [`ThreadPool::threads`] contiguous
    /// `(start, len)` ranges, one per worker, first ranges largest.
    /// Returns an empty vec for `len == 0`.
    pub fn partition(&self, len: usize) -> Vec<(usize, usize)> {
        if len == 0 {
            return Vec::new();
        }
        let chunk = len.div_ceil(self.threads);
        (0..len.div_ceil(chunk)).map(|c| (c * chunk, chunk.min(len - c * chunk))).collect()
    }
}

/// Joins every handle, then propagates the first panic in job order.
fn join_all<R>(handles: Vec<ScopedJoinHandle<'_, R>>) -> Vec<R> {
    let mut results = Vec::with_capacity(handles.len());
    let mut panic: Option<Box<dyn Any + Send>> = None;
    for handle in handles {
        match handle.join() {
            Ok(r) => results.push(r),
            Err(payload) => {
                if panic.is_none() {
                    panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let pool = ThreadPool::new(4);
        let mut items: Vec<usize> = (0..13).collect();
        let out = pool.for_each_mut(&mut items, |i, v| {
            *v += 1;
            i * 10 + *v
        });
        assert_eq!(items, (1..14).collect::<Vec<_>>());
        assert_eq!(out, (0..13).map(|i| i * 10 + i + 1).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mut a: Vec<u64> = (0..100).collect();
        let mut b = a.clone();
        let ra = ThreadPool::serial().for_each_mut(&mut a, |i, v| *v * 2 + i as u64);
        let rb = ThreadPool::new(8).for_each_mut(&mut b, |i, v| *v * 2 + i as u64);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn run_returns_in_job_order() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..3u32)
            .map(|i| {
                move || {
                    // Later jobs finish first; order must still hold.
                    std::thread::sleep(std::time::Duration::from_millis(10 * (3 - i as u64)));
                    i
                }
            })
            .collect();
        assert_eq!(pool.run(jobs), vec![0, 1, 2]);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut items = vec![0u8; 8];
            pool.for_each_mut(&mut items, |i, _| {
                if i == 5 {
                    panic!("worker 5 exploded");
                }
            });
        }));
        let payload = caught.expect_err("panic must cross the pool boundary");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "worker 5 exploded");
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(pool.is_serial());
        assert_eq!(pool.run(vec![|| 7]), vec![7]);
    }

    #[test]
    fn partition_covers_exactly_once() {
        for threads in 1..6 {
            for len in 0..40 {
                let parts = ThreadPool::new(threads).partition(len);
                assert!(parts.len() <= threads.max(1));
                let total: usize = parts.iter().map(|(_, n)| n).sum();
                assert_eq!(total, len, "threads={threads} len={len}");
                let mut next = 0;
                for (start, n) in parts {
                    assert_eq!(start, next);
                    assert!(n > 0);
                    next = start + n;
                }
            }
        }
    }
}
