//! A minimal scoped thread pool for worker-per-shard execution.
//!
//! The workspace is zero-dep by design, so this is not rayon: a
//! [`ThreadPool`] is just a worker count. Each parallel region spawns at
//! most that many scoped threads (`std::thread::scope`), hands each one a
//! statically-partitioned contiguous chunk of the work, joins them all,
//! and propagates the first worker panic to the caller. There is no work
//! stealing and no task queue — ObliDB's parallel units (shards of a
//! sharded substrate, disjoint block ranges of a sealed batch,
//! independent compare-exchange rounds of a bitonic pass) are uniform by
//! construction, so static assignment is already balanced.
//!
//! Obliviousness is unaffected: a worker drives exactly the accesses the
//! serial loop would have issued for its partition, so each partition's
//! trace is unchanged — only the interleaving *across* partitions differs,
//! which the enclave boundary already leaks (the adversary sees every
//! access either way). `tests/parallel_conformance.rs` asserts this.

use std::any::Any;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::ScopedJoinHandle;

/// A fixed-width scoped thread pool. `Copy`, stateless between runs: the
/// worker threads live only for the duration of one [`ThreadPool::run`].
///
/// `threads == 1` is the serial pool: work runs inline on the caller's
/// thread with no spawning, so a serial pool is always safe (and is the
/// default everywhere — parallelism is opt-in via `ExecConfig` /
/// `OBLIDB_THREADS`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::serial()
    }
}

impl ThreadPool {
    /// The inline pool: everything runs on the caller's thread.
    pub fn serial() -> Self {
        ThreadPool { threads: 1 }
    }

    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ThreadPool { threads: threads.max(1) }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether [`ThreadPool::run`] would actually spawn threads.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Runs every job, one scoped thread per job, and returns their
    /// results in job order.
    ///
    /// Callers partition their work into at most [`ThreadPool::threads`]
    /// jobs (one per worker); this method spawns whatever it is given. On
    /// a serial pool (or a single job) the jobs run inline, in order, with
    /// no threads spawned. If a worker panics, every other worker is still
    /// joined first, then the **first** panic (in job order) resumes on
    /// the caller's thread — a panicking parallel region behaves like the
    /// serial loop hitting the same panic, not like a detached thread.
    pub fn run<R, F>(&self, jobs: Vec<F>) -> Vec<R>
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::PoolJobs, jobs.len() as u64);
        if self.is_serial() || jobs.len() <= 1 {
            return jobs
                .into_iter()
                .map(|job| {
                    let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Worker);
                    job()
                })
                .collect();
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|job| {
                    s.spawn(move || {
                        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Worker);
                        job()
                    })
                })
                .collect();
            join_all(handles)
        })
    }

    /// Runs `f(index, &mut items[index])` for every item, partitioning the
    /// slice into at most [`ThreadPool::threads`] contiguous chunks with
    /// one worker per chunk. Results come back in item order.
    ///
    /// This is the worker-per-shard primitive: hand it
    /// `ShardedMemory::shards` and each worker gets exclusive `&mut`
    /// access to its shards — no locks, no sharing, stats aggregate after
    /// the join. Panic propagation as in [`ThreadPool::run`].
    pub fn for_each_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        if self.is_serial() || n <= 1 {
            let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Worker);
            oblidb_telemetry::counter_add(oblidb_telemetry::Counter::PoolJobs, n as u64);
            return items.iter_mut().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let chunk = n.div_ceil(self.threads);
        let f = &f;
        let jobs: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, part)| {
                move || {
                    part.iter_mut()
                        .enumerate()
                        .map(|(j, item)| f(c * chunk + j, item))
                        .collect::<Vec<R>>()
                }
            })
            .collect();
        self.run(jobs).into_iter().flatten().collect()
    }

    /// Opens a dynamic work scope: jobs are submitted one at a time via
    /// [`TaskScope::submit`] and run on scoped threads, with at most
    /// [`ThreadPool::threads`] running concurrently — `submit` blocks until
    /// a slot frees up. Unlike [`ThreadPool::run`], the job set does not
    /// need to be known up front, which is what a session-per-connection
    /// server needs: each accepted connection becomes one submitted job.
    ///
    /// The scope joins every outstanding job before returning (the
    /// `std::thread::scope` guarantee), so borrowed state outlives all
    /// sessions. A panicking job propagates when the scope closes, after
    /// all other jobs are joined — long-running servers that must survive
    /// a poisoned session should `catch_unwind` inside the job.
    pub fn scoped<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&TaskScope<'scope, 'env>) -> R,
    {
        let threads = self.threads;
        std::thread::scope(move |scope| {
            let slots = Arc::new(Slots { free: Mutex::new(threads), freed: Condvar::new() });
            f(&TaskScope { scope, slots })
        })
    }

    /// Splits `0..len` into at most [`ThreadPool::threads`] contiguous
    /// `(start, len)` ranges, one per worker, first ranges largest.
    /// Returns an empty vec for `len == 0`.
    pub fn partition(&self, len: usize) -> Vec<(usize, usize)> {
        if len == 0 {
            return Vec::new();
        }
        let chunk = len.div_ceil(self.threads);
        (0..len.div_ceil(chunk)).map(|c| (c * chunk, chunk.min(len - c * chunk))).collect()
    }
}

/// Concurrency limiter shared between a [`TaskScope`] and its jobs.
#[derive(Debug)]
struct Slots {
    free: Mutex<usize>,
    freed: Condvar,
}

impl Slots {
    fn acquire(&self) {
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        while *free == 0 {
            free = self.freed.wait(free).unwrap_or_else(|e| e.into_inner());
        }
        *free -= 1;
    }

    fn release(&self) {
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        *free += 1;
        self.freed.notify_one();
    }
}

/// Releases a slot even if the job panics, so a poisoned session can never
/// deadlock later `submit` calls.
struct SlotGuard(Arc<Slots>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// A dynamic submission handle created by [`ThreadPool::scoped`].
pub struct TaskScope<'scope, 'env: 'scope> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    slots: Arc<Slots>,
}

impl<'scope, 'env> TaskScope<'scope, 'env> {
    /// Runs `job` on a scoped thread, blocking the caller until one of the
    /// pool's worker slots is free. Jobs may borrow anything that outlives
    /// the enclosing [`ThreadPool::scoped`] call.
    pub fn submit<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.slots.acquire();
        let guard = SlotGuard(Arc::clone(&self.slots));
        self.scope.spawn(move || {
            let _guard = guard;
            let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::Worker);
            oblidb_telemetry::counter_add(oblidb_telemetry::Counter::PoolJobs, 1);
            job();
        });
    }
}

/// Joins every handle, then propagates the first panic in job order.
fn join_all<R>(handles: Vec<ScopedJoinHandle<'_, R>>) -> Vec<R> {
    let mut results = Vec::with_capacity(handles.len());
    let mut panic: Option<Box<dyn Any + Send>> = None;
    for handle in handles {
        match handle.join() {
            Ok(r) => results.push(r),
            Err(payload) => {
                if panic.is_none() {
                    panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let pool = ThreadPool::new(4);
        let mut items: Vec<usize> = (0..13).collect();
        let out = pool.for_each_mut(&mut items, |i, v| {
            *v += 1;
            i * 10 + *v
        });
        assert_eq!(items, (1..14).collect::<Vec<_>>());
        assert_eq!(out, (0..13).map(|i| i * 10 + i + 1).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mut a: Vec<u64> = (0..100).collect();
        let mut b = a.clone();
        let ra = ThreadPool::serial().for_each_mut(&mut a, |i, v| *v * 2 + i as u64);
        let rb = ThreadPool::new(8).for_each_mut(&mut b, |i, v| *v * 2 + i as u64);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn run_returns_in_job_order() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..3u32)
            .map(|i| {
                move || {
                    // Later jobs finish first; order must still hold.
                    std::thread::sleep(std::time::Duration::from_millis(10 * (3 - i as u64)));
                    i
                }
            })
            .collect();
        assert_eq!(pool.run(jobs), vec![0, 1, 2]);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut items = vec![0u8; 8];
            pool.for_each_mut(&mut items, |i, _| {
                if i == 5 {
                    panic!("worker 5 exploded");
                }
            });
        }));
        let payload = caught.expect_err("panic must cross the pool boundary");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "worker 5 exploded");
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(pool.is_serial());
        assert_eq!(pool.run(vec![|| 7]), vec![7]);
    }

    #[test]
    fn scoped_bounds_concurrency_and_joins_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPool::new(3);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        pool.scoped(|scope| {
            for _ in 0..20 {
                scope.submit(|| {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    running.fetch_sub(1, Ordering::SeqCst);
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        // The scope joined every job, and never ran more than `threads`.
        assert_eq!(done.load(Ordering::SeqCst), 20);
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn scoped_job_panic_frees_slot_and_propagates_at_join() {
        let pool = ThreadPool::new(1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.submit(|| panic!("session exploded"));
                // The slot must come back even though the job panicked,
                // otherwise this second submit deadlocks.
                scope.submit(|| {});
            });
        }));
        assert!(caught.is_err(), "scope must re-raise the job panic at join");
    }

    #[test]
    fn partition_covers_exactly_once() {
        for threads in 1..6 {
            for len in 0..40 {
                let parts = ThreadPool::new(threads).partition(len);
                assert!(parts.len() <= threads.max(1));
                let total: usize = parts.iter().map(|(_, n)| n).sum();
                assert_eq!(total, len, "threads={threads} len={len}");
                let mut next = 0;
                for (start, n) in parts {
                    assert_eq!(start, next);
                    assert!(n > 0);
                    next = start + n;
                }
            }
        }
    }
}
